PYTHON ?= python

.PHONY: install test test-fast bench bench-micro bench-parallel examples results clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-verbose:
	$(PYTHON) -m pytest tests/ -v

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-micro:
	$(PYTHON) benchmarks/bench_micro_traversal.py --smoke

bench-parallel:
	$(PYTHON) benchmarks/bench_parallel_scaling.py --smoke

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; done

results:
	@for f in benchmarks/results/*.txt; do echo; cat $$f; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
