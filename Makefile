PYTHON ?= python

.PHONY: install test test-fast test-serve test-mutation test-ir test-policy bench bench-ir bench-micro bench-bound bench-native bench-parallel bench-shard bench-incremental bench-serve bench-serve-full bench-policy bench-policy-full examples results clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-verbose:
	$(PYTHON) -m pytest tests/ -v

# Query-serving layer: coalescing differential suite, admission /
# cancellation races, and the JSON/TCP frontend protocol.  The cache
# provider is disabled so parallel CI legs never share stale state.
test-serve:
	$(PYTHON) -m pytest -p no:cacheprovider -q tests/serve

# Incremental-tree mutation suites: tree-level refit invariants plus the
# mutation -> cache-coherence differential matrix (fast portion only;
# the executor x engine matrix is marked slow and runs in CI under
# REPRO_EXECUTOR=process).
test-mutation:
	$(PYTHON) -m pytest tests/trees/test_incremental.py tests/backend/test_mutation_cache.py -m "not slow"

test-mutation-slow:
	$(PYTHON) -m pytest tests/trees/test_incremental.py tests/backend/test_mutation_cache.py

# Self-tuning execution policy: key extraction, persistent store
# versioning/corruption handling, mode semantics, online refinement,
# the policy-routing differential battery and cross-process
# persistence (plus the hardened measured-tuning core).
test-policy:
	$(PYTHON) -m pytest -p no:cacheprovider -q tests/policy tests/util/test_tune.py

# IR optimiser suites (passes, verifier, goldens, round-trip, fuzzer)
# with the structural verifier forced on after every pass.
test-ir:
	REPRO_VERIFY_IR=1 $(PYTHON) -m pytest tests/ir tests/dsl/test_roundtrip.py -m "not slow"

# Same plus the slow 2048-case fuzz sweep.
test-ir-slow:
	REPRO_VERIFY_IR=1 $(PYTHON) -m pytest tests/ir tests/dsl/test_roundtrip.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fig 2/3 IR ablation: seed vs extended pass pipeline through the
# interpreter backend; refreshes benchmarks/results/BENCH_ir.json.
bench-ir:
	$(PYTHON) -m pytest benchmarks/bench_fig2_nn_ir.py benchmarks/bench_fig3_kde_ir.py --benchmark-disable

bench-micro:
	$(PYTHON) benchmarks/bench_micro_traversal.py --smoke

# Bound-aware batched traversal vs the scalar stack engine on the
# Table IV k-NN / Hausdorff configurations (full run asserts the
# >= 1.5x k-NN speedup gate; --smoke only checks correctness/routing).
bench-bound:
	$(PYTHON) benchmarks/bench_bound_traversal.py --smoke

bench-bound-full:
	$(PYTHON) benchmarks/bench_bound_traversal.py

# Native (numba) codegen backend vs the NumPy reference on the Table IV
# scalar-kernel configurations (full run asserts the >= 2x geomean gate
# when numba is importable; without numba the run records the fallback).
bench-native:
	$(PYTHON) benchmarks/bench_native_backend.py --smoke

bench-native-full:
	$(PYTHON) benchmarks/bench_native_backend.py

bench-parallel:
	$(PYTHON) benchmarks/bench_parallel_scaling.py --smoke

# Sharded reference layout vs the unsharded process executor on the
# Table IV k-NN / KDE configurations (full run sweeps N up to 1e6 and
# asserts the >= 1.8x geomean gate on >= 4-core hosts; --smoke only
# exercises the sharded path at tiny sizes).
bench-shard:
	$(PYTHON) benchmarks/bench_shard_scaling.py --smoke

bench-shard-full:
	$(PYTHON) benchmarks/bench_shard_scaling.py

# Incremental tree refit vs full rebuild at update fractions
# 0.1% / 1% / 10% of the Table IV k-NN / KDE configurations (full run
# asserts the >= 3x refit-over-rebuild gate at the 1% fraction; --smoke
# only checks correctness through the cache's refit path).
bench-incremental:
	$(PYTHON) benchmarks/bench_incremental_tree.py --smoke

bench-incremental-full:
	$(PYTHON) benchmarks/bench_incremental_tree.py

# Serving-layer closed-loop load: coalesced vs uncoalesced admission
# on the Table IV k-NN / KDE configurations (full run sweeps 64
# clients and asserts the >= 5x coalescing-throughput gate; --smoke
# only proves the load generator and counters still work).
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py --smoke

bench-serve-full:
	$(PYTHON) benchmarks/bench_serve.py

# Self-tuning policy vs hard-coded auto and the exhaustive static
# oracle on the nine Table IV problems (full run asserts tuned-auto
# within 10% of best-static and beating hard-coded auto on >= 3/9, on
# >= 4-core hosts; --smoke only proves the search/persist/hit loop).
bench-policy:
	$(PYTHON) benchmarks/bench_policy.py --smoke

bench-policy-full:
	$(PYTHON) benchmarks/bench_policy.py

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; done

results:
	@for f in benchmarks/results/*.txt; do echo; cat $$f; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
