"""Ablations over the algorithmic choices: leaf size (the paper tunes it
per problem/dataset), tree type (kd vs ball — PASCAL's plug-and-play
claim), tree vs brute crossover, and the accuracy/time trade-offs of the
approximation knobs (τ for KDE, θ for Barnes-Hut)."""

import numpy as np
import pytest

from harness import dataset, emit, format_table, split_qr, wall
from repro.baselines import brute
from repro.problems import barnes_hut_acceleration, kde, knn

_SECTIONS: list[str] = []


def test_ablation_leaf_size(benchmark):
    X = np.ascontiguousarray(dataset("Yahoo!"))
    Q, R = split_qr(X)
    benchmark.pedantic(lambda: knn(Q, R, k=5, leaf_size=64),
                       rounds=2, iterations=1)
    rows = []
    for leaf in (16, 32, 64, 128, 256):
        t = wall(lambda leaf=leaf: knn(Q, R, k=5, leaf_size=leaf), 2)
        rows.append([leaf, round(t, 4)])
    _SECTIONS.append(format_table(
        "Ablation — leaf size (k-NN, Yahoo!)",
        ["leaf size", "time (s)"], rows,
    ))


def test_ablation_tree_type(benchmark):
    X = np.ascontiguousarray(dataset("IHEPC"))
    Q, R = split_qr(X)
    benchmark.pedantic(lambda: knn(Q, R, k=5, tree="kd"),
                       rounds=2, iterations=1)
    rows = []
    for kind in ("kd", "ball"):
        t = wall(lambda kind=kind: knn(Q, R, k=5, tree=kind), 2)
        rows.append([kind, round(t, 4)])
    _SECTIONS.append(format_table(
        "Ablation — tree type (k-NN, IHEPC; PASCAL plug-and-play)",
        ["tree", "time (s)"], rows,
    ))


def test_ablation_split_strategy(benchmark):
    """kd splitting strategy: the paper's median split vs sliding
    midpoint, on uniform and clustered data."""
    rows = []
    uniform = np.ascontiguousarray(dataset("IHEPC"))
    rng = np.random.default_rng(0)
    clustered = np.concatenate([
        rng.normal(size=(2000, 3)) * 0.2 + c
        for c in rng.uniform(-20, 20, size=(4, 3))
    ])
    benchmark.pedantic(
        lambda: knn(*split_qr(uniform), k=3, split="median"),
        rounds=2, iterations=1,
    )
    for label, X in (("IHEPC (smooth)", uniform),
                     ("4-cluster synthetic", clustered)):
        Q, R = split_qr(np.ascontiguousarray(X))
        for split in ("median", "midpoint"):
            t = wall(lambda s=split: knn(Q, R, k=3, split=s), 2)
            rows.append([label, split, round(t, 4)])
    _SECTIONS.append(format_table(
        "Ablation — kd splitting strategy (k-NN)",
        ["Data", "Split", "time (s)"], rows,
    ))


def test_ablation_tree_vs_brute(benchmark):
    """The asymptotic claim: tree-based k-NN scales better than brute
    force on low-dimensional data."""
    rows = []
    for n in (1000, 2000, 4000, 8000):
        X = np.ascontiguousarray(dataset("Elliptical", n))
        Q, R = split_qr(X)
        t_tree = wall(lambda: knn(Q, R, k=1))
        t_brute = wall(lambda: knn(Q, R, k=1, backend="brute"))
        rows.append([n, round(t_tree, 4), round(t_brute, 4),
                     round(t_brute / t_tree, 2)])
    benchmark(lambda: None)
    _SECTIONS.append(format_table(
        "Ablation — tree vs brute scaling (k-NN, Elliptical d=3)",
        ["N", "tree (s)", "brute (s)", "brute/tree"], rows,
    ))
    # The tree advantage must grow with N.
    assert rows[-1][3] > rows[0][3]


def test_ablation_kde_tau(benchmark):
    X = np.ascontiguousarray(dataset("Elliptical")[:4000])
    Q, R = split_qr(X)
    bw = 0.5
    exact = brute.brute_kde(Q, R, bw)
    benchmark.pedantic(lambda: kde(Q, R, bandwidth=bw, tau=1e-3),
                       rounds=2, iterations=1)
    rows = []
    for tau in (0.0, 1e-6, 1e-4, 1e-2):
        t = wall(lambda tau=tau: kde(Q, R, bandwidth=bw, tau=tau), 2)
        got = kde(Q, R, bandwidth=bw, tau=tau)
        err = float(np.abs(got - exact).max())
        rows.append([f"{tau:g}", round(t, 4), f"{err:.2e}",
                     f"{tau * len(R):.2e}"])
    _SECTIONS.append(format_table(
        "Ablation — KDE τ knob (Elliptical): time/accuracy trade-off",
        ["τ", "time (s)", "max abs err", "bound τ·N"], rows,
    ))
    # Guarantee: error stays under the analytic bound.
    for row in rows:
        assert float(row[2]) <= float(row[3]) + 1e-9


def test_ablation_bh_theta(benchmark):
    X = np.ascontiguousarray(dataset("Elliptical")[:4000])
    mass = np.ones(len(X))
    exact = brute.brute_forces(X, mass)
    benchmark.pedantic(
        lambda: barnes_hut_acceleration(X, mass, theta=0.5),
        rounds=2, iterations=1,
    )
    rows = []
    for theta in (0.2, 0.5, 0.8, 1.2):
        t = wall(lambda th=theta: barnes_hut_acceleration(X, mass, theta=th), 2)
        a = barnes_hut_acceleration(X, mass, theta=theta)
        err = float(np.linalg.norm(a - exact) / np.linalg.norm(exact))
        rows.append([theta, round(t, 4), f"{err:.2e}"])
    _SECTIONS.append(format_table(
        "Ablation — Barnes-Hut θ knob (Elliptical): time/accuracy",
        ["θ", "time (s)", "rel force err"], rows,
    ))
    errs = [float(r[2]) for r in rows]
    assert errs == sorted(errs)  # error grows with θ


def test_ablation_single_vs_dual_tree(benchmark):
    """Traversal-scheme ablation: the dual-tree amortises node work over
    query nodes, the single-tree (MLPACK/sklearn style) walks once per
    query point — the paper's related-work contrast, measured on the same
    tree substrate."""
    from repro.traversal import single_tree_knn
    from repro.trees import build_kdtree

    X = np.ascontiguousarray(dataset("IHEPC"))
    Q, R = split_qr(X)
    tree = build_kdtree(R, leaf_size=64)
    benchmark.pedantic(lambda: knn(Q, R, k=3), rounds=2, iterations=1)
    t_dual = wall(lambda: knn(Q, R, k=3), 2)
    t_single = wall(lambda: single_tree_knn(Q, tree, k=3), 2)
    _SECTIONS.append(format_table(
        "Ablation — dual-tree vs single-tree k-NN (IHEPC)",
        ["Scheme", "time (s)"],
        [["dual-tree (Portal)", round(t_dual, 4)],
         ["single-tree (per-point walks)", round(t_single, 4)]],
    ))
    assert t_dual < t_single  # amortisation wins at Python granularity


def test_ablation_bh_multipole_order(benchmark):
    """Extension: monopole vs monopole+quadrupole expansion — higher
    expansion order buys accuracy at the same θ (the FMM direction of the
    paper's background)."""
    X = np.ascontiguousarray(dataset("Elliptical")[:4000])
    mass = np.ones(len(X))
    exact = brute.brute_forces(X, mass)
    benchmark.pedantic(
        lambda: barnes_hut_acceleration(X, mass, theta=0.7, order=2),
        rounds=2, iterations=1,
    )
    rows = []
    for order in (1, 2):
        t = wall(lambda o=order: barnes_hut_acceleration(X, mass, theta=0.7,
                                                         order=o), 2)
        a = barnes_hut_acceleration(X, mass, theta=0.7, order=order)
        err = float(np.linalg.norm(a - exact) / np.linalg.norm(exact))
        label = "monopole (paper)" if order == 1 else "+ quadrupole"
        rows.append([label, round(t, 4), f"{err:.2e}"])
    _SECTIONS.append(format_table(
        "Ablation — Barnes-Hut multipole order (θ=0.7, Elliptical)",
        ["Expansion", "time (s)", "rel force err"], rows,
    ))
    assert float(rows[1][2]) < float(rows[0][2])


def test_ablation_parallel(benchmark):
    """Task→data parallel scheduler overhead/scaling.  On a single-core
    host the speedup is ~1×; the table documents the overhead honestly."""
    from repro.parallel import default_workers

    X = np.ascontiguousarray(dataset("Yahoo!"))
    Q, R = split_qr(X)
    benchmark.pedantic(lambda: knn(Q, R, k=5), rounds=2, iterations=1)
    rows = [["serial", round(wall(lambda: knn(Q, R, k=5), 2), 4)]]
    for w in (2, 4):
        t = wall(lambda w=w: knn(Q, R, k=5, parallel=True, workers=w), 2)
        rows.append([f"{w} workers", round(t, 4)])
    # default_workers() respects CPU affinity (cgroup/taskset limits),
    # unlike os.cpu_count() — report what the scheduler actually uses.
    rows.append([f"(host cores: {default_workers()})", ""])
    _SECTIONS.append(format_table(
        "Ablation — parallel traversal (k-NN, Yahoo!)",
        ["Mode", "time (s)"], rows,
    ))


def test_ablation_emit(benchmark):
    benchmark(lambda: None)
    emit("ablation_algorithm", "\n\n".join(_SECTIONS))
