"""Ablations over the compiler's design choices (DESIGN.md experiment
index): data layout, strength reduction / fastmath, and the monotone-map
deferral.  Each ablation flips one choice and reports time and (where
relevant) accuracy.
"""

import numpy as np
import pytest

from harness import dataset, emit, format_table, split_qr, wall
from repro.backend.fastmath import fast_inverse_sqrt
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.problems import kde

_SECTIONS: list[str] = []


def test_ablation_layout(benchmark):
    """Column- vs row-major layout on low-dimensional data (the paper's
    d ≤ 4 rule).  On 3-D data the column-major unrolled form should not
    lose to the generic row-major form."""
    X = np.ascontiguousarray(dataset("Elliptical")[:4000])
    Q, R = split_qr(X)
    q, r = Storage(Q), Storage(R)

    def run(layout):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, q)
        e.addLayer(PortalOp.SUM, r, PortalFunc.GAUSSIAN, bandwidth=0.5)
        e.execute(tau=0.0, layout=layout, exclude_self=False)
        return e

    benchmark.pedantic(lambda: run(None), rounds=2, iterations=1)
    t_auto = wall(lambda: run(None), 2)
    t_col = wall(lambda: run("column"), 2)
    t_row = wall(lambda: run("row"), 2)
    rows = [["auto (column for d=3)", round(t_auto, 4)],
            ["forced column", round(t_col, 4)],
            ["forced row", round(t_row, 4)]]
    _SECTIONS.append(format_table(
        "Ablation — layout choice (KDE, Elliptical d=3)",
        ["Layout", "time (s)"], rows,
    ))


def test_ablation_fastmath(benchmark):
    """Strength reduction's fast inverse sqrt: accuracy knob (IV-E).

    In this NumPy backend the bit-twiddling finvsqrt is *slower* than the
    hardware sqrt NumPy calls — the ablation reports both time and the
    error, documenting where the substitution diverges from LLVM."""
    X = np.ascontiguousarray(dataset("IHEPC")[:3000])
    Q, R = split_qr(X)
    q, r = Storage(Q), Storage(R)

    def run(fastmath):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, q)
        e.addLayer(PortalOp.SUM, r, PortalFunc.EUCLIDEAN)
        out = e.execute(fastmath=fastmath, exclude_self=False,
                        backend="brute")
        return out.values

    benchmark.pedantic(lambda: run(True), rounds=2, iterations=1)
    t_fast = wall(lambda: run(True), 2)
    t_exact = wall(lambda: run(False), 2)
    err = float(np.max(np.abs(run(True) - run(False)) /
                       np.abs(run(False))))
    rows = [["fastmath on (1/finvsqrt)", round(t_fast, 4), f"{err:.2e}"],
            ["fastmath off (np.sqrt)", round(t_exact, 4), "0"]]
    _SECTIONS.append(format_table(
        "Ablation — strength-reduced sqrt (sum of distances, IHEPC)",
        ["Mode", "time (s)", "max rel err"], rows,
    ))
    assert err < 1e-4  # well under the paper's 0.17 % bound


def test_ablation_finvsqrt_accuracy(benchmark):
    """Accuracy profile of the fast inverse sqrt itself."""
    rng = np.random.default_rng(0)
    x = rng.uniform(1e-6, 1e6, size=200_000)
    benchmark(lambda: fast_inverse_sqrt(x))
    exact = 1.0 / np.sqrt(x)
    err = np.abs(fast_inverse_sqrt(x) - exact) / exact
    _SECTIONS.append(format_table(
        "Ablation — fast inverse sqrt accuracy (float64, 2 Newton steps)",
        ["metric", "value"],
        [["max relative error", f"{err.max():.2e}"],
         ["mean relative error", f"{err.mean():.2e}"],
         ["paper bound (float32 variant)", "1.7e-3"]],
    ))
    assert err.max() < 5e-6


def test_ablation_emit(benchmark):
    benchmark(lambda: None)
    emit("ablation_compiler", "\n\n".join(_SECTIONS))
