"""Bound-aware batched traversal benchmark: stack vs bounded-batched.

Times the Table IV k-NN configuration (``knn(Q, R, k=5)`` over the
harness datasets) and the directed-Hausdorff configuration under both
the scalar stack engine and the epoch-based bound-aware batched engine,
and writes ``benchmarks/results/BENCH_bound.json``.

The acceptance gate (ISSUE 5) is asserted at the end: the bounded
engine's *geometric-mean* k-NN speedup over the stack engine must be at
least ``MIN_SPEEDUP`` (1.5x), and outputs must be bit-identical on every
row — the bounded engine trades decision freshness for decision width
but never exactness.

Usage::

    PYTHONPATH=src python benchmarks/bench_bound_traversal.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import dataset, format_table, split_qr  # noqa: E402
from repro.backend.cache import clear_caches  # noqa: E402
from repro.observe import collect  # noqa: E402
from repro.problems import directed_hausdorff, knn  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_bound.json")

#: Table IV datasets (paper section V) at the harness sizes.
DATASETS = ["Census", "Yahoo!", "IHEPC", "HIGGS", "KDD"]
K = 5
#: Acceptance gate: geometric-mean k-NN speedup of bounded over stack.
MIN_SPEEDUP = 1.5


def _time_engine(run, repeats: int) -> tuple[float, object, dict]:
    """Best-of wall clock after a warming call; returns (wall, output,
    counters-of-fastest-run)."""
    run()  # warm compile + tree caches
    best, out, counts = float("inf"), None, {}
    for _ in range(repeats):
        with collect() as counters:
            t0 = time.perf_counter()
            res = run()
            dt = time.perf_counter() - t0
        if dt < best:
            best, out, counts = dt, res, counters.as_dict()
    return best, out, counts


def _outputs_equal(a, b) -> bool:
    """Exact for indices/scalars; values compared to 1e-12 relative.

    In the row-GEMM layout (d > 4) the grouped base case issues one wide
    GEMM where the stack engine issues many narrow ones, and BLAS
    rounding depends on the output width — distances can differ by one
    ulp even though both engines are exact (neighbour *indices* still
    match exactly).  The column layout (d <= 4) is bitwise; the
    differential test-suite pins that."""
    if isinstance(a, tuple):
        return all(_outputs_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray):
        if np.issubdtype(a.dtype, np.floating):
            return bool(np.allclose(a, b, rtol=1e-12, atol=0.0))
        return bool(np.array_equal(a, b))
    return bool(np.isclose(a, b, rtol=1e-12))


def run_bench(smoke: bool, repeats: int) -> list[dict]:
    rows = []
    names = DATASETS[:2] if smoke else DATASETS
    for dset in names:
        X = dataset(dset, 700) if smoke else dataset(dset)
        Q, R = split_qr(X)
        configs = [
            ("knn", lambda eng, Q=Q, R=R:
                knn(Q, R, k=K, traversal=eng)),
            ("hausdorff", lambda eng, Q=Q, R=R:
                directed_hausdorff(Q, R, traversal=eng)),
        ]
        for prob, run in configs:
            clear_caches()
            t_stack, out_stack, c_stack = _time_engine(
                lambda: run("stack"), repeats)
            clear_caches()
            t_bound, out_bound, c_bound = _time_engine(
                lambda: run("bounded-batched"), repeats)
            assert _outputs_equal(out_stack, out_bound), (
                f"bounded engine changed {prob} output on {dset}"
            )
            ratio = t_stack / t_bound
            rows.append({
                "problem": prob,
                "dataset": dset,
                "n": len(X),
                "k": K if prob == "knn" else None,
                "stack_wall_s": t_stack,
                "bounded_wall_s": t_bound,
                "speedup": round(ratio, 3),
                "stack_base_case_pairs":
                    int(c_stack.get("traversal.base_case_pairs", 0)),
                "bounded_base_case_pairs":
                    int(c_bound.get("traversal.base_case_pairs", 0)),
                "bounded_epochs": int(c_bound.get("bounded.epochs", 0)),
                "bounded_deferred_prunes":
                    int(c_bound.get("bounded.deferred_prunes", 0)),
            })
            print(f"  {prob:>10} {dset:<10} stack={t_stack:.4f}s "
                  f"bounded={t_bound:.4f}s  x{ratio:.2f}", file=sys.stderr)
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sizes / single repeat (CI smoke run); the "
                         "speedup gate is skipped — tiny trees drain "
                         "before bounds pay off")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timed repeats per configuration (best-of)")
    ap.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    args = ap.parse_args(argv)

    repeats = args.repeats or (1 if args.smoke else 3)
    print("[bound] stack vs bounded-batched on the Table IV k-NN / "
          "Hausdorff configurations", file=sys.stderr)
    rows = run_bench(args.smoke, repeats)

    knn_speedups = [r["speedup"] for r in rows if r["problem"] == "knn"]
    geomean = math.exp(sum(math.log(s) for s in knn_speedups)
                       / len(knn_speedups))
    payload = {
        "meta": {"smoke": args.smoke, "repeats": repeats, "k": K,
                 "min_speedup": MIN_SPEEDUP,
                 "knn_speedup_geomean": round(geomean, 3)},
        "rows": rows,
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"[written to {args.out}]", file=sys.stderr)

    print(format_table(
        "Bound-aware traversal — stack / bounded speedup",
        ["config", "speedup"],
        [[f"{r['problem']} {r['dataset']}", r["speedup"]] for r in rows]
        + [["knn geomean", round(geomean, 3)]],
    ), file=sys.stderr)

    if args.smoke:
        return 0
    # Acceptance gate (ISSUE 5): >= 1.5x on the Table IV k-NN config.
    if geomean < MIN_SPEEDUP:
        print(f"[FAIL] knn speedup geomean x{geomean:.2f} "
              f"< gate x{MIN_SPEEDUP}", file=sys.stderr)
        return 1
    print(f"[PASS] knn speedup geomean x{geomean:.2f} "
          f">= x{MIN_SPEEDUP}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
