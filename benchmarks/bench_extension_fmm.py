"""Extension — the 2-D Laplace fast multipole method.

The paper's background names FMM (reference [7]) alongside Barnes-Hut as
the foundational fast N-body algorithms; the evaluation uses Barnes-Hut.
This bench adds the missing half: the O(N) FMM against the O(N²) direct
sum, with the accuracy-vs-order profile.
"""

import numpy as np
import pytest

from harness import emit, format_table, wall
from repro.fmm import direct_potential, fmm_potential

_ROWS: dict[str, list] = {"scaling": [], "order": []}


@pytest.mark.parametrize("n", [1000, 2000, 4000, 8000, 16000])
def test_fmm_scaling(benchmark, n):
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 1, (n, 2))
    q = rng.normal(size=n)
    z = pts[:, 0] + 1j * pts[:, 1]
    if n == 1000:
        benchmark.pedantic(lambda: fmm_potential(pts, q, p=8),
                           rounds=2, iterations=1)
    t_fmm = wall(lambda: fmm_potential(pts, q, p=8), 2)
    t_direct = wall(lambda: direct_potential(z, z, q), 2)
    phi = fmm_potential(pts, q, p=8)
    exact = direct_potential(z, z, q)
    err = float(np.abs(phi - exact).max() / np.abs(exact).max())
    _ROWS["scaling"].append([n, round(t_fmm, 4), round(t_direct, 4),
                             round(t_direct / t_fmm, 1), f"{err:.1e}"])


def test_fmm_order_sweep(benchmark):
    rng = np.random.default_rng(1)
    pts = rng.uniform(0, 1, (3000, 2))
    q = rng.normal(size=3000)
    z = pts[:, 0] + 1j * pts[:, 1]
    exact = direct_potential(z, z, q)
    benchmark.pedantic(lambda: fmm_potential(pts, q, p=6),
                       rounds=2, iterations=1)
    for p in (2, 4, 8, 12):
        t = wall(lambda p=p: fmm_potential(pts, q, p=p))
        err = float(np.abs(fmm_potential(pts, q, p=p) - exact).max()
                    / np.abs(exact).max())
        _ROWS["order"].append([p, round(t, 4), f"{err:.1e}",
                               f"{0.47 ** p:.1e}"])


def test_fmm_emit(benchmark):
    benchmark(lambda: None)
    lines = [
        format_table(
            "Extension — 2-D Laplace FMM vs direct sum (uniform, p=8)",
            ["N", "FMM (s)", "direct (s)", "speedup ×", "rel err"],
            _ROWS["scaling"],
        ),
        "",
        format_table(
            "Extension — FMM expansion order (N=3000): error ~ 0.47^p",
            ["p", "time (s)", "rel err", "0.47^p"],
            _ROWS["order"],
        ),
    ]
    emit("extension_fmm", "\n".join(lines))
    # O(N) vs O(N²): the advantage must grow with N.
    sp = [row[3] for row in _ROWS["scaling"]]
    assert sp[-1] > sp[0]
    errs = [float(row[2]) for row in _ROWS["order"]]
    assert errs == sorted(errs, reverse=True)
