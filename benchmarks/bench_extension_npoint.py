"""Extension — n-point correlation (the m = 3 multi-tree instance).

The paper's framework is stated for m datasets (Algorithm 1 recurses
over power-set tuples) and lists n-point correlation among the
generalized problems; the evaluation only exercises m = 2.  This bench
extends the reproduction to m = 3: the 3-point correlation runs the
genuine triple-tree traversal with triple pruning/closed-form inclusion,
and is compared against the O(N³)-ish dense evaluation.
"""

import numpy as np
import pytest

from harness import dataset, emit, format_table, wall
from repro.problems import three_point_correlation

_ROWS: list[list] = []


def brute_three_point(X, h):
    d2 = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
    m = (d2 < h * h).astype(float)
    np.fill_diagonal(m, 0.0)
    return float(np.einsum("ab,bc,ac->", m, m, m))


@pytest.mark.parametrize("n", [400, 800, 1600])
def test_three_point_scaling(benchmark, n):
    X = np.ascontiguousarray(dataset("Elliptical", n))
    h = 1.0
    if n == 400:
        benchmark.pedantic(lambda: three_point_correlation(X, h),
                           rounds=2, iterations=1)
    t_tree = wall(lambda: three_point_correlation(X, h))
    t_brute = wall(lambda: brute_three_point(X, h))
    c_tree = three_point_correlation(X, h)
    c_brute = brute_three_point(X, h)
    assert c_tree == c_brute
    _ROWS.append([n, round(t_tree, 4), round(t_brute, 4),
                  round(t_brute / t_tree, 1), f"{c_tree:.0f}"])


def test_npoint_emit(benchmark):
    benchmark(lambda: None)
    emit("extension_npoint", format_table(
        "Extension — 3-point correlation: triple-tree vs dense "
        "(Elliptical, h=1.0)",
        ["N", "multi-tree (s)", "dense (s)", "speedup ×", "count"],
        _ROWS,
    ))
    # The multi-tree advantage must grow with N (einsum is ~O(N²·N)).
    assert _ROWS[-1][3] > _ROWS[0][3]
