"""Fig. 1 — the Portal compiler block diagram.

Regenerates the pipeline stage list from the live pass manager (Lowering
& Storage Injection → Flattening → Numerical Optimization → Strength
Reduction → Code Generation) and benchmarks each stage's cost on the
nearest-neighbor program.
"""

import time

import numpy as np
import pytest

from harness import emit, format_table
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.ir.flattening import flatten
from repro.ir.lowering import lower
from repro.ir.numerical_opt import numerical_optimize
from repro.ir.passes import PIPELINE_STAGES, PassManager
from repro.ir.strength_reduction import strength_reduce
from repro.rules import build_rules


def _nn_layers():
    rng = np.random.default_rng(0)
    e = PortalExpr("nn")
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(500, 3)), name="query"))
    e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(500, 3)),
                                        name="reference"),
               PortalFunc.EUCLIDEAN)
    e.validate()
    return e.layers, e.layers[1].metric_kernel


def test_fig1_stage_order(benchmark):
    layers, kernel = _nn_layers()
    cls, rule = build_rules(layers, kernel)

    def run_pipeline():
        pm = PassManager()
        pm.run(lower(layers, kernel, cls, rule, "nn"))
        return pm

    pm = benchmark(run_pipeline)

    assert tuple(pm.snapshots) == PIPELINE_STAGES

    rows = []
    stage_fns = {
        "lowered": "Lowering & Storage Injection (IV-A, IV-B)",
        "flattened": "Flattening (IV-C)",
        "numopt": "Numerical Optimization (IV-D)",
        "strength": "Strength Reduction (IV-E)",
        "simplify": "Algebraic Simplification (IV-F)",
        "cse": "Common-Subexpression Elimination (IV-F)",
        "final": "Folding + DCE + Code Generation (IV-F)",
    }
    # Per-stage timing.
    lowered = lower(layers, kernel, cls, rule, "nn")
    timings = {}
    t0 = time.perf_counter()
    lower(layers, kernel, cls, rule, "nn")
    timings["lowered"] = time.perf_counter() - t0
    prog = lowered
    from repro.ir.passes import (
        common_subexpression_eliminate, constant_fold, dead_code_eliminate,
        simplify,
    )

    for name, fn in (("flattened", flatten),
                     ("numopt", numerical_optimize),
                     ("strength", strength_reduce),
                     ("simplify", simplify),
                     ("cse", common_subexpression_eliminate)):
        t0 = time.perf_counter()
        prog = fn(prog)
        timings[name] = time.perf_counter() - t0
    t0 = time.perf_counter()
    dead_code_eliminate(constant_fold(prog))
    timings["final"] = time.perf_counter() - t0

    for stage in PIPELINE_STAGES:
        rows.append([stage, stage_fns[stage],
                     f"{timings[stage] * 1e3:.2f} ms"])
    emit("fig1", format_table(
        "Fig. 1 — compiler pipeline stages (live pass manager)",
        ["Stage", "Paper section", "Cost (NN program)"],
        rows,
    ))
