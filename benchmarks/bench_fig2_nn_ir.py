"""Fig. 2 — the nearest-neighbor IR at every compiler stage.

Regenerates the per-stage IR dumps of the paper's Fig. 2 (BaseCase,
Prune/Approximate and ComputeApprox for the nearest-neighbor problem)
from the live pass manager, asserting the figure's annotations:

* the kernel lowers to the dimension loop accumulating pow(·, 2),
* flattening rewrites loads into strided one-dimensional form,
* no numerical optimisation fires (NN has no Mahalanobis form),
* strength reduction turns pow into chained multiplication and sqrt into
  the safe 1/fast_inverse_sqrt form,
* ComputeApprox returns 0 (NN is a pruning problem).
"""

import numpy as np
import pytest

from harness import emit
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.ir.printer import render_function, render_stages


def compile_nn():
    rng = np.random.default_rng(0)
    e = PortalExpr("nearest-neighbor")
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(200, 3)),
                                        name="query"))
    e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(200, 3)),
                                        name="reference"),
               PortalFunc.EUCLIDEAN)
    e.compile()
    return e


def test_fig2_ir_dump(benchmark):
    e = benchmark(compile_nn)
    pm = e.program.pass_manager

    text = []
    text.append("Fig. 2 — nearest neighbor IR, per stage")
    text.append("=" * 50)
    text.append(render_stages(pm.snapshots, "BaseCase"))
    text.append("--- PruneApprox (final) " + "-" * 26)
    text.append(render_function(pm.stage("final")["PruneApprox"]))
    text.append("--- ComputeApprox (final) " + "-" * 24)
    text.append(render_function(pm.stage("final")["ComputeApprox"]))
    dump = "\n".join(text)
    emit("fig2", dump)

    lowered = render_function(pm.stage("lowered")["BaseCase"])
    final = render_function(pm.stage("final")["BaseCase"])
    assert "pow(" in lowered and "for d in" in lowered
    assert "stride" in final
    assert pm.stage("numopt").meta["numerical_optimized"] is False
    assert "fast_inverse_sqrt" in final and "pow(" not in final
    assert "return 0" in render_function(pm.stage("final")["ComputeApprox"])


def test_fig2_generated_backend_source(benchmark):
    e = benchmark(compile_nn)
    src = e.generated_source()
    # The backend artifact (our LLVM-IR stand-in) is also dumped.
    emit("fig2_generated", "Fig. 2 (backend) — generated NumPy source\n"
         + "=" * 50 + "\n" + src)
    assert "def base_case" in src and "def prune_or_approx" in src
