"""Fig. 2 — the nearest-neighbor IR at every compiler stage.

Regenerates the per-stage IR dumps of the paper's Fig. 2 (BaseCase,
Prune/Approximate and ComputeApprox for the nearest-neighbor problem)
from the live pass manager, asserting the figure's annotations:

* the kernel lowers to the dimension loop accumulating pow(·, 2),
* flattening rewrites loads into strided one-dimensional form,
* no numerical optimisation fires (NN has no Mahalanobis form),
* strength reduction turns pow into chained multiplication and sqrt into
  the safe 1/fast_inverse_sqrt form,
* ComputeApprox returns 0 (NN is a pruning problem).
"""

import numpy as np
import pytest

from harness import emit, time_interp_base_case, update_bench_json
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.ir.lowering import lower
from repro.ir.passes import PassManager
from repro.ir.printer import render_function, render_stages
from repro.rules import build_rules

#: The pipeline as it stood before the optimizer expansion: everything
#: except the three new passes.  Disabling them reproduces the old
#: pipeline exactly, so baseline-vs-extended is a true ablation.
SEED_PIPELINE_DISABLE = ("simplify", "cse", "dce")


def compile_nn():
    rng = np.random.default_rng(0)
    e = PortalExpr("nearest-neighbor")
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(200, 3)),
                                        name="query"))
    e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(200, 3)),
                                        name="reference"),
               PortalFunc.EUCLIDEAN)
    e.compile()
    return e


def test_fig2_ir_dump(benchmark):
    e = benchmark(compile_nn)
    pm = e.program.pass_manager

    text = []
    text.append("Fig. 2 — nearest neighbor IR, per stage")
    text.append("=" * 50)
    text.append(render_stages(pm.snapshots, "BaseCase"))
    text.append("--- PruneApprox (final) " + "-" * 26)
    text.append(render_function(pm.stage("final")["PruneApprox"]))
    text.append("--- ComputeApprox (final) " + "-" * 24)
    text.append(render_function(pm.stage("final")["ComputeApprox"]))
    dump = "\n".join(text)
    emit("fig2", dump)

    lowered = render_function(pm.stage("lowered")["BaseCase"])
    final = render_function(pm.stage("final")["BaseCase"])
    assert "pow(" in lowered and "for d in" in lowered
    assert "stride" in final
    assert pm.stage("numopt").meta["numerical_optimized"] is False
    assert "fast_inverse_sqrt" in final and "pow(" not in final
    assert "return 0" in render_function(pm.stage("final")["ComputeApprox"])


def test_fig2_ir_ablation_interp(benchmark):
    """Extended-vs-seed pipeline for the NN kernel, timed through the
    interpreter backend on BaseCase.  The Euclidean kernel has no
    repeated subexpressions after strength reduction, so the extended
    pipeline must leave its IR untouched — the ablation row records a
    ~1.0x ratio, and the assertion pins the no-regression half of the
    contract (the speedup half lives in the Fig 3 ablation)."""
    rng = np.random.default_rng(0)
    e = PortalExpr("nn-ablation")
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(40, 3)),
                                        name="query"))
    e.addLayer(PortalOp.SUM, Storage(rng.normal(size=(45, 3)),
                                     name="reference"),
               PortalFunc.EUCLIDEAN, tau=0.0)
    e.validate()
    kernel = e.layers[1].metric_kernel
    cls, rule = build_rules(e.layers, kernel)
    lowered = lower(e.layers, kernel, cls, rule, "nn")

    base_fn = PassManager(
        fastmath=True, disabled=frozenset(SEED_PIPELINE_DISABLE)
    ).run(lowered)["BaseCase"]
    ext_fn = benchmark(
        lambda: PassManager(fastmath=True).run(lowered)["BaseCase"])

    # Identical IR in, identical IR out: the new passes are no-ops here.
    assert render_function(ext_fn) == render_function(base_fn)

    base_s = time_interp_base_case(base_fn, e.layers)
    ext_s = time_interp_base_case(ext_fn, e.layers)
    update_bench_json("BENCH_ir.json", "fig2", [{
        "kernel": "nn_euclidean",
        "baseline_pass_set_disables": list(SEED_PIPELINE_DISABLE),
        "baseline_wall_s": base_s,
        "extended_wall_s": ext_s,
        "speedup": base_s / ext_s,
        "ir_identical": True,
        "nq": 40, "nr": 45, "d": 3,
    }], meta={"backend": "interp", "function": "BaseCase", "repeats": 5})


def test_fig2_generated_backend_source(benchmark):
    e = benchmark(compile_nn)
    src = e.generated_source()
    # The backend artifact (our LLVM-IR stand-in) is also dumped.
    emit("fig2_generated", "Fig. 2 (backend) — generated NumPy source\n"
         + "=" * 50 + "\n" + src)
    assert "def base_case" in src and "def prune_or_approx" in src
