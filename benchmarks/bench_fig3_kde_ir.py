"""Fig. 3 — the kernel-density-estimation IR at every compiler stage.

KDE is the paper's *approximation* worked example: the dump must show the
Gaussian kernel lowering, the band approximation condition with
ComputeApprox adding the node's density-weighted centroid contribution,
and — for the Mahalanobis variant — the numerical-optimisation rewrite to
Cholesky + forward substitution (the purple box of Fig. 3).
"""

import numpy as np
import pytest

from harness import emit, time_interp_base_case, update_bench_json
from repro.dsl import (
    PortalExpr, PortalFunc, PortalOp, Storage, Var, exp, pow, sqrt,
)
from repro.ir.lowering import lower
from repro.ir.passes import PassManager
from repro.ir.printer import render_function, render_stages
from repro.rules import build_rules

#: See bench_fig2_nn_ir: disabling the three new passes reproduces the
#: pre-expansion pipeline exactly.
SEED_PIPELINE_DISABLE = ("simplify", "cse", "dce")


def compile_kde(mahalanobis: bool = False):
    rng = np.random.default_rng(0)
    e = PortalExpr("kernel-density-estimation")
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(200, 3)),
                                        name="query"))
    if mahalanobis:
        e.addLayer(PortalOp.MIN, Storage(rng.normal(size=(200, 3)),
                                         name="reference"),
                   PortalFunc.MAHALANOBIS, covariance=np.eye(3))
    else:
        e.addLayer(PortalOp.SUM, Storage(rng.normal(size=(200, 3)),
                                         name="reference"),
                   PortalFunc.GAUSSIAN, bandwidth=1.0)
    e.compile(tau=1e-3)
    return e


def test_fig3_ir_dump(benchmark):
    e = benchmark(compile_kde)
    pm = e.program.pass_manager

    text = ["Fig. 3 — kernel density estimation IR, per stage", "=" * 50,
            render_stages(pm.snapshots, "BaseCase"),
            "--- PruneApprox (final) " + "-" * 26,
            render_function(pm.stage("final")["PruneApprox"]),
            "--- ComputeApprox (final) " + "-" * 24,
            render_function(pm.stage("final")["ComputeApprox"])]
    emit("fig3", "\n".join(text))

    final_prune = render_function(pm.stage("final")["PruneApprox"])
    final_approx = render_function(pm.stage("final")["ComputeApprox"])
    assert "band_hi" in final_prune or "band_lo" in final_prune
    assert "node_weight" in final_approx
    assert "exp(" in render_function(pm.stage("lowered")["BaseCase"])


def _ablation_kernels():
    """KDE-family kernels for the IR ablation.  ``plummer_mixture`` is
    the CSE showcase: the Gaussian factor appears four times and the
    distance twice more, so hash-consing collapses most of the per-pair
    expression tree."""
    q, r = Var("q"), Var("r")
    d2 = pow(q - r, 2)
    t = exp(-(d2) / 2.0)
    return {
        "kde_gaussian": (PortalFunc.GAUSSIAN, {"bandwidth": 0.9}),
        "plummer_mixture": (
            (t + sqrt(d2)) * (t + pow(d2 + 0.25, -0.5))
            + t * sqrt(d2) + t,
            {},
        ),
    }


def test_fig3_ir_ablation_interp(benchmark):
    """Extended-vs-seed pipeline on KDE-family kernels, timed through
    the interpreter backend on BaseCase.  The extended pipeline must be
    at least 5% faster on at least one kernel — the paper's Fig 3
    claim that kernel-level redundancy is the optimiser's payoff."""
    rng = np.random.default_rng(0)
    Q, R = rng.normal(size=(40, 3)), rng.normal(size=(45, 3))
    rows = []
    for name, (func, params) in _ablation_kernels().items():
        e = PortalExpr(f"kde-ablation-{name}")
        e.addLayer(PortalOp.FORALL, Var("q"), Storage(Q, name="query"))
        e.addLayer(PortalOp.SUM, Var("r"), Storage(R, name="reference"),
                   func, tau=0.0, **params)
        e.validate()
        kernel = e.layers[1].metric_kernel
        cls, rule = build_rules(e.layers, kernel)
        lowered = lower(e.layers, kernel, cls, rule, name)

        base_fn = PassManager(
            fastmath=True, disabled=frozenset(SEED_PIPELINE_DISABLE)
        ).run(lowered)["BaseCase"]
        ext_fn = PassManager(fastmath=True).run(lowered)["BaseCase"]
        base_s = time_interp_base_case(base_fn, e.layers)
        ext_s = time_interp_base_case(ext_fn, e.layers)
        rows.append({
            "kernel": name,
            "baseline_pass_set_disables": list(SEED_PIPELINE_DISABLE),
            "baseline_wall_s": base_s,
            "extended_wall_s": ext_s,
            "speedup": base_s / ext_s,
            "ir_identical": render_function(ext_fn)
            == render_function(base_fn),
            "nq": 40, "nr": 45, "d": 3,
        })

    benchmark(lambda: PassManager(fastmath=True).run(lowered)["BaseCase"])
    update_bench_json("BENCH_ir.json", "fig3", rows,
                      meta={"backend": "interp", "function": "BaseCase",
                            "repeats": 5})
    best = max(rows, key=lambda r: r["speedup"])
    assert best["speedup"] >= 1.05, (
        f"extended pipeline not >=5% faster on any kernel: {rows}"
    )


def test_fig3_mahalanobis_numerical_optimisation(benchmark):
    e = benchmark(lambda: compile_kde(mahalanobis=True))
    pm = e.program.pass_manager
    numopt = render_function(pm.stage("numopt")["BaseCase"])
    lowered = render_function(pm.stage("lowered")["BaseCase"])
    emit("fig3_mahalanobis",
         "Fig. 3 (purple box) — Mahalanobis numerical optimisation\n"
         + "=" * 50
         + "\n--- before (naive inverse) ---\n" + lowered
         + "\n--- after (Cholesky + forward substitution) ---\n" + numopt)
    assert "mahalanobis" in lowered
    assert "cholesky" in numopt and "forward_sub" in numopt
    assert "mahalanobis(" not in numopt
