"""Fig. 3 — the kernel-density-estimation IR at every compiler stage.

KDE is the paper's *approximation* worked example: the dump must show the
Gaussian kernel lowering, the band approximation condition with
ComputeApprox adding the node's density-weighted centroid contribution,
and — for the Mahalanobis variant — the numerical-optimisation rewrite to
Cholesky + forward substitution (the purple box of Fig. 3).
"""

import numpy as np
import pytest

from harness import emit
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.ir.printer import render_function, render_stages


def compile_kde(mahalanobis: bool = False):
    rng = np.random.default_rng(0)
    e = PortalExpr("kernel-density-estimation")
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(200, 3)),
                                        name="query"))
    if mahalanobis:
        e.addLayer(PortalOp.MIN, Storage(rng.normal(size=(200, 3)),
                                         name="reference"),
                   PortalFunc.MAHALANOBIS, covariance=np.eye(3))
    else:
        e.addLayer(PortalOp.SUM, Storage(rng.normal(size=(200, 3)),
                                         name="reference"),
                   PortalFunc.GAUSSIAN, bandwidth=1.0)
    e.compile(tau=1e-3)
    return e


def test_fig3_ir_dump(benchmark):
    e = benchmark(compile_kde)
    pm = e.program.pass_manager

    text = ["Fig. 3 — kernel density estimation IR, per stage", "=" * 50,
            render_stages(pm.snapshots, "BaseCase"),
            "--- PruneApprox (final) " + "-" * 26,
            render_function(pm.stage("final")["PruneApprox"]),
            "--- ComputeApprox (final) " + "-" * 24,
            render_function(pm.stage("final")["ComputeApprox"])]
    emit("fig3", "\n".join(text))

    final_prune = render_function(pm.stage("final")["PruneApprox"])
    final_approx = render_function(pm.stage("final")["ComputeApprox"])
    assert "band_hi" in final_prune or "band_lo" in final_prune
    assert "node_weight" in final_approx
    assert "exp(" in render_function(pm.stage("lowered")["BaseCase"])


def test_fig3_mahalanobis_numerical_optimisation(benchmark):
    e = benchmark(lambda: compile_kde(mahalanobis=True))
    pm = e.program.pass_manager
    numopt = render_function(pm.stage("numopt")["BaseCase"])
    lowered = render_function(pm.stage("lowered")["BaseCase"])
    emit("fig3_mahalanobis",
         "Fig. 3 (purple box) — Mahalanobis numerical optimisation\n"
         + "=" * 50
         + "\n--- before (naive inverse) ---\n" + lowered
         + "\n--- after (Cholesky + forward substitution) ---\n" + numopt)
    assert "mahalanobis" in lowered
    assert "cholesky" in numopt and "forward_sub" in numopt
    assert "mahalanobis(" not in numopt
