"""Incremental tree refit vs full rebuild (live-data Table IV configs).

For update fractions f ∈ {0.1%, 1%, 10%} of a Table IV-style clustered
reference set, times bringing an existing tree up to date through the
mutation API (``snapshot()`` + ``update_batch`` — the path the tree
cache's ``cache.tree.refit`` hit takes) against building a fresh tree
over the mutated dataset, for the k-NN (unweighted kd) and KDE (weighted
kd) configurations.  Rows land in
``benchmarks/results/BENCH_incremental.json``.

What the numbers should show: a refit touches only the dirty leaves and
their ancestor chain — O(f·n + dirty-ancestors) — while a rebuild pays
the full O(n log n) sort-and-split, so small update fractions win big
and the advantage narrows as f grows (at 10% a sizeable slice of the
leaves is dirty and subtree rebuilds start to trigger).  The acceptance
gate — refit ≥ 3× faster than a full rebuild at f = 1% (geomean over
the knn + KDE configs) — is enforced on full runs only.

Every row also records an end-to-end correctness check through the
execution caches: after mutating the ``Storage``, the next ``knn()`` /
``kde()`` must hit the incremental path (``cache.tree.refit == 1``) and
match a from-scratch ``cache=False`` run (bitwise for k-NN's exact
selection, rtol 1e-12 for KDE's reassociated sums).

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_tree.py [--smoke]
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import format_table, update_bench_json  # noqa: E402
from repro.backend.cache import clear_caches  # noqa: E402
from repro.dsl import Storage  # noqa: E402
from repro.observe import collect  # noqa: E402
from repro.parallel import shutdown_pools  # noqa: E402
from repro.problems import kde, knn  # noqa: E402
from repro.trees import build_tree  # noqa: E402

OUT_JSON = "BENCH_incremental.json"
FIGURE = "table4-incremental"

FULL_N = 200_000
SMOKE_N = 5_000
FRACTIONS = (0.001, 0.01, 0.1)
LEAF_SIZE = 32

#: refit must beat a full rebuild by this factor at the 1% fraction
#: (geomean over the knn + KDE configs), enforced on full runs only.
GATE_SPEEDUP = 3.0
GATE_FRACTION = 0.01


def _make_data(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-40.0, 40.0, size=(8, 3))
    counts = np.full(8, n // 8)
    counts[: n % 8] += 1
    parts = [c + rng.standard_normal((m, 3))
             for c, m in zip(centers, counts)]
    R = np.ascontiguousarray(np.concatenate(parts))
    nq = max(64, n // 50)
    Q = np.ascontiguousarray(centers[0] + rng.standard_normal((nq, 3)))
    return Q, R, rng


def _mutation(rng, R: np.ndarray, frac: float):
    """A drift-style update batch: f·n points nudged within their
    neighbourhood (the live-data case refit exists for)."""
    m = max(1, int(len(R) * frac))
    idx = rng.choice(len(R), m, replace=False)
    pts = R[idx] + 0.05 * rng.standard_normal((m, 3))
    return idx, pts


def _time_refit(tree, idx, pts, repeats: int):
    """Best-of seconds for snapshot + update_batch (each repeat starts
    from a fresh snapshot, exactly like the cache's refit path)."""
    best, counters = float("inf"), {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        with collect() as c:
            clone = tree.snapshot()
            clone.update_batch(idx, pts)
        best = min(best, time.perf_counter() - t0)
        counters = c.as_dict()
    return best, clone, counters


def _time_rebuild(kind, mutated, weights, repeats: int):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fresh = build_tree(kind, mutated, leaf_size=LEAF_SIZE,
                           weights=weights)
        best = min(best, time.perf_counter() - t0)
    return best, fresh


def _e2e_check(Q, R, w, rng, frac: float) -> dict:
    """Mutate through the Storage API and verify the execution caches
    serve the refit tree with results matching a from-scratch run."""
    clear_caches()
    qs = Storage(Q, name="query")
    rs = Storage(R.copy(), name="reference",
                 weights=None if w is None else w.copy())
    knn(qs, rs, k=5)
    kde(qs, rs, bandwidth=0.5, tau=0.0)
    idx, pts = _mutation(rng, rs.data, frac)
    rs.update_batch(idx, pts)
    with collect() as c:
        vk, _ = knn(qs, rs, k=5)
        vd = kde(qs, rs, bandwidth=0.5, tau=0.0)
    refits = c.get("cache.tree.refit")
    fresh = Storage(rs.data.copy(),
                    weights=None if w is None else rs.weights.copy())
    vk2, _ = knn(qs, fresh, k=5, cache=False)
    vd2 = kde(qs, fresh, bandwidth=0.5, tau=0.0, cache=False)
    return {
        "cache_refits": refits,
        "knn_bitwise": bool(np.array_equal(np.asarray(vk),
                                           np.asarray(vk2))),
        "kde_close": bool(np.allclose(vd, vd2, rtol=1e-12, atol=0.0)),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny size / single repeat / no gate (CI smoke)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timed repeats per configuration (best-of)")
    args = ap.parse_args(argv)
    repeats = args.repeats or (1 if args.smoke else 3)
    n = SMOKE_N if args.smoke else FULL_N

    Q, R, rng = _make_data(n)
    w = np.random.default_rng(7).uniform(0.5, 2.0, n)
    configs = [("knn", None), ("kde", w)]

    rows = []
    for label, weights in configs:
        tree = build_tree("kd", R, leaf_size=LEAF_SIZE, weights=weights)
        for frac in FRACTIONS:
            idx, pts = _mutation(rng, R, frac)
            refit_s, clone, counters = _time_refit(tree, idx, pts, repeats)
            mutated = R.copy()
            mutated[idx] = pts
            rebuild_s, fresh = _time_rebuild("kd", mutated, weights,
                                             repeats)
            assert clone.n == fresh.n
            speedup = rebuild_s / refit_s if refit_s > 0 else float("inf")
            check = _e2e_check(Q, R, weights, rng, frac)
            rows.append({
                "config": label, "n": n, "fraction": frac,
                "updated": len(idx),
                "refit_s": refit_s, "rebuild_s": rebuild_s,
                "speedup": round(speedup, 3),
                "refit_nodes": counters.get("tree.refit.nodes", 0),
                "subtree_rebuilds": counters.get("tree.rebuild.subtree", 0),
                **check,
            })
            print(f"  {label:>4} N={n:>9,} f={frac:>6.1%} "
                  f"refit {refit_s * 1e3:8.2f}ms "
                  f"rebuild {rebuild_s * 1e3:8.2f}ms ({speedup:6.1f}x) "
                  f"knn_bitwise={check['knn_bitwise']} "
                  f"kde_close={check['kde_close']}", file=sys.stderr)

    gate_rows = [r for r in rows if r["fraction"] == GATE_FRACTION]
    geomean = math.exp(sum(math.log(max(r["speedup"], 1e-12))
                           for r in gate_rows) / len(gate_rows))
    enforced = not args.smoke

    path = update_bench_json(
        OUT_JSON, FIGURE, rows,
        meta={"smoke": args.smoke, "repeats": repeats,
              "leaf_size": LEAF_SIZE,
              "gate": {"speedup": GATE_SPEEDUP,
                       "at_fraction": GATE_FRACTION,
                       "geomean": round(geomean, 3),
                       "enforced": enforced}})
    print(f"[written to {path}]", file=sys.stderr)

    print(format_table(
        "Incremental tree refit vs full rebuild",
        ["config", "fraction", "refit_ms", "rebuild_ms", "speedup"],
        [[r["config"], f"{r['fraction']:.1%}",
          round(r["refit_s"] * 1e3, 2), round(r["rebuild_s"] * 1e3, 2),
          r["speedup"]] for r in rows],
    ), file=sys.stderr)

    shutdown_pools()

    bad = [r for r in rows
           if not (r["knn_bitwise"] and r["kde_close"]
                   and r["cache_refits"] >= 1)]
    if bad:
        print(f"[FAIL] correctness check failed for "
              f"{[(r['config'], r['fraction']) for r in bad]}",
              file=sys.stderr)
        return 1
    if enforced:
        if geomean < GATE_SPEEDUP:
            print(f"[FAIL] refit-over-rebuild geomean at "
                  f"f={GATE_FRACTION:.0%}: {geomean:.3f} "
                  f"(need >= {GATE_SPEEDUP})", file=sys.stderr)
            return 1
        print(f"[gate passed: geomean {geomean:.3f} >= {GATE_SPEEDUP}]",
              file=sys.stderr)
    else:
        print("[gate skipped: smoke run]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
