"""Micro-benchmark: scalar stack engine vs batched frontier engine.

Runs the nine evaluated problems at small/medium N under both traversal
engines (``traversal='stack'`` and ``traversal='batched'``) and writes a
machine-readable ``benchmarks/results/BENCH_traversal.json`` so the perf
trajectory stays comparable across PRs.  The compile and tree caches are
warmed once per configuration before timing, so the measured wall clock
isolates *traversal* cost — exactly the plane the batched engine
vectorizes (see docs/performance.md).

Problems whose bound rules tighten mid-traversal (k-NN, Hausdorff,
naive Bayes' MIN reduction) route ``traversal='batched'`` to the
epoch-based bound-aware engine (``bounded-batched``); their rows
therefore measure the bounded engine's speedup over the stack engine
(``bench_bound_traversal.py`` holds the dedicated Table IV gate).  A
routing assertion runs before timing so an engine-selection regression
fails the benchmark rather than silently timing the wrong engine.

The ``table4`` section re-times the KDE and range-search Table IV
configurations (same datasets, bandwidths and radii as
``bench_table4_portal_vs_expert.py``) and records the stack/batched
speedup — the acceptance gate is a ratio > 1 on every row.

Usage::

    PYTHONPATH=src python benchmarks/bench_micro_traversal.py [--smoke]
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import dataset, format_table, split_qr  # noqa: E402
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage  # noqa: E402
from repro.observe import collect  # noqa: E402
from repro.problems import (  # noqa: E402
    barnes_hut_potential, dbscan, directed_hausdorff, kde, knn,
    naive_bayes_fit, range_count, range_search, two_point_correlation,
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_traversal.json")

ENGINES = ("stack", "batched")
#: Table IV datasets re-timed for the acceptance gate.
TABLE4_DATASETS = ["Census", "Yahoo!", "IHEPC", "HIGGS", "KDD"]
LEAF = 16


@functools.lru_cache(maxsize=None)
def _cloud(n: int, d: int = 3, seed: int = 0) -> np.ndarray:
    """Uniform point cloud; cached so repeated runs share fingerprints
    (and therefore tree/compile cache entries)."""
    rng = np.random.default_rng(1000 + seed)
    X = np.ascontiguousarray(rng.uniform(0.0, 4.0, size=(n, d)))
    X.setflags(write=False)
    return X


def _qr(n: int) -> tuple[np.ndarray, np.ndarray]:
    X = _cloud(2 * n)
    return np.ascontiguousarray(X[:n]), np.ascontiguousarray(X[n:])


@functools.lru_cache(maxsize=None)
def _nb_model(n: int):
    rng = np.random.default_rng(7)
    centers = np.array([[1.0, 1.0, 1.0], [3.0, 3.0, 3.0]])
    y = rng.integers(0, 2, size=n)
    X = centers[y] + rng.normal(scale=0.6, size=(n, 3))
    return naive_bayes_fit(np.ascontiguousarray(X), y)


def _run_kde(n, eng):
    Q, R = _qr(n)
    kde(Q, R, bandwidth=0.35, tau=1e-3, leaf_size=LEAF, traversal=eng)


def _run_range_search(n, eng):
    Q, R = _qr(n)
    range_search(Q, R, h=0.45, leaf_size=LEAF, traversal=eng)


def _run_range_count(n, eng):
    Q, R = _qr(n)
    range_count(Q, R, h=0.45, leaf_size=LEAF, traversal=eng)


def _run_knn(n, eng):
    Q, R = _qr(n)
    knn(Q, R, k=5, leaf_size=LEAF, traversal=eng)


def _run_hausdorff(n, eng):
    A, B = _qr(n)
    directed_hausdorff(A, B, leaf_size=LEAF, traversal=eng)


def _run_two_point(n, eng):
    two_point_correlation(_cloud(n), 0.45, leaf_size=LEAF, traversal=eng)


def _run_barnes_hut(n, eng):
    X = _cloud(n, seed=3)
    barnes_hut_potential(X, np.ones(n), theta=0.6, leaf_size=LEAF,
                         traversal=eng)


def _run_dbscan(n, eng):
    dbscan(_cloud(n, seed=5), eps=0.3, min_samples=5, leaf_size=LEAF,
           traversal=eng)


def _run_naive_bayes(n, eng):
    model = _nb_model(n)
    Q, _ = _qr(n)
    model.predict(Q, traversal=eng)


#: name -> (runner, [small N, medium N])
PROBLEMS = {
    "kde": (_run_kde, [800, 2400]),
    "range_search": (_run_range_search, [800, 2400]),
    "range_count": (_run_range_count, [800, 2400]),
    "two_point": (_run_two_point, [800, 2400]),
    "barnes_hut": (_run_barnes_hut, [800, 2400]),
    "dbscan": (_run_dbscan, [600, 1500]),
    "knn": (_run_knn, [800, 2400]),
    "hausdorff": (_run_hausdorff, [800, 2400]),
    "naive_bayes": (_run_naive_bayes, [800, 2400]),
}


def check_routing() -> None:
    """Assert the requested-traversal -> resolved-engine table before
    timing anything: a stateless problem (KDE) must resolve batched
    requests to the frontier engine, a bound-rule problem (k-NN) must
    resolve them to the bounded epoch engine, and the stack override
    must always win."""
    rng = np.random.default_rng(0)
    Q = np.ascontiguousarray(rng.uniform(0.0, 2.0, size=(64, 3)))

    def _kde_engine(traversal):
        expr = PortalExpr("routing-kde")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer(PortalOp.SUM, Storage(Q, name="reference"),
                      PortalFunc.GAUSSIAN, bandwidth=0.5)
        expr.execute(traversal=traversal, exclude_self=False)
        return expr.stats()["traversal_engine"]

    def _knn_engine(traversal):
        expr = PortalExpr("routing-knn")
        expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        expr.addLayer((PortalOp.KARGMIN, 3), Storage(Q, name="reference"),
                      PortalFunc.EUCLIDEAN)
        expr.execute(traversal=traversal)
        return expr.stats()["traversal_engine"]

    expected = [
        (_kde_engine, "batched", "batched"),
        (_kde_engine, "bounded-batched", "batched"),
        (_kde_engine, "stack", "stack"),
        (_knn_engine, "batched", "bounded-batched"),
        (_knn_engine, "bounded-batched", "bounded-batched"),
        (_knn_engine, "stack", "stack"),
    ]
    for probe, requested, want in expected:
        got = probe(requested)
        assert got == want, (
            f"routing regression: {probe.__name__} requested={requested!r} "
            f"resolved to {got!r}, expected {want!r}"
        )
    print("[routing] requested->resolved engine table verified",
          file=sys.stderr)


def measure(run, n: int, engine: str, repeats: int) -> dict:
    """Best-of wall clock after a cache-warming call, plus the traversal
    counters from the fastest repeat."""
    run(n, engine)  # warm: populates compile + tree caches
    best, counts = float("inf"), {}
    for _ in range(repeats):
        with collect() as counters:
            t0 = time.perf_counter()
            run(n, engine)
            dt = time.perf_counter() - t0
        if dt < best:
            best, counts = dt, counters.as_dict()
    visited = int(counts.get("traversal.visited", 0))
    return {
        "engine": engine,
        "wall_s": best,
        "visited": visited,
        "visited_per_s": visited / best if best > 0 else 0.0,
        "prune_rate": (counts.get("traversal.pruned", 0) / visited
                       if visited else 0.0),
        "approx_rate": (counts.get("traversal.approximated", 0) / visited
                        if visited else 0.0),
    }


def run_micro(sizes_scale: float, repeats: int) -> tuple[list, dict]:
    rows, speedups = [], {}
    for name, (run, sizes) in PROBLEMS.items():
        for n in sizes:
            n = max(200, int(n * sizes_scale))
            per_engine = {}
            for engine in ENGINES:
                r = measure(run, n, engine, repeats)
                r.update(problem=name, n=n)
                rows.append(r)
                per_engine[engine] = r["wall_s"]
            ratio = per_engine["stack"] / per_engine["batched"]
            speedups[f"{name}@{n}"] = round(ratio, 3)
            print(f"  {name:>12} n={n:<5} stack={per_engine['stack']:.4f}s "
                  f"batched={per_engine['batched']:.4f}s  x{ratio:.2f}",
                  file=sys.stderr)
    return rows, speedups


def run_table4(smoke: bool, repeats: int) -> list:
    """KDE and range-search at the Table IV harness configurations."""
    names = TABLE4_DATASETS[:1] if smoke else TABLE4_DATASETS
    rows = []
    for dset in names:
        X = dataset(dset, 600) if smoke else dataset(dset)
        scale = float(np.median(X.std(axis=0))) + 1e-9
        Q, R = split_qr(X)
        configs = [
            ("kde", lambda _n, eng, Q=Q, R=R, bw=scale:
                kde(Q, R, bandwidth=bw, tau=1e-3, traversal=eng)),
            ("range_count", lambda _n, eng, Q=Q, R=R, h=1.5 * scale:
                range_count(Q, R, h=h, traversal=eng)),
        ]
        for prob, run in configs:
            stack = measure(run, len(Q), "stack", repeats)
            batched = measure(run, len(Q), "batched", repeats)
            ratio = stack["wall_s"] / batched["wall_s"]
            rows.append({
                "problem": prob, "dataset": dset, "n": len(X),
                "stack_wall_s": stack["wall_s"],
                "batched_wall_s": batched["wall_s"],
                "speedup": round(ratio, 3),
            })
            print(f"  table4 {prob:>12} {dset:<10} "
                  f"stack={stack['wall_s']:.4f}s "
                  f"batched={batched['wall_s']:.4f}s  x{ratio:.2f}",
                  file=sys.stderr)
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sizes / single repeat (CI smoke run)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timed repeats per configuration (best-of)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help="output JSON path")
    args = ap.parse_args(argv)

    repeats = args.repeats or (1 if args.smoke else 3)
    scale = 0.4 if args.smoke else 1.0

    check_routing()
    print("[micro] stack vs batched across the nine problems",
          file=sys.stderr)
    rows, speedups = run_micro(scale, repeats)
    print("[table4] KDE / range-search acceptance configurations",
          file=sys.stderr)
    table4 = run_table4(args.smoke, repeats)

    payload = {
        "meta": {"smoke": args.smoke, "repeats": repeats,
                 "engines": list(ENGINES)},
        "rows": rows,
        "speedups": speedups,
        "table4": table4,
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"[written to {args.out}]", file=sys.stderr)

    table = format_table(
        "Traversal micro-benchmark — stack / batched speedup",
        ["config", "speedup"],
        [[k, v] for k, v in speedups.items()]
        + [[f"table4 {r['problem']} {r['dataset']}", r["speedup"]]
           for r in table4],
    )
    print(table, file=sys.stderr)

    # Acceptance gate (ISSUE 2): batched must beat stack on the KDE and
    # range-search Table IV configurations.
    failing = [r for r in table4 if r["speedup"] <= 1.0]
    if failing:
        print(f"[FAIL] batched slower on: "
              f"{[(r['problem'], r['dataset']) for r in failing]}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
