"""Native (Numba) codegen backend vs the NumPy reference backend.

Times the Table IV scalar-kernel configurations — k-NN (``KARGMIN``
sorted filter), directed Hausdorff (``MAX∘MIN`` with bounds) and KDE
(``SUM`` of a Gaussian kernel) over the harness datasets — once under
``codegen='numpy'`` and once under ``codegen='native'``, and writes
``benchmarks/results/BENCH_native.json``.

These are the configurations whose runtime is dominated by the per-pair
leaf kernel, exactly what the native backend lowers to fused
``@njit`` loop nests; node-level decision kernels are identical between
the backends, so any difference is the base case.

The acceptance gate (ISSUE 6) is asserted **only when numba is
importable**: the native backend's geometric-mean speedup across all
rows must be at least ``MIN_SPEEDUP`` (2x).  Without numba, ``native``
resolves to the NumPy artifact (the graceful-fallback path); the run
still verifies outputs and routing and records the fallback in the
metadata, but no speedup claim is made — Python-simulated JIT
(``REPRO_NATIVE_JIT=python``) is a correctness harness, not a
performance mode, and is force-disabled here.

Usage::

    PYTHONPATH=src python benchmarks/bench_native_backend.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import dataset, format_table, split_qr  # noqa: E402
from repro.backend.cache import clear_caches  # noqa: E402
from repro.backend.native import native_mode  # noqa: E402
from repro.observe import collect  # noqa: E402
from repro.problems import directed_hausdorff, kde, knn  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_native.json")

#: Table IV datasets (paper section V) at the harness sizes.
DATASETS = ["Census", "Yahoo!", "IHEPC", "HIGGS", "KDD"]
K = 5
#: Acceptance gate: geometric-mean native-over-numpy speedup on the
#: scalar-kernel configs, asserted only when numba is importable.
MIN_SPEEDUP = 2.0


def _time_backend(run, repeats: int) -> tuple[float, object, dict]:
    """Best-of wall clock after a warming call (the warm call also pays
    the native backend's one-off JIT compile, reported separately via
    the ``backend.native.compile_s`` counter)."""
    with collect() as warm_counters:
        run()
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = run()
        dt = time.perf_counter() - t0
        if dt < best:
            best, out = dt, res
    return best, out, warm_counters.as_dict()


def _outputs_equal(a, b) -> bool:
    """Indices exactly; values to float tolerance.  The native scalar
    loops reduce sequentially where NumPy reduces pairwise, and in the
    row-GEMM layout (d > 4) the NumPy side's norm-expansion GEMM differs
    by ulps (the BENCH_bound caveat) — so SUM-accumulated values are
    compared at 1e-9 relative rather than bitwise."""
    if isinstance(a, tuple):
        return all(_outputs_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray):
        if np.issubdtype(a.dtype, np.floating):
            return bool(np.allclose(a, b, rtol=1e-9, atol=1e-12))
        return bool(np.array_equal(a, b))
    return bool(np.isclose(a, b, rtol=1e-9))


def run_bench(smoke: bool, repeats: int) -> list[dict]:
    rows = []
    names = DATASETS[:2] if smoke else DATASETS
    for dset in names:
        X = dataset(dset, 700) if smoke else dataset(dset)
        Q, R = split_qr(X)
        configs = [
            ("knn", lambda cg, Q=Q, R=R: knn(Q, R, k=K, codegen=cg)),
            ("hausdorff", lambda cg, Q=Q, R=R:
                directed_hausdorff(Q, R, codegen=cg)),
            ("kde", lambda cg, Q=Q, R=R:
                kde(Q, R, bandwidth=0.4, tau=1e-3, codegen=cg)),
        ]
        for prob, run in configs:
            clear_caches()
            t_np, out_np, _ = _time_backend(lambda: run("numpy"), repeats)
            clear_caches()
            t_nat, out_nat, warm = _time_backend(
                lambda: run("native"), repeats)
            assert _outputs_equal(out_np, out_nat), (
                f"native backend changed {prob} output on {dset}"
            )
            ratio = t_np / t_nat
            rows.append({
                "problem": prob,
                "dataset": dset,
                "n": len(X),
                "d": X.shape[1],
                "k": K if prob == "knn" else None,
                "numpy_wall_s": t_np,
                "native_wall_s": t_nat,
                "speedup": round(ratio, 3),
                "native_jit_compile_s": round(
                    warm.get("backend.native.compile_s", 0.0), 4),
                "native_fallbacks": int(
                    warm.get("backend.native.fallback", 0)),
            })
            print(f"  {prob:>10} {dset:<10} numpy={t_np:.4f}s "
                  f"native={t_nat:.4f}s  x{ratio:.2f}", file=sys.stderr)
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sizes / single repeat (CI smoke run); the "
                         "speedup gate is skipped")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timed repeats per configuration (best-of)")
    ap.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    args = ap.parse_args(argv)

    # Simulated JIT is a correctness harness, not a performance mode:
    # never let it masquerade as 'native' in a benchmark.
    if os.environ.get("REPRO_NATIVE_JIT", "").strip().lower() == "python":
        del os.environ["REPRO_NATIVE_JIT"]
    mode = native_mode()  # 'numba' or None here

    repeats = args.repeats or (1 if args.smoke else 3)
    print(f"[native] numpy vs native codegen on the Table IV "
          f"scalar-kernel configurations (jit={mode or 'unavailable'})",
          file=sys.stderr)
    rows = run_bench(args.smoke, repeats)

    speedups = [r["speedup"] for r in rows]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    payload = {
        "meta": {"smoke": args.smoke, "repeats": repeats, "k": K,
                 "native_jit": mode or "unavailable (numpy fallback)",
                 "min_speedup": MIN_SPEEDUP,
                 "gate_asserted": mode == "numba" and not args.smoke,
                 "speedup_geomean": round(geomean, 3)},
        "rows": rows,
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"[written to {args.out}]", file=sys.stderr)

    print(format_table(
        "Native codegen backend — numpy / native speedup",
        ["config", "speedup"],
        [[f"{r['problem']} {r['dataset']}", r["speedup"]] for r in rows]
        + [["geomean", round(geomean, 3)]],
    ), file=sys.stderr)

    if mode != "numba":
        print("[SKIP] numba not importable: native resolved to the NumPy "
              "fallback; speedup gate not asserted", file=sys.stderr)
        return 0
    if args.smoke:
        return 0
    # Acceptance gate (ISSUE 6): >= 2x geomean with a real JIT.
    if geomean < MIN_SPEEDUP:
        print(f"[FAIL] native speedup geomean x{geomean:.2f} "
              f"< gate x{MIN_SPEEDUP}", file=sys.stderr)
        return 1
    print(f"[PASS] native speedup geomean x{geomean:.2f} "
          f">= x{MIN_SPEEDUP}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
