"""Parallel scaling benchmark: thread pool vs process pool.

Times the Table IV KDE / range-search / k-NN configurations under both
pool backends (``executor='thread'`` and ``executor='process'``) across
worker counts, for the stack and batched traversal engines, and writes a
machine-readable ``benchmarks/results/BENCH_parallel.json``.

What the numbers should show (paper section IV-F): the scalar stack
engine holds the GIL between kernel calls, so adding *threads* cannot
scale it — the process executor runs the same task decomposition over
shared-memory trees and does scale.  The batched engine spends its time
inside NumPy kernels that release the GIL, so threads are already
effective there (and skip pickling/merge overhead).

The acceptance gate (ISSUE 3) — process ≥ 1.5× over thread at 4+
workers on a stack-engine configuration — is only meaningful on a host
with ≥ 4 usable cores; on smaller hosts (this is affinity-aware, see
``default_workers``) the run records the overheads honestly and the
gate is skipped, mirroring the parallel-ablation precedent.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import dataset, format_table, split_qr  # noqa: E402
from repro.backend.cache import clear_caches  # noqa: E402
from repro.parallel import default_workers, shutdown_pools  # noqa: E402
from repro.problems import kde, knn, range_count  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_parallel.json")

EXECUTORS = ("thread", "process")
#: process must beat thread by this factor at >= GATE_WORKERS workers on
#: a stack-engine config (enforced only on hosts with that many cores).
GATE_SPEEDUP = 1.5
GATE_WORKERS = 4


def _configs(smoke: bool):
    """(label, engine, callable) per Table IV configuration.  k-NN
    normally routes to the bound-aware batched engine now, so the
    GIL-bound config pins ``traversal="stack"`` explicitly."""
    dset = "Yahoo!"
    X = dataset(dset, 700) if smoke else dataset(dset)
    scale = float(np.median(X.std(axis=0))) + 1e-9
    Q, R = split_qr(X)
    out = []
    for engine in ("stack", "batched"):
        out.append((f"kde/{engine}", dset, engine,
                    lambda o, Q=Q, R=R, bw=scale, e=engine:
                        kde(Q, R, bandwidth=bw, tau=1e-3, traversal=e, **o)))
        out.append((f"range_count/{engine}", dset, engine,
                    lambda o, Q=Q, R=R, h=1.5 * scale, e=engine:
                        range_count(Q, R, h=h, traversal=e, **o)))
    out.append(("knn/stack", dset, "stack",
                lambda o, Q=Q, R=R: knn(Q, R, k=5, traversal="stack", **o)))
    return out


def _measure(run, options: dict, repeats: int) -> float:
    run(options)  # warm: compile + tree caches, pools, shm publication
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run(options)
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sizes / single repeat (CI smoke run)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timed repeats per configuration (best-of)")
    ap.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    args = ap.parse_args(argv)
    repeats = args.repeats or (1 if args.smoke else 3)

    cores = default_workers()
    worker_counts = sorted({1, 2, GATE_WORKERS, cores})
    clear_caches()

    rows = []
    for label, dset, engine, run in _configs(args.smoke):
        serial = _measure(run, {}, repeats)
        rows.append({"config": label, "dataset": dset, "engine": engine,
                     "executor": "serial", "workers": 0, "wall_s": serial})
        for workers in worker_counts:
            for executor in EXECUTORS:
                wall = _measure(
                    run,
                    {"parallel": True, "workers": workers,
                     "executor": executor},
                    repeats,
                )
                rows.append({"config": label, "dataset": dset,
                             "engine": engine, "executor": executor,
                             "workers": workers, "wall_s": wall})
                print(f"  {label:>20} {executor:>7} w={workers} "
                      f"{wall:.4f}s (serial {serial:.4f}s)",
                      file=sys.stderr)

    # process-over-thread ratio per (config, workers)
    walls = {(r["config"], r["executor"], r["workers"]): r["wall_s"]
             for r in rows}
    speedups = {}
    for r in rows:
        if r["executor"] != "thread":
            continue
        key = (r["config"], "process", r["workers"])
        if key in walls:
            speedups[f"{r['config']}@{r['workers']}w"] = round(
                r["wall_s"] / walls[key], 3)

    payload = {
        "meta": {"smoke": args.smoke, "repeats": repeats,
                 "host_workers": cores, "worker_counts": worker_counts,
                 "gate": {"speedup": GATE_SPEEDUP,
                          "workers": GATE_WORKERS,
                          "enforced": cores >= GATE_WORKERS}},
        "rows": rows,
        "process_over_thread": speedups,
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"[written to {args.out}]", file=sys.stderr)

    print(format_table(
        "Parallel scaling — process-over-thread speedup",
        ["config", "speedup"],
        [[k, v] for k, v in sorted(speedups.items())]
        + [[f"(host cores: {cores})", ""]],
    ), file=sys.stderr)

    shutdown_pools()

    # Acceptance gate (ISSUE 3): on a >= 4-core host, the process
    # executor must beat threads >= 1.5x at 4+ workers on at least one
    # stack-engine (GIL-bound) configuration.
    if cores >= GATE_WORKERS:
        stack_configs = {r["config"] for r in rows if r["engine"] == "stack"}
        candidates = [
            v for k, v in speedups.items()
            if k.rsplit("@", 1)[0] in stack_configs
            and int(k.rsplit("@", 1)[1].rstrip("w")) >= GATE_WORKERS
        ]
        if not candidates or max(candidates) < GATE_SPEEDUP:
            print(f"[FAIL] process-over-thread at {GATE_WORKERS}+ workers "
                  f"on stack configs: {candidates} (need >= {GATE_SPEEDUP})",
                  file=sys.stderr)
            return 1
    else:
        print(f"[gate skipped: host has {cores} usable core(s); "
              f"needs >= {GATE_WORKERS}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
