"""Self-tuning policy benchmark (the nine Table IV problems).

For each problem, three execution strategies are timed at the same
problem size:

* **hard-coded auto** — the static defaults, exactly what ``execute()``
  picks with no options;
* **best-static** — exhaustive best-of over the pruned joint candidate
  grid {engine × executor × codegen × leaf size × shards} (the oracle
  the measured search tries to approximate);
* **tuned-auto** — one budgeted policy search
  (:func:`repro.policy.ensure_policy`) followed by ``policy="auto"``
  runs that hit the persisted entry.

Rows land in ``benchmarks/results/BENCH_policy.json``.  The acceptance
gates — tuned-auto within 10% of best-static on every problem, and
strictly faster than hard-coded auto on at least 3 of the 9 — are only
meaningful where the candidate axes actually differ (multi-core hosts
widen the executor/shard axes), so like the parallel and shard
benchmarks they are enforced on >= 4-core full runs and recorded
honestly everywhere else.

Usage::

    PYTHONPATH=src python benchmarks/bench_policy.py [--smoke]
"""

from __future__ import annotations

import argparse
import itertools
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import format_table, update_bench_json  # noqa: E402
from repro.backend.cache import clear_caches  # noqa: E402
from repro.dsl import (  # noqa: E402
    PortalExpr, PortalFunc, PortalOp, Storage, Var, indicator, pow, sqrt,
)
from repro.parallel import default_workers, shutdown_pools  # noqa: E402
from repro.policy import ensure_policy  # noqa: E402
from repro.policy.search import Candidate, enumerate_axes  # noqa: E402

OUT_JSON = "BENCH_policy.json"
FIGURE = "table4-policy"

FULL_NQ, FULL_NR = 2_000, 40_000
SMOKE_NQ, SMOKE_NR = 300, 3_000

#: tuned-auto must stay within this factor of the best static choice
GATE_STATIC_FACTOR = 1.10
#: ... and strictly beat hard-coded auto on at least this many problems
GATE_BEAT_AUTO = 3
GATE_WORKERS = 4

PROBLEMS = ["knn", "nearest", "kde", "naive_bayes", "range_search",
            "range_count", "hausdorff", "em", "barnes_hut"]


def make_problem(name: str, Q: np.ndarray, R: np.ndarray):
    """``(build, base_opts)``: a fresh-expression factory plus the
    options every strategy shares (the problem definition, not tuning
    knobs)."""
    q, r = Var("q"), Var("r")

    def two_layer(outer, inner, func, **params):
        e = PortalExpr(name)
        e.addLayer(outer, Storage(Q, name="query"))
        e.addLayer(inner, Storage(R, name="reference"), func, **params)
        return e

    if name == "knn":
        return (lambda: two_layer(PortalOp.FORALL, (PortalOp.KARGMIN, 5),
                                  PortalFunc.EUCLIDEAN)), {}
    if name == "nearest":
        return (lambda: two_layer(PortalOp.FORALL, PortalOp.MIN,
                                  PortalFunc.EUCLIDEAN)), {}
    if name == "kde":
        return (lambda: two_layer(PortalOp.FORALL, PortalOp.SUM,
                                  PortalFunc.GAUSSIAN, bandwidth=0.5)), \
            {"tau": 1e-3}
    if name == "naive_bayes":
        return (lambda: two_layer(PortalOp.FORALL, PortalOp.SUM,
                                  PortalFunc.GAUSSIAN, bandwidth=1.1)), \
            {"tau": 1e-3}
    if name == "range_search":
        def build():
            e = PortalExpr(name)
            e.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
            e.addLayer(PortalOp.UNIONARG, r, Storage(R, name="reference"),
                       indicator(sqrt(pow(q - r, 2)) < 0.3))
            return e
        return build, {}
    if name == "range_count":
        def build():
            e = PortalExpr(name)
            e.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
            e.addLayer(PortalOp.SUM, r, Storage(R, name="reference"),
                       indicator(sqrt(pow(q - r, 2)) < 0.3))
            return e
        return build, {}
    if name == "hausdorff":
        return (lambda: two_layer(PortalOp.MAX, PortalOp.MIN,
                                  PortalFunc.EUCLIDEAN)), {}
    if name == "em":
        cov = np.diag([1.0, 2.0, 0.5])
        return (lambda: two_layer(PortalOp.FORALL, PortalOp.MIN,
                                  PortalFunc.MAHALANOBIS,
                                  covariance=cov)), {}
    if name == "barnes_hut":
        def build():
            e = PortalExpr(name)
            e.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
            e.addLayer(PortalOp.SUM, r, Storage(R, name="reference"),
                       pow(pow(q - r, 2) + 0.25, -0.5))
            return e
        return build, {"tau": 1e-3}
    raise AssertionError(f"unknown problem {name}")


def _make_data(nq: int, nr: int, seed: int = 0):
    """Clustered 3-D data (trees have structure to prune against)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(8, 3))
    counts = np.full(8, nr // 8)
    counts[: nr % 8] += 1
    parts = [c + rng.standard_normal((m, 3))
             for c, m in zip(centers, counts)]
    R = np.ascontiguousarray(np.concatenate(parts))
    Q = np.ascontiguousarray(
        centers[rng.integers(0, 8, size=nq)]
        + rng.standard_normal((nq, 3)))
    return Q, R


def _measure(build, options: dict, repeats: int) -> float:
    build().execute(**options)  # warm: compile + tree caches, pools
    best = float("inf")
    for _ in range(repeats):
        expr = build()
        t0 = time.perf_counter()
        expr.execute(**options)
        best = min(best, time.perf_counter() - t0)
    return best


def _static_grid(nq: int, nr: int, bound_rule: bool, workers: int):
    """The full cross product of the pruned per-axis candidates — the
    oracle sweep the coordinate-descent search economises on."""
    axes = enumerate_axes(nq, nr, bound_rule=bound_rule, workers=workers)
    keys = list(axes)
    for values in itertools.product(*(axes[k] for k in keys)):
        yield Candidate(**dict(zip(keys, values)))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sizes / single repeat / no gate (CI smoke)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timed repeats per strategy (best-of)")
    args = ap.parse_args(argv)
    repeats = args.repeats or (1 if args.smoke else 2)
    nq, nr = (SMOKE_NQ, SMOKE_NR) if args.smoke else (FULL_NQ, FULL_NR)

    cores = default_workers()
    Q, R = _make_data(nq, nr)

    # The benchmark tunes into its own throwaway policy file — it must
    # never read or pollute the user's persistent cache.
    tmp = tempfile.NamedTemporaryFile(prefix="bench-policy-",
                                      suffix=".json", delete=False)
    tmp.close()
    os.environ["REPRO_POLICY_PATH"] = tmp.name

    rows = []
    for name in PROBLEMS:
        build, base = make_problem(name, Q, R)
        probe = build()
        probe.validate()
        from repro.policy import _bound_rule  # noqa: E402  (same heuristic)

        bound = _bound_rule(probe.layers)

        clear_caches()
        auto_s = _measure(build, dict(base), repeats)

        best_static_s, best_static = float("inf"), None
        for cand in _static_grid(nq, nr, bound, cores):
            clear_caches()
            t = _measure(build, {**base, **cand.options()}, repeats)
            if t < best_static_s:
                best_static_s, best_static = t, cand.label()

        clear_caches()
        t0 = time.perf_counter()
        key, entry, _ = ensure_policy(build().layers, base, force=True)
        search_s = time.perf_counter() - t0
        clear_caches()
        tuned_s = _measure(build, dict(base, policy="auto"), repeats)

        rows.append({
            "problem": name, "nq": nq, "nr": nr, "workers": cores,
            "auto_s": auto_s, "best_static_s": best_static_s,
            "best_static": best_static, "tuned_s": tuned_s,
            "tuned": entry.config, "search_s": round(search_s, 4),
            "tuned_vs_static": round(tuned_s / best_static_s, 3),
            "tuned_vs_auto": round(tuned_s / auto_s, 3),
        })
        print(f"  {name:>12} auto {auto_s:.4f}s  best-static "
              f"{best_static_s:.4f}s ({best_static})  tuned "
              f"{tuned_s:.4f}s", file=sys.stderr)

    within = [r for r in rows
              if r["tuned_s"] <= r["best_static_s"] * GATE_STATIC_FACTOR]
    beat_auto = [r for r in rows if r["tuned_s"] < r["auto_s"]]
    enforced = cores >= GATE_WORKERS and not args.smoke

    path = update_bench_json(
        OUT_JSON, FIGURE, rows,
        meta={"smoke": args.smoke, "repeats": repeats,
              "host_workers": cores,
              "gate": {"static_factor": GATE_STATIC_FACTOR,
                       "beat_auto_min": GATE_BEAT_AUTO,
                       "workers": GATE_WORKERS,
                       "within_static": len(within),
                       "beat_auto": len(beat_auto),
                       "problems": len(rows), "enforced": enforced}})
    print(f"[written to {path}]", file=sys.stderr)

    print(format_table(
        "Self-tuning policy vs hard-coded auto and the static oracle",
        ["problem", "auto (s)", "best-static (s)", "tuned (s)",
         "vs static", "vs auto"],
        [[r["problem"], f"{r['auto_s']:.4f}", f"{r['best_static_s']:.4f}",
          f"{r['tuned_s']:.4f}", r["tuned_vs_static"], r["tuned_vs_auto"]]
         for r in rows]
        + [[f"(host cores: {cores})", "", "", "", "", ""]],
    ), file=sys.stderr)

    shutdown_pools()
    os.unlink(tmp.name)

    if enforced:
        failures = []
        if len(within) < len(rows):
            bad = [r["problem"] for r in rows if r not in within]
            failures.append(
                f"tuned-auto misses the {GATE_STATIC_FACTOR}x-of-best-"
                f"static gate on: {bad}")
        if len(beat_auto) < GATE_BEAT_AUTO:
            failures.append(
                f"tuned-auto beats hard-coded auto on only "
                f"{len(beat_auto)}/{len(rows)} problems "
                f"(need >= {GATE_BEAT_AUTO})")
        if failures:
            for f in failures:
                print(f"[FAIL] {f}", file=sys.stderr)
            return 1
        print(f"[gates passed: {len(within)}/{len(rows)} within "
              f"{GATE_STATIC_FACTOR}x of best-static; tuned beats auto "
              f"on {len(beat_auto)}/{len(rows)}]", file=sys.stderr)
    else:
        why = ("smoke run" if args.smoke
               else f"host has {cores} usable core(s); needs >= "
                    f"{GATE_WORKERS}")
        print(f"[gate skipped: {why}] within-static "
              f"{len(within)}/{len(rows)}, beats-auto "
              f"{len(beat_auto)}/{len(rows)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
