"""Serving-layer load benchmark: cross-request coalescing under traffic.

A closed-loop multi-client load generator drives one
:class:`repro.serve.PortalService` in-process: each client is an asyncio
task submitting single-query requests back-to-back (a new request the
moment the previous answer arrives) against the Table IV k-NN and KDE
configurations on the Census dataset.  The sweep crosses client counts
{1, 8, 64} with two admission configs — **coalesced** (``batch_max=256``,
2 ms linger) and **uncoalesced** (``batch_max=1``, every request is its
own compile + traversal) — and records p50/p99 latency, throughput, and
the realised mean batch size from the ``serve.*`` counters.

What the numbers should show: at 1 client the two configs are the same
machine (every batch has one query — coalescing costs nothing when
there's no company).  At 64 single-query clients the coalescer folds
~a full client cohort into each stacked traversal, amortising the
per-batch compile/dispatch overhead the uncoalesced config pays 64
times, so throughput scales while p99 stays bounded by one batch's
execution.  The acceptance gate asserts coalesced throughput at 64
clients ≥ 5× uncoalesced (geomean over knn + KDE).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import math
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import (  # noqa: E402
    dataset, format_table, split_qr, update_bench_json,
)
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage  # noqa: E402
from repro.serve import AdmissionConfig, PortalService  # noqa: E402

OUT_JSON = "BENCH_serve.json"
FIGURE = "serve-load"
DATASET = "Census"

FULL_CLIENTS = (1, 8, 64)
SMOKE_CLIENTS = (1, 8)
FULL_DURATION_S = 2.0
SMOKE_DURATION_S = 0.35

#: the two admission configurations under test (batch-cap sweep)
MODES = {
    "coalesced": dict(batch_max=256, linger_us=2000),
    "uncoalesced": dict(batch_max=1, linger_us=0),
}
MAX_QUEUE = 100_000  # never shed in this benchmark: we measure latency

#: coalesced qps must beat uncoalesced by this factor at the largest
#: client count (geomean over the two problems)
GATE_SPEEDUP = 5.0
GATE_CLIENTS = 64


def _problems():
    X = dataset(DATASET)
    Q, R = split_qr(X)
    bw = float(np.median(X.std(axis=0))) + 1e-9  # Table IV's scale rule

    def knn_template():
        e = PortalExpr("knn")
        e.addLayer(PortalOp.FORALL, Storage(Q[:1], name="query"))
        e.addLayer((PortalOp.KARGMIN, 5), Storage(R, name="reference"),
                   PortalFunc.EUCLIDEAN)
        return e

    def kde_template():
        e = PortalExpr("kde")
        e.addLayer(PortalOp.FORALL, Storage(Q[:1], name="query"))
        e.addLayer(PortalOp.SUM, Storage(R, name="reference"),
                   PortalFunc.GAUSSIAN, bandwidth=bw)
        return e

    return Q, [("knn", knn_template, {}),
               ("kde", kde_template, {"tau": 1e-3})]


async def _closed_loop(service, hid, Q, clients: int,
                       duration_s: float) -> dict:
    """Run ``clients`` closed-loop single-query clients for
    ``duration_s``; returns latency/throughput facts."""
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    t_start = loop.time()
    t_stop = t_start + duration_s

    async def client(cid: int) -> None:
        i = cid
        while loop.time() < t_stop:
            t0 = loop.time()
            await service.query(hid, Q[i % len(Q)][None, :])
            latencies.append(loop.time() - t0)
            i += clients

    await asyncio.gather(*[client(c) for c in range(clients)])
    elapsed = loop.time() - t_start
    lat = np.asarray(latencies, dtype=np.float64)
    return {
        "requests": int(lat.size),
        "qps": float(lat.size / elapsed),
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        "p99_ms": float(np.percentile(lat, 99) * 1e3),
    }


def _measure(template, opts, Q, clients: int, admission: dict,
             duration_s: float) -> dict:
    async def go():
        service = PortalService()
        try:
            hid = await service.register(
                template(), options=opts,
                admission=AdmissionConfig(max_queue=MAX_QUEUE, **admission))
            # warm the closed loop itself (pool threads, first compiles)
            await _closed_loop(service, hid, Q, clients,
                               min(0.2, duration_s))
            service.counters.clear()
            facts = await _closed_loop(service, hid, Q, clients, duration_s)
            c = service.counters.as_dict()
            batches = max(1, int(c.get("serve.batches", 0)))
            facts["batches"] = int(c.get("serve.batches", 0))
            facts["mean_batch"] = c.get("serve.batch_queries", 0) / batches
            return facts
        finally:
            await service.close()

    return asyncio.run(go())


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="short sweep, no gate (CI: the load generator "
                         "itself can't rot)")
    ap.add_argument("--duration", type=float, default=None,
                    help="seconds per measured configuration")
    args = ap.parse_args(argv)

    clients_sweep = SMOKE_CLIENTS if args.smoke else FULL_CLIENTS
    duration = args.duration or (SMOKE_DURATION_S if args.smoke
                                 else FULL_DURATION_S)

    Q, problems = _problems()
    rows = []
    qps = {}  # (problem, mode, clients) -> qps
    for problem, template, opts in problems:
        for mode, admission in MODES.items():
            for clients in clients_sweep:
                facts = _measure(template, opts, Q, clients, admission,
                                 duration)
                qps[(problem, mode, clients)] = facts["qps"]
                rows.append({
                    "problem": problem,
                    "dataset": DATASET,
                    "mode": mode,
                    "clients": clients,
                    **{k: (round(v, 3) if isinstance(v, float) else v)
                       for k, v in facts.items()},
                })

    headers = ["problem", "mode", "clients", "qps", "p50 (ms)", "p99 (ms)",
               "mean batch"]
    table_rows = [[r["problem"], r["mode"], r["clients"], r["qps"],
                   r["p50_ms"], r["p99_ms"], r["mean_batch"]]
                  for r in rows]
    print(format_table("Serving-layer closed-loop load "
                       f"({DATASET}, {duration:.2f}s per config)",
                       headers, table_rows))

    gate_clients = max(clients_sweep)
    speedups = {
        p: qps[(p, "coalesced", gate_clients)]
        / max(qps[(p, "uncoalesced", gate_clients)], 1e-12)
        for p, _, _ in problems
    }
    geomean = math.exp(sum(math.log(s) for s in speedups.values())
                       / len(speedups))
    for p, s in speedups.items():
        print(f"coalescing speedup @ {gate_clients} clients [{p}]: "
              f"{s:.2f}x")
    note = " — smoke run, not enforced" if args.smoke else ""
    print(f"geomean: {geomean:.2f}x (gate: >= {GATE_SPEEDUP}x at "
          f"{GATE_CLIENTS} clients{note})")

    enforced = not args.smoke and gate_clients >= GATE_CLIENTS
    path = update_bench_json(
        OUT_JSON, FIGURE, rows,
        meta={"serve": {
            "dataset": DATASET,
            "clients": list(clients_sweep),
            "duration_s": duration,
            "admission": {m: dict(a, max_queue=MAX_QUEUE)
                          for m, a in MODES.items()},
            "gate": {"speedup": GATE_SPEEDUP, "clients": GATE_CLIENTS,
                     "enforced": enforced,
                     "observed_geomean": round(geomean, 2),
                     "observed": {p: round(s, 2)
                                  for p, s in speedups.items()}},
            "smoke": args.smoke,
        }})
    print(f"[rows written to {path}]")

    if enforced:
        assert geomean >= GATE_SPEEDUP, (
            f"coalescing gate FAILED: geomean speedup {geomean:.2f}x "
            f"< {GATE_SPEEDUP}x at {gate_clients} clients")
        print("gate PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
