"""Sharded reference-set scale-out benchmark (million-point Table IV).

Times the Table IV k-NN and KDE configurations at reference sizes
N ∈ {1e5, 5e5, 1e6} under the process executor, with and without the
sharded reference layout (``shards="auto"``), and writes the rows into
``benchmarks/results/BENCH_shard.json``.

What the numbers should show: with a replicated tree the process
executor partitions *queries*, so every worker pays the full reference
tree; with the sharded layout each worker traverses a reference subtree
a fraction of the size, tree build parallelises across shards, and the
cross-shard bound broadcast kills shards whose root promise cannot beat
the global worst bound.  The acceptance gate — sharded ≥ 1.8× over the
unsharded process executor (geomean over knn + KDE) at N = 1e6 — is
only meaningful on a host with ≥ 4 usable cores; smaller hosts (this is
affinity-aware, see ``default_workers``) record the numbers honestly
and skip the gate, mirroring ``bench_parallel_scaling``.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--smoke]
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import format_table, update_bench_json  # noqa: E402
from repro.backend.cache import clear_caches  # noqa: E402
from repro.parallel import default_workers, shutdown_pools  # noqa: E402
from repro.problems import kde, knn  # noqa: E402

OUT_JSON = "BENCH_shard.json"
FIGURE = "table4-shard"

#: Reference-set sizes for the full sweep (paper-scale Table IV rows).
FULL_SIZES = (100_000, 500_000, 1_000_000)
SMOKE_SIZES = (5_000, 12_000)
NQ_FRACTION = 0.02  # queries per reference point (2e4 queries at 1e6)

#: sharded must beat unsharded-process by this factor (geomean over the
#: knn + KDE rows at the largest N), enforced only on >= 4-core hosts.
GATE_SPEEDUP = 1.8
GATE_WORKERS = 4


def _make_data(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Clustered 3-D reference set + a query set near one cluster —
    the layout where cross-shard pruning has something to kill."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-40.0, 40.0, size=(8, 3))
    counts = np.full(8, n // 8)
    counts[: n % 8] += 1
    parts = [c + rng.standard_normal((m, 3)) for c, m in zip(centers, counts)]
    R = np.ascontiguousarray(np.concatenate(parts))
    nq = max(64, int(n * NQ_FRACTION))
    Q = np.ascontiguousarray(centers[0] + rng.standard_normal((nq, 3)))
    return Q, R


def _configs(Q: np.ndarray, R: np.ndarray):
    bw = 0.5
    return [
        ("knn", lambda o: knn(Q, R, k=5, **o)),
        ("kde", lambda o: kde(Q, R, bandwidth=bw, tau=1e-3, **o)),
    ]


def _measure(run, options: dict, repeats: int) -> float:
    run(options)  # warm: compile + tree/shard caches, pools, shm blocks
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run(options)
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sizes / single repeat / no gate (CI smoke)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timed repeats per configuration (best-of)")
    args = ap.parse_args(argv)
    repeats = args.repeats or (1 if args.smoke else 3)
    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES

    cores = default_workers()
    base = {"parallel": True, "executor": "process", "workers": cores}
    # Smoke sizes sit below the "auto" threshold (AUTO_SHARD_MIN_POINTS),
    # so force a shard count there to still exercise the sharded path.
    shards = "auto" if not args.smoke else max(2, cores)
    rows = []
    for n in sizes:
        Q, R = _make_data(n)
        for label, run in _configs(Q, R):
            clear_caches()
            plain = _measure(run, dict(base), repeats)
            clear_caches()
            sharded = _measure(run, dict(base, shards=shards), repeats)
            speedup = plain / sharded if sharded > 0 else float("inf")
            rows.append({"config": label, "n": n, "nq": len(Q),
                         "workers": cores,
                         "unsharded_s": plain, "sharded_s": sharded,
                         "speedup": round(speedup, 3)})
            print(f"  {label:>4} N={n:>9,} unsharded {plain:.4f}s "
                  f"sharded {sharded:.4f}s ({speedup:.2f}x)",
                  file=sys.stderr)

    n_top = sizes[-1]
    top = [r["speedup"] for r in rows if r["n"] == n_top]
    geomean = math.exp(sum(math.log(max(s, 1e-12)) for s in top) / len(top))
    enforced = cores >= GATE_WORKERS and not args.smoke

    path = update_bench_json(
        OUT_JSON, FIGURE, rows,
        meta={"smoke": args.smoke, "repeats": repeats,
              "host_workers": cores,
              "gate": {"speedup": GATE_SPEEDUP, "workers": GATE_WORKERS,
                       "at_n": n_top, "geomean": round(geomean, 3),
                       "enforced": enforced}})
    print(f"[written to {path}]", file=sys.stderr)

    print(format_table(
        "Sharded reference layout — speedup over unsharded process pool",
        ["config", "N", "speedup"],
        [[r["config"], f"{r['n']:,}", r["speedup"]] for r in rows]
        + [[f"(host cores: {cores})", "", ""]],
    ), file=sys.stderr)

    shutdown_pools()

    # Acceptance gate: on a >= 4-core host, sharding must be >= 1.8x
    # geomean over knn + KDE at the largest N.
    if enforced:
        if geomean < GATE_SPEEDUP:
            print(f"[FAIL] sharded-over-unsharded geomean at N={n_top:,}: "
                  f"{geomean:.3f} (need >= {GATE_SPEEDUP})", file=sys.stderr)
            return 1
        print(f"[gate passed: geomean {geomean:.3f} >= {GATE_SPEEDUP}]",
              file=sys.stderr)
    else:
        why = ("smoke run" if args.smoke
               else f"host has {cores} usable core(s); needs >= "
                    f"{GATE_WORKERS}")
        print(f"[gate skipped: {why}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
