"""Table I — the Portal operator set and its categories.

Regenerates the operator table from the live registry and benchmarks the
frontend cost it gates: resolving operators and validating/compiling a
Portal program.
"""

import numpy as np
import pytest

from harness import emit, format_table
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.dsl.ops import operator_table, resolve_op


def test_table1_rows(benchmark):
    rows = operator_table()
    assert len(rows) == 13

    from repro.dsl.ops import op_info

    def resolve_all():
        return [
            resolve_op((op, 3) if op_info(op).requires_k else op)
            for op in PortalOp
        ]

    benchmark(resolve_all)

    emit("table1", format_table(
        "Table I — Portal operators",
        ["Category", "Mathematical", "Portal operator"],
        [list(r) for r in rows],
    ))


def test_frontend_compile_cost(benchmark):
    """Time to run the full compiler pipeline (no execution)."""
    rng = np.random.default_rng(0)
    q = Storage(rng.normal(size=(1000, 3)), name="q")
    r = Storage(rng.normal(size=(1000, 3)), name="r")

    def build_and_compile():
        e = PortalExpr("nn")
        e.addLayer(PortalOp.FORALL, q)
        e.addLayer(PortalOp.ARGMIN, r, PortalFunc.EUCLIDEAN)
        return e.compile()

    program = benchmark(build_and_compile)
    assert program.mode == "tree"
