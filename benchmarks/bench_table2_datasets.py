"""Table II — dataset characteristics.

Regenerates the dataset table (paper N and dimensionality, plus the
scaled benchmark N of substitution S4) and benchmarks the kd-tree build
on each dataset — the setup cost every tree-based problem pays.
"""

import pytest

from harness import BENCH_SIZES, dataset, emit, format_table
from repro.data import DATASETS, table2_rows
from repro.trees import build_kdtree


def test_table2_rows(benchmark):
    benchmark(table2_rows)
    rows = []
    for name, paper_n, d, default_n in table2_rows():
        rows.append([name, f"{paper_n:,}", d, f"{BENCH_SIZES[name]:,}"])
    emit("table2", format_table(
        "Table II — datasets (paper scale vs bench scale)",
        ["Dataset", "paper N", "d", "bench N"],
        rows,
    ))
    assert len(rows) == 6


@pytest.mark.parametrize("name", list(DATASETS))
def test_tree_build(benchmark, name):
    X = dataset(name)
    tree = benchmark.pedantic(
        lambda: build_kdtree(X.copy(), leaf_size=64),
        rounds=3, iterations=1,
    )
    assert tree.n == len(X)
