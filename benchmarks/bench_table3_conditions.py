"""Table III — the nine N-body problems: operators, kernels and the
generated prune/approximate conditions.

The paper's Table III is a specification table; here it is *regenerated
from the live rule generator*: each problem's layer chain is classified
and its condition generated, proving the prune/approximate generator
covers the whole problem set.  The benchmark measures rule generation.
"""

import numpy as np
import pytest

from harness import emit, format_table
from repro.dsl import (
    PortalFunc, PortalOp, Storage, Var, indicator, pow, sqrt,
)
from repro.dsl.layer import Layer
from repro.rules import build_rules


def _layers(store, outer_spec, inner_spec, func, params=None):
    q, r = Var("q"), Var("r")
    outer = Layer.build(outer_spec, (q, store), {})
    inner = Layer.build(inner_spec, (r, store, func), params or {})
    inner.resolve_kernel(q)
    return [outer, inner]


def problem_specs(store):
    q, r = Var("q"), Var("r")
    rs_kernel = indicator(sqrt(pow(q - r, 2)) < 1.0)
    tp_kernel = indicator(sqrt(pow(q - r, 2)) < 0.5)
    ext = lambda Q, R: np.ones((len(Q), len(R)))  # noqa: E731
    ext.__name__ = "gaussian_component"
    return [
        ("k-Nearest Neighbors", "∀, arg min^k",
         _layers(store, PortalOp.FORALL, (PortalOp.KARGMIN, 5),
                 PortalFunc.EUCLIDEAN), {}),
        ("Range Search", "∀, ∪arg",
         _layers(store, PortalOp.FORALL, PortalOp.UNIONARG, rs_kernel), {}),
        ("Hausdorff Distance", "max, min",
         _layers(store, PortalOp.MAX, PortalOp.MIN, PortalFunc.EUCLIDEAN), {}),
        ("Kernel Density Estimation", "∀, Σ",
         _layers(store, PortalOp.FORALL, PortalOp.SUM, PortalFunc.GAUSSIAN,
                 {"bandwidth": 1.0}), {"tau": 1e-3}),
        ("Minimum Spanning Tree*", "∀, arg min",
         _layers(store, PortalOp.FORALL, PortalOp.ARGMIN,
                 PortalFunc.EUCLIDEAN), {}),
        ("E-step in EM*", "∀, ∀",
         _layers(store, PortalOp.FORALL, PortalOp.FORALL, ext), {}),
        ("Log-likelihood in EM*", "Σ, Σ",
         _layers(store, PortalOp.SUM, PortalOp.SUM, ext), {}),
        ("2-Point Correlation", "Σ, Σ",
         _layers(store, PortalOp.SUM, PortalOp.SUM, tp_kernel), {}),
        ("Naive Bayes Classifier", "∀, arg min",
         _layers(store, PortalOp.FORALL, PortalOp.ARGMIN,
                 PortalFunc.MAHALANOBIS, {"covariance": np.eye(3)}), {}),
        ("Barnes-Hut", "∀, Σ",
         _layers(store, PortalOp.FORALL, PortalOp.SUM, PortalFunc.GAUSSIAN,
                 {"bandwidth": 1.0}), {"criterion": "mac", "theta": 0.5}),
    ]


def test_table3_conditions(benchmark):
    store = Storage(np.random.default_rng(0).normal(size=(100, 3)), name="D")
    specs = problem_specs(store)

    def generate_all():
        out = []
        for name, ops, layers, opts in specs:
            kernel = layers[-1].metric_kernel
            cls, rule = build_rules(layers, kernel, **opts)
            out.append((name, ops, cls, rule))
        return out

    results = benchmark(generate_all)

    rows = []
    for name, ops, cls, rule in results:
        rows.append([name, ops, cls.category, rule.kind,
                     rule.description[:68]])
    emit("table3", format_table(
        "Table III — problems, categories and generated conditions",
        ["Problem", "Operators", "Category", "Rule", "Generated condition"],
        rows,
    ))

    by_name = {r[0]: r for r in rows}
    assert by_name["k-Nearest Neighbors"][2] == "pruning"
    assert by_name["Kernel Density Estimation"][2] == "approximation"
    assert by_name["2-Point Correlation"][2] == "pruning"
    assert by_name["Barnes-Hut"][3] == "approx"
