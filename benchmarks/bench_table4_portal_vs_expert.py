"""Table IV — Portal-generated code vs hand-optimised expert (PASCAL) code
on 6 problems × 5 datasets: runtime, % difference, and lines of code.

Reproduction target (paper section V-B): the compiler-generated
implementations run within a few percent of the hand-optimised ones —
both sides share the same kd-tree and traversal template, so the deltas
isolate code quality.  EM shows the largest gap (paper: 8–9 %) because
its component kernel is an external function call.

LOC columns compare the Portal *specification* against the expert
implementation, reproducing the productivity claim (k-NN in ≤13 lines).
"""

import numpy as np
import pytest

from harness import (
    BENCH_SIZES, STATS_HEADERS, dataset, emit, format_table, observed_wall,
    paper_scale_note, split_qr, stats_columns, wall,
)
from repro.baselines.expert import (
    expert_em, expert_emst, expert_hausdorff, expert_kde, expert_knn,
    expert_range_count,
)
from repro.problems import (
    directed_hausdorff, em_fit, emst, kde, knn, range_count,
)
from repro.util import count_loc, count_object_loc

DATASET_NAMES = ["Census", "Yahoo!", "IHEPC", "HIGGS", "KDD"]

#: Portal textual specifications, for the LOC columns.
PORTAL_SPECS = {
    "k-NN": """
        Storage query("query.csv");
        Storage reference("reference.csv");
        Var q;
        Var r;
        Expr EuclidDist = sqrt(pow((q - r), 2));
        PortalExpr expr;
        expr.addLayer(FORALL, q, query);
        expr.addLayer((KARGMIN, 5), r, reference, EuclidDist);
        expr.execute();
        Storage output = expr.getOutput();
    """,
    "KDE": """
        Storage query("query.csv");
        Storage reference("reference.csv");
        PortalExpr expr;
        expr.addLayer(FORALL, query);
        expr.addLayer(SUM, reference, GAUSSIAN);
        expr.execute();
        Storage output = expr.getOutput();
    """,
    "RS": """
        Storage query("query.csv");
        Storage reference("reference.csv");
        Var q;
        Var r;
        PortalExpr expr;
        expr.addLayer(FORALL, q, query);
        expr.addLayer(SUM, r, reference, sqrt(pow((q - r), 2)) < 1.0);
        expr.execute();
        Storage output = expr.getOutput();
    """,
    "MST": 12,    # Portal spec lines per the paper; iteration logic native
    "EM": 30,     # Portal spec lines per the paper (2 sub-problems)
    "HD": """
        Storage setA("a.csv");
        Storage setB("b.csv");
        PortalExpr expr;
        expr.addLayer(MAX, setA);
        expr.addLayer(MIN, setB, EUCLIDEAN);
        expr.execute();
    """,
}

_ROWS: dict[str, list] = {}


def _record(problem, name, t_portal, t_expert, counters=None):
    diff = 100.0 * (t_portal - t_expert) / t_expert
    obs = stats_columns(counters) if counters is not None else ["-"] * 3
    _ROWS.setdefault(problem, []).append(
        [name, round(t_portal, 4), round(t_expert, 4), round(diff, 1), *obs]
    )


def _params(name):
    X = dataset(name)
    scale = float(np.median(X.std(axis=0))) + 1e-9
    return X, scale


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_knn(benchmark, name):
    X, _ = _params(name)
    Q, R = split_qr(X)
    if name == DATASET_NAMES[0]:
        benchmark.pedantic(lambda: knn(Q, R, k=5), rounds=2, iterations=1)
    t_p, c = observed_wall(lambda: knn(Q, R, k=5), 2)
    t_e = wall(lambda: expert_knn(Q, R, k=5), 2)
    _record("k-NN", name, t_p, t_e, c)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_kde(benchmark, name):
    X, scale = _params(name)
    Q, R = split_qr(X)
    bw = scale
    if name == DATASET_NAMES[0]:
        benchmark.pedantic(lambda: kde(Q, R, bandwidth=bw, tau=1e-3),
                           rounds=2, iterations=1)
    t_p, c = observed_wall(lambda: kde(Q, R, bandwidth=bw, tau=1e-3), 2)
    t_e = wall(lambda: expert_kde(Q, R, bandwidth=bw, tau=1e-3), 2)
    _record("KDE", name, t_p, t_e, c)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_range_count(benchmark, name):
    X, scale = _params(name)
    Q, R = split_qr(X)
    h = 1.5 * scale
    if name == DATASET_NAMES[0]:
        benchmark.pedantic(lambda: range_count(Q, R, h=h),
                           rounds=2, iterations=1)
    t_p, c = observed_wall(lambda: range_count(Q, R, h=h), 2)
    t_e = wall(lambda: expert_range_count(Q, R, h=h), 2)
    _record("RS", name, t_p, t_e, c)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_mst(benchmark, name):
    X, _ = _params(name)
    X = np.ascontiguousarray(X[:1200])
    if name == DATASET_NAMES[0]:
        benchmark.pedantic(lambda: emst(X), rounds=1, iterations=1)
    t_p, c = observed_wall(lambda: emst(X))
    t_e = wall(lambda: expert_emst(X))
    _record("MST", name, t_p, t_e, c)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_em(benchmark, name):
    X, _ = _params(name)
    X = np.ascontiguousarray(X[:3000])
    if name == DATASET_NAMES[0]:
        benchmark.pedantic(lambda: em_fit(X, 5, max_iter=4),
                           rounds=1, iterations=1)
    t_p, c = observed_wall(lambda: em_fit(X, 5, max_iter=4), 2)
    t_e = wall(lambda: expert_em(X, 5, max_iter=4), 2)
    _record("EM", name, t_p, t_e, c)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_hausdorff(benchmark, name):
    X, _ = _params(name)
    A, B = split_qr(X)
    if name == DATASET_NAMES[0]:
        benchmark.pedantic(lambda: directed_hausdorff(A, B),
                           rounds=2, iterations=1)
    t_p, c = observed_wall(lambda: directed_hausdorff(A, B), 2)
    t_e = wall(lambda: expert_hausdorff(A, B), 2)
    _record("HD", name, t_p, t_e, c)


def _loc_rows():
    expert_loc = {
        "k-NN": count_object_loc(expert_knn),
        "KDE": count_object_loc(expert_kde),
        "RS": count_object_loc(expert_range_count),
        "MST": count_object_loc(expert_emst),
        "EM": count_object_loc(expert_em),
        "HD": count_object_loc(expert_hausdorff),
    }
    rows = []
    for prob, spec in PORTAL_SPECS.items():
        portal = spec if isinstance(spec, int) else count_loc(spec)
        exp = expert_loc[prob]
        rows.append([prob, portal, exp, round(exp / portal, 1)])
    return rows


def test_table4_emit(benchmark):
    benchmark(lambda: _loc_rows())
    lines = [paper_scale_note(DATASET_NAMES), ""]
    for prob in ("k-NN", "KDE", "RS", "MST", "EM", "HD"):
        rows = _ROWS.get(prob, [])
        if not rows:
            continue
        lines.append(format_table(
            f"Table IV ({prob}) — Portal vs expert",
            ["Dataset", "Portal (s)", "Expert (s)", "% diff",
             *STATS_HEADERS],
            rows,
        ))
        lines.append("")
        diffs = [abs(r[3]) for r in rows]
        lines.append(f"  mean |%diff| for {prob}: {np.mean(diffs):.1f}%")
        lines.append("")
    lines.append(format_table(
        "Table IV (LOC) — productivity",
        ["Problem", "Portal LOC", "Expert LOC", "x shorter"],
        _loc_rows(),
    ))
    emit("table4", "\n".join(lines))

    # The paper's productivity claim: k-NN expressible in <= 13 lines.
    loc = {r[0]: r[1] for r in _loc_rows()}
    assert loc["k-NN"] <= 13
