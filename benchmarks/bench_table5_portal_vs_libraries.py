"""Table V — Portal vs library-style baselines.

Paper comparison points (section V-C):

* 2-point correlation vs scikit-learn:    66–165× (Portal wins)
* naive Bayes classifier vs MLPACK:        15–47× (Portal wins)
* Barnes-Hut vs FDPS:                      ~1.7×  (Portal wins)

The library baselines reproduce each comparator's *algorithmic shape*
(per-point single-tree walks / per-point dense evaluation — DESIGN.md
substitution S6), so the reproduction target is the direction and rough
magnitude of each factor, not its exact value.
"""

import numpy as np
import pytest

from harness import (
    STATS_HEADERS, dataset, emit, format_table, observed_wall,
    stats_columns, wall,
)
from repro.baselines import (
    MlpackLikeNBC, fdps_like_forces, sklearn_like_two_point,
)
from repro.problems import (
    barnes_hut_acceleration, naive_bayes_fit, two_point_correlation,
)

_ROWS: dict[str, list] = {"2-PC": [], "NBC": [], "BH": []}

TPC_DATASETS = ["Census", "Yahoo!", "IHEPC"]


@pytest.mark.parametrize("name", TPC_DATASETS)
def test_two_point_correlation(benchmark, name):
    X = np.ascontiguousarray(dataset(name)[:2000])
    h = float(np.median(X.std(axis=0)))
    if name == TPC_DATASETS[0]:
        benchmark.pedantic(lambda: two_point_correlation(X, h),
                           rounds=2, iterations=1)
    t_p, obs = observed_wall(lambda: two_point_correlation(X, h))
    c_p = two_point_correlation(X, h)
    t_l = wall(lambda: sklearn_like_two_point(X, h))
    c_l = sklearn_like_two_point(X, h)
    assert c_p == c_l
    _ROWS["2-PC"].append([name, round(t_p, 4), round(t_l, 4),
                          round(t_l / t_p, 1), *stats_columns(obs)])


NBC_DATASETS = ["Yahoo!", "HIGGS", "KDD"]


@pytest.mark.parametrize("name", NBC_DATASETS)
def test_naive_bayes(benchmark, name):
    X = dataset(name)
    # Two synthetic classes: split by the first coordinate's median.
    y = (X[:, 0] > np.median(X[:, 0])).astype(int)
    X = X + 0.0  # writable copy
    clf_p = naive_bayes_fit(X, y)
    clf_l = MlpackLikeNBC().fit(X, y)
    if name == NBC_DATASETS[0]:
        benchmark.pedantic(lambda: clf_p.predict(X), rounds=2, iterations=1)
    t_p, obs = observed_wall(lambda: clf_p.predict(X))
    t_l = wall(lambda: clf_l.predict(X))
    agree = float(np.mean(clf_p.predict(X) == clf_l.predict(X)))
    assert agree > 0.99
    _ROWS["NBC"].append([name, round(t_p, 4), round(t_l, 4),
                         round(t_l / t_p, 1), *stats_columns(obs)])


def test_barnes_hut(benchmark):
    X = np.ascontiguousarray(dataset("Elliptical"))
    mass = np.ones(len(X))
    benchmark.pedantic(
        lambda: barnes_hut_acceleration(X, mass, theta=0.5),
        rounds=2, iterations=1,
    )
    t_p, obs = observed_wall(lambda: barnes_hut_acceleration(X, mass, theta=0.5))
    t_l = wall(lambda: fdps_like_forces(X, mass, theta=0.5))
    _ROWS["BH"].append(["Elliptical", round(t_p, 4), round(t_l, 4),
                        round(t_l / t_p, 1), *stats_columns(obs)])


def test_table5_emit(benchmark):
    benchmark(lambda: format_table("x", ["a"], [["b"]]))
    lines = []
    specs = [
        ("2-PC", "scikit-learn-like", "paper: 66–165×"),
        ("NBC", "MLPACK-like", "paper: 15–47×"),
        ("BH", "FDPS-like", "paper: ~1.7×"),
    ]
    for prob, lib, note in specs:
        rows = _ROWS.get(prob, [])
        if not rows:
            continue
        lines.append(format_table(
            f"Table V ({prob}) — Portal vs {lib}  ({note})",
            ["Dataset", "Portal (s)", f"{lib} (s)", "speedup ×",
             *STATS_HEADERS],
            rows,
        ))
        lines.append("")
    emit("table5", "\n".join(lines))

    # Shape assertions: Portal must win every comparison.
    for rows in _ROWS.values():
        for row in rows:
            assert row[3] > 1.0, f"Portal lost: {row}"
