"""Benchmark-suite configuration: make ``harness`` importable and keep
pytest-benchmark output compact."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
