"""Shared helpers for the benchmark harnesses.

Every ``bench_*.py`` regenerates one table or figure of the paper's
evaluation section: it measures the relevant configurations through
pytest-benchmark, assembles the paper-style rows, prints them, and writes
them to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote
them.  Dataset sizes are scaled down from the paper's (see DESIGN.md S4);
the *shape* of each comparison — who wins, by roughly what factor — is
the reproduction target, not absolute seconds.
"""

from __future__ import annotations

import functools
import json
import os
import sys
import time

import numpy as np

from repro.data import DATASETS, load
from repro.observe import Counters, collect

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmark-scale sizes per dataset (smaller than the registry defaults so
#: the full Table-IV sweep stays tractable on one core).
BENCH_SIZES = {
    "Census": 2000,
    "Yahoo!": 4000,
    "IHEPC": 4000,
    "HIGGS": 3000,
    "KDD": 2500,
    "Elliptical": 6000,
}


@functools.lru_cache(maxsize=None)
def dataset(name: str, n: int | None = None, seed: int = 0) -> np.ndarray:
    X = load(name, n or BENCH_SIZES[name], seed=seed)
    X.setflags(write=False)
    return X


def split_qr(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Query/reference split used by the query-style problems."""
    half = len(X) // 2
    return np.ascontiguousarray(X[:half]), np.ascontiguousarray(X[half:])


def wall(fn, repeats: int = 1) -> float:
    """Best-of wall-clock seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def observed_wall(fn, repeats: int = 1) -> tuple[float, Counters]:
    """Best-of wall-clock seconds plus the ``repro.observe`` counters
    accumulated over all repeats (rates are repeat-invariant; absolute
    counts and pass times cover every repeat)."""
    with collect() as counters:
        best = wall(fn, repeats)
    return best, counters


#: Headers matching :func:`stats_columns`, for table scripts.
STATS_HEADERS = ["prune%", "approx%", "passes (ms)"]


def stats_columns(counters: Counters) -> list[str]:
    """Observability columns for the paper-table rows: prune rate,
    approximation rate, and per-compile IR pass time (the Table IV/V
    audit trail — see docs/observability.md)."""
    prune = counters.rate("traversal.pruned", "traversal.visited")
    approx = counters.rate("traversal.approximated", "traversal.visited")
    d = counters.as_dict()
    pass_s = sum(v for k, v in d.items()
                 if k.startswith("passes.") and k.endswith("_s"))
    compiles = max(1, int(d.get("compile.count", 1)))
    return [
        f"{100.0 * prune:.1f}",
        f"{100.0 * approx:.1f}",
        f"{1e3 * pass_s / compiles:.2f}",
    ]


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    cols = [headers] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cols) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(c).ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(c) -> str:
    if isinstance(c, float):
        if c == 0:
            return "0"
        if abs(c) >= 1000 or abs(c) < 0.01:
            return f"{c:.3g}"
        return f"{c:.3f}"
    return str(c)


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[written to {path}]", file=sys.stderr)


def host_meta() -> dict:
    """Host facts that contextualise any timing row: parallel speedups
    are meaningless without knowing how many cores the run actually had,
    and native-backend rows without knowing whether numba was present."""
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = None
    try:
        import numba  # noqa: F401
        has_numba = True
    except ImportError:
        has_numba = False
    return {
        "cpu_count": os.cpu_count(),
        "affinity": affinity,
        "numba": has_numba,
        "numpy": np.__version__,
    }


def update_bench_json(filename: str, figure: str, rows: list[dict],
                      meta: dict | None = None) -> str:
    """Merge ``rows`` into a machine-readable results file, replacing any
    previous rows for the same ``figure`` (so the fig2 and fig3 ablations
    can share ``BENCH_ir.json`` without clobbering each other).  Every
    write stamps :func:`host_meta` under ``meta["host"]``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    payload = {"meta": {}, "rows": []}
    if os.path.exists(path):
        with open(path) as fh:
            payload = json.load(fh)
    payload["rows"] = [r for r in payload.get("rows", [])
                       if r.get("figure") != figure]
    payload["rows"].extend(dict(r, figure=figure) for r in rows)
    payload.setdefault("meta", {})["host"] = host_meta()
    if meta:
        payload["meta"].update(meta)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def time_interp_base_case(fn, layers, repeats: int = 5) -> float:
    """Best-of wall-clock seconds for one full interpreter sweep of a
    compiled ``BaseCase`` IR function over a two-layer problem's data —
    the measurement the Fig 2/3 IR-ablation rows are built from."""
    from repro.backend.interp import base_case_env, interpret_function

    outer, inner = layers

    def once():
        env = base_case_env(
            outer.storage.name, inner.storage.name,
            outer.storage.data, inner.storage.data,
            outer.storage.layout, inner.storage.layout,
        )
        interpret_function(fn, env)

    once()  # warm-up: dict layouts, code paths
    return wall(once, repeats)


def paper_scale_note(names: list[str]) -> str:
    rows = []
    for name in names:
        info = DATASETS[name]
        rows.append(f"  {name}: paper N={info.paper_n:,}, "
                    f"bench N={BENCH_SIZES[name]:,} (d={info.dim})")
    return "scaled datasets (DESIGN.md substitution S4):\n" + "\n".join(rows)
