"""Measuring galaxy clustering: the two-point correlation function ξ(r).

Builds a clustered mock catalog (galaxies scattered around halo centers)
and a uniform random catalog over the same volume, then estimates ξ(r)
with the Landy–Szalay estimator — every DD/DR/RR pair count running
through the dual-tree counting engine with closed-form inside/outside
pruning.

Run:  python examples/correlation_function.py
"""

import time

import numpy as np

from repro.problems import landy_szalay


def make_catalogs(n_gal=1200, n_rand=2400, box=20.0, n_halos=40,
                  halo_scale=0.35, seed=5):
    rng = np.random.default_rng(seed)
    halos = rng.uniform(0, box, size=(n_halos, 3))
    gal = halos[rng.integers(0, n_halos, n_gal)] + rng.normal(
        scale=halo_scale, size=(n_gal, 3))
    gal = np.clip(gal, 0, box)
    rand = rng.uniform(0, box, size=(n_rand, 3))
    return gal, rand


def main() -> None:
    gal, rand = make_catalogs()
    edges = np.array([0.2, 0.4, 0.8, 1.6, 3.2, 6.4])
    print(f"mock survey: {len(gal)} galaxies in {len(rand)}-point random "
          f"catalog, {len(edges) - 1} radial bins")

    t0 = time.perf_counter()
    res = landy_szalay(gal, rand, edges)
    dt = time.perf_counter() - t0
    print(f"\nLandy–Szalay ξ(r) in {dt:.2f}s "
          f"(DD+DR+RR = {int(res.dd.sum() + res.dr.sum() + res.rr.sum()):,} "
          f"pairs counted):\n")
    print("  r center   DD      DR      RR      ξ(r)")
    for rc, dd, dr, rr, xi in zip(res.centers, res.dd, res.dr, res.rr,
                                  res.xi):
        bar = "#" * int(min(40, max(0.0, xi) * 2))
        print(f"  {rc:7.2f} {dd:7.0f} {dr:7.0f} {rr:7.0f} {xi:8.2f}  {bar}")

    print("\nclustered galaxies show ξ ≫ 0 inside the halo scale and "
          "ξ → 0 at large separations.")


if __name__ == "__main__":
    main()
