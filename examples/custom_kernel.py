"""Defining custom kernels: symbolic, pre-defined and external.

Shows the three kernel flavours of paper section III-C and what the
compiler does with each:

* a *symbolic* kernel the normaliser recognises (optimised tree path),
* a *Mahalanobis* kernel (triggers the numerical-optimisation pass —
  Cholesky + forward substitution + whitened trees),
* an *external* Python kernel (linked, not optimised: brute-force path,
  exactly like external C++ functions in the paper).

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import (
    PortalExpr, PortalFunc, PortalOp, Storage, Var, exp, pow, sqrt,
)


def main() -> None:
    rng = np.random.default_rng(11)
    Q = Storage(rng.normal(size=(800, 3)), name="query")
    R = Storage(rng.normal(size=(1000, 3)), name="reference")

    # --- 1. symbolic kernel: inverse multiquadric Σ 1/sqrt(t + 1) -----------
    q, r = Var("q"), Var("r")
    imq = 1.0 / sqrt(pow(q - r, 2) + 1.0)
    e1 = PortalExpr("inverse-multiquadric-sum")
    e1.addLayer(PortalOp.FORALL, q, Q)
    e1.addLayer(PortalOp.SUM, r, R, imq)
    out1 = e1.execute(tau=1e-4, exclude_self=False)
    print("symbolic kernel 1/sqrt(‖q−r‖²+1):")
    print(f"  classified: {e1.program.classification.category} / "
          f"{e1.program.classification.algorithm}")
    print(f"  kernel normal form: {e1.layers[1].metric_kernel.describe()}")
    print(f"  Σ at first query: {out1.values[0]:.3f}, "
          f"{e1.program.stats.approximated} node pairs approximated")

    # --- 2. Mahalanobis: the numerical-optimisation pass --------------------
    cov = np.diag([1.0, 4.0, 0.25])
    e2 = PortalExpr("mahalanobis-nn")
    e2.addLayer(PortalOp.FORALL, Q)
    e2.addLayer(PortalOp.ARGMIN, R, PortalFunc.MAHALANOBIS, covariance=cov)
    out2 = e2.execute()
    numopt = e2.program.pass_manager.stage("numopt")
    print("\nMahalanobis nearest neighbor:")
    print(f"  numerical optimisation fired: "
          f"{numopt.meta['numerical_optimized']}")
    print("  IR now factorises the covariance once (Cholesky) and runs "
          "forward substitution per pair;")
    print("  at runtime both trees are built over L⁻¹-whitened points.")
    print(f"  nearest (whitened) reference of query 0: {out2.indices[0]}")

    # --- 3. external kernel: linked, not optimised ---------------------------
    def cosine_similarity(Qb, Rb):
        qn = Qb / np.linalg.norm(Qb, axis=1, keepdims=True)
        rn = Rb / np.linalg.norm(Rb, axis=1, keepdims=True)
        return qn @ rn.T

    e3 = PortalExpr("max-cosine")
    e3.addLayer(PortalOp.FORALL, Q)
    e3.addLayer(PortalOp.MAX, R, cosine_similarity)
    out3 = e3.execute()
    print("\nexternal kernel (cosine similarity):")
    print(f"  algorithm choice: {e3.program.classification.algorithm} "
          "(external kernels are linked, not optimised — paper §III-C)")
    print(f"  best cosine of query 0: {out3.values[0]:.4f}")


if __name__ == "__main__":
    main()
