"""Barnes-Hut N-body simulation of an elliptical galaxy.

Generates the paper's Elliptical particle distribution (angularly uniform
in spherical coordinates with an elliptically scaled radial profile),
computes gravitational accelerations with the dual-tree Barnes-Hut
implementation, verifies the force error against the exact O(N²) sum, and
integrates a few leapfrog steps while tracking momentum drift.

Run:  python examples/galaxy_simulation.py
"""

import time

import numpy as np

from repro.baselines.brute import brute_forces
from repro.data import synthetic
from repro.problems import (
    barnes_hut_acceleration, barnes_hut_potential, leapfrog_step,
)


def main() -> None:
    n = 8000
    rng = np.random.default_rng(7)
    pos = synthetic.elliptical(n, seed=7)
    mass = rng.uniform(0.5, 2.0, size=n)
    vel = np.zeros_like(pos)

    print(f"elliptical galaxy: {n} particles, total mass {mass.sum():.0f}")

    # --- force accuracy vs theta --------------------------------------------
    exact = brute_forces(pos, mass)
    print("\nmultipole acceptance sweep (force error vs θ):")
    for theta in (0.2, 0.5, 0.8):
        t0 = time.perf_counter()
        acc, stats = barnes_hut_acceleration(
            pos, mass, theta=theta, return_stats=True
        )
        dt = time.perf_counter() - t0
        err = np.linalg.norm(acc - exact) / np.linalg.norm(exact)
        print(f"  θ={theta}: {dt:.2f}s, rel force err {err:.2e}, "
              f"{stats.approximated} node pairs approximated by "
              f"center-of-mass")

    # --- scalar potential through the Portal DSL ---------------------------
    phi = barnes_hut_potential(pos, mass, theta=0.5)
    print(f"\npotential at densest particle: {phi.max():.1f} "
          f"(DSL FORALL/Σ program with the mac criterion)")

    # --- short integration ---------------------------------------------------
    print("\nleapfrog integration (θ=0.5):")
    p, v = pos, vel
    p0_momentum = (mass[:, None] * v).sum(axis=0)
    for step in range(3):
        p, v = leapfrog_step(p, v, mass, dt=0.002, theta=0.5)
        drift = np.linalg.norm((mass[:, None] * v).sum(axis=0) - p0_momentum)
        scale = np.abs(mass[:, None] * v).sum()  # total momentum magnitude
        span = np.linalg.norm(p, axis=1).max()
        print(f"  step {step + 1}: max radius {span:.2f}, momentum drift "
              f"{drift:.2e} ({100 * drift / scale:.3f}% of |p| — from the "
              f"θ-approximation's force asymmetry)")


if __name__ == "__main__":
    main()
