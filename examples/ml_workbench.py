"""Machine-learning workloads on one synthetic click-log dataset.

Exercises the ML side of the paper's problem set end-to-end on the Yahoo!
surrogate: density estimation with the τ knob, range-based candidate
retrieval, EM soft clustering, naive Bayes classification, and the
Euclidean minimum spanning tree — all through the public problem API.

Run:  python examples/ml_workbench.py
"""

import time

import numpy as np

from repro.data import load
from repro.problems import (
    em_fit, emst, kde, knn, naive_bayes_fit, range_search,
)


def main() -> None:
    X = load("Yahoo!", 6000, seed=1)
    print(f"Yahoo! surrogate: {X.shape[0]} points, d={X.shape[1]}")

    # --- density estimation with the accuracy knob -------------------------
    bw = float(np.median(X.std(axis=0)))
    t0 = time.perf_counter()
    dens = kde(X, bandwidth=bw, tau=1e-3)
    print(f"\nKDE (τ=1e-3): {time.perf_counter() - t0:.2f}s; "
          f"density range [{dens.min():.1f}, {dens.max():.1f}]")
    outliers = np.argsort(dens)[:5]
    print(f"  5 lowest-density points (outlier candidates): "
          f"{outliers.tolist()}")

    # --- k-NN + range search for candidate retrieval -----------------------
    d, idx = knn(X, k=10)
    print(f"\nself 10-NN: mean 10th-neighbor distance {d[:, 9].mean():.3f}")
    probes = X[:3]
    lists = range_search(probes, X, h=float(d[:, 9].mean()))
    print("  neighbors within that radius of 3 probes: "
          + ", ".join(str(len(l)) for l in lists))

    # --- EM soft clustering --------------------------------------------------
    t0 = time.perf_counter()
    gmm = em_fit(X[:3000], n_components=6, max_iter=15, seed=0)
    print(f"\nEM (6 components): {time.perf_counter() - t0:.2f}s, "
          f"{gmm.n_iter_} iterations, "
          f"final log-likelihood {gmm.log_likelihoods_[-1]:.0f}")
    sizes = np.bincount(gmm.predict(X[:3000]), minlength=6)
    print(f"  cluster sizes: {sizes.tolist()}")

    # --- naive Bayes on the EM labels ---------------------------------------
    y = gmm.predict(X[:3000])
    keep = np.bincount(y).argsort()[-2:]          # two biggest clusters
    mask = np.isin(y, keep)
    nbc = naive_bayes_fit(X[:3000][mask], y[mask])
    acc = nbc.score(X[:3000][mask], y[mask])
    print(f"\nnaive Bayes on the two largest clusters: "
          f"training accuracy {acc:.3f}")

    # --- EMST ------------------------------------------------------------------
    t0 = time.perf_counter()
    res = emst(X[:3000])
    print(f"\nEMST over 3000 points: {time.perf_counter() - t0:.2f}s, "
          f"{res.rounds} Borůvka rounds, total weight {res.total_weight:.1f}")
    print(f"  longest tree edge: {res.weights[-1]:.3f} "
          f"(a natural cluster-separation threshold)")


if __name__ == "__main__":
    main()
