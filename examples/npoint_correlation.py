"""n-point correlation: the m = 3 instance of the generalized form.

The paper's equation (2) chains m operators over m datasets and
Algorithm 1 recurses over m trees; the evaluation only exercises m = 2.
This example runs 3-point correlation both ways:

* as a **pure Portal program** — three SUM layers over one dataset with a
  symbolic triangle kernel, executed by the dense multi-layer backend;
* through the **triple-tree traversal** — Algorithm 1 with m = 3,
  triple pruning and closed-form inclusion for all-inside node triples.

Run:  python examples/npoint_correlation.py
"""

import time

import numpy as np

from repro import PortalExpr, PortalOp, Storage, Var, indicator, pow, sqrt
from repro.data import synthetic
from repro.problems import three_point_correlation, two_point_correlation


def main() -> None:
    X = synthetic.elliptical(1200, seed=2)
    h = 1.0
    print(f"elliptical sample: {len(X)} points, triangle side h = {h}")

    # --- pure Portal: three chained SUM layers ------------------------------
    s = Storage(X, name="D")
    a, b, c = Var("a"), Var("b"), Var("c")
    triangle = (
        indicator(sqrt(pow(a - b, 2)) < h)
        * indicator(sqrt(pow(b - c, 2)) < h)
        * indicator(sqrt(pow(a - c, 2)) < h)
    )
    expr = PortalExpr("three-point-correlation")
    expr.addLayer(PortalOp.SUM, a, s)
    expr.addLayer(PortalOp.SUM, b, s)
    expr.addLayer(PortalOp.SUM, c, s, triangle)

    t0 = time.perf_counter()
    out = expr.execute()
    t_dsl = time.perf_counter() - t0
    print(f"\nPortal m=3 program (dense backend): {out.scalar:.0f} ordered "
          f"triangles in {t_dsl:.2f}s")
    print("  lowered loop nest (excerpt):")
    for line in expr.ir_dump("lowered").splitlines()[:8]:
        print(f"    {line}")

    # --- triple-tree Algorithm 1 ------------------------------------------------
    t0 = time.perf_counter()
    count, stats = three_point_correlation(X, h, return_stats=True)
    t_tree = time.perf_counter() - t0
    print(f"\ntriple-tree traversal: {count:.0f} in {t_tree:.2f}s "
          f"({t_dsl / t_tree:.1f}x vs dense)")
    print(f"  node triples: {stats.visited} visited, {stats.pruned} pruned, "
          f"{stats.approximated} counted in closed form")
    assert count == out.scalar

    # --- context: the 2-point function at the same radius -------------------
    pairs = two_point_correlation(X, h)
    print(f"\nfor scale: {pairs:.0f} ordered pairs within h "
          f"(triangles/pairs = {count / pairs:.1f})")


if __name__ == "__main__":
    main()
