"""The textual Portal language (paper Appendix VIII).

Runs three Portal programs written as plain text through the grammar
parser: the paper's nearest-neighbor example (Code 3), a 2-point
correlation with an inline comparative kernel, and a custom Manhattan
kernel — then shows the per-stage IR dump the compiler kept (the paper's
Fig. 2 view).

Run:  python examples/portal_language.py
"""

import numpy as np

from repro.dsl import parse_program

NN_PROGRAM = """
// paper Code 3: nearest neighbor with a user-defined kernel
Storage query("query_file.csv");
Storage reference("reference_file.csv");
Var q;
Var r;
Expr EuclidDist = sqrt(pow((q - r), 2));
PortalExpr expr;
expr.addLayer(FORALL, q, query);
expr.addLayer(ARGMIN, r, reference, EuclidDist);
expr.execute();
Storage output = expr.getOutput();
"""

TWO_POINT_PROGRAM = """
/* 2-point correlation: two SUM layers over one dataset with a
   comparative kernel */
Storage data("points");
Var a;
Var b;
PortalExpr corr;
corr.addLayer(SUM, a, data);
corr.addLayer(SUM, b, data, sqrt(pow((a - b), 2)) < 0.75);
corr.execute();
"""

MANHATTAN_PROGRAM = """
Storage query("query_file.csv");
Storage reference("reference_file.csv");
PortalExpr taxi;
taxi.addLayer(FORALL, query);
taxi.addLayer(MIN, reference, MANHATTAN);
taxi.execute();
"""


def main() -> None:
    rng = np.random.default_rng(3)
    Q = rng.normal(size=(1000, 3))
    R = rng.normal(size=(1500, 3))
    bindings = {
        "query_file.csv": Q,
        "reference_file.csv": R,
        "points": Q,
    }

    print("— nearest neighbor (Code 3) —")
    prog = parse_program(NN_PROGRAM, bindings=bindings)
    results = prog.run()
    out = results["output"]
    print(f"  first 5 neighbor indices: {out.indices[:5].tolist()}")

    print("\n— 2-point correlation —")
    prog2 = parse_program(TWO_POINT_PROGRAM, bindings=bindings)
    res2 = prog2.run()
    print(f"  ordered pairs with distance < 0.75: {res2['corr'].scalar:.0f}")

    print("\n— Manhattan nearest distance —")
    prog3 = parse_program(MANHATTAN_PROGRAM, bindings=bindings)
    res3 = prog3.run()
    print(f"  mean L1 nearest distance: {res3['taxi'].values.mean():.3f}")

    print("\n— compiler stages for the NN program (Fig. 2 view) —")
    pexpr = prog.portal_exprs["expr"]
    for stage in ("lowered", "final"):
        print(f"\n  [{stage}]")
        for line in pexpr.ir_dump(stage).splitlines()[:9]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
