"""Quickstart: k-nearest neighbors in the Portal DSL (paper Code 1).

Writes two small CSV datasets, expresses k-NN as a two-layer Portal
program, executes it through the full compiler pipeline, and inspects
the artifacts the compiler produced along the way.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import PortalExpr, PortalFunc, PortalOp, Storage
from repro.data import save_csv


def main() -> None:
    rng = np.random.default_rng(42)

    # --- data: Storage from CSV files, exactly like paper Code 1 ---------
    tmp = tempfile.mkdtemp(prefix="portal-quickstart-")
    qpath = os.path.join(tmp, "query_file.csv")
    rpath = os.path.join(tmp, "reference_file.csv")
    save_csv(qpath, rng.normal(size=(2000, 3)))
    save_csv(rpath, rng.normal(size=(3000, 3)))

    query = Storage(qpath)
    reference = Storage(rpath)

    # --- the Portal program ------------------------------------------------
    expr = PortalExpr("nearest-neighbors")
    expr.addLayer(PortalOp.FORALL, query)
    expr.addLayer((PortalOp.KARGMIN, 5), reference, PortalFunc.EUCLIDEAN)
    output = expr.execute()

    print("5-NN of the first three query points:")
    for i in range(3):
        dists = ", ".join(f"{d:.3f}" for d in output.values[i])
        print(f"  query {i}: refs {output.indices[i].tolist()} "
              f"at distances [{dists}]")

    # --- what the compiler did ---------------------------------------------
    prog = expr.program
    print(f"\nclassification: {prog.classification.category} problem, "
          f"{prog.classification.algorithm} algorithm")
    print(f"prune rule: {prog.rule.description}")
    st = prog.stats
    total_pairs = query.n * reference.n
    print(f"traversal: {st.visited} node pairs visited, {st.pruned} pruned; "
          f"{st.base_case_pairs:,}/{total_pairs:,} point pairs evaluated "
          f"exactly ({100 * st.base_case_pairs / total_pairs:.1f}%)")

    print("\nPortal IR after lowering (excerpt):")
    print("\n".join(expr.ir_dump("lowered").splitlines()[:12]))
    print("\nGenerated backend source (excerpt):")
    print("\n".join(expr.generated_source().splitlines()[:14]))


if __name__ == "__main__":
    main()
