"""Streaming density monitoring: a sliding-window KDE over live data.

A sensor feed appends a batch of fresh readings every tick and expires
the oldest window.  Re-building the reference tree from scratch per tick
would dominate the loop; instead the window lives in one ``Storage``
mutated in place with ``insert_batch`` / ``delete_batch``, and the
execution cache brings the previous tick's tree up to date by replaying
the mutation log onto a snapshot (``cache.tree.refit``) — the program
itself recompiles nothing but a cache key.

Run:  python examples/sliding_window_kde.py
"""

import time

import numpy as np

from repro.dsl import Storage
from repro.observe import collect
from repro.problems import kde

WINDOW = 6_000       # readings kept live
BATCH = 300          # readings arriving per tick
TICKS = 12
GRID = 400           # density probe points


def feed(rng, t):
    """This tick's readings: a drifting cluster plus background noise."""
    center = np.array([np.cos(t / 4), np.sin(t / 4), 0.0]) * 3.0
    signal = center + 0.5 * rng.standard_normal((BATCH // 2, 3))
    noise = rng.uniform(-5, 5, size=(BATCH - BATCH // 2, 3))
    return np.concatenate([signal, noise])


def main() -> None:
    rng = np.random.default_rng(42)
    window = Storage(rng.uniform(-5, 5, size=(WINDOW, 3)), name="window")
    probes = Storage(rng.uniform(-5, 5, size=(GRID, 3)), name="probes")

    kde(probes, window, bandwidth=0.6, tau=0.0)  # tick 0: builds the tree
    print(f"window of {WINDOW:,} readings, {BATCH} arriving per tick\n")
    print(f"{'tick':>4}  {'density@peak':>12}  {'ms':>7}  cache path")

    for t in range(1, TICKS + 1):
        # slide the window: drop the oldest rows, append the new batch
        window.delete_batch(np.arange(BATCH))
        window.insert_batch(feed(rng, t))

        t0 = time.perf_counter()
        with collect() as c:
            density = kde(probes, window, bandwidth=0.6, tau=0.0)
        ms = (time.perf_counter() - t0) * 1e3

        if c.get("cache.tree.refit"):
            path = "tree refit (incremental)"
        elif c.get("cache.tree.hit"):
            path = "tree cache hit"
        else:
            path = "full rebuild"
        print(f"{t:>4}  {density.max():>12.4f}  {ms:>7.1f}  {path}")

    print("\nEvery tick after the first should ride the incremental "
          "path: the Storage's mutation log covers the delete+insert "
          "pair, so the cache refits a snapshot of the previous tree "
          "instead of sorting the whole window again.")


if __name__ == "__main__":
    main()
