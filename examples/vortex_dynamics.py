"""2-D point-vortex dynamics with the fast multipole method.

Point vortices in an ideal 2-D fluid induce velocities

    v(z_i) = conj( Σ_{j≠i} Γ_j / (z_i − z_j) ) / (2π)   (rotated 90°),

the derivative of the same log potential the FMM expands — so a vortex
step is one O(N) `fmm_field` call.  Two counter-rotating vortex clouds
(a "vortex dipole") self-advect; the example integrates a few steps and
verifies the FMM velocities against the direct sum.

Run:  python examples/vortex_dynamics.py
"""

import time

import numpy as np

from repro.fmm import fmm_field
from repro.fmm.fmm2d import _direct_field


def vortex_velocities(pos: np.ndarray, gamma: np.ndarray,
                      p: int = 8) -> np.ndarray:
    """Velocity (vx, vy) of every vortex."""
    w = fmm_field(pos, gamma, p=p)
    v_complex = np.conj(w) * (-1j) / (2.0 * np.pi)
    return np.stack([v_complex.real, v_complex.imag], axis=1)


def main() -> None:
    rng = np.random.default_rng(9)
    n_half = 1500
    # Two tight counter-rotating clouds: a vortex dipole.
    a = rng.normal((-0.5, 0.0), 0.08, (n_half, 2))
    b = rng.normal((+0.5, 0.0), 0.08, (n_half, 2))
    pos = np.concatenate([a, b])
    gamma = np.concatenate([np.full(n_half, +1.0 / n_half),
                            np.full(n_half, -1.0 / n_half)])

    print(f"vortex dipole: {len(pos)} vortices "
          f"(±1 net circulation per cloud)")

    # --- verify the FMM velocities against the O(N²) sum --------------------
    z = pos[:, 0] + 1j * pos[:, 1]
    t0 = time.perf_counter()
    w_fmm = fmm_field(pos, gamma, p=8)
    t_fmm = time.perf_counter() - t0
    t0 = time.perf_counter()
    w_dir = _direct_field(z, z, gamma)
    t_dir = time.perf_counter() - t0
    err = np.abs(w_fmm - w_dir).max() / np.abs(w_dir).max()
    print(f"FMM field: {t_fmm:.2f}s vs direct {t_dir:.2f}s, "
          f"rel err {err:.1e}")

    # --- integrate: the dipole should translate along +y --------------------
    print("\nintegrating (forward Euler, dt=0.02):")
    p_now = pos.copy()
    for step in range(4):
        v = vortex_velocities(p_now, gamma)
        p_now = p_now + 0.02 * v
        centroid_a = p_now[:n_half].mean(axis=0)
        centroid_b = p_now[n_half:].mean(axis=0)
        sep = np.linalg.norm(centroid_a - centroid_b)
        print(f"  step {step + 1}: cloud centers y = "
              f"{centroid_a[1]:+.4f} / {centroid_b[1]:+.4f}, "
              f"separation {sep:.3f}")
    drift = p_now.mean(axis=0) - pos.mean(axis=0)
    print(f"\ndipole self-advection: net displacement "
          f"({drift[0]:+.4f}, {drift[1]:+.4f}) — translation along y, "
          f"as ideal-fluid theory predicts.")


if __name__ == "__main__":
    main()
