"""repro — a Python reproduction of *Portal: A High-Performance Language
and Compiler for Parallel N-body Problems* (IPPS 2019).

The public surface mirrors the paper's embedded DSL::

    from repro import Storage, Var, PortalExpr, PortalOp, PortalFunc, sqrt, pow

    query = Storage("query.csv")
    reference = Storage("reference.csv")
    expr = PortalExpr("nearest-neighbor")
    expr.addLayer(PortalOp.FORALL, query)
    expr.addLayer(PortalOp.ARGMIN, reference, PortalFunc.EUCLIDEAN)
    expr.execute()
    output = expr.getOutput()

Higher-level problem wrappers (k-NN, KDE, range search, Hausdorff, EMST,
EM, 2-point correlation, naive Bayes, Barnes-Hut) live in
:mod:`repro.problems`.
"""

from .dsl import (
    BASE_METRICS, CompileError, Expr, ExecutionError, Indicator, KernelError,
    Layer, MetricKernel, OpCategory, OperatorError, ParseError, PortalError,
    PortalExpr, PortalFunc, PortalOp, SpecificationError, Storage,
    StorageError, Var, absval, dim_max, dim_sum, exp, indicator, log,
    normalize_kernel, op_info, operator_table, pow, sqrt,
)

__version__ = "1.0.0"

__all__ = [
    "Storage", "Var", "Expr", "PortalExpr", "PortalOp", "PortalFunc",
    "OpCategory", "MetricKernel", "Layer", "Indicator",
    "sqrt", "pow", "exp", "log", "absval", "dim_sum", "dim_max", "indicator",
    "normalize_kernel", "op_info", "operator_table", "BASE_METRICS",
    "PortalError", "SpecificationError", "StorageError", "KernelError",
    "OperatorError", "CompileError", "ParseError", "ExecutionError",
    "__version__",
]
