"""``python -m repro`` — the Portal language command line."""

from .cli import main

raise SystemExit(main())
