"""Portal backend: layout selection, fast math, code generation, the IR
interpreter and the compilation driver (paper sections IV-E and IV-F)."""

from .cache import cache_stats, clear_caches
from .fastmath import fast_inverse_sqrt, fast_inverse_sqrt32, fast_sqrt
from .layout import COLUMN_MAJOR_MAX_DIM, Layout, choose_layout
from .state import Output, State, allocate_state

#: Codegen-backend registry names re-exported lazily: backends.py pulls
#: in codegen → IR → DSL, which imports *this* package for Layout, so an
#: eager import here would be circular.
_LAZY = {
    "Backend": "backends", "NumpyBackend": "backends",
    "get_backend": "backends", "register_backend": "backends",
    "resolve_codegen_backend": "backends", "CODEGEN_BACKENDS": "backends",
    "NativeBackend": "native", "native_available": "native",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{mod}", __name__), name)

__all__ = [
    "fast_inverse_sqrt", "fast_inverse_sqrt32", "fast_sqrt",
    "Layout", "choose_layout", "COLUMN_MAJOR_MAX_DIM",
    "Output", "State", "allocate_state",
    "clear_caches", "cache_stats",
    "Backend", "NumpyBackend", "NativeBackend", "get_backend",
    "register_backend", "resolve_codegen_backend", "CODEGEN_BACKENDS",
    "native_available",
]
