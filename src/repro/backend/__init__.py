"""Portal backend: layout selection, fast math, code generation, the IR
interpreter and the compilation driver (paper sections IV-E and IV-F)."""

from .cache import cache_stats, clear_caches
from .fastmath import fast_inverse_sqrt, fast_inverse_sqrt32, fast_sqrt
from .layout import COLUMN_MAJOR_MAX_DIM, Layout, choose_layout
from .state import Output, State, allocate_state

__all__ = [
    "fast_inverse_sqrt", "fast_inverse_sqrt32", "fast_sqrt",
    "Layout", "choose_layout", "COLUMN_MAJOR_MAX_DIM",
    "Output", "State", "allocate_state",
    "clear_caches", "cache_stats",
]
