"""Pluggable codegen backends (ROADMAP item 2, paper's LLVM backend).

The code generator is split behind a small :class:`Backend` interface —
modeled on the slope ``Backend`` objects (a dtype map, per-kernel
codegen, and a compile/bind step as swappable methods) — so the
vectorised NumPy emitter (:mod:`repro.backend.codegen`) is one *target*
among several rather than the only lowering:

* ``numpy`` — the default: vectorised NumPy source, ``compile()`` +
  ``exec``.  It is also the **differential reference** every other
  backend is held to (:mod:`tests.backend.test_backend_differential`).
* ``native`` — Numba-``@njit`` per-pair scalar kernels for the hot
  leaf-level functions (BaseCase, the grouped epoch base case,
  ComputeApprox), falling back to the NumPy kernels — counted under
  ``backend.native.fallback``, never fatal — when numba is not
  importable or a kernel uses an unsupported construct
  (:mod:`repro.backend.native`).
* ``auto`` — resolves to ``native`` only when numba is importable *and*
  the problem is large enough (``nq * nr`` at or above
  :data:`AUTO_NATIVE_MIN_PAIRS`) for the one-off JIT warm-up to
  amortise; everything smaller stays on ``numpy``.

A backend owns three swappable steps:

``emit(spec)``
    CodegenSpec → ``(source, code)``.  Pure function of the spec, so the
    result is artifact-cacheable; the artifact key includes the backend
    name (a native artifact must never collide with a NumPy one).
``bind(source, code, bindings)``
    Execute the emitted code against a closure environment and return
    :class:`~repro.backend.codegen.GeneratedKernels`.  This is where the
    native backend compiles/warms its JIT kernels (once per process —
    worker processes rebuild from the cached source and warm locally,
    timed under ``backend.native.compile_s``).
``dtype_map``
    Logical → physical dtype mapping for emitted arrays.
"""

from __future__ import annotations

import numpy as np

from ..dsl.errors import SpecificationError
from ..observe import contribute
from .codegen import CodegenSpec, GeneratedKernels, bind_kernels, emit

__all__ = [
    "Backend", "NumpyBackend", "get_backend", "register_backend",
    "CODEGEN_BACKENDS", "resolve_codegen_backend", "AUTO_NATIVE_MIN_PAIRS",
]

#: Requestable values of ``CompileOptions.codegen`` (``auto`` resolves
#: to one of the concrete registry names before the artifact is keyed).
CODEGEN_BACKENDS = ("numpy", "native", "auto")

#: ``codegen='auto'`` routes to the native backend only at or above this
#: many candidate pairs (``nq * nr``).  Below it the JIT warm-up
#: (hundreds of milliseconds the first time a kernel shape is seen)
#: dominates any per-pair win; above it the measured native speedup on
#: the Table IV scalar-kernel configs (see BENCH_native.json) pays for
#: the warm-up many times over.  Patchable in tests.
AUTO_NATIVE_MIN_PAIRS = 1 << 21


class Backend:
    """A codegen target: dtype map + per-kernel emission + bind step.

    Subclasses override :meth:`emit_source` (and usually :meth:`bind`);
    :meth:`emit` is the shared source → code-object compile step.
    """

    #: registry name (also the ``CompileOptions.codegen`` value)
    name: str = "abstract"

    #: logical → physical dtype map for emitted kernel arrays
    dtype_map: dict[str, np.dtype] = {
        "real": np.dtype(np.float64),
        "index": np.dtype(np.int64),
        "code": np.dtype(np.int8),
    }

    def supports(self, spec: CodegenSpec) -> str | None:
        """``None`` when this backend can lower *spec* natively, else a
        short human-readable reason (used for fallback accounting)."""
        return None

    def emit_source(self, spec: CodegenSpec) -> str:
        raise NotImplementedError

    def emit(self, spec: CodegenSpec) -> tuple[str, object]:
        """Emit kernel source and compile it to a code object (pure
        function of the spec — cacheable, re-bindable)."""
        source = self.emit_source(spec)
        code = compile(source, f"<portal-{self.name}-{id(spec)}>", "exec")
        return source, code

    def bind(self, source: str, code, bindings: dict) -> GeneratedKernels:
        """Execute emitted code against the data/state bindings."""
        return bind_kernels(source, code, bindings)


class NumpyBackend(Backend):
    """The default target: vectorised NumPy source (paper section IV-F),
    delegating to :mod:`repro.backend.codegen`."""

    name = "numpy"

    def emit(self, spec: CodegenSpec) -> tuple[str, object]:
        return emit(spec)

    def emit_source(self, spec: CodegenSpec) -> str:
        return emit(spec)[0]


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecificationError(
            f"unknown codegen backend {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def resolve_codegen_backend(requested: str, nq: int, nr: int) -> str:
    """Resolve a requested ``codegen`` option to a concrete registry name.

    * ``numpy`` stays ``numpy``.
    * ``native`` degrades to ``numpy`` when no native JIT is available
      (numba not importable), counted under ``backend.native.fallback``.
    * ``auto`` picks ``native`` only when it is available *and* the
      problem has at least :data:`AUTO_NATIVE_MIN_PAIRS` candidate
      pairs.

    Resolution happens **before** the artifact key is computed, so the
    key always names the concrete backend that emitted the artifact.
    """
    from .native import native_available

    if requested == "numpy":
        return "numpy"
    if requested == "native":
        if not native_available():
            contribute({"backend.native.fallback": 1})
            return "numpy"
        return "native"
    if requested == "auto":
        if native_available() and nq * nr >= AUTO_NATIVE_MIN_PAIRS:
            return "native"
        return "numpy"
    raise SpecificationError(
        f"unknown codegen backend {requested!r}; "
        f"expected one of {CODEGEN_BACKENDS}"
    )


register_backend(NumpyBackend())

# The native backend registers itself on import (kept in its own module
# so the numba probe and the scalar emitter stay out of the hot path).
from . import native as _native  # noqa: E402,F401  (registration side effect)
