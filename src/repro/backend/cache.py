"""Execution caches: compiled-artifact and tree reuse across ``execute()``.

The "serve heavy repeated traffic" half of the roadmap: a service
answering many queries against the same dataset should pay for rule
generation, IR optimisation, code generation and tree construction
*once*.  Two bounded LRU caches, both content-addressed:

* the **program cache** (:mod:`repro.backend.jit`) memoises compiled
  artifacts keyed on a canonical description of the layer chain (operator
  names, unparsed kernel expressions, parameter values, dataset
  fingerprints) plus the compile-relevant ``CompileOptions`` fields —
  runtime-only knobs (``parallel``, ``workers``, ``min_tasks``,
  ``traversal``) are deliberately excluded so toggling them still hits;
* the **tree cache** memoises :class:`~repro.trees.node.ArrayTree`
  builds keyed on (data fingerprint, tree kind, leaf size, split,
  weights fingerprint), so *different problems* over the same dataset
  share one tree build.

Dataset identity is a BLAKE2 content fingerprint, so rebuilding a
`Storage` around the same values still hits, and mutating values
(iterative problems like k-means and EM build a fresh Storage per step;
in-place writers call ``Storage.mark_mutated()``) correctly misses.
Fingerprints are memoized per Storage, so the *hit* path never re-hashes
the dataset.  Hits and misses are
observable through the ``repro.observe`` counters ``cache.compile.hit``
/ ``cache.compile.miss`` / ``cache.tree.hit`` / ``cache.tree.miss``
(see docs/performance.md), and ``CompileOptions(cache=False)`` bypasses
both caches entirely.

Cached objects are safe to share: traversals never mutate tree arrays,
and every per-run accumulator is allocated fresh per
:class:`CompiledProgram` instantiation.
"""

from __future__ import annotations

import enum
import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..observe import contribute
from ..trees import build_tree

__all__ = [
    "LRUCache", "MISSING", "UncacheableParamError", "array_fingerprint",
    "freeze", "cached_build_tree", "cached_build_subset_tree",
    "program_cache", "tree_cache", "clear_caches", "cache_stats",
]

#: Sentinel distinguishing "key absent" from "cached value is None" in
#: :meth:`LRUCache.get` — a legitimately-``None`` artifact must not look
#: like a miss (which would force a recompile on every call).
MISSING = object()


class UncacheableParamError(TypeError):
    """A parameter value has no stable content identity to key on.

    Raised by :func:`freeze` instead of falling back to ``repr(value)``:
    default object reprs embed memory addresses, so they cause spurious
    misses at best and — after the allocator reuses an address for a
    *different* stateful object — false cache **hits** at worst.
    Callers treat the program as uncacheable (counted under
    ``cache.compile.uncacheable``).
    """


def array_fingerprint(arr) -> tuple | None:
    """Content fingerprint of an ndarray: (BLAKE2 digest, shape, dtype).

    O(n) in the array size; :meth:`repro.dsl.storage.Storage.fingerprint`
    memoizes this per Storage so repeated cache-key computations (the
    hit path) do not re-hash — and non-C-contiguous inputs are not
    re-copied — on every ``execute()``.
    """
    if arr is None:
        return None
    a = np.ascontiguousarray(arr)
    digest = hashlib.blake2b(a.data, digest_size=16).hexdigest()
    return (digest, a.shape, str(a.dtype))


def freeze(value):
    """Recursively convert a parameter value to a hashable cache-key part.

    Every returned part is derived from the value's *contents* (type +
    structural data), never from object identity.  Values with no stable
    content key raise :class:`UncacheableParamError` — the caller must
    skip the cache rather than risk an address-based collision.
    """
    if isinstance(value, np.ndarray):
        return ("ndarray", array_fingerprint(value))
    if isinstance(value, np.generic):
        return ("npscalar", value.dtype.str, value.item())
    if isinstance(value, dict):
        return tuple(sorted(((k, freeze(v)) for k, v in value.items()),
                            key=repr))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((freeze(v) for v in value), key=repr)))
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return value
    if isinstance(value, enum.Enum):
        return ("enum", type(value).__qualname__, value.name)
    raise UncacheableParamError(
        f"cannot build a content-addressed cache key for "
        f"{type(value).__qualname__!r} values; the program will run "
        f"uncached"
    )


class LRUCache:
    """A small thread-safe LRU map (no TTL: entries are content-addressed,
    so staleness is impossible — only capacity eviction)."""

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, default=None):
        """Return the cached value, or ``default`` when absent.

        Pass :data:`MISSING` as the default to distinguish "key absent"
        from "cached value is None" — internal callers do, so a
        legitimately-``None`` artifact still counts as a hit.
        """
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                return default
            self._data.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def pop(self, key, default=None):
        """Remove and return the cached value (``default`` when absent)."""
        with self._lock:
            return self._data.pop(key, default)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


#: Version prefix of the compiled-artifact key schema.  Bumped whenever
#: the pass pipeline or artifact layout changes shape (new passes, new
#: key fields), so a process that hot-reloads compiler modules can never
#: serve an artifact built by an older pipeline.
#: v4: pluggable codegen backends — the key carries the resolved
#: codegen backend name, so a native artifact never collides with a
#: NumPy one.
#: v5: sharded reference layout — the key carries the resolved shard
#: count, and shard artifacts hold per-shard trees/bindings that an
#: unsharded artifact of the same program must never alias.
#: v6: incremental trees — mutated datasets re-key through the same
#: fingerprint scheme, but artifacts now reference trees that may have
#: been produced by the refit path; the bump keeps any hot-reloading
#: process from pairing a new-layout tree with an old artifact.
ARTIFACT_SCHEMA = 6

#: Compiled-artifact cache (see :mod:`repro.backend.jit`).
program_cache = LRUCache(maxsize=32)
#: Tree-build cache, shared across problems on the same dataset.
tree_cache = LRUCache(maxsize=16)


def cached_build_tree(
    kind: str,
    points: np.ndarray,
    leaf_size: int,
    weights: np.ndarray | None,
    split: str,
    enabled: bool = True,
    storage=None,
):
    """:func:`repro.trees.build_tree` behind the content-addressed cache.

    When ``storage`` is the :class:`~repro.dsl.storage.Storage` whose own
    ``data`` array is being indexed (the compiler passes it exactly
    then), a content-key miss first tries the **incremental path**: if a
    live tree was built over an earlier version of the same Storage and
    the Storage's mutation log covers the gap, the old tree is
    snapshotted and the deltas are replayed through the ``ArrayTree``
    mutation API (``cache.tree.refit``) — orders of magnitude cheaper
    than a from-scratch build for small update fractions.  The refit
    clone is cached under the *new* content key; the old entry stays
    valid for the old key (snapshots never mutate their source).
    """
    if not enabled:
        return build_tree(kind, points, leaf_size=leaf_size,
                          weights=weights, split=split)
    own_data = storage is not None and points is storage.data
    pts_fp = (storage.fingerprint("data") if own_data
              else array_fingerprint(points))
    w_fp = (storage.fingerprint("weights")
            if own_data and weights is storage.weights
            else array_fingerprint(weights))
    key = ("tree", kind, int(leaf_size), split, pts_fp, w_fp)
    tree = tree_cache.get(key, MISSING)
    if tree is not MISSING:
        contribute({"cache.tree.hit": 1})
        if own_data:
            storage._live_trees[(kind, int(leaf_size), split)] = (
                storage.version, tree)
        return tree
    tree = _refit_live_tree(storage, kind, leaf_size, split) if own_data \
        else None
    if tree is not None:
        contribute({"cache.tree.refit": 1})
    else:
        contribute({"cache.tree.miss": 1})
        tree = build_tree(kind, points, leaf_size=leaf_size, weights=weights,
                          split=split)
    tree_cache.put(key, tree)
    if own_data:
        storage._live_trees[(kind, int(leaf_size), split)] = (
            storage.version, tree)
    return tree


def _refit_live_tree(storage, kind: str, leaf_size: int, split: str):
    """Bring a previously-built live tree up to the Storage head by
    replaying the mutation log onto a snapshot; ``None`` when there is no
    usable live tree (never built, chain broken, or replay failed)."""
    entry = storage._live_trees.get((kind, int(leaf_size), split))
    if entry is None:
        return None
    built_version, tree = entry
    deltas = storage.deltas_since(built_version)
    if not deltas:  # None (broken chain) or [] (same version: not a miss)
        return None
    clone = tree.snapshot()
    try:
        for d in deltas:
            if d.kind == "update":
                clone.update_batch(d.idx, d.points, d.weights)
            elif d.kind == "insert":
                clone.insert_batch(d.points, d.weights)
            else:
                clone.delete_batch(d.idx)
    except Exception:  # pragma: no cover - refit must never poison a build
        contribute({"cache.tree.refit_failed": 1})
        return None
    return clone


def cached_build_subset_tree(
    kind: str,
    points: np.ndarray,
    idx: np.ndarray,
    leaf_size: int,
    weights: np.ndarray | None,
    split: str,
    base_key: tuple,
    shard: tuple[int, int],
    enabled: bool = True,
):
    """:func:`repro.trees.build_subset_tree` behind the cache.

    Unlike :func:`cached_build_tree`, the key is *derived*, not content
    hashed: ``base_key`` is the parent dataset's (already memoized)
    fingerprint tuple and ``shard`` is ``(shard_index, shard_count)``.
    The shard planner is deterministic, so (parent data, planner
    parameters, shard position) identifies the subset exactly — and the
    hit path never gathers the shard rows, let alone re-hashes them,
    which is the point: an O(n) hash per shard per execute() would eat
    the build-parallelism win the shard layout exists for.
    """
    from ..trees import build_subset_tree

    if not enabled:
        return build_subset_tree(kind, points, idx, leaf_size=leaf_size,
                                 weights=weights, split=split)
    key = ("shard-tree", kind, int(leaf_size), split, base_key,
           (int(shard[0]), int(shard[1])))
    tree = tree_cache.get(key, MISSING)
    if tree is not MISSING:
        contribute({"cache.tree.hit": 1})
        return tree
    contribute({"cache.tree.miss": 1})
    tree = build_subset_tree(kind, points, idx, leaf_size=leaf_size,
                             weights=weights, split=split)
    tree_cache.put(key, tree)
    return tree


def clear_caches() -> None:
    """Drop every cached artifact, tree and published shared-memory
    block (test isolation hook).  The persistent policy store's
    in-memory view is forgotten too (the file is untouched; the next
    consult re-reads it), so tests switching ``REPRO_POLICY_PATH``
    between cases never see a stale table."""
    program_cache.clear()
    tree_cache.clear()
    from ..parallel import shm

    shm.release_shared_blocks()
    from ..policy import reset_policy_store

    reset_policy_store()


def cache_stats() -> dict:
    """Current cache occupancy, for diagnostics."""
    return {"programs": len(program_cache), "trees": len(tree_cache)}
