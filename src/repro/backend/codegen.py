"""Backend code generation (paper section IV-F).

Emits *real source code* for the three traversal functions — a vectorised
NumPy translation of the optimised Portal IR — then compiles it with
``compile()``/``exec`` and returns the callables.  This is the
reproduction's stand-in for the paper's LLVM x86 backend: the compiler
still produces an executable artifact from the IR, and the same
vectorisation decisions drive the emitted code:

* **layout** — for low-dimensional data (column-major layout) the
  dimension loop is *unrolled* in the emitted source and the middle
  (reference) loop vectorises; for high-dimensional data (row-major) the
  innermost dimension loop vectorises via a contracted ``einsum``;
* **strength reduction** — the kernel expression arrives already
  strength-reduced (chained multiplications, ``1/fast_inverse_sqrt``
  forms) and is emitted verbatim, so the generated source visibly
  contains the optimisation;
* **multi-variable filters** — ``min^k``-style operators keep a sorted
  k-array per query, merged with each leaf batch, exactly the ordered
  array the paper describes.

The generated source is kept on the compiled program for inspection
(``PortalExpr.generated_source()``), playing the role of an LLVM IR dump.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..dsl.errors import CompileError
from ..dsl.expr import BinOp, Call, Const, Expr, Indicator, Neg
from ..dsl.ops import MAX_LIKE, MIN_LIKE, PortalOp, op_info
from ..ir.nodes import IRCall, LoadExpr, SymRef
from ..observe import span
from ..rules.spec import RuleSpec
from .fastmath import fast_inverse_sqrt
from .layout import Layout

__all__ = [
    "CodegenSpec", "GeneratedKernels", "generate", "emit", "bind_kernels",
    "emit_expr", "emit_expr_vn",
]


_CALL_MAP = {
    "sqrt": "np.sqrt",
    "exp": "np.exp",
    "log": "np.log",
    "abs": "np.abs",
    "pow": "np.power",
    "max": "np.maximum",
    "min": "np.minimum",
    "fast_inverse_sqrt": "finvsqrt",
}


def emit_expr(e: Expr, var_map: dict[str, str],
              _names: dict[int, str] | None = None) -> str:
    """Emit NumPy source for an IR expression.

    ``_names`` maps ``id(node)`` to an already-materialised temporary —
    the value-numbering hook of :func:`emit_expr_vn`.
    """
    if _names is not None:
        hit = _names.get(id(e))
        if hit is not None:
            return hit
    if isinstance(e, SymRef):
        try:
            return var_map[e.name]
        except KeyError:
            raise CompileError(f"no binding for IR symbol {e.name!r}") from None
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, BinOp):
        return (f"({emit_expr(e.lhs, var_map, _names)} {e.op} "
                f"{emit_expr(e.rhs, var_map, _names)})")
    if isinstance(e, Neg):
        return f"(-({emit_expr(e.operand, var_map, _names)}))"
    if isinstance(e, (IRCall, Call)):
        args = e.args if isinstance(e, IRCall) else (e.operand,)
        fn = _CALL_MAP.get(e.func)
        if fn is None:
            raise CompileError(f"cannot emit IR function {e.func!r}")
        return f"{fn}({', '.join(emit_expr(a, var_map, _names) for a in args)})"
    if isinstance(e, Indicator):
        lhs = emit_expr(e.lhs, var_map, _names)
        rhs = emit_expr(e.rhs, var_map, _names)
        return f"np.multiply(({lhs}) {e.op} ({rhs}), 1.0)"
    if isinstance(e, LoadExpr):
        idx = ", ".join(emit_expr(i, var_map, _names) for i in e.indices)
        return f"{e.array}[{idx}]"
    raise CompileError(f"cannot emit expression node {type(e).__name__}")


def _shared_subtrees(e: Expr) -> list[Expr]:
    """Non-leaf sub-tree objects referenced more than once in *e*, in
    post-order (inner shared trees before the trees that contain them)."""
    counts: dict[int, int] = {}
    order: list[Expr] = []

    def visit(n: Expr):
        if not n.children():
            return
        seen = counts.get(id(n), 0)
        counts[id(n)] = seen + 1
        if seen:
            return
        for c in n.children():
            visit(c)
        order.append(n)

    visit(e)
    return [n for n in order if counts[id(n)] > 1]


def emit_expr_vn(e: Expr, var_map: dict[str, str],
                 prefix: str = "_vn") -> tuple[list[str], str]:
    """Value-numbering-aware emission: sub-trees referenced more than
    once by object identity (strength reduction's shared pow-chain
    squares) are materialised once into ``<prefix><N>`` temporaries.

    Returns ``(assignments, source)`` where ``assignments`` are
    unindented ``name = expr`` lines to emit before using ``source``.
    For trees without sharing this is exactly :func:`emit_expr`.
    """
    names: dict[int, str] = {}
    assigns: list[str] = []
    for i, node in enumerate(_shared_subtrees(e), 1):
        name = f"{prefix}{i}"
        assigns.append(f"{name} = {emit_expr(node, var_map, names)}")
        names[id(node)] = name
    return assigns, emit_expr(e, var_map, names)


@dataclass
class CodegenSpec:
    """Everything the generator needs to emit a problem's kernels."""

    dim: int
    layout: str
    base: str
    g_ir: Expr                      # strength-reduced kernel body over SymRef('t')
    monotone: str | None            # 'increasing' | 'decreasing' | None
    outer_op: PortalOp = PortalOp.FORALL
    inner_op: PortalOp = PortalOp.SUM
    k: int | None = None
    rule: RuleSpec | None = None
    weighted: bool = False
    same_tree: bool = False
    exclude_self: bool = False
    is_indicator: bool = False
    #: self-exclusion by *identity remap* instead of position: the
    #: reference side is a shard of the query dataset with its own tree
    #: permutation, so "same point" can no longer be detected as "same
    #: position".  The bound array ``RSELF`` maps each reference-tree
    #: position to the query-tree position of the same original point
    #: (−1-free by construction; every shard point exists in the query
    #: tree).  Set by the shard compiler (:mod:`repro.parallel.shard`);
    #: mutually exclusive with the positional ``same_tree`` exclusion.
    self_map: bool = False


@dataclass
class GeneratedKernels:
    """Compiled closures plus the emitted source for inspection.

    The scalar closures (``prune_or_approx``, ``pair_min_dist``) drive
    the nearest-first stack traversal; the ``*_batch`` closures operate
    on whole frontier arrays of node-id pairs and drive the batched
    frontier engine (:mod:`repro.traversal.batched`).  ``classify_batch``
    is only emitted for *stateless* rules (indicator / approximation).
    Bound rules (k-NN, Hausdorff) get the epoch-oriented trio instead —
    ``bound_key_batch`` / ``classify_bound_batch`` / ``base_case_group``
    — which drive the bound-aware batched engine
    (:mod:`repro.traversal.bounded_batched`) against a signed per-query
    bound array ``qbound``.
    """

    source: str
    namespace: dict
    base_case: Callable
    prune_or_approx: Callable | None
    pair_min_dist: Callable | None
    classify_batch: Callable | None = None
    apply_action: Callable | None = None
    pair_min_dist_batch: Callable | None = None
    bound_key_batch: Callable | None = None
    classify_bound_batch: Callable | None = None
    base_case_group: Callable | None = None
    #: compiled code object, re-executable against fresh bindings (the
    #: artifact the execution cache stores)
    code: object | None = None


# ---------------------------------------------------------------------------
# pairwise kernel emission
# ---------------------------------------------------------------------------

def _pairwise_source(spec: CodegenSpec) -> str:
    lines = ["def _pairwise(qs, qe, rs, re):"]
    b = lines.append
    if spec.layout == Layout.COLUMN:
        b("    # column-major layout: dimension loop unrolled, the middle")
        b("    # (reference) loop vectorises across points")
        b("    dq = QCOL[:, qs:qe]")
        b("    dr = RCOL[:, rs:re]")
        for d in range(spec.dim):
            b(f"    _d{d} = dq[{d}][:, None] - dr[{d}][None, :]")
            if spec.base == "sqeuclidean":
                term = f"_d{d} * _d{d}"
            else:
                term = f"np.abs(_d{d})"
            if d == 0:
                b(f"    t = {term}")
            elif spec.base == "chebyshev":
                b(f"    np.maximum(t, {term}, out=t)")
            else:
                b(f"    t = t + {term}")
    else:
        b("    # row-major layout: the innermost dimension loop vectorises")
        if spec.base == "sqeuclidean" and not spec.is_indicator:
            # Norm expansion ‖q−r‖² = ‖q‖² + ‖r‖² − 2 q·r: one GEMM per
            # leaf pair instead of a broadcast difference tensor — the
            # backend's high-dimensional vectorisation strategy.
            # (Comparative kernels keep the exact difference form below:
            # a count must not flip on ~1e-12 cancellation at the
            # threshold.)
            b("    t = QN2[qs:qe, None] + RN2[None, rs:re] "
              "- 2.0 * (QROW[qs:qe] @ RROW[rs:re].T)")
            b("    np.maximum(t, 0.0, out=t)")
        elif spec.base == "sqeuclidean":
            b("    diff = QROW[qs:qe, None, :] - RROW[None, rs:re, :]")
            b("    t = np.einsum('ijk,ijk->ij', diff, diff)")
        elif spec.base == "manhattan":
            b("    diff = QROW[qs:qe, None, :] - RROW[None, rs:re, :]")
            b("    t = np.abs(diff).sum(axis=-1)")
        else:
            b("    diff = QROW[qs:qe, None, :] - RROW[None, rs:re, :]")
            b("    t = np.abs(diff).max(axis=-1)")
    pre, g_src = emit_expr_vn(spec.g_ir, {"t": "t"})
    for assign in pre:
        b(f"    {assign}")
    b(f"    v = {g_src}")
    b("    return v")
    return "\n".join(lines)


def _point_to_centroid(spec: CodegenSpec, centroid_arr: str) -> list[str]:
    """Source lines computing ``tc``: base distance from queries [s:e) to a
    reference-node centroid (used by ComputeApprox)."""
    out = [
        f"    c = {centroid_arr}[ri]",
        "    dqc = QROW[s:e] - c",
    ]
    if spec.base == "sqeuclidean":
        out.append("    tc = np.einsum('ij,ij->i', dqc, dqc)")
    elif spec.base == "manhattan":
        out.append("    tc = np.abs(dqc).sum(axis=1)")
    else:
        out.append("    tc = np.abs(dqc).max(axis=1)")
    return out


# ---------------------------------------------------------------------------
# base-case emission (operator update templates)
# ---------------------------------------------------------------------------

def _exclusion_value(op: PortalOp) -> str:
    if op in MIN_LIKE:
        return "np.inf"
    if op in MAX_LIKE:
        return "-np.inf"
    if op is PortalOp.PROD:
        return "1.0"
    return "0.0"  # SUM / UNION / UNIONARG / FORALL


def _base_case_source(spec: CodegenSpec) -> str:
    op = spec.inner_op
    lines = [
        "def base_case(qs, qe, rs, re):",
        "    v = _pairwise(qs, qe, rs, re)",
    ]
    b = lines.append
    if spec.self_map:
        # Sharded reference: a self pair sits at any (query position,
        # reference position) with RSELF[r] == q — mask by identity.
        b("    v = np.where(np.arange(qs, qe)[:, None] == "
          f"RSELF[rs:re][None, :], {_exclusion_value(op)}, v)")
    elif spec.same_tree and spec.exclude_self:
        b("    if qs == rs:")
        b(f"        np.fill_diagonal(v, {_exclusion_value(op)})")

    if op is PortalOp.ARGMIN or op is PortalOp.ARGMAX:
        red, cmp = ("argmin", "<") if op is PortalOp.ARGMIN else ("argmax", ">")
        b(f"    j = v.{red}(axis=1)")
        b("    vals = v[np.arange(v.shape[0]), j]")
        b("    bb = best[qs:qe]")
        b(f"    m = vals {cmp} bb")
        b("    if m.any():")
        b("        bb[m] = vals[m]")
        b("        best_idx[qs:qe][m] = rs + j[m]")
    elif op is PortalOp.MIN:
        b("    np.minimum(best[qs:qe], v.min(axis=1), out=best[qs:qe])")
    elif op is PortalOp.MAX:
        b("    np.maximum(best[qs:qe], v.max(axis=1), out=best[qs:qe])")
    elif op in (PortalOp.KARGMIN, PortalOp.KARGMAX):
        b("    # ordered k-array merge (sorted filter of section IV-F):")
        b("    # argpartition selects the k winners, then only those sort")
        b("    cand_v = np.concatenate([best[qs:qe], v], axis=1)")
        b("    cand_i = np.concatenate([best_idx[qs:qe], "
          "np.broadcast_to(np.arange(rs, re), v.shape)], axis=1)")
        key = "cand_v" if op is PortalOp.KARGMIN else "-cand_v"
        b(f"    part = np.argpartition({key}, K - 1, axis=1)[:, :K]")
        b("    vals = np.take_along_axis(cand_v, part, axis=1)")
        b("    idxs = np.take_along_axis(cand_i, part, axis=1)")
        keyv = "vals" if op is PortalOp.KARGMIN else "-vals"
        b(f"    order = np.argsort({keyv}, axis=1, kind='stable')")
        b("    best[qs:qe] = np.take_along_axis(vals, order, axis=1)")
        b("    best_idx[qs:qe] = np.take_along_axis(idxs, order, axis=1)")
    elif op in (PortalOp.KMIN, PortalOp.KMAX):
        b("    cand_v = np.concatenate([best[qs:qe], v], axis=1)")
        b("    cand_v.sort(axis=1)")
        if op is PortalOp.KMIN:
            b("    best[qs:qe] = cand_v[:, :K]")
        else:
            b("    best[qs:qe] = cand_v[:, ::-1][:, :K]")
    elif op is PortalOp.SUM:
        if spec.weighted:
            b("    acc[qs:qe] += v @ rw[rs:re]")
        else:
            b("    acc[qs:qe] += v.sum(axis=1)")
    elif op is PortalOp.PROD:
        if spec.weighted:
            raise CompileError("PROD does not support weighted references")
        b("    acc[qs:qe] *= v.prod(axis=1)")
    elif op is PortalOp.UNIONARG:
        b("    for i in range(v.shape[0]):")
        b("        nz = np.flatnonzero(v[i])")
        b("        if nz.size:")
        b("            out_lists[qs + i].append(rs + nz)")
    elif op is PortalOp.UNION:
        b("    for i in range(v.shape[0]):")
        b("        nz = np.flatnonzero(v[i])")
        b("        if nz.size:")
        b("            out_lists[qs + i].append(v[i][nz])")
    elif op is PortalOp.FORALL:
        b("    dense[qs:qe, rs:re] = v")
    else:  # pragma: no cover
        raise CompileError(f"no base-case template for {op.name}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# node-distance helpers and prune/approx emission
# ---------------------------------------------------------------------------

def _combine(base: str, vec: str) -> str:
    # sqeuclidean spelled as (v*v).sum() rather than v @ v: same reduce
    # ordering as the batched axis-1 form, so the scalar and batched
    # node-pair distances are bitwise identical (traversal order parity).
    if base == "sqeuclidean":
        return f"float(({vec} * {vec}).sum())"
    if base == "manhattan":
        return f"float({vec}.sum())"
    return f"float({vec}.max())"


def _pair_dist_source(spec: CodegenSpec) -> str:
    return textwrap.dedent(
        f"""\
        def pair_min_base_dist(qi, ri):
            gaps = np.maximum(0.0, np.maximum(rlo[ri] - qhi[qi], qlo[qi] - rhi[ri]))
            return {_combine(spec.base, 'gaps')}

        def pair_max_base_dist(qi, ri):
            spans = np.maximum(0.0, np.maximum(rhi[ri] - qlo[qi], qhi[qi] - rlo[ri]))
            return {_combine(spec.base, 'spans')}"""
    )


def _combine_batch(base: str, mat: str) -> str:
    if base == "sqeuclidean":
        return f"({mat} * {mat}).sum(axis=1)"
    if base == "manhattan":
        return f"{mat}.sum(axis=1)"
    return f"{mat}.max(axis=1)"


def _pair_dist_batch_source(spec: CodegenSpec) -> str:
    """Vectorised node-pair distance bounds over arrays of node ids —
    the decision plane of the batched frontier engine."""
    return textwrap.dedent(
        f"""\
        def pair_min_base_dist_batch(qis, ris):
            gaps = np.maximum(0.0, np.maximum(rlo[ris] - qhi[qis], qlo[qis] - rhi[ris]))
            return {_combine_batch(spec.base, 'gaps')}

        def pair_max_base_dist_batch(qis, ris):
            spans = np.maximum(0.0, np.maximum(rhi[ris] - qlo[qis], qhi[qis] - rlo[ris]))
            return {_combine_batch(spec.base, 'spans')}"""
    )


def _g_scalar_vn(spec: CodegenSpec, tvar: str,
                 prefix: str) -> tuple[list[str], str]:
    return emit_expr_vn(spec.g_ir, {"t": tvar}, prefix=prefix)


def _band_exprs(spec: CodegenSpec) -> tuple[list[str], str, str]:
    """(pre-assignments, g_lo, g_hi) over the [tmin, tmax] interval."""
    pre_min, g_min = _g_scalar_vn(spec, "tmin", "_vn_lo")
    pre_max, g_max = _g_scalar_vn(spec, "tmax", "_vn_hi")
    pre = pre_min + pre_max
    if spec.monotone == "decreasing":
        return pre, g_max, g_min
    return pre, g_min, g_max


def _approx_action_lines(spec: CodegenSpec, centroid_arr: str) -> list[str]:
    pre, g_src = _g_scalar_vn(spec, "tc", "_vn")
    lines = [
        "    s = qstart[qi]; e = qend[qi]",
        *_point_to_centroid(spec, centroid_arr),
        *(f"    {assign}" for assign in pre),
        f"    acc[s:e] += rweight[ri] * {g_src}",
    ]
    return lines


def _inside_action_lines(spec: CodegenSpec, rule: RuleSpec) -> list[str]:
    """Body lines of the indicator inside-region action (one node pair)."""
    lines: list[str] = []
    b = lines.append
    if rule.inside_action in ("count_per_query", "count_product"):
        b("    s = qstart[qi]; e = qend[qi]")
        b("    acc[s:e] += rweight[ri]")
        if spec.self_map:
            # A self pair is (query position RSELF[r]) × (reference
            # position r); RSELF values are unique, so a plain
            # fancy-indexed subtract is duplicate-free.
            b("    sp = RSELF[rstart[ri]:rend[ri]]")
            b("    m = (sp >= s) & (sp < e)")
            if spec.weighted:
                b("    acc[sp[m]] -= rw[rstart[ri]:rend[ri]][m]")
            else:
                b("    acc[sp[m]] -= 1.0")
        elif spec.same_tree and spec.exclude_self:
            b("    lo = max(s, rstart[ri]); hi = min(e, rend[ri])")
            b("    if lo < hi:")
            if spec.weighted:
                b("        acc[lo:hi] -= rw[lo:hi]")
            else:
                b("        acc[lo:hi] -= 1.0")
    elif rule.inside_action == "append_all":
        b("    s = qstart[qi]; e = qend[qi]")
        b("    idxs = np.arange(rstart[ri], rend[ri])")
        if spec.self_map:
            b("    sp = RSELF[rstart[ri]:rend[ri]]")
            b("    for i in range(s, e):")
            b("        out_lists[i].append(idxs[sp != i])")
        elif spec.same_tree and spec.exclude_self:
            b("    for i in range(s, e):")
            b("        if rstart[ri] <= i < rend[ri]:")
            b("            out_lists[i].append(idxs[idxs != i])")
            b("        else:")
            b("            out_lists[i].append(idxs)")
        else:
            b("    for i in range(s, e):")
            b("        out_lists[i].append(idxs)")
    else:  # pragma: no cover
        raise CompileError(f"unknown inside action {rule.inside_action!r}")
    return lines


def _action_source(spec: CodegenSpec) -> str | None:
    """Emit ``apply_action(qi, ri)``: the ComputeApprox / inside-region
    side effect for one node pair, shared by the scalar prune function
    and the batched engine's replay phase (so both engines apply
    bit-identical updates)."""
    rule = spec.rule
    if rule is None:
        return None
    if rule.kind == "indicator" and rule.inside_action is not None:
        body = _inside_action_lines(spec, rule)
    elif rule.kind == "approx":
        body = _approx_action_lines(spec, "rcentroid")
    else:
        return None
    return "\n".join(["def apply_action(qi, ri):", *body])


def _prune_source(spec: CodegenSpec) -> str | None:
    rule = spec.rule
    if rule is None or rule.kind == "none":
        return None
    lines = ["def prune_or_approx(qi, ri):"]
    b = lines.append

    if rule.kind in ("bound-min", "bound-max"):
        need_max = (rule.kind == "bound-min") == (spec.monotone == "decreasing")
        if need_max:
            b("    tmax = pair_max_base_dist(qi, ri)")
            pre, gband = _g_scalar_vn(spec, "tmax", "_vn")
        else:
            b("    tmin = pair_min_base_dist(qi, ri)")
            pre, gband = _g_scalar_vn(spec, "tmin", "_vn")
        for assign in pre:
            b(f"    {assign}")
        col = ", K - 1" if (spec.k or 1) > 1 else ""
        if rule.kind == "bound-min":
            b(f"    B = best[qstart[qi]:qend[qi]{col}].max()")
            b(f"    return 1 if {gband} > B else 0")
        else:
            b(f"    B = best[qstart[qi]:qend[qi]{col}].min()")
            b(f"    return 1 if {gband} < B else 0")

    elif rule.kind == "indicator":
        opn = rule.indicator_op
        neg = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}[opn]
        # For '<'/'<=' thresholds the satisfying region is near: min-distance
        # decides all-outside, max-distance decides all-inside ('>' mirrors).
        near = opn in ("<", "<=")
        first = "pair_min_base_dist" if near else "pair_max_base_dist"
        second = "pair_max_base_dist" if near else "pair_min_base_dist"
        b(f"    t1 = {first}(qi, ri)")
        b(f"    if t1 {neg} H:")
        b("        return 1")
        if rule.inside_action is not None:
            b(f"    t2 = {second}(qi, ri)")
            b(f"    if t2 {opn} H:")
            b("        apply_action(qi, ri)")
            b("        return 2")
        b("    return 0")

    elif rule.kind == "approx":
        if rule.criterion == "band":
            b("    tmin = pair_min_base_dist(qi, ri)")
            b("    tmax = pair_max_base_dist(qi, ri)")
            pre, glo, ghi = _band_exprs(spec)
            for assign in pre:
                b(f"    {assign}")
            b(f"    if ({ghi}) - ({glo}) <= TAU:")
        else:  # mac
            b("    tmin = pair_min_base_dist(qi, ri)")
            b("    if tmin > 0.0 and rdiam2[ri] <= THETA2 * tmin:")
        b("        apply_action(qi, ri)")
        b("        return 2")
        b("    return 0")
    else:  # pragma: no cover
        raise CompileError(f"unknown rule kind {rule.kind!r}")
    return "\n".join(lines)


def _classify_batch_source(spec: CodegenSpec) -> str | None:
    """Emit ``classify_batch(qis, ris) -> int8 codes`` (0: recurse,
    1: prune, 2: approximate / inside action), classifying a whole
    frontier of node pairs in a handful of array operations.

    Only *stateless* rules classify this way: the bound rules (k-NN,
    Hausdorff) read the mutable best-value arrays, so their batch form
    classifies against a node-bound *snapshot* instead — see
    :func:`_bound_batch_source` / :func:`_base_case_group_source`.
    """
    rule = spec.rule
    if rule is None or rule.kind in ("none", "bound-min", "bound-max"):
        return None
    lines = [
        "def classify_batch(qis, ris):",
        "    codes = np.zeros(qis.shape[0], dtype=np.int8)",
    ]
    b = lines.append

    if rule.kind == "indicator":
        opn = rule.indicator_op
        neg = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}[opn]
        near = opn in ("<", "<=")
        first = "pair_min_base_dist_batch" if near else "pair_max_base_dist_batch"
        second = "pair_max_base_dist_batch" if near else "pair_min_base_dist_batch"
        b(f"    t1 = {first}(qis, ris)")
        b(f"    codes[t1 {neg} H] = 1")
        if rule.inside_action is not None:
            b(f"    t2 = {second}(qis, ris)")
            b(f"    codes[(codes == 0) & (t2 {opn} H)] = 2")
    elif rule.criterion == "band":
        b("    tmin = pair_min_base_dist_batch(qis, ris)")
        b("    tmax = pair_max_base_dist_batch(qis, ris)")
        pre, glo, ghi = _band_exprs(spec)
        for assign in pre:
            b(f"    {assign}")
        b(f"    codes[(({ghi}) - ({glo})) <= TAU] = 2")
    else:  # mac
        b("    tmin = pair_min_base_dist_batch(qis, ris)")
        b("    codes[(tmin > 0.0) & (rdiam2[ris] <= THETA2 * tmin)] = 2")
    b("    return codes")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# bound-rule batch emission (epoch engine)
# ---------------------------------------------------------------------------

def _bound_sign(rule: RuleSpec) -> str:
    """Sign that maps a bound rule onto the unified "prune iff
    key > node_bound, smaller key = more promising" convention: identity
    for ``bound-min``, negation for ``bound-max``."""
    return "" if rule.kind == "bound-min" else "-"


def _bound_batch_source(spec: CodegenSpec) -> str | None:
    """Emit ``bound_key_batch(qis, ris)`` and
    ``classify_bound_batch(keys, node_bounds)`` for bound rules.

    The key is the *signed* band edge of ``g`` over a node pair
    (``+g(t_edge)`` for bound-min, ``-g(t_edge)`` for bound-max), so
    for both rule kinds a pair is prunable iff its key exceeds the
    max-reduced signed per-query bound of its query node, and ascending
    key order is "most promising first".  Classification runs against a
    node-bound snapshot; bounds only tighten (the signed bound only
    decreases), so a stale snapshot can under-prune but never mis-prune.
    """
    rule = spec.rule
    if rule is None or rule.kind not in ("bound-min", "bound-max"):
        return None
    need_max = (rule.kind == "bound-min") == (spec.monotone == "decreasing")
    tvar = "tmax" if need_max else "tmin"
    dist_fn = ("pair_max_base_dist_batch" if need_max
               else "pair_min_base_dist_batch")
    pre, gband = _g_scalar_vn(spec, tvar, "_vn")
    sign = _bound_sign(rule)
    lines = [
        "def bound_key_batch(qis, ris):",
        f"    {tvar} = {dist_fn}(qis, ris)",
        *(f"    {assign}" for assign in pre),
        f"    return np.asarray({sign}({gband}), dtype=np.float64)",
        "",
        "",
        "def classify_bound_batch(keys, node_bounds):",
        "    return keys > node_bounds",
    ]
    return "\n".join(lines)


def _pairwise_gather_lines(spec: CodegenSpec) -> list[str]:
    """Body lines computing ``v`` for queries ``[qs, qe)`` against a
    *gathered* reference index array ``ridx`` (the multi-leaf batch of
    the epoch engine's grouped base case).  Mirrors
    :func:`_pairwise_source` with ``ridx`` fancy-indexing in place of
    the ``rs:re`` slice."""
    out: list[str] = []
    b = out.append
    if spec.layout == Layout.COLUMN:
        b("    dq = QCOL[:, qs:qe]")
        b("    dr = RCOL[:, ridx]")
        for d in range(spec.dim):
            b(f"    _d{d} = dq[{d}][:, None] - dr[{d}][None, :]")
            if spec.base == "sqeuclidean":
                term = f"_d{d} * _d{d}"
            else:
                term = f"np.abs(_d{d})"
            if d == 0:
                b(f"    t = {term}")
            elif spec.base == "chebyshev":
                b(f"    np.maximum(t, {term}, out=t)")
            else:
                b(f"    t = t + {term}")
    else:
        if spec.base == "sqeuclidean" and not spec.is_indicator:
            b("    t = QN2[qs:qe, None] + RN2[ridx][None, :] "
              "- 2.0 * (QROW[qs:qe] @ RROW[ridx].T)")
            b("    np.maximum(t, 0.0, out=t)")
        elif spec.base == "sqeuclidean":
            b("    diff = QROW[qs:qe, None, :] - RROW[ridx][None, :, :]")
            b("    t = np.einsum('ijk,ijk->ij', diff, diff)")
        elif spec.base == "manhattan":
            b("    diff = QROW[qs:qe, None, :] - RROW[ridx][None, :, :]")
            b("    t = np.abs(diff).sum(axis=-1)")
        else:
            b("    diff = QROW[qs:qe, None, :] - RROW[ridx][None, :, :]")
            b("    t = np.abs(diff).max(axis=-1)")
    pre, g_src = emit_expr_vn(spec.g_ir, {"t": "t"})
    for assign in pre:
        b(f"    {assign}")
    b(f"    v = {g_src}")
    return out


def _base_case_group_source(spec: CodegenSpec) -> str | None:
    """Emit ``base_case_group(qs, qe, ridx)``: one vectorised base case
    for a query leaf against the concatenated points of *several*
    reference leaves, merging into the best arrays and refreshing the
    signed per-query bound ``qbound`` (the value the next epoch's
    node-bound snapshot max-reduces)."""
    rule = spec.rule
    if rule is None or rule.kind not in ("bound-min", "bound-max"):
        return None
    op = spec.inner_op
    lines = ["def base_case_group(qs, qe, ridx):"]
    lines += _pairwise_gather_lines(spec)
    b = lines.append
    if spec.self_map:
        b("    v = np.where(np.arange(qs, qe)[:, None] == "
          f"RSELF[ridx][None, :], {_exclusion_value(op)}, v)")
    elif spec.same_tree and spec.exclude_self:
        b("    v = np.where(np.arange(qs, qe)[:, None] == ridx[None, :], "
          f"{_exclusion_value(op)}, v)")

    if op is PortalOp.ARGMIN or op is PortalOp.ARGMAX:
        red, cmp = ("argmin", "<") if op is PortalOp.ARGMIN else ("argmax", ">")
        b(f"    j = v.{red}(axis=1)")
        b("    vals = v[np.arange(v.shape[0]), j]")
        b("    bb = best[qs:qe]")
        b(f"    m = vals {cmp} bb")
        b("    if m.any():")
        b("        bb[m] = vals[m]")
        b("        best_idx[qs:qe][m] = ridx[j[m]]")
    elif op is PortalOp.MIN:
        b("    np.minimum(best[qs:qe], v.min(axis=1), out=best[qs:qe])")
    elif op is PortalOp.MAX:
        b("    np.maximum(best[qs:qe], v.max(axis=1), out=best[qs:qe])")
    elif op in (PortalOp.KARGMIN, PortalOp.KARGMAX):
        b("    cand_v = np.concatenate([best[qs:qe], v], axis=1)")
        b("    cand_i = np.concatenate([best_idx[qs:qe], "
          "np.broadcast_to(ridx, v.shape)], axis=1)")
        key = "cand_v" if op is PortalOp.KARGMIN else "-cand_v"
        b(f"    part = np.argpartition({key}, K - 1, axis=1)[:, :K]")
        b("    vals = np.take_along_axis(cand_v, part, axis=1)")
        b("    idxs = np.take_along_axis(cand_i, part, axis=1)")
        keyv = "vals" if op is PortalOp.KARGMIN else "-vals"
        b(f"    order = np.argsort({keyv}, axis=1, kind='stable')")
        b("    best[qs:qe] = np.take_along_axis(vals, order, axis=1)")
        b("    best_idx[qs:qe] = np.take_along_axis(idxs, order, axis=1)")
    elif op in (PortalOp.KMIN, PortalOp.KMAX):
        b("    cand_v = np.concatenate([best[qs:qe], v], axis=1)")
        b("    cand_v.sort(axis=1)")
        if op is PortalOp.KMIN:
            b("    best[qs:qe] = cand_v[:, :K]")
        else:
            b("    best[qs:qe] = cand_v[:, ::-1][:, :K]")
    else:  # pragma: no cover
        raise CompileError(f"no grouped base case for {op.name}")

    sign = _bound_sign(rule)
    col = ", K - 1" if (spec.k or 1) > 1 else ""
    b(f"    qbound[qs:qe] = {sign}best[qs:qe{col}]")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def emit(spec: CodegenSpec) -> tuple[str, object]:
    """Emit the problem's kernel source and compile it to a code object.

    Pure function of the spec — no data bindings involved — so the
    result is cacheable and re-bindable against fresh state arrays via
    :func:`bind_kernels`.
    """
    with span("codegen", layout=str(spec.layout), dim=spec.dim,
              inner_op=spec.inner_op.name) as sp:
        chunks = [
            "# Generated by the Portal backend — vectorised NumPy translation",
            f"# layout={spec.layout} base={spec.base} inner={spec.inner_op.name} "
            f"outer={spec.outer_op.name} rule="
            f"{spec.rule.kind if spec.rule else 'none'}",
            _pairwise_source(spec),
            _base_case_source(spec),
            _pair_dist_source(spec),
            _pair_dist_batch_source(spec),
        ]
        for maker in (_action_source, _prune_source, _classify_batch_source,
                      _bound_batch_source, _base_case_group_source):
            src = maker(spec)
            if src is not None:
                chunks.append(src)
        source = "\n\n".join(chunks) + "\n"
        sp.note(source_loc=source.count("\n"))
        code = compile(source, f"<portal-generated-{id(spec)}>", "exec")
    return source, code


def bind_kernels(source: str, code, bindings: dict) -> GeneratedKernels:
    """Execute emitted kernel code against a closure environment.

    ``bindings`` must provide the physical data arrays
    (``QCOL``/``QROW``/``RCOL``/``RROW``), tree metadata arrays
    (``qlo``/``qhi``/``rlo``/``rhi``/``qstart``/``qend``/``rstart``/
    ``rend``/``rcentroid``/``rweight``/``rdiam2``), state arrays
    (``best``/``best_idx``/``acc``/``out_lists``/``dense``/``qbound``),
    weights
    ``rw``, scalars ``K``/``H``/``TAU``/``THETA2``, and — for sharded
    programs emitted with ``spec.self_map`` — the reference→query
    identity remap ``RSELF``.
    """
    namespace = {"np": np, "finvsqrt": fast_inverse_sqrt}
    namespace.update(bindings)
    exec(code, namespace)
    return GeneratedKernels(
        source=source,
        namespace=namespace,
        base_case=namespace["base_case"],
        prune_or_approx=namespace.get("prune_or_approx"),
        pair_min_dist=namespace.get("pair_min_base_dist"),
        classify_batch=namespace.get("classify_batch"),
        apply_action=namespace.get("apply_action"),
        pair_min_dist_batch=namespace.get("pair_min_base_dist_batch"),
        bound_key_batch=namespace.get("bound_key_batch"),
        classify_bound_batch=namespace.get("classify_bound_batch"),
        base_case_group=namespace.get("base_case_group"),
        code=code,
    )


def generate(spec: CodegenSpec, bindings: dict) -> GeneratedKernels:
    """Emit, compile and bind the problem's kernels (one-shot form of
    :func:`emit` + :func:`bind_kernels`)."""
    source, code = emit(spec)
    return bind_kernels(source, code, bindings)
