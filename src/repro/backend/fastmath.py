"""Fast approximate math primitives (paper section IV-E).

The strength-reduction pass replaces long-latency operations with faster,
slightly less accurate versions.  The centrepiece is the bit-twiddling
*fast inverse square root* (one Newton–Raphson refinement step), the same
technique LLVM's intrinsic uses, with a relative error well under the
paper's quoted 0.17 %.  Both float32 (the classic Quake III constant) and
float64 variants are provided, vectorised over NumPy arrays.

The paper's observation about computing √x is preserved:

* ``x * finvsqrt(x)`` is faster but returns NaN at x = 0;
* ``1 / finvsqrt(x)`` returns 0 at x = 0 as desired — Portal emits this
  form, and so do we (:func:`fast_sqrt`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fast_inverse_sqrt", "fast_inverse_sqrt32", "fast_sqrt",
    "FINVSQRT_MAGIC64", "FINVSQRT_MAGIC32",
]

FINVSQRT_MAGIC64 = np.uint64(0x5FE6EB50C7B537A9)
FINVSQRT_MAGIC32 = np.uint32(0x5F3759DF)


def fast_inverse_sqrt(x) -> np.ndarray:
    """Approximate ``1/sqrt(x)`` for float64 input (two Newton steps).

    Relative error is below 5e-6; non-positive inputs return ``inf`` (so
    that ``1/finvsqrt(0) == 0``, matching the exact ``sqrt`` at zero).
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x > 0
    xv = x[pos] if x.ndim else (x if bool(pos) else None)
    if x.ndim == 0:
        if not bool(pos):
            return np.float64(np.inf)
        i = np.uint64(np.float64(x).view(np.uint64))
        i = FINVSQRT_MAGIC64 - (i >> np.uint64(1))
        y = i.view(np.float64)
        xh = 0.5 * float(x)
        y = y * (1.5 - xh * y * y)
        y = y * (1.5 - xh * y * y)
        return np.float64(y)
    i = xv.view(np.uint64)
    i = FINVSQRT_MAGIC64 - (i >> np.uint64(1))
    y = i.view(np.float64)
    xh = 0.5 * xv
    y = y * (1.5 - xh * y * y)
    y = y * (1.5 - xh * y * y)
    out[pos] = y
    out[~pos] = np.inf
    return out


def fast_inverse_sqrt32(x) -> np.ndarray:
    """Approximate ``1/sqrt(x)`` for float32 input (one Newton step) —
    the classic Quake III routine, ~0.17 % maximum relative error."""
    x = np.asarray(x, dtype=np.float32)
    scalar = x.ndim == 0
    x = np.atleast_1d(x)
    out = np.empty_like(x)
    pos = x > 0
    xv = x[pos]
    i = xv.view(np.uint32)
    i = FINVSQRT_MAGIC32 - (i >> np.uint32(1))
    y = i.view(np.float32)
    y = y * (np.float32(1.5) - np.float32(0.5) * xv * y * y)
    out[pos] = y
    out[~pos] = np.inf
    return out[0] if scalar else out


def fast_sqrt(x) -> np.ndarray:
    """``sqrt(x)`` as ``1 / fast_inverse_sqrt(x)`` (0 at x = 0, no NaN)."""
    y = fast_inverse_sqrt(x)
    with np.errstate(divide="ignore"):
        return 1.0 / y
