"""Portal IR interpreter: the scalar reference executor.

Executes IR functions statement by statement with Python/NumPy scalars.
It is deliberately slow and simple — its job is to pin down the *semantics*
of the IR so that

* every optimisation pass can be tested for semantic preservation
  (interpreting the IR before and after a pass gives identical results),
* the vectorised backend can be validated against an independent
  execution path of the very same IR.

It also powers the ``backend='interp'`` execution mode for small inputs.
"""

from __future__ import annotations

import numpy as np

from ..dsl.errors import ExecutionError
from ..ir.nodes import (
    Alloc, Assign, AugAssign, Block, CallStmt, Comment, For, IfStmt,
    IRFunction, ReturnStmt, Stmt, StoreStmt, SymRef,
)
from ..observe import span

__all__ = ["interpret_function", "base_case_env", "LocatedExecutionError"]


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class LocatedExecutionError(ExecutionError):
    """Execution failure annotated with the IR statement that raised it.

    Interpreting an IR program that references an unbound symbol or an
    unknown function fails here with the offending statement rendered in
    the message — the runtime counterpart of the structural verifier's
    located :class:`~repro.ir.verify.IRVerificationError`.
    """

    def __init__(self, detail: str, stmt_src: str, function: str | None = None):
        self.detail = detail
        self.stmt_src = stmt_src
        self.function = function
        where = f" in function {function!r}" if function else ""
        super().__init__(
            f"interpreter: {detail}{where} at `{stmt_src}`"
        )


def _sorted_insert(vals: np.ndarray, args: np.ndarray | None,
                   v: float, a: float, ascending: bool) -> None:
    """Maintain the ordered k-array of section IV-F."""
    k = len(vals)
    worst = vals[k - 1]
    if ascending:
        if not v < worst and not np.isinf(worst):
            return
        pos = int(np.searchsorted(vals, v, side="right"))
    else:
        if not v > worst and not np.isinf(worst):
            return
        pos = int(np.searchsorted(-vals, -v, side="right"))
    if pos >= k:
        return
    vals[pos + 1:] = vals[pos:k - 1]
    vals[pos] = v
    if args is not None:
        args[pos + 1:] = args[pos:k - 1]
        args[pos] = a


def _exec_call(stmt: CallStmt, env: dict) -> None:
    name = stmt.func
    if name == "sorted_insert_asc":
        s1, s1a, kv, rv = stmt.args
        _sorted_insert(s1.evaluate(env), env.get("storage1_arg"),
                       float(kv.evaluate(env)), float(rv.evaluate(env)), True)
    elif name == "sorted_insert_desc":
        s1, s1a, kv, rv = stmt.args
        _sorted_insert(s1.evaluate(env), env.get("storage1_arg"),
                       float(kv.evaluate(env)), float(rv.evaluate(env)), False)
    elif name == "append":
        target, value = stmt.args
        target.evaluate(env).append(value.evaluate(env))
    elif name == "append_range":
        target, q, lo, hi = stmt.args
        arr = target.evaluate(env)
        arr.setdefault(int(q.evaluate(env)), []).extend(
            range(int(lo.evaluate(env)), int(hi.evaluate(env)))
        )
    elif name == "store_row":
        target, q, row = stmt.args
        assert isinstance(target, SymRef)
        rows = env.setdefault(f"{target.name}_rows", {})
        value = row.evaluate(env)
        rows[int(q.evaluate(env))] = (
            value.copy() if isinstance(value, np.ndarray) else list(value)
        )
    else:
        raise ExecutionError(f"interpreter: unknown call {name!r}")


def _exec_stmt(stmt: Stmt, env: dict) -> None:
    if isinstance(stmt, Comment):
        return
    if isinstance(stmt, Alloc):
        if stmt.size is None:
            env[stmt.name] = (
                float(stmt.init.evaluate(env)) if stmt.init is not None else 0.0
            )
        elif isinstance(stmt.size, SymRef) and stmt.size.name == "dynamic":
            env[stmt.name] = []
        else:
            n = int(stmt.size.evaluate(env))
            fill = float(stmt.init.evaluate(env)) if stmt.init is not None else 0.0
            env[stmt.name] = np.full(n, fill)
        return
    if isinstance(stmt, For):
        lo = int(stmt.start.evaluate(env))
        hi = int(stmt.end.evaluate(env))
        for i in range(lo, hi):
            env[stmt.var] = i
            _exec_block(stmt.body, env)
        return
    if isinstance(stmt, Assign):
        env[stmt.target] = stmt.value.evaluate(env)
        return
    if isinstance(stmt, AugAssign):
        v = stmt.value.evaluate(env)
        if stmt.index is not None:
            idx = int(stmt.index.evaluate(env))
            arr = env[stmt.target]
            arr[idx] = arr[idx] + v if stmt.op == "+" else arr[idx] * v
        else:
            cur = env[stmt.target]
            env[stmt.target] = cur + v if stmt.op == "+" else cur * v
        return
    if isinstance(stmt, StoreStmt):
        arr = env[stmt.array]
        idx = tuple(int(i.evaluate(env)) for i in stmt.indices)
        arr[idx if len(idx) > 1 else idx[0]] = stmt.value.evaluate(env)
        return
    if isinstance(stmt, IfStmt):
        if float(stmt.cond.evaluate(env)) != 0.0:
            _exec_block(stmt.then, env)
        elif stmt.orelse is not None:
            _exec_block(stmt.orelse, env)
        return
    if isinstance(stmt, CallStmt):
        _exec_call(stmt, env)
        return
    if isinstance(stmt, ReturnStmt):
        raise _Return(
            None if stmt.value is None else stmt.value.evaluate(env)
        )
    raise ExecutionError(f"interpreter: unknown statement {type(stmt).__name__}")


def _exec_block(block: Block, env: dict) -> None:
    for s in block.stmts:
        try:
            _exec_stmt(s, env)
        except (_Return, LocatedExecutionError):
            raise
        except (KeyError, ExecutionError) as err:
            # Locate the failure at the innermost statement; outer blocks
            # re-raise unchanged.  (KeyError: an unbound symbol or array.)
            from ..ir.printer import render_stmt

            detail = (f"unbound name {err.args[0]!r}"
                      if isinstance(err, KeyError) and err.args
                      else str(err).removeprefix("interpreter: "))
            raise LocatedExecutionError(detail, render_stmt(s)) from err


def interpret_function(fn: IRFunction, env: dict):
    """Execute an IR function.  Returns the explicit return value if the
    function returns one, else the mutated environment."""
    with span("interp.function", function=fn.name):
        try:
            _exec_block(fn.body, env)
        except _Return as r:
            return r.value
        except LocatedExecutionError as err:
            if err.function is None:
                raise LocatedExecutionError(
                    err.detail, err.stmt_src, fn.name
                ) from err.__cause__
            raise
        return env


def base_case_env(
    qname: str, rname: str, qdata: np.ndarray, rdata: np.ndarray,
    layout_q: str, layout_r: str, extra: dict | None = None,
) -> dict:
    """Build the interpreter environment for a BaseCase/BruteForce run on
    *flattened* IR: 1-D raveled arrays in the selected layout plus their
    symbolic strides (paper section IV-C)."""
    nq, dim = qdata.shape
    nr = rdata.shape[0]
    env: dict = {
        f"{qname}.start": 0, f"{qname}.end": nq, f"{qname}.size": nq,
        f"{rname}.start": 0, f"{rname}.end": nr, f"{rname}.size": nr,
        "dim": dim,
    }

    def bind(prefix: str, data: np.ndarray, layout: str):
        if layout == "column":
            env[f"{prefix}_data"] = np.ascontiguousarray(data.T).ravel()
            env[f"{prefix}_data.stride0"] = 1
            env[f"{prefix}_data.stride1"] = data.shape[0]
        else:
            env[f"{prefix}_data"] = data.ravel()
            env[f"{prefix}_data.stride0"] = data.shape[1]
            env[f"{prefix}_data.stride1"] = 1
        # Row-major 2-D view for vector IR functions (point_diff).
        env[f"{prefix}_rows"] = data

    bind(qname, qdata, layout_q)
    bind(rname, rdata, layout_r)
    # point_diff works on the 2-D views regardless of flattening.
    from ..ir.nodes import IR_FUNCS, _register_ir_funcs

    if not IR_FUNCS:
        _register_ir_funcs()
    env["point_diff"] = lambda Q, i, R, j: Q[int(i)] - R[int(j)]
    env[f"{qname}_data_rows"] = qdata
    env[f"{rname}_data_rows"] = rdata
    if extra:
        env.update(extra)
    return env
