"""Compilation driver: PortalExpr → CompiledProgram (paper Fig. 1).

Runs the full pipeline — classification, rule generation, tree builds,
lowering + optimisation passes, backend code generation — and returns a
:class:`CompiledProgram` whose :meth:`~CompiledProgram.run` executes the
(optionally parallel) multi-tree traversal or the generated brute force.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.linalg import cholesky, solve_triangular

from ..dsl.errors import CompileError, SpecificationError
from ..dsl.expr import Const, Expr, Indicator, Var
from ..dsl.ops import MAX_LIKE, MIN_LIKE
from ..ir.nodes import SymRef
from ..dsl.funcs import MetricKernel
from ..dsl.layer import Layer
from ..dsl.ops import PortalOp, op_info
from ..ir.lowering import kernel_to_ir, lower
from ..ir.passes import TOGGLEABLE_PASSES, PassManager
from ..ir.printer import render_program, render_stages
from ..observe import collect, contribute, span
from ..ir.strength_reduction import reduce_expr
from ..parallel import default_workers, parallel_dual_tree
from ..rules import build_rules
from ..traversal import (
    TraversalStats, batched_dual_tree_traversal,
    bounded_batched_dual_tree_traversal, dual_tree_traversal,
)
from .backends import CODEGEN_BACKENDS, get_backend, resolve_codegen_backend
from .cache import (  # noqa: F401 (program_cache re-exported for tests)
    ARTIFACT_SCHEMA, MISSING, UncacheableParamError, array_fingerprint,
    cached_build_tree, freeze, program_cache,
)
from .codegen import CodegenSpec, GeneratedKernels, bind_kernels, emit
from .layout import Layout
from .state import Output, State, allocate_state

__all__ = ["CompileOptions", "CompiledProgram", "compile_expr"]


@dataclass
class CompileOptions:
    """Execution/compilation knobs surfaced on ``PortalExpr.execute``."""

    backend: str = "vectorized"      # 'vectorized' | 'brute' | 'interp'
    #: codegen target for the emitted kernels: 'numpy' (vectorised
    #: NumPy source, the differential reference), 'native' (Numba-jitted
    #: per-pair scalar kernels, degrading gracefully to numpy when
    #: numba is unavailable) or 'auto' (native only above a measured
    #: problem-size threshold).  ``backend='numpy'|'native'|'auto'`` is
    #: accepted as an alias for ``backend='vectorized'`` plus this
    #: option; the ``REPRO_CODEGEN`` environment variable (CI matrix
    #: knob) overrides the default when the option is not passed.
    codegen: str = "numpy"
    tree: str = "kd"                 # 'kd' | 'ball' | 'octree' | 'none'
    leaf_size: int | None = None
    tau: float | None = None         # approximation threshold (band criterion)
    criterion: str = "band"          # 'band' | 'mac'
    theta: float = 0.5               # multipole acceptance parameter
    parallel: bool = False
    workers: int | None = None
    #: pin the parallel task decomposition independently of ``workers``
    #: (same tasks → bit-identical outputs across worker counts)
    min_tasks: int | None = None
    fastmath: bool = True
    exclude_self: bool | None = None  # default: True when query is reference
    #: override the dimensionality-based layout choice ('row' | 'column');
    #: exposed for the layout ablation study
    layout: str | None = None
    #: kd-tree splitting strategy ('median' — the paper's — or 'midpoint')
    split: str = "median"
    #: IR optimisation passes to skip (differential-testing knob); any
    #: subset of :data:`repro.ir.passes.TOGGLEABLE_PASSES`
    disable_passes: tuple = ()
    #: traversal engine: 'batched' classifies whole frontier arrays of
    #: node pairs per kernel call (:mod:`repro.traversal.batched`) and is
    #: the default for every problem — bound-rule problems (k-NN,
    #: Hausdorff) are routed to the epoch-based bound-aware variant
    #: (:mod:`repro.traversal.bounded_batched`, reported as
    #: ``'bounded-batched'``).  'bounded-batched' requests that variant
    #: explicitly (stateless problems still run plain batched); 'stack'
    #: forces the scalar nearest-first reference engine.
    traversal: str = "batched"
    #: reuse compiled artifacts and built trees across ``execute()``
    #: calls (content-addressed; see :mod:`repro.backend.cache`)
    cache: bool = True
    #: parallel pool backend: 'thread' | 'process' | 'auto'.  'auto'
    #: picks 'process' for the GIL-bound scalar stack engine and
    #: 'thread' for the vectorised batched engine; when the option is
    #: not passed explicitly, the ``REPRO_EXECUTOR`` environment
    #: variable (CI matrix knob) overrides the default.  Only consulted
    #: when ``parallel=True``.
    executor: str = "auto"
    #: run the structural IR verifier (:mod:`repro.ir.verify`) after
    #: lowering and after every optimisation pass.  ``None`` defers to
    #: the ``REPRO_VERIFY_IR`` environment variable (the test suites set
    #: it; benchmarks leave it off).
    verify_ir: bool | None = None
    #: sharded reference layout (:mod:`repro.parallel.shard`): partition
    #: the reference set into this many spatial shards, build one tree
    #: per shard, replicate the query tree, and combine per-shard
    #: partial results through the operator's reduction algebra.
    #: ``'auto'`` shards large reference sets one-per-worker; tree mode
    #: only (brute/interp ignore it).  When the option is not passed,
    #: the ``REPRO_SHARDS`` environment variable overrides the default.
    shards: int | str = 1
    #: self-tuning execution policy (:mod:`repro.policy`): 'static'
    #: keeps the hard-coded auto rules (the default — behaviour is
    #: bit-identical to earlier releases), 'auto' consults the persistent
    #: policy cache and falls back to the static rules on a miss,
    #: 'search' runs the budgeted measured search on a miss and persists
    #: the winner.  The policy only fills in knobs not set explicitly
    #: (via options or the REPRO_* env knobs).  ``REPRO_POLICY``
    #: overrides the default when the option is not passed.
    policy: str = "static"
    #: option names the caller pinned explicitly (options dict keys plus
    #: applied env knobs) — the knobs a policy decision must never touch
    explicit: frozenset = field(default=frozenset(), compare=False,
                                repr=False)

    @classmethod
    def from_dict(cls, options: dict) -> "CompileOptions":
        options = dict(options)
        # `backend='numpy'|'native'|'auto'` is shorthand for the default
        # execution mode with an explicit codegen target.
        if options.get("backend") in CODEGEN_BACKENDS:
            options.setdefault("codegen", options["backend"])
            options["backend"] = "vectorized"
        unknown = set(options) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise SpecificationError(
                f"unknown execute() options: {sorted(unknown)}"
            )
        opts = cls(**options)
        if "codegen" not in options:
            env = os.environ.get("REPRO_CODEGEN", "").strip()
            if env:
                opts.codegen = env
        if opts.codegen not in CODEGEN_BACKENDS:
            raise SpecificationError(
                f"unknown codegen backend {opts.codegen!r}; "
                f"expected one of {CODEGEN_BACKENDS}"
            )
        if isinstance(opts.disable_passes, str):
            opts.disable_passes = (opts.disable_passes,)
        bad = set(opts.disable_passes) - set(TOGGLEABLE_PASSES)
        if bad:
            raise SpecificationError(
                f"unknown disable_passes: {sorted(bad)}; "
                f"toggleable: {TOGGLEABLE_PASSES}"
            )
        if opts.traversal not in ("batched", "bounded-batched", "stack"):
            raise SpecificationError(
                f"unknown traversal engine {opts.traversal!r}; "
                "expected 'batched', 'bounded-batched' or 'stack'"
            )
        if "executor" not in options:
            env = os.environ.get("REPRO_EXECUTOR", "").strip()
            if env:
                opts.executor = env
        if opts.verify_ir is None:
            env = os.environ.get("REPRO_VERIFY_IR", "").strip().lower()
            opts.verify_ir = env in ("1", "true", "on", "yes")
        if opts.executor not in ("auto", "thread", "process"):
            raise SpecificationError(
                f"unknown executor {opts.executor!r}; "
                "expected 'auto', 'thread' or 'process'"
            )
        if "shards" not in options:
            env = os.environ.get("REPRO_SHARDS", "").strip()
            if env:
                opts.shards = env
        if isinstance(opts.shards, str) and opts.shards != "auto":
            try:
                opts.shards = int(opts.shards)
            except ValueError:
                raise SpecificationError(
                    f"shards must be an integer or 'auto', "
                    f"got {opts.shards!r}"
                ) from None
        if opts.shards != "auto" and (
                not isinstance(opts.shards, int) or opts.shards < 1):
            raise SpecificationError(
                f"shards must be a positive integer or 'auto', "
                f"got {opts.shards!r}"
            )
        if "policy" not in options:
            env = os.environ.get("REPRO_POLICY", "").strip()
            if env:
                opts.policy = env
        if opts.policy not in ("static", "auto", "search"):
            raise SpecificationError(
                f"unknown policy mode {opts.policy!r}; "
                "expected 'static', 'auto' or 'search'"
            )
        # Record which knobs the caller pinned: explicit options always
        # win over a policy decision, and the REPRO_* env knobs (the CI
        # matrix) count as explicit so the policy never overrides them.
        explicit = set(options) - {"policy", "explicit"}
        for name, var in (("codegen", "REPRO_CODEGEN"),
                          ("executor", "REPRO_EXECUTOR"),
                          ("shards", "REPRO_SHARDS")):
            if name not in options and os.environ.get(var, "").strip():
                explicit.add(name)
        opts.explicit = frozenset(explicit)
        return opts


def _resolve_executor(executor: str, engine: str) -> str:
    """Resolve ``executor='auto'``: the scalar stack engine is GIL-bound
    (one Python bytecode stream per task), so processes win; both batched
    engines spend their time in NumPy kernels that release the GIL, so
    threads win (no pickling, no merge copies)."""
    if executor != "auto":
        return executor
    return "process" if engine == "stack" else "thread"


def _resolve_modifier(func) -> Callable | None:
    """Resolve an outer layer's modifying function (section III-C)."""
    if func is None:
        return None
    if isinstance(func, Expr):
        fv = sorted(func.free_vars(), key=lambda v: v.name)
        if len(fv) != 1:
            raise CompileError(
                "a modifying function must be an expression in exactly one "
                "variable"
            )
        name = fv[0].name
        return lambda arr: func.evaluate({name: arr})
    if callable(func):
        return func
    raise CompileError(f"cannot use {func!r} as a modifying function")


def _whiten_transform(cov: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """The numerical optimisation of section IV-D at runtime: points are
    transformed by L⁻¹ (forward substitution against the Cholesky factor)
    so Mahalanobis distance becomes plain squared Euclidean distance."""
    cov = np.asarray(cov, dtype=np.float64)
    if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
        raise CompileError("covariance must be a square matrix")
    L = cholesky(cov + 1e-12 * np.eye(len(cov)), lower=True)
    return lambda X: solve_triangular(L, X.T, lower=True).T


@dataclass
class CompiledProgram:
    """A fully compiled Portal problem, ready to run."""

    options: CompileOptions
    layers: list[Layer]
    kernel: MetricKernel | None
    classification: object
    rule: object
    pass_manager: PassManager
    mode: str                        # 'tree' | 'brute' | 'interp'
    state: State
    kernels: GeneratedKernels | None = None
    qtree: object | None = None
    rtree: object | None = None
    qdata: np.ndarray | None = None  # brute mode: original-order data
    rdata: np.ndarray | None = None
    stats: TraversalStats | None = None
    output: Output | None = None
    extras: dict = field(default_factory=dict)
    #: wall-clock seconds per compile stage ('rules', 'lowering',
    #: 'passes', 'tree_build', 'codegen') plus 'run' after run()
    timings: dict = field(default_factory=dict)
    #: guards the mutable observability state (``timings`` / ``extras`` /
    #: ``stats``) against :meth:`stats_summary` snapshotting it while a
    #: concurrent :meth:`run` is mid-update (the serving layer reads
    #: stats from one thread while executes run on others)
    _stats_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    # -- introspection ---------------------------------------------------------
    def ir_dump(self, stage: str = "final") -> str:
        return render_program(self.pass_manager.stage(stage))

    def ir_stages(self, function: str = "BaseCase") -> str:
        return render_stages(self.pass_manager.snapshots, function)

    def generated_source(self) -> str:
        if self.kernels is None:
            raise CompileError("no generated source in interp mode")
        return self.kernels.source

    # -- execution --------------------------------------------------------------
    def run(self) -> Output:
        t0 = time.perf_counter()
        with span("run", mode=self.mode):
            out = self._run()
        with self._stats_lock:
            self.timings["run"] = time.perf_counter() - t0
            pol = self.extras.get("policy")
            stats = self.stats
        if (pol is not None and pol.get("source") == "policy-cache"
                and self.mode == "tree"):
            # Online refinement: feed the observed counters back so a
            # decision whose live profile deviates from its tuning
            # measurement is retired (marked stale → re-searched).
            from ..policy import observe_run

            nr = getattr(self.rtree, "n", None)
            if nr is None:
                nr = self.extras.get("nr", 0)
            observe_run(pol["key"], stats, self.state.nq, int(nr or 0))
        return out

    def _run(self) -> Output:
        if self.mode == "multilayer":
            from .multilayer import execute_multilayer

            self.stats = TraversalStats(base_cases=1)
            self.stats.contribute()
            self.output = execute_multilayer(
                self.layers, self.extras.get("exclude_self", False)
            )
            return self.output
        if self.mode == "interp":
            self.output = self._run_interp()
            return self.output
        if self.mode == "tree":
            self.stats = self._run_tree()
            qperm = self.qtree.perm
            # Sharded runs have no single reference tree; the combine
            # step already mapped indices to original reference ids.
            rperm = self.rtree.perm if self.rtree is not None else None
        elif self.mode == "brute":
            self.stats = self._run_brute()
            qperm = np.arange(self.state.nq)
            rperm = None
        else:
            raise CompileError(f"cannot run mode {self.mode!r}")
        self.output = self.state.finalize(qperm, rperm)
        return self.output

    def stats_summary(self) -> dict:
        """Observability summary: traversal counters with prune/approx
        rates, per-IR-pass timings and per-compile-stage timings (the
        numbers behind ``repro.cli stats`` and ``PortalExpr.stats()``).

        Safe to call while another thread is executing this program: the
        mutable state (``timings`` / ``extras`` / traversal counters) is
        snapshotted under the program's stats lock, so the summary is a
        consistent point-in-time view and never tears a dict mid-read.
        """
        with self._stats_lock:
            st = self.stats or TraversalStats()
            st_d = st.as_dict()
            extras = dict(self.extras)
            timings = dict(self.timings)
            pass_timings = dict(self.pass_manager.timings)
            bounded = (dict(extras["bounded"])
                       if "bounded" in extras else None)
            shard = dict(extras["shard"]) if "shard" in extras else None
        visited = st_d["visited"]
        summary = {
            "mode": self.mode,
            "backend": self.options.backend,
            "codegen": extras.get("codegen"),
            "tree": self.options.tree if self.mode == "tree" else None,
            "traversal_engine": extras.get("engine"),
            "executor": extras.get("executor"),
            "cache": extras.get("cache"),
            # The concrete shard count this program resolved ('auto' and
            # the REPRO_WORKERS/REPRO_SHARDS env overrides are resolved
            # per execute(), before the cache key is computed).
            "shards": extras.get("shards"),
            # How the execution configuration was resolved: the static
            # auto rules, a persistent policy-cache hit, or a fresh
            # measured search (see :mod:`repro.policy`).
            "policy": extras.get("policy", {"source": "static-auto"}),
            "tree_version": getattr(self.qtree, "version", None),
            "traversal": dict(
                st_d,
                prune_rate=st_d["pruned"] / visited if visited else 0.0,
                approx_rate=(st_d["approximated"] / visited
                             if visited else 0.0),
            ),
            "pass_timings_ms": {
                name: dt * 1e3 for name, dt in pass_timings.items()
            },
            "compile_timings_ms": {
                name: dt * 1e3 for name, dt in timings.items()
                if name != "run"
            },
            "run_ms": timings.get("run", 0.0) * 1e3,
        }
        if bounded is not None:
            summary["bounded"] = bounded
        if shard is not None:
            summary["shard"] = shard
        nq = self.state.nq
        nr = getattr(self.rtree, "n", None)
        if nr is None:
            nr = len(self.rdata) if self.rdata is not None else None
        if nr is None:
            nr = extras.get("nr")  # sharded: no single rtree
        if nr:
            summary["traversal"]["exact_pair_fraction"] = (
                st_d["base_case_pairs"] / (nq * nr)
            )
        return summary

    def _run_interp(self) -> Output:
        """Execute the final BaseCase IR through the interpreter over the
        full datasets — the slow reference backend (small inputs only;
        self-pairs are not excluded, as the scalar IR has no notion of
        storage identity)."""
        from .interp import base_case_env, interpret_function

        outer, inner = self.layers
        qname, rname = outer.storage.name, inner.storage.name
        # The IR computes the kernel itself (including the Mahalanobis
        # form), so it runs over the *original* points — unlike the fast
        # backends, which pre-whiten.
        qdata, rdata = outer.storage.data, inner.storage.data
        extra = {}
        if self.kernel is not None and self.kernel.whiten:
            cov = self.kernel.covariance
            if cov is None:
                cov = np.cov(rdata.T)
            extra["Sigma"] = np.asarray(cov, dtype=np.float64)
        env = base_case_env(
            qname, rname, qdata, rdata,
            outer.storage.layout, inner.storage.layout, extra=extra,
        )
        fn = self.pass_manager.stage("final")["BaseCase"]
        with span("interp.run", function="BaseCase"):
            interpret_function(fn, env)
        self.stats = TraversalStats(base_cases=1,
                                    base_case_pairs=len(self.qdata)
                                    * len(self.rdata))
        self.stats.contribute()
        return self._interp_output(env)

    def _interp_output(self, env: dict) -> Output:
        outer, inner = self.layers
        info = op_info(inner.op)
        nq = len(self.qdata)
        rows = env.get("storage0_rows")
        if rows is not None:
            per_query = [rows.get(i, []) for i in range(nq)]
            if inner.op in (PortalOp.UNION, PortalOp.UNIONARG):
                arrays = [np.sort(np.asarray(v, dtype=np.int64
                                             if info.returns_index
                                             else np.float64))
                          for v in per_query]
                if info.returns_index:
                    return Output(indices=arrays)
                return Output(values=arrays)
            mat = np.asarray(per_query, dtype=np.float64)
            if info.returns_index:
                return Output(indices=mat.astype(np.int64))
            return Output(values=mat)
        storage0 = env["storage0"]
        if outer.op is PortalOp.FORALL:
            if info.returns_index:
                return Output(indices=np.asarray(storage0, dtype=np.int64))
            return Output(values=np.asarray(storage0, dtype=np.float64))
        # Outer reductions lower to a scalar accumulator.
        return Output(scalar=float(storage0))

    def _run_tree(self) -> TraversalStats:
        engine = self.extras.get("engine", "stack")
        if engine != "bounded-batched":
            return self._dispatch_tree(engine)
        # Capture the epoch engine's bounded.* counters (epochs, deferred
        # prunes, bound refreshes) for stats_summary() regardless of
        # whether the caller installed a registry; everything captured is
        # re-contributed so an outer collect() still sees it.
        with collect() as bounded_counters:
            stats = self._dispatch_tree(engine)
        snap = bounded_counters.as_dict()
        self.extras["bounded"] = {
            name.split(".", 1)[1]: value
            for name, value in snap.items() if name.startswith("bounded.")
        }
        contribute(snap)
        return stats

    def _dispatch_tree(self, engine: str) -> TraversalStats:
        kk = self.kernels
        shard_exec = self.extras.get("shard_exec")
        if shard_exec is not None:
            from ..parallel.shard import run_sharded

            executor = _resolve_executor(self.options.executor, engine)
            if self.options.parallel:
                self.extras["executor"] = executor
            stats, shard_info = run_sharded(
                self.qtree, shard_exec, self.state, engine,
                parallel=self.options.parallel, executor=executor,
                workers=self.options.workers,
                min_tasks=self.options.min_tasks,
                token=self.extras.get("program_token"),
                q_bindings=self.extras.get("static_bindings"),
                source=kk.source,
                codegen_backend=self.extras.get("codegen", "numpy"),
            )
            self.extras["shard"] = shard_info
            return stats
        if self.options.parallel:
            workers = self.options.workers or default_workers()
            executor = _resolve_executor(self.options.executor, engine)
            self.extras["executor"] = executor
            if executor == "process" and workers > 1:
                from ..parallel.process_backend import (
                    parallel_dual_tree_process,
                )

                return parallel_dual_tree_process(
                    self.qtree, self.rtree, kk.source,
                    self.extras["static_bindings"], self.state,
                    nr=self.rtree.n,
                    token=self.extras.get("program_token"),
                    engine=engine, workers=workers,
                    min_tasks=self.options.min_tasks,
                    codegen_backend=self.extras.get("codegen", "numpy"),
                )
            return parallel_dual_tree(
                self.qtree, self.rtree, kk.prune_or_approx, kk.base_case,
                pair_min_dist=kk.pair_min_dist, workers=self.options.workers,
                min_tasks=self.options.min_tasks,
                engine=engine, classify_batch=kk.classify_batch,
                apply_action=kk.apply_action,
                pair_min_dist_batch=kk.pair_min_dist_batch,
                bound_key_batch=kk.bound_key_batch,
                classify_bound_batch=kk.classify_bound_batch,
                base_case_group=kk.base_case_group,
                qbound=self.state.arrays.get("qbound"),
            )
        if engine == "bounded-batched":
            return bounded_batched_dual_tree_traversal(
                self.qtree, self.rtree, kk.bound_key_batch,
                kk.classify_bound_batch, kk.base_case_group,
                self.state.arrays["qbound"],
            )
        if engine == "batched":
            return batched_dual_tree_traversal(
                self.qtree, self.rtree, kk.classify_batch, kk.apply_action,
                kk.base_case, pair_min_dist_batch=kk.pair_min_dist_batch,
            )
        return dual_tree_traversal(
            self.qtree, self.rtree, kk.prune_or_approx, kk.base_case,
            pair_min_dist=kk.pair_min_dist,
        )

    def _run_brute(self) -> TraversalStats:
        stats = TraversalStats()
        nq, nr = self.qdata.shape[0], self.rdata.shape[0]
        dim = self.qdata.shape[1]
        # Block sizes bound the broadcast temporaries (row-major forms a
        # (qB, rB, d) difference tensor).  A narrow reference side (e.g.
        # mixture components in EM) allows much taller query blocks.
        if nr <= 64:
            qB, rB = 8192, nr
        elif dim <= 4:
            qB, rB = 512, 2048
        else:
            qB, rB = 128, max(128, (4 << 20) // (8 * dim * 128))
        same = self.extras.get("same_data", False)
        if same:
            rB = qB
        bc = self.kernels.base_case
        for qs in range(0, nq, qB):
            qe = min(qs + qB, nq)
            for rs in range(0, nr, rB):
                re = min(rs + rB, nr)
                bc(qs, qe, rs, re)
                stats.base_cases += 1
                stats.base_case_pairs += (qe - qs) * (re - rs)
        stats.contribute()
        return stats

    def validate_against_brute(self) -> float:
        """Re-run the problem brute-force and return the max |Δ| between
        the two outputs (0.0 for exact pruning problems)."""
        from .jit import compile_expr  # self-import for clarity

        if self.output is None:
            self.run()
        brute = _clone_and_run(self.layers, self.options)
        return _max_output_delta(self.output, brute)


def _clone_and_run(layers: list[Layer], options: CompileOptions) -> Output:
    from ..dsl.portal_expr import PortalExpr

    pe = PortalExpr("validation")
    pe.layers = layers
    opts = {
        "backend": "brute", "fastmath": options.fastmath,
        "exclude_self": options.exclude_self,
    }
    program = compile_expr(pe, opts)
    return program.run()


def _max_output_delta(a: Output, b: Output) -> float:
    if a.scalar is not None and b.scalar is not None:
        return abs(a.scalar - b.scalar)
    av, bv = np.asarray(a.values, dtype=float), np.asarray(b.values, dtype=float)
    return float(np.max(np.abs(av - bv)))


@dataclass
class _Artifact:
    """Immutable products of one compile — everything reusable across
    executions of the same logical program.

    Mutable per-run state (accumulator arrays, output lists, the resolved
    modifier closure) is deliberately *not* here; :func:`_instantiate`
    allocates it fresh and re-binds the compiled code object against it,
    so cached programs never alias each other's results.
    """

    mode: str
    kernel: MetricKernel
    classification: object
    rule: object
    pass_manager: PassManager
    spec: CodegenSpec
    #: concrete (post-``resolve_codegen_backend``) codegen backend that
    #: emitted ``source``/``code`` — the backend that must re-bind it
    #: (here and in worker processes)
    codegen_backend: str
    source: str
    code: object
    static_bindings: dict
    qtree: object | None
    rtree: object | None
    qdata: np.ndarray | None
    rdata: np.ndarray | None
    nq: int
    nr: int
    same_data: bool
    exclude_self: bool
    #: apply the monotone kernel map at finalisation (section IV-F)
    defer_monotone: bool
    #: sharded reference layout: per-shard trees, orig-id maps and
    #: r-side bindings (:class:`repro.parallel.shard.ShardPack`); when
    #: set, ``rtree`` is None and ``static_bindings`` holds only the
    #: query-side arrays and scalars
    shard_pack: object | None = None


def _func_key(func) -> object:
    """Stable cache-key description of a layer function.

    :class:`Expr` reprs are structural (no object identity), so they are
    content keys; opaque Python callables make the program uncacheable
    (checked by the caller) and never reach this point with one.
    """
    return None if func is None else repr(func)


def _program_key(layers: list[Layer], opts: CompileOptions) -> tuple:
    """Content-addressed key of a 2-layer program's compiled artifact.

    Covers every compile-time input: per-layer operator/k/function/params
    and dataset fingerprints, the normalised kernel, and the
    CompileOptions fields that change the artifact.  Runtime-only knobs
    (``parallel``/``workers``/``min_tasks``/``traversal``/``cache``) are
    excluded so toggling them still hits.
    """
    outer, inner = layers
    same_data = outer.storage is inner.storage
    exclude_self = (
        opts.exclude_self if opts.exclude_self is not None else same_data
    )
    kern = inner.metric_kernel
    layer_parts = tuple(
        (
            layer.op.name,
            layer.k,
            _func_key(layer.func),
            freeze(layer.params) if layer.params else None,
            layer.storage.fingerprint("data"),
            layer.storage.fingerprint("weights"),
            str(layer.storage.layout),
        )
        for layer in layers
    )
    return (
        ARTIFACT_SCHEMA,
        layer_parts,
        (kern.base, repr(kern.g), kern.whiten, freeze(kern.covariance)),
        opts.backend, opts.codegen, opts.tree, opts.leaf_size, opts.tau,
        opts.criterion,
        opts.theta, opts.fastmath, opts.layout, opts.split,
        tuple(sorted(opts.disable_passes)), bool(opts.verify_ir),
        same_data, exclude_self, opts.shards,
    )


def compile_expr(pexpr, options: dict) -> CompiledProgram:
    """Compile a validated :class:`~repro.dsl.portal_expr.PortalExpr`.

    Two-layer programs with a lowered kernel are served from the
    execution cache when possible: a hit skips rule generation, IR
    passes, tree construction and code generation, and only re-binds
    fresh state arrays (observable as ``cache.compile.hit``).
    """
    opts = CompileOptions.from_dict(options)
    layers = pexpr.layers
    if len(layers) > 2:
        return _compile_multilayer(pexpr, opts)
    if layers[1].metric_kernel is None:
        return _compile_external_expr(pexpr, opts)

    # Self-tuning policy (mode 'auto'/'search'): a cached or freshly
    # measured decision fills in every knob the caller did not pin,
    # before the static auto rules below resolve what remains.
    policy_decision = None
    policy_info: dict = {"source": "static-auto"}
    if opts.policy != "static" and opts.backend == "vectorized":
        from .. import policy as policy_mod

        policy_decision = policy_mod.resolve_execution_policy(
            layers, opts, options)
        if policy_decision is not None:
            applied = policy_mod.apply_decision(
                opts, policy_decision.config, opts.explicit)
            policy_info = {
                "source": policy_decision.source,
                "key": policy_decision.key.as_str(),
                "config": dict(policy_decision.config),
                "applied": applied,
            }

    # Resolve 'auto' / unavailable-native to the concrete backend that
    # will emit the artifact *before* the cache key is computed: a
    # native artifact must never collide with a NumPy one, and a
    # fallen-back native run legitimately shares the NumPy entry.
    opts.codegen = resolve_codegen_backend(
        opts.codegen, layers[0].storage.n, layers[1].storage.n)
    if (policy_decision is not None
            and policy_info.get("applied", {}).get("codegen") == "native"
            and opts.codegen != "native"):
        # The tuned choice assumed a JIT this host no longer has.
        from .. import policy as policy_mod

        policy_mod.note_native_fallback(policy_decision.key)
        policy_info["native_fallback"] = True
    # Likewise resolve shards='auto' to a concrete count before keying:
    # a sharded artifact (per-shard trees + bindings) must never collide
    # with an unsharded one.  Sharding is a tree-mode layout; the brute
    # and interp backends run over the unpartitioned reference set.
    if opts.backend in ("brute", "interp"):
        opts.shards = 1
    else:
        from ..parallel.shard import resolve_shard_count

        opts.shards = resolve_shard_count(
            opts.shards, layers[1].storage.n, opts.workers)

    cacheable = (
        opts.cache
        and opts.backend in ("vectorized", "brute")
        # Opaque Python callables have no content identity to key on.
        and not any(
            callable(l.func) and not isinstance(l.func, Expr) for l in layers
        )
    )
    key = None
    if cacheable:
        try:
            key = _program_key(layers, opts)
        except UncacheableParamError:
            # A parameter with no content identity: running uncached is
            # correct; keying on its repr() (a memory address) is not.
            contribute({"cache.compile.uncacheable": 1})
            cacheable = False
    if cacheable:
        art = program_cache.get(key, MISSING)
        if art is not MISSING:
            contribute({"cache.compile.hit": 1})
            prog = _instantiate(art, layers, opts, {}, "hit", key=key)
        else:
            contribute({"cache.compile.miss": 1})
            art, timings = _compile_pipeline(pexpr, opts)
            program_cache.put(key, art)
            prog = _instantiate(art, layers, opts, timings, "miss", key=key)
    else:
        art, timings = _compile_pipeline(pexpr, opts)
        prog = _instantiate(art, layers, opts, timings,
                            None if opts.cache else "off")
    prog.extras["policy"] = policy_info
    return prog


def _compile_pipeline(pexpr, opts: CompileOptions) -> tuple[_Artifact, dict]:
    """The full compile pipeline (paper Fig. 1) for a 2-layer program
    with a lowered kernel; returns the cacheable artifact + timings."""
    layers = pexpr.layers
    outer, inner = layers
    kernel = inner.metric_kernel
    timings: dict[str, float] = {}
    contribute({"compile.count": 1})

    tau = opts.tau if opts.tau is not None else float(inner.params.get("tau", 0.0))
    t0 = time.perf_counter()
    with span("compile.rules", program=pexpr.name):
        classification, rule = build_rules(
            layers, kernel, tau=tau, criterion=opts.criterion,
            theta=opts.theta,
        )
    timings["rules"] = time.perf_counter() - t0

    # Lower + run the optimisation pipeline (kept for dumps & interp).
    pm = PassManager(fastmath=opts.fastmath,
                     disabled=frozenset(opts.disable_passes),
                     verify=bool(opts.verify_ir))
    t0 = time.perf_counter()
    with span("compile.lowering", program=pexpr.name):
        lowered = lower(layers, kernel, classification, rule, pexpr.name)
    timings["lowering"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    with span("compile.passes", program=pexpr.name):
        pm.run(lowered)
    timings["passes"] = time.perf_counter() - t0

    mode = "tree"
    if (
        opts.backend == "brute"
        or opts.tree == "none"
        or classification.algorithm == "brute"
        or inner.op is PortalOp.FORALL
    ):
        mode = "brute"
    if opts.backend == "interp":
        mode = "interp"

    qstorage, rstorage = outer.storage, inner.storage
    same_data = qstorage is rstorage
    exclude_self = (
        opts.exclude_self if opts.exclude_self is not None else same_data
    )

    qpoints = qstorage.data
    rpoints = rstorage.data
    if kernel.whiten:
        cov = kernel.covariance
        if cov is None:
            cov = np.cov(rpoints.T)
        transform = _whiten_transform(cov)
        qpoints = transform(qpoints)
        rpoints = qpoints if same_data else transform(rpoints)

    dim = qstorage.dim
    layout = opts.layout or qstorage.layout
    if layout not in (Layout.ROW, Layout.COLUMN):
        raise CompileError(f"unknown layout override {layout!r}")
    nq, nr = qstorage.n, rstorage.n

    # Strength-reduced kernel body for the code generator.
    g_ir = reduce_expr(kernel_to_ir(kernel.g), fastmath=opts.fastmath)

    # One-sided indicator kernels compare in *base-distance* units
    # (t < h² instead of sqrt(t) < h): exact — approximate square roots
    # must never flip a comparison in a pruning problem — and cheaper.
    if kernel.is_indicator:
        thr = kernel.indicator_threshold()
        if thr is not None:
            op_sym, h_base = thr
            g_ir = Indicator(op_sym, SymRef("t"), Const(h_base))

    # Monotone-map deferral: order-based reductions over a monotone
    # *increasing* g(t) reduce raw base distances in the hot path and
    # apply g once at finalisation (what expert code does by hand, and
    # what a real backend hoists out of the leaf loop).
    defer_monotone = (
        inner.op in (MIN_LIKE | MAX_LIKE)
        and not kernel.is_indicator
        and kernel.monotone() == "increasing"
        and not isinstance(g_ir, SymRef)  # g is not already the identity
    )
    if defer_monotone:
        g_ir = SymRef("t")

    # Sharded reference layout: the reference side becomes per-shard
    # trees (never the query tree, so same_tree kernels can't apply) and
    # self-pair exclusion switches to the RSELF position remap.
    nshards = int(opts.shards) if mode == "tree" else 1
    sharded = nshards > 1
    spec = CodegenSpec(
        dim=dim, layout=layout, base=kernel.base, g_ir=g_ir,
        monotone=kernel.monotone(), outer_op=outer.op, inner_op=inner.op,
        k=inner.k, rule=rule if mode == "tree" else None,
        weighted=rstorage.weights is not None,
        same_tree=same_data and not sharded, exclude_self=exclude_self,
        is_indicator=kernel.is_indicator,
        self_map=sharded and same_data and exclude_self,
    )

    static_bindings: dict = {
        "K": inner.k or 1,
        "H": rule.indicator_h if rule.indicator_h is not None else 0.0,
        "TAU": rule.tau,
        "THETA2": rule.theta * rule.theta,
        "rw": None,
    }

    qtree = rtree = None
    qdata = rdata = None
    shard_pack = None
    if mode == "tree":
        kind = opts.tree
        if kind == "octree" and dim > 3:
            raise CompileError("octrees require d <= 3; use tree='kd'")
        if kind == "ball" and kernel.base != "sqeuclidean":
            raise CompileError(
                "ball trees support the Euclidean family only"
            )
        leaf = opts.leaf_size or 64
        t0 = time.perf_counter()
        with span("compile.tree_build", tree=kind, leaf_size=leaf):
            # Passing the Storage alongside its own data array arms the
            # incremental path: on a fingerprint miss after a logged
            # mutation, the cache refits the previous live tree instead
            # of rebuilding (cached_build_tree checks the identity).
            qtree = cached_build_tree(kind, qpoints, leaf,
                                      qstorage.weights, opts.split,
                                      enabled=opts.cache, storage=qstorage)
            if not sharded:
                rtree = qtree if same_data else cached_build_tree(
                    kind, rpoints, leaf, rstorage.weights, opts.split,
                    enabled=opts.cache, storage=rstorage,
                )
        timings["tree_build"] = time.perf_counter() - t0
        static_bindings.update(
            QCOL=qtree.points_col, QROW=qtree.points,
            QN2=qtree.sqnorms(),
            qlo=qtree.lo, qhi=qtree.hi,
            qstart=qtree.start, qend=qtree.end,
        )
        if sharded:
            # Reference side: one tree per spatial shard, built in
            # parallel through the derived-key tree cache; the r-side
            # bindings live in the pack, one set per shard.
            from ..parallel.shard import build_shard_pack

            inv_qperm = None
            if spec.self_map:
                inv_qperm = np.empty(nq, dtype=np.int64)
                inv_qperm[qtree.perm] = np.arange(nq, dtype=np.int64)
            base_fp = (
                rstorage.fingerprint("data") if rpoints is rstorage.data
                else array_fingerprint(rpoints)
            )
            t0 = time.perf_counter()
            shard_pack = build_shard_pack(
                kind, rpoints, rstorage.weights, leaf, opts.split,
                nshards, (base_fp, rstorage.fingerprint("weights")),
                inv_qperm=inv_qperm, cache_enabled=opts.cache,
            )
            timings["shard_build"] = time.perf_counter() - t0
        else:
            rweight = (
                rtree.wsum if rtree.weights is not None
                else (rtree.end - rtree.start).astype(np.float64)
            )
            rcentroid = (
                rtree.wcentroid if rtree.weights is not None
                else rtree.centroid
            )
            static_bindings.update(
                RCOL=rtree.points_col, RROW=rtree.points,
                RN2=rtree.sqnorms(), rlo=rtree.lo, rhi=rtree.hi,
                rstart=rtree.start, rend=rtree.end,
                rcentroid=rcentroid, rweight=rweight,
                rdiam2=rtree.diameter ** 2,
                rw=rtree.weights,
            )
    else:
        qdata, rdata = qpoints, rpoints
        static_bindings.update(
            QCOL=np.ascontiguousarray(qpoints.T), QROW=qpoints,
            RCOL=np.ascontiguousarray(rpoints.T), RROW=rpoints,
            QN2=np.einsum("ij,ij->i", qpoints, qpoints),
            RN2=np.einsum("ij,ij->i", rpoints, rpoints),
            rw=rstorage.weights,
        )

    backend_obj = get_backend(opts.codegen)
    t0 = time.perf_counter()
    source, code = backend_obj.emit(spec)
    timings["codegen"] = time.perf_counter() - t0

    art = _Artifact(
        mode=mode, kernel=kernel, classification=classification, rule=rule,
        pass_manager=pm, spec=spec, codegen_backend=backend_obj.name,
        source=source, code=code,
        static_bindings=static_bindings, qtree=qtree, rtree=rtree,
        qdata=qdata, rdata=rdata, nq=nq, nr=nr, same_data=same_data,
        exclude_self=exclude_self, defer_monotone=defer_monotone,
        shard_pack=shard_pack,
    )
    return art, timings


def _instantiate(art: _Artifact, layers: list[Layer], opts: CompileOptions,
                 timings: dict, cache_state: str | None,
                 key: tuple | None = None) -> CompiledProgram:
    """Build a runnable :class:`CompiledProgram` from a compile artifact:
    fresh state arrays, fresh modifier closure, and the emitted code
    object re-executed against them."""
    outer, inner = layers
    modifier = _resolve_modifier(outer.func)
    state = allocate_state(outer.op, inner.op, inner.k, art.nq, art.nr,
                           modifier)
    if art.defer_monotone:
        captured_g = art.kernel.g
        state.value_transform = lambda v: captured_g.evaluate({"t": v})

    # Versioned snapshot semantics: the program pins a consistent view of
    # the (possibly live) trees at instantiation time.  Snapshots are
    # shallow — mutation rebinds arrays rather than writing into them —
    # so an in-flight or retained program keeps reading the version it
    # compiled against even if the cached tree is refit later.
    qtree, rtree = art.qtree, art.rtree
    if qtree is not None:
        qtree = qtree.snapshot()
        rtree = qtree if art.rtree is art.qtree else (
            None if art.rtree is None else art.rtree.snapshot())
    program = CompiledProgram(
        options=opts, layers=layers, kernel=art.kernel,
        classification=art.classification, rule=art.rule,
        pass_manager=art.pass_manager, mode=art.mode, state=state,
        qtree=qtree, rtree=rtree, qdata=art.qdata, rdata=art.rdata,
        extras={"same_data": art.same_data}, timings=dict(timings),
    )
    if art.shard_pack is not None:
        # Sharded layout: per-shard states + kernel binds; the shard-0
        # kernels stand in as program.kernels for engine routing and
        # generated_source() introspection.
        from ..parallel.shard import build_shard_execution

        shard_exec = build_shard_execution(
            art.shard_pack, art.source, art.code, art.codegen_backend,
            art.static_bindings, outer.op, inner.op, inner.k, art.nq,
        )
        program.kernels = shard_exec.kernels[0]
        program.extras["shard_exec"] = shard_exec
        program.extras["nr"] = art.nr
    else:
        bindings = dict(art.static_bindings)
        bindings.update(state.arrays)
        if state.lists is not None:
            bindings["out_lists"] = state.lists
        backend_obj = get_backend(art.codegen_backend)
        program.kernels = backend_obj.bind(art.source, art.code, bindings)
    program.extras["codegen"] = art.codegen_backend

    if art.mode == "tree":
        kk = program.kernels
        # Engine routing: bound rules (k-NN, Hausdorff) run the
        # epoch-based bound-aware batched engine; stateless rules (or no
        # rule) run the plain batched frontier engine; 'stack' forces
        # the scalar reference engine.  Requesting 'bounded-batched' on
        # a stateless problem degrades gracefully to 'batched'.
        if opts.traversal == "stack":
            engine = "stack"
        elif kk.bound_key_batch is not None:
            engine = "bounded-batched"
        elif kk.prune_or_approx is None or kk.classify_batch is not None:
            engine = "batched"
        else:  # pragma: no cover - every rule kind has a batch form
            engine = "stack"
        program.extras["engine"] = engine
        # The process executor ships these to workers: the static (non-
        # state) bindings go to shared memory, the token keys the
        # publication so repeated runs republish nothing.
        program.extras["static_bindings"] = art.static_bindings
        token = (
            None if key is None
            else hashlib.blake2b(repr(key).encode(),
                                 digest_size=16).hexdigest()
        )
        program.extras["program_token"] = token
        program.extras["shards"] = opts.shards
        if token is not None:
            # Let the Storages evict exactly these shm publications (and
            # their ::q/::r{i} shard derivatives) when they mutate — a
            # warm process pool must never be served stale columns.
            for layer in layers:
                st = getattr(layer, "storage", None)
                if st is not None and hasattr(st, "note_shm_token"):
                    st.note_shm_token(token)
    if cache_state is not None:
        program.extras["cache"] = cache_state
    return program


def _compile_external_expr(pexpr, opts: CompileOptions) -> CompiledProgram:
    """Compile a 2-layer program whose inner function is an opaque
    external kernel: always brute force, never cached (no content
    identity), as in the original external-function path."""
    layers = pexpr.layers
    outer, inner = layers
    modifier = _resolve_modifier(outer.func)
    timings: dict[str, float] = {}
    contribute({"compile.count": 1})

    tau = opts.tau if opts.tau is not None else float(inner.params.get("tau", 0.0))
    t0 = time.perf_counter()
    with span("compile.rules", program=pexpr.name):
        classification, rule = build_rules(
            layers, None, tau=tau, criterion=opts.criterion,
            theta=opts.theta,
        )
    timings["rules"] = time.perf_counter() - t0

    pm = PassManager(fastmath=opts.fastmath,
                     disabled=frozenset(opts.disable_passes),
                     verify=bool(opts.verify_ir))
    t0 = time.perf_counter()
    with span("compile.lowering", program=pexpr.name):
        lowered = lower(layers, None, classification, rule, pexpr.name)
    timings["lowering"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    with span("compile.passes", program=pexpr.name):
        pm.run(lowered)
    timings["passes"] = time.perf_counter() - t0

    if opts.backend == "interp":
        raise CompileError(
            "the interpreter backend requires a lowered kernel "
            "(external kernels are not in the IR)"
        )

    qstorage, rstorage = outer.storage, inner.storage
    same_data = qstorage is rstorage
    exclude_self = (
        opts.exclude_self if opts.exclude_self is not None else same_data
    )
    layout = opts.layout or qstorage.layout
    if layout not in (Layout.ROW, Layout.COLUMN):
        raise CompileError(f"unknown layout override {layout!r}")

    state = allocate_state(outer.op, inner.op, inner.k,
                           qstorage.n, rstorage.n, modifier)
    program = CompiledProgram(
        options=opts, layers=layers, kernel=None,
        classification=classification, rule=rule, pass_manager=pm,
        mode="brute", state=state,
        extras={"same_data": same_data}, timings=timings,
    )
    _setup_external(program, qstorage.data, rstorage.data, exclude_self)
    return program


def _compile_multilayer(pexpr, opts: CompileOptions) -> CompiledProgram:
    """Compile an m ≥ 3 layer program onto the dense multi-layer backend
    (the general form of the paper's equation 2)."""
    layers = pexpr.layers
    kernel = layers[-1].metric_kernel
    contribute({"compile.count": 1})
    classification, rule = build_rules(layers, kernel)

    pm = PassManager(fastmath=opts.fastmath,
                     disabled=frozenset(opts.disable_passes),
                     verify=bool(opts.verify_ir))
    with span("compile.passes", program=pexpr.name):
        pm.run(lower(layers, kernel, classification, rule, pexpr.name))

    storages = {id(l.storage) for l in layers}
    exclude_self = (
        opts.exclude_self if opts.exclude_self is not None
        else len(storages) < len(layers)
    )

    state = State(
        inner_op=layers[-1].op, outer_op=layers[0].op, k=None,
        nq=layers[0].storage.n,
    )
    return CompiledProgram(
        options=opts, layers=layers, kernel=kernel,
        classification=classification, rule=rule, pass_manager=pm,
        mode="multilayer", state=state,
        extras={"exclude_self": exclude_self},
        kernels=GeneratedKernels(
            source="# m-layer program: dense multi-layer backend "
                   "(no generated kernels)",
            namespace={}, base_case=None, prune_or_approx=None,
            pair_min_dist=None,
        ),
    )


def _setup_external(program: CompiledProgram, qpoints, rpoints, exclude_self):
    """Brute-force execution with an opaque external kernel (the paper's
    external C++ functions: linked, not optimised)."""
    import inspect

    inner = program.layers[1]
    external = inner.external
    if external is None:
        raise CompileError("external kernel missing")
    state = program.state
    op = inner.op
    same = program.extras.get("same_data", False)
    # External kernels may optionally accept the block offsets
    # (Q, R, qs, rs) — e.g. EM kernels that look up per-component
    # parameters by reference index.
    try:
        takes_offsets = len(inspect.signature(external).parameters) >= 4
    except (TypeError, ValueError):
        takes_offsets = False

    def base_case(qs, qe, rs, re):
        if takes_offsets:
            v = np.asarray(
                external(qpoints[qs:qe], rpoints[rs:re], qs, rs), dtype=float
            )
        else:
            v = np.asarray(external(qpoints[qs:qe], rpoints[rs:re]), dtype=float)
        if same and exclude_self and qs == rs:
            from .codegen import _exclusion_value

            np.fill_diagonal(v, float(eval(_exclusion_value(op), {"np": np})))
        _apply_update(state, op, inner.k, v, qs, qe, rs, re)

    program.qdata, program.rdata = qpoints, rpoints
    program.kernels = GeneratedKernels(
        source="# external kernel: no generated source",
        namespace={}, base_case=base_case, prune_or_approx=None,
        pair_min_dist=None,
    )


def _apply_update(state: State, op: PortalOp, k: int | None,
                  v: np.ndarray, qs, qe, rs, re) -> None:
    """Interpreted operator update used by the external-kernel path."""
    if op is PortalOp.SUM:
        state.arrays["acc"][qs:qe] += v.sum(axis=1)
    elif op is PortalOp.PROD:
        state.arrays["acc"][qs:qe] *= v.prod(axis=1)
    elif op is PortalOp.MIN:
        np.minimum(state.arrays["best"][qs:qe], v.min(axis=1),
                   out=state.arrays["best"][qs:qe])
    elif op is PortalOp.MAX:
        np.maximum(state.arrays["best"][qs:qe], v.max(axis=1),
                   out=state.arrays["best"][qs:qe])
    elif op in (PortalOp.ARGMIN, PortalOp.ARGMAX):
        red = np.argmin if op is PortalOp.ARGMIN else np.argmax
        j = red(v, axis=1)
        vals = v[np.arange(v.shape[0]), j]
        best = state.arrays["best"][qs:qe]
        m = vals < best if op is PortalOp.ARGMIN else vals > best
        best[m] = vals[m]
        state.arrays["best_idx"][qs:qe][m] = rs + j[m]
    elif op in (PortalOp.KARGMIN, PortalOp.KARGMAX, PortalOp.KMIN, PortalOp.KMAX):
        best = state.arrays["best"]
        cand_v = np.concatenate([best[qs:qe], v], axis=1)
        if op in (PortalOp.KARGMIN, PortalOp.KARGMAX):
            idx = state.arrays["best_idx"]
            cand_i = np.concatenate(
                [idx[qs:qe], np.broadcast_to(np.arange(rs, re), v.shape)], axis=1
            )
            key = cand_v if op is PortalOp.KARGMIN else -cand_v
            sel = np.argsort(key, axis=1, kind="stable")[:, :k]
            best[qs:qe] = np.take_along_axis(cand_v, sel, axis=1)
            idx[qs:qe] = np.take_along_axis(cand_i, sel, axis=1)
        else:
            cand_v.sort(axis=1)
            best[qs:qe] = (
                cand_v[:, :k] if op is PortalOp.KMIN else cand_v[:, ::-1][:, :k]
            )
    elif op in (PortalOp.UNION, PortalOp.UNIONARG):
        for i in range(v.shape[0]):
            nz = np.flatnonzero(v[i])
            if nz.size:
                state.lists[qs + i].append(
                    rs + nz if op is PortalOp.UNIONARG else v[i][nz]
                )
    elif op is PortalOp.FORALL:
        state.arrays["dense"][qs:qe, rs:re] = v
    else:  # pragma: no cover
        raise CompileError(f"unsupported inner operator {op.name}")
