"""Data-layout selection (paper sections III-B and IV-F).

Portal chooses between column- and row-major data layout from the
dimensionality of the dataset: low-dimensional data (d ≤ 4) is stored
column-major so the *middle* loop of the base case vectorises (each cache
line then holds the same coordinate of many points); higher-dimensional
data stays row-major so the *innermost* dimension loop vectorises.
"""

from __future__ import annotations

__all__ = ["Layout", "choose_layout", "COLUMN_MAJOR_MAX_DIM"]

#: Dimensionality at or below which Portal selects a column-major layout.
COLUMN_MAJOR_MAX_DIM = 4


class Layout:
    COLUMN = "column"
    ROW = "row"


def choose_layout(dim: int) -> str:
    """Return the layout Portal selects for a *dim*-dimensional dataset."""
    if dim < 1:
        raise ValueError(f"dimensionality must be positive, got {dim}")
    return Layout.COLUMN if dim <= COLUMN_MAJOR_MAX_DIM else Layout.ROW
