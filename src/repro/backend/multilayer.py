"""Dense execution of m-layer Portal programs (m ≥ 3).

The paper's general form (equation 2) chains m operators over m datasets;
the evaluation section only exercises m = 2, which is what the optimised
tree backend implements.  This module completes the language: programs
with three or more layers execute through a blocked dense evaluator —
the m-dimensional analogue of the generated brute force — supporting the
reduction operators {FORALL, SUM, PROD, MIN, MAX} on every layer and a
symbolic kernel over the m layer variables.

The kernel is evaluated by broadcasting: layer i's points occupy axis i
(with the dimension axis last), so ``K(x₁, …, x_m)`` materialises one
(b₁, n₂, …, n_m) block at a time, and reductions collapse axes from the
innermost layer outwards.  ``exclude_self`` masks tuples that repeat a
point between layers sharing a Storage (the distinct-tuple convention of
n-point correlation).
"""

from __future__ import annotations

import numpy as np

from ..dsl.errors import CompileError
from ..dsl.expr import Expr
from ..dsl.ops import PortalOp
from .state import Output

__all__ = ["SUPPORTED_MULTILAYER_OPS", "execute_multilayer"]

SUPPORTED_MULTILAYER_OPS = frozenset({
    PortalOp.FORALL, PortalOp.SUM, PortalOp.PROD, PortalOp.MIN, PortalOp.MAX,
})

_REDUCERS = {
    PortalOp.SUM: np.sum,
    PortalOp.PROD: np.prod,
    PortalOp.MIN: np.min,
    PortalOp.MAX: np.max,
}


def _block_size(shapes: list[int], dim: int, budget_bytes: int = 64 << 20) -> int:
    """First-axis block size keeping the broadcast kernel block within
    the memory budget."""
    inner = 1
    for n in shapes[1:]:
        inner *= n
    per_row = max(1, inner * max(dim, 1) * 8)
    return max(1, budget_bytes // per_row)


def execute_multilayer(layers, exclude_self: bool) -> Output:
    """Run an m-layer program densely; returns the finalised Output."""
    m = len(layers)
    if m < 3:
        raise CompileError("execute_multilayer handles m >= 3 layers")
    for layer in layers:
        if layer.op not in SUPPORTED_MULTILAYER_OPS:
            raise CompileError(
                f"multi-layer programs support "
                f"{sorted(o.name for o in SUPPORTED_MULTILAYER_OPS)}; "
                f"got {layer.op.name}"
            )
    kernel = layers[-1].func
    if not isinstance(kernel, Expr):
        raise CompileError(
            "multi-layer programs require a symbolic kernel over the layer "
            "variables"
        )
    var_names = [l.var.name for l in layers]
    free = {v.name for v in kernel.free_vars()}
    if not free <= set(var_names):
        raise CompileError(
            f"kernel references {sorted(free - set(var_names))} which are "
            f"not layer variables"
        )

    data = [l.storage.data for l in layers]
    ns = [len(d) for d in data]
    dim = data[0].shape[1]
    ops = [l.op for l in layers]

    if any(op is PortalOp.FORALL for op in ops[1:]) and ops[0] is not PortalOp.FORALL:
        raise CompileError(
            "an outer reduction over inner FORALL layers is ambiguous; "
            "use FORALL as the outermost operator"
        )

    # Same-storage layer pairs whose repeated tuples must be masked out.
    same_pairs = [
        (i, j)
        for i in range(m) for j in range(i + 1, m)
        if layers[i].storage is layers[j].storage
    ] if exclude_self else []
    if same_pairs and any(
        op not in (PortalOp.SUM, PortalOp.FORALL) for op in ops
    ):
        raise CompileError(
            "exclude_self masking (zeroing repeated tuples) is only sound "
            "for Σ reductions; pass exclude_self=False for other operators"
        )

    out_chunks: list[np.ndarray] = []
    block = _block_size(ns, dim)
    for s in range(0, ns[0], block):
        e = min(s + block, ns[0])
        env: dict = {}
        for axis, (name, X) in enumerate(zip(var_names, data)):
            chunk = X[s:e] if axis == 0 else X
            shape = [1] * m + [dim]
            shape[axis] = len(chunk)
            env[name] = chunk.reshape(shape)
        values = np.asarray(kernel.evaluate(env), dtype=np.float64)
        values = np.broadcast_to(
            values, (e - s, *ns[1:])
        ).copy() if values.shape != (e - s, *ns[1:]) else values

        for i, j in same_pairs:
            idx_i = (np.arange(s, e) if i == 0 else np.arange(ns[i]))
            idx_j = (np.arange(s, e) if j == 0 else np.arange(ns[j]))
            eq = idx_i.reshape([-1 if a == i else 1 for a in range(m)]) == \
                idx_j.reshape([-1 if a == j else 1 for a in range(m)])
            values = values * ~np.broadcast_to(eq, values.shape)

        # Reduce axes innermost-out; FORALL keeps its axis.
        for axis in range(m - 1, 0, -1):
            op = ops[axis]
            if op is PortalOp.FORALL:
                continue
            values = _REDUCERS[op](values, axis=axis)
        out_chunks.append(np.atleast_1d(values))

    per_query = np.concatenate(out_chunks, axis=0)
    outer = ops[0]
    if outer is PortalOp.FORALL:
        return Output(values=per_query)
    return Output(values=per_query, scalar=float(_REDUCERS[outer](per_query)))
