"""The ``native`` codegen backend: Numba-``@njit`` per-pair kernels.

The NumPy backend vectorises the leaf-level base case into whole-array
operations; that trades per-pair Python overhead for broadcast
temporaries and pairwise-summation memory traffic.  This backend emits
the same program as *scalar loop nests* — one fused loop over (query,
reference, dimension) per leaf pair, with the strength-reduced kernel
``g(t)`` inlined as scalar arithmetic — decorated for Numba's ``@njit``
(nopython, ``nogil=True`` so the thread executor scales).  It restores
the paper's LLVM-backend shape: the compiler's IR really is lowered to
native machine code, 2–30× faster on the CPU-bound per-pair-kernel
configurations (see ``benchmarks/results/BENCH_native.json``).

Only the per-pair hot kernels are lowered natively:

* ``base_case`` — the leaf × leaf update, fused distance + ``g`` +
  operator merge (SUM/PROD/MIN/MAX/ARGMIN/ARGMAX/k-variants/FORALL);
* ``base_case_group`` — the bounded-batched epoch engine's grouped base
  case (query leaf × gathered multi-leaf reference index array),
  including the signed ``qbound`` refresh;
* ``apply_action`` — the ComputeApprox centroid update of approximation
  rules.

Node-level decision kernels (``pair_min_base_dist*``, ``classify_*``,
``bound_key_batch``) stay on the NumPy emitter: they are already
frontier-vectorised array ops with no per-pair loop to win back.

Degradation is graceful and counted, never fatal:

* numba not importable → the backend resolves away to ``numpy``
  (``backend.native.fallback`` counter);
* a kernel uses a construct with no scalar lowering (UNION/UNIONARG's
  Python result lists, array loads in the kernel body) → the emitted
  artifact is the NumPy one, marked, and bind counts the fallback;
* the JIT warm-up itself fails (a numba typing gap) → the NumPy
  kernels bound alongside remain in force.

JIT compilation happens once per process at bind time ("warming": every
native kernel is called on zero-length dummy ranges so the dispatch
signature compiles before the traversal starts) and is timed under the
``backend.native.compile_s`` counter.  Worker processes rebuild kernels
from the shipped source and warm locally — compiled dispatchers are
memoized per (source digest, kernel) so repeated binds of a cached
artifact never re-JIT.

For differential testing on hosts without numba, ``REPRO_NATIVE_JIT=
python`` runs the emitted loop nests as plain Python (identity
decorator): bit-for-bit the same code path minus compilation, slow but
exact — the cross-backend suite uses it so the native emitter is
exercised everywhere.  ``REPRO_NATIVE_JIT=off`` force-disables the
backend even when numba is installed (the CI fallback leg).
"""

from __future__ import annotations

import hashlib
import os
import time

from ..dsl.errors import CompileError
from ..dsl.expr import BinOp, Call, Const, Expr, Indicator, Neg
from ..dsl.ops import PortalOp
from ..ir.nodes import IRCall, LoadExpr, SymRef
from ..observe import contribute, span
from .backends import Backend, register_backend
from .codegen import (
    CodegenSpec, GeneratedKernels, _shared_subtrees, bind_kernels, emit,
)

__all__ = ["NativeBackend", "native_available", "native_mode",
           "emit_scalar_expr", "emit_scalar_expr_vn", "NATIVE_MARKER"]

#: First line of the native section; its absence in an artifact emitted
#: under the native backend marks an unsupported-construct fallback.
NATIVE_MARKER = "# --- native section (numba @njit per-pair kernels) ---"


# ---------------------------------------------------------------------------
# availability probe
# ---------------------------------------------------------------------------

def _import_numba():
    """Import numba, or None.  Kept monkeypatchable for the fallback
    tests; not memoized so an env-var flip mid-process is honoured."""
    try:
        import numba
    except ImportError:
        return None
    return numba


def native_mode() -> str | None:
    """The JIT flavour this process would use: ``'numba'`` (the real
    thing), ``'python'`` (identity decorator — ``REPRO_NATIVE_JIT=
    python``, differential testing without numba), or ``None`` when the
    backend is unavailable (no numba, or ``REPRO_NATIVE_JIT=off``)."""
    env = os.environ.get("REPRO_NATIVE_JIT", "").strip().lower()
    if env == "python":
        return "python"
    if env == "off":
        return None
    return "numba" if _import_numba() is not None else None


def native_available() -> bool:
    return native_mode() is not None


# ---------------------------------------------------------------------------
# scalar expression emission (the per-pair flavour of codegen.emit_expr)
# ---------------------------------------------------------------------------

_SCALAR_CALL_MAP = {
    "sqrt": "np.sqrt",
    "exp": "np.exp",
    "log": "np.log",
    "abs": "abs",
    "max": "max",
    "min": "min",
    "fast_inverse_sqrt": "_finvsqrt",
}


def emit_scalar_expr(e: Expr, var_map: dict[str, str],
                     _names: dict[int, str] | None = None) -> str:
    """Emit *scalar* (numba-nopython-compatible) source for an IR
    expression — the per-pair counterpart of
    :func:`repro.backend.codegen.emit_expr`."""
    if _names is not None:
        hit = _names.get(id(e))
        if hit is not None:
            return hit
    if isinstance(e, SymRef):
        try:
            return var_map[e.name]
        except KeyError:
            raise CompileError(f"no binding for IR symbol {e.name!r}") from None
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, BinOp):
        return (f"({emit_scalar_expr(e.lhs, var_map, _names)} {e.op} "
                f"{emit_scalar_expr(e.rhs, var_map, _names)})")
    if isinstance(e, Neg):
        return f"(-({emit_scalar_expr(e.operand, var_map, _names)}))"
    if isinstance(e, (IRCall, Call)):
        args = e.args if isinstance(e, IRCall) else (e.operand,)
        if e.func == "pow":
            base, exp_ = (emit_scalar_expr(a, var_map, _names) for a in args)
            return f"(({base}) ** ({exp_}))"
        fn = _SCALAR_CALL_MAP.get(e.func)
        if fn is None:
            raise CompileError(
                f"native backend cannot emit scalar call {e.func!r}")
        return (f"{fn}("
                f"{', '.join(emit_scalar_expr(a, var_map, _names) for a in args)})")
    if isinstance(e, Indicator):
        lhs = emit_scalar_expr(e.lhs, var_map, _names)
        rhs = emit_scalar_expr(e.rhs, var_map, _names)
        return f"(1.0 if ({lhs}) {e.op} ({rhs}) else 0.0)"
    if isinstance(e, LoadExpr):
        raise CompileError("native backend cannot emit array loads in "
                           "a per-pair kernel")
    raise CompileError(
        f"native backend cannot emit expression node {type(e).__name__}")


def emit_scalar_expr_vn(e: Expr, var_map: dict[str, str],
                        prefix: str = "_nv") -> tuple[list[str], str]:
    """Value-numbering-aware scalar emission (shared sub-trees become
    local temporaries) — mirrors :func:`codegen.emit_expr_vn`."""
    names: dict[int, str] = {}
    assigns: list[str] = []
    for i, node in enumerate(_shared_subtrees(e), 1):
        name = f"{prefix}{i}"
        assigns.append(f"{name} = {emit_scalar_expr(node, var_map, names)}")
        names[id(node)] = name
    return assigns, emit_scalar_expr(e, var_map, names)


def _uses_finvsqrt(e: Expr) -> bool:
    if isinstance(e, (IRCall, Call)) and e.func == "fast_inverse_sqrt":
        return True
    return any(_uses_finvsqrt(c) for c in e.children())


# ---------------------------------------------------------------------------
# supported-construct check
# ---------------------------------------------------------------------------

#: Inner operators with a fused scalar update template.  UNION/UNIONARG
#: append to Python result lists — no nopython lowering exists, so those
#: programs stay on the NumPy kernels (counted fallback).
_NATIVE_OPS = frozenset({
    PortalOp.SUM, PortalOp.PROD, PortalOp.MIN, PortalOp.MAX,
    PortalOp.ARGMIN, PortalOp.ARGMAX, PortalOp.KARGMIN, PortalOp.KARGMAX,
    PortalOp.KMIN, PortalOp.KMAX, PortalOp.FORALL,
})


def native_supports(spec: CodegenSpec) -> str | None:
    """``None`` when every native kernel for *spec* can be emitted, else
    the reason the program must stay on the NumPy kernels."""
    if spec.inner_op not in _NATIVE_OPS:
        return f"inner operator {spec.inner_op.name} has no scalar template"
    if spec.self_map:
        # Sharded self-exclusion rewrites every update template around
        # the RSELF identity remap; the scalar loop nests have no such
        # variant yet, so sharded exclude-self programs stay on the
        # NumPy kernels (counted fallback, like any unsupported form).
        return "sharded self-exclusion remap has no scalar template"
    try:
        emit_scalar_expr(spec.g_ir, {"t": "t"})
    except CompileError as exc:
        return str(exc)
    return None


# ---------------------------------------------------------------------------
# native kernel emission
# ---------------------------------------------------------------------------

_FINVSQRT_SRC = '''\
_FINVSQRT_MAGIC = np.uint64(0x5FE6EB50C7B537A9)


@_njit
def _finvsqrt(x):
    # Scalar twin of repro.backend.fastmath.fast_inverse_sqrt (two
    # Newton steps) — bit-identical to the vectorised float64 form.
    if x <= 0.0:
        return np.inf
    _fbuf = np.empty(1, np.float64)
    _fbuf[0] = x
    _ibuf = _fbuf.view(np.uint64)
    _ibuf[0] = _FINVSQRT_MAGIC - (_ibuf[0] >> np.uint64(1))
    y = _fbuf[0]
    xh = 0.5 * x
    y = y * (1.5 - xh * y * y)
    y = y * (1.5 - xh * y * y)
    return y'''


def _t_lines(spec: CodegenSpec, b, j: str = "j", q: str = "QROW",
             r: str = "RROW", tvar: str = "t", indent: str = "        "):
    """Fused scalar base-distance accumulation ``tvar`` for one (i, j)
    pair — the loop-nest twin of the vectorised ``_pairwise``."""
    b(f"{indent}{tvar} = 0.0")
    b(f"{indent}for _d in range({spec.dim}):")
    b(f"{indent}    _df = {q}[i, _d] - {r}[{j}, _d]")
    if spec.base == "sqeuclidean":
        b(f"{indent}    {tvar} += _df * _df")
    elif spec.base == "manhattan":
        b(f"{indent}    {tvar} += abs(_df)")
    else:  # chebyshev
        b(f"{indent}    _da = abs(_df)")
        b(f"{indent}    if _da > {tvar}:")
        b(f"{indent}        {tvar} = _da")


def _g_lines(spec: CodegenSpec, b, tvar: str = "t",
             indent: str = "        "):
    pre, g_src = emit_scalar_expr_vn(spec.g_ir, {"t": tvar})
    for assign in pre:
        b(f"{indent}{assign}")
    b(f"{indent}v = {g_src}")


def _update_lines(spec: CodegenSpec, b, gather: bool) -> None:
    """Per-query loop body: candidate loop + fused operator merge.

    ``gather=False`` iterates the contiguous slice ``[rs, re)`` (plain
    base case); ``gather=True`` iterates the gathered index array
    ``ridx`` (the epoch engine's grouped base case).
    """
    op = spec.inner_op
    excl = spec.same_tree and spec.exclude_self
    kwide = (spec.k or 1) > 1

    if gather:
        loop = ["        for _jj in range(ridx.shape[0]):",
                "            j = ridx[_jj]"]
    else:
        loop = ["        for j in range(rs, re):"]
    ind = "            " if gather else "            "

    def candidate(skip_self: bool = True):
        for line in loop:
            b(line)
        if excl and skip_self and op is not PortalOp.FORALL:
            # The exclusion value is the merge identity for every
            # reduction template below, so skipping the self pair is
            # exactly the NumPy emitter's fill_diagonal.
            b(f"{ind}if i == j:")
            b(f"{ind}    continue")
        _t_lines(spec, b, indent=ind)
        _g_lines(spec, b, indent=ind)

    if op is PortalOp.SUM:
        b("        _s = 0.0")
        candidate()
        if spec.weighted:
            b(f"{ind}_s += v * rw[j]")
        else:
            b(f"{ind}_s += v")
        b("        acc[i] += _s")
    elif op is PortalOp.PROD:
        b("        _p = 1.0")
        candidate()
        b(f"{ind}_p *= v")
        b("        acc[i] *= _p")
    elif op in (PortalOp.MIN, PortalOp.MAX):
        cmp = "<" if op is PortalOp.MIN else ">"
        b("        _m = best[i]")
        candidate()
        b(f"{ind}if v {cmp} _m:")
        b(f"{ind}    _m = v")
        b("        best[i] = _m")
    elif op in (PortalOp.ARGMIN, PortalOp.ARGMAX):
        cmp = "<" if op is PortalOp.ARGMIN else ">"
        b("        _m = best[i]")
        b("        _mi = best_idx[i]")
        candidate()
        b(f"{ind}if v {cmp} _m:")
        b(f"{ind}    _m = v")
        b(f"{ind}    _mi = j")
        b("        best[i] = _m")
        b("        best_idx[i] = _mi")
    elif op in (PortalOp.KARGMIN, PortalOp.KARGMAX,
                PortalOp.KMIN, PortalOp.KMAX):
        # Ordered k-array insertion (the paper's sorted filter): shift
        # strictly-worse entries right and insert.  The strict
        # comparisons reproduce the NumPy merge's stable-sort tie
        # order: existing entries stay ahead of equal new candidates,
        # and within a batch earlier reference indices stay ahead.
        minlike = op in (PortalOp.KARGMIN, PortalOp.KMIN)
        cmp, shift_cmp = ("<", ">") if minlike else (">", "<")
        with_idx = op in (PortalOp.KARGMIN, PortalOp.KARGMAX)
        last = "K - 1" if kwide else "0"
        cell = "best[i, {p}]" if kwide else "best[i]"
        icell = "best_idx[i, {p}]" if kwide else "best_idx[i]"
        candidate()
        b(f"{ind}if v {cmp} {cell.format(p=last)}:")
        if kwide:
            b(f"{ind}    _p = K - 1")
            b(f"{ind}    while _p > 0 and "
              f"{cell.format(p='_p - 1')} {shift_cmp} v:")
            b(f"{ind}        {cell.format(p='_p')} = "
              f"{cell.format(p='_p - 1')}")
            if with_idx:
                b(f"{ind}        {icell.format(p='_p')} = "
                  f"{icell.format(p='_p - 1')}")
            b(f"{ind}        _p -= 1")
            b(f"{ind}    {cell.format(p='_p')} = v")
            if with_idx:
                b(f"{ind}    {icell.format(p='_p')} = j")
        else:
            b(f"{ind}    {cell.format(p='0')} = v")
            if with_idx:
                b(f"{ind}    {icell.format(p='0')} = j")
    elif op is PortalOp.FORALL:
        candidate(skip_self=False)
        if excl:
            b(f"{ind}if i == j:")
            b(f"{ind}    v = 0.0")
        b(f"{ind}dense[i, j] = v")
    else:  # pragma: no cover - guarded by native_supports
        raise CompileError(f"no native template for {op.name}")


def _state_args(spec: CodegenSpec) -> list[str]:
    op = spec.inner_op
    if op is PortalOp.SUM:
        return ["acc", "rw"] if spec.weighted else ["acc"]
    if op is PortalOp.PROD:
        return ["acc"]
    if op in (PortalOp.MIN, PortalOp.MAX):
        return ["best"]
    if op in (PortalOp.ARGMIN, PortalOp.ARGMAX):
        return ["best", "best_idx"]
    if op in (PortalOp.KARGMIN, PortalOp.KARGMAX):
        return ["best", "best_idx", "K"]
    if op in (PortalOp.KMIN, PortalOp.KMAX):
        return ["best", "K"]
    if op is PortalOp.FORALL:
        return ["dense"]
    raise CompileError(f"no native template for {op.name}")  # pragma: no cover


def _dummy_expr(name: str, spec: CodegenSpec) -> str:
    """Warm-up dummy for one kernel argument: a zero-filled array of the
    bound array's dtype (loop bounds are all zero, so nothing is read or
    written — only the numba signature compiles)."""
    kwide = (spec.k or 1) > 1
    two_d = {"QROW": "QROW", "RROW": "RROW", "rcentroid": "rcentroid"}
    if name in two_d:
        a = two_d[name]
        return f"np.zeros((1, {a}.shape[1]), {a}.dtype)"
    if name in ("best", "best_idx") and kwide:
        return f"np.zeros((1, K), {name}.dtype)"
    if name == "dense":
        return "np.zeros((1, 1), dense.dtype)"
    if name == "K":
        return "K"
    if name == "ridx":
        return "np.zeros(0, np.int64)"
    return f"np.zeros(1, {name}.dtype)"


def emit_native_chunks(spec: CodegenSpec) -> list[str]:
    """The native section appended to the NumPy source: ``@_njit`` loop
    kernels, plain-Python wrappers closing over the bound arrays, the
    zero-length warm-up, and the override manifest."""
    chunks: list[str] = [NATIVE_MARKER]
    if _uses_finvsqrt(spec.g_ir):
        chunks.append(_FINVSQRT_SRC)

    overrides: list[str] = []
    warm_calls: list[str] = []

    def kernel(name: str, extra_args: list[str], body_emit) -> None:
        args = ["QROW", "RROW"] + _state_args(spec) + extra_args
        lines = ["@_njit", f"def _native_{name}({', '.join(args)}, "
                           f"{', '.join(TAIL[name])}):"]
        body_emit(lines.append)
        lines += [
            "",
            "",
            f"def native_{name}({', '.join(TAIL[name])}):",
            f"    _native_{name}({', '.join(args)}, "
            f"{', '.join(TAIL[name])})",
        ]
        chunks.append("\n".join(lines))
        overrides.append(name)
        dummies = [_dummy_expr(a, spec) for a in args]
        warm_calls.append(f"    _native_{name}({', '.join(dummies)}, "
                          f"{', '.join(WARM_TAIL[name])})")

    TAIL = {
        "base_case": ["qs", "qe", "rs", "re"],
        "base_case_group": ["qs", "qe", "ridx"],
    }
    WARM_TAIL = {
        "base_case": ["0", "0", "0", "0"],
        "base_case_group": ["0", "0", "np.zeros(0, np.int64)"],
    }

    def base_case_body(b):
        b("    for i in range(qs, qe):")
        _update_lines(spec, b, gather=False)

    kernel("base_case", [], base_case_body)

    rule = spec.rule
    if rule is not None and rule.kind in ("bound-min", "bound-max"):
        sign = "" if rule.kind == "bound-min" else "-"
        col = ", K - 1" if (spec.k or 1) > 1 else ""

        def group_body(b):
            b("    for i in range(qs, qe):")
            _update_lines(spec, b, gather=True)
            b(f"        qbound[i] = {sign}best[i{col}]")

        group_args = _state_args(spec)

        def group_kernel():
            args = ["QROW", "RROW"] + group_args + ["qbound"]
            lines = ["@_njit",
                     f"def _native_base_case_group({', '.join(args)}, "
                     f"qs, qe, ridx):"]
            group_body(lines.append)
            lines += [
                "",
                "",
                "def native_base_case_group(qs, qe, ridx):",
                f"    _native_base_case_group({', '.join(args)}, "
                f"qs, qe, ridx)",
            ]
            chunks.append("\n".join(lines))
            overrides.append("base_case_group")
            dummies = [_dummy_expr(a, spec) for a in args]
            warm_calls.append(
                f"    _native_base_case_group({', '.join(dummies)}, "
                f"0, 0, np.zeros(0, np.int64))")

        group_kernel()

    if rule is not None and rule.kind == "approx":
        def action_kernel():
            args = ["QROW", "rcentroid", "rweight", "acc", "qstart", "qend"]
            lines = ["@_njit",
                     f"def _native_apply_action({', '.join(args)}, qi, ri):",
                     "    for i in range(qstart[qi], qend[qi]):"]
            b = lines.append
            _t_lines(spec, b, j="ri", r="rcentroid", tvar="tc")
            pre, g_src = emit_scalar_expr_vn(spec.g_ir, {"t": "tc"})
            for assign in pre:
                b(f"        {assign}")
            b(f"        acc[i] += rweight[ri] * {g_src}")
            lines += [
                "",
                "",
                "def native_apply_action(qi, ri):",
                f"    _native_apply_action({', '.join(args)}, qi, ri)",
            ]
            chunks.append("\n".join(lines))
            overrides.append("apply_action")
            dummies = [_dummy_expr(a, spec) for a in args]
            warm_calls.append(
                f"    _native_apply_action({', '.join(dummies)}, 0, 0)")

        action_kernel()

    warm = ["def _native_warm():"] + warm_calls
    chunks.append("\n".join(warm))
    chunks.append("NATIVE_OVERRIDES = (" +
                  ", ".join(f"{n!r}" for n in overrides) + ",)")
    return chunks


# ---------------------------------------------------------------------------
# the Backend object
# ---------------------------------------------------------------------------

#: Memoized numba dispatchers keyed on (source digest, kernel name):
#: re-binding a cached artifact (fresh state arrays each instantiate,
#: every task in a warm worker) reuses the already-compiled dispatcher
#: instead of re-JIT-ing functionally identical code.  Safe because the
#: native kernels take all data as arguments and close over nothing
#: mutable.
_DISPATCHERS: dict[tuple[str, str], object] = {}


def _identity_jit(fn):
    return fn


def _make_njit(digest: str):
    mode = native_mode()
    if mode != "numba":
        return _identity_jit
    numba = _import_numba()

    def deco(fn):
        key = (digest, fn.__name__)
        disp = _DISPATCHERS.get(key)
        if disp is None:
            disp = numba.njit(cache=False, nogil=True)(fn)
            _DISPATCHERS[key] = disp
        return disp

    return deco


class NativeBackend(Backend):
    """Numba-jitted per-pair kernels over the NumPy backend's skeleton.

    Emission *extends* the NumPy source (every NumPy kernel remains in
    the artifact as the in-place fallback and as the implementation of
    the non-overridden kernels); bind executes the combined source,
    warms the JIT, and swaps the native wrappers in.
    """

    name = "native"

    def supports(self, spec: CodegenSpec) -> str | None:
        return native_supports(spec)

    def emit_source(self, spec: CodegenSpec) -> str:
        numpy_source, _ = emit(spec)
        reason = self.supports(spec)
        with span("codegen.native", supported=reason is None):
            if reason is not None:
                return (numpy_source +
                        f"\n# native backend: numpy fallback — {reason}\n")
            chunks = [numpy_source.rstrip("\n")]
            chunks += emit_native_chunks(spec)
            return "\n\n".join(chunks) + "\n"

    def emit(self, spec: CodegenSpec) -> tuple[str, object]:
        source = self.emit_source(spec)
        code = compile(source, f"<portal-native-{id(spec)}>", "exec")
        return source, code

    def bind(self, source: str, code, bindings: dict) -> GeneratedKernels:
        has_native = NATIVE_MARKER in source
        mode = native_mode()
        env = dict(bindings)
        if has_native:
            digest = hashlib.blake2b(source.encode(),
                                     digest_size=16).hexdigest()
            env["_njit"] = (_make_njit(digest) if mode is not None
                            else _identity_jit)
        kernels = bind_kernels(source, code, env)
        if not has_native or mode is None:
            # Unsupported construct, or numba vanished between compile
            # and bind: the NumPy kernels in the same artifact serve.
            contribute({"backend.native.fallback": 1})
            return kernels

        ns = kernels.namespace
        t0 = time.perf_counter()
        try:
            with span("backend.native.warm", mode=mode):
                ns["_native_warm"]()
        except Exception:
            # A numba typing gap on this kernel shape: stay on NumPy.
            contribute({
                "backend.native.fallback": 1,
                "backend.native.compile_s": time.perf_counter() - t0,
            })
            return kernels
        contribute({"backend.native.compile_s": time.perf_counter() - t0})

        for name in ns["NATIVE_OVERRIDES"]:
            native_fn = ns[f"native_{name}"]
            # Namespace rebinding first: emitted NumPy functions that
            # call these by name (prune_or_approx → apply_action) must
            # pick the native kernels up through their globals.
            ns[name] = native_fn
            setattr(kernels, name, native_fn)
        return kernels


register_backend(NativeBackend())
