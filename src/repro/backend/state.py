"""Runtime accumulator state — the materialisation of storage injection.

The lowering stage plans one injected storage per layer (paper
section IV-B); this module allocates the corresponding runtime arrays in
*permuted query order* (so vectorised base cases update contiguous
slices) and implements the finalisation step: mapping results back
through the tree permutations, applying the outer layer's reduction and
optional modifying function, and wrapping everything in an
:class:`Output`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..dsl.errors import CompileError
from ..dsl.ops import PortalOp, op_info

__all__ = ["State", "Output", "allocate_state"]


@dataclass
class Output:
    """Result of executing a Portal program.

    ``values`` / ``indices`` are in the caller's original query order.
    For scalar-output problems (e.g. 2-point correlation, Hausdorff) the
    result is in ``scalar`` and ``values`` holds the per-query
    intermediates.
    """

    values: np.ndarray | None = None
    indices: np.ndarray | list | None = None
    scalar: float | None = None

    def __repr__(self) -> str:
        parts = []
        if self.scalar is not None:
            parts.append(f"scalar={self.scalar:g}")
        if self.values is not None:
            parts.append(f"values.shape={np.shape(self.values)}")
        if self.indices is not None:
            parts.append("indices=...")
        return f"Output({', '.join(parts)})"


@dataclass
class State:
    """Accumulators for one compiled problem."""

    inner_op: PortalOp
    outer_op: PortalOp
    k: int | None
    nq: int
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    lists: list | None = None
    #: optional modifying function applied to per-query results before the
    #: outer reduction (paper section III-C "modifying functions")
    modifier: Callable | None = None
    #: monotone-map deferral (compiler optimisation): when the kernel is a
    #: monotone increasing function g of the base distance and the inner
    #: reduction is order-based, the traversal reduces raw base distances
    #: and g is applied once here instead of per leaf pair
    value_transform: Callable | None = None

    def finalize(self, qperm: np.ndarray, rperm: np.ndarray | None) -> Output:
        """Produce the :class:`Output` in original point order."""
        inv = np.empty_like(qperm)
        inv[qperm] = np.arange(len(qperm))

        info = op_info(self.inner_op)
        values = indices = None
        if self.inner_op is PortalOp.FORALL:
            values = self.arrays["dense"][inv]
        elif self.inner_op in (PortalOp.UNION, PortalOp.UNIONARG):
            assert self.lists is not None
            per_query: list[np.ndarray] = []
            for pos in inv:
                chunks = self.lists[pos]
                merged = (
                    np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
                )
                per_query.append(merged)
            if self.inner_op is PortalOp.UNIONARG and rperm is not None:
                per_query = [rperm[c.astype(np.int64)] for c in per_query]
                indices = per_query
            elif self.inner_op is PortalOp.UNIONARG:
                indices = [c.astype(np.int64) for c in per_query]
            else:
                values = per_query
        elif info.returns_index or info.requires_k:
            best = self.arrays["best"][inv]
            values = best
            if info.returns_index:
                idx = self.arrays["best_idx"][inv]
                indices = rperm[idx] if rperm is not None else idx
        else:
            values = self.arrays["acc" if info.arithmetic else "best"][inv]

        if self.value_transform is not None and values is not None:
            values = self.value_transform(np.asarray(values))

        out = Output(values=values, indices=indices)

        # Outer reduction (identity for FORALL).
        if self.outer_op is not PortalOp.FORALL:
            v = values
            if v is None:
                raise CompileError(
                    f"outer {self.outer_op.name} requires a single-valued inner "
                    f"reduction"
                )
            if self.modifier is not None:
                v = self.modifier(v)
            if self.outer_op is PortalOp.SUM:
                out.scalar = float(np.sum(v))
            elif self.outer_op is PortalOp.PROD:
                out.scalar = float(np.prod(v))
            elif self.outer_op is PortalOp.MIN:
                out.scalar = float(np.min(v))
            elif self.outer_op is PortalOp.MAX:
                out.scalar = float(np.max(v))
            else:
                raise CompileError(
                    f"outer operator {self.outer_op.name} is not supported"
                )
        elif self.modifier is not None and values is not None:
            out.values = self.modifier(values)
        return out


_SUPPORTED_INNER = {
    PortalOp.SUM, PortalOp.PROD, PortalOp.MIN, PortalOp.MAX,
    PortalOp.ARGMIN, PortalOp.ARGMAX, PortalOp.KMIN, PortalOp.KMAX,
    PortalOp.KARGMIN, PortalOp.KARGMAX, PortalOp.UNION, PortalOp.UNIONARG,
    PortalOp.FORALL,
}


def allocate_state(
    outer_op: PortalOp,
    inner_op: PortalOp,
    k: int | None,
    nq: int,
    nr: int,
    modifier: Callable | None = None,
) -> State:
    """Allocate accumulators for the (outer, inner) operator pair."""
    if inner_op not in _SUPPORTED_INNER:
        raise CompileError(f"inner operator {inner_op.name} is not supported")
    st = State(inner_op=inner_op, outer_op=outer_op, k=k, nq=nq,
               modifier=modifier)
    info = op_info(inner_op)
    if inner_op in (PortalOp.UNION, PortalOp.UNIONARG):
        st.lists = [[] for _ in range(nq)]
    elif inner_op is PortalOp.FORALL:
        st.arrays["dense"] = np.zeros((nq, nr))
    elif info.requires_k:
        st.arrays["best"] = np.full((nq, k), info.identity)
        if info.returns_index:
            st.arrays["best_idx"] = np.full((nq, k), -1, dtype=np.int64)
    elif info.comparative:
        st.arrays["best"] = np.full(nq, info.identity)
        if info.returns_index:
            st.arrays["best_idx"] = np.full(nq, -1, dtype=np.int64)
    else:  # SUM / PROD
        st.arrays["acc"] = np.full(nq, info.identity)
    if "best" in st.arrays:
        # Signed per-query pruning bound for the bound-aware batched
        # engine: ± the k-th retained value, +inf before any base case
        # (see traversal/bounded_batched.py).  Finalize ignores it.
        st.arrays["qbound"] = np.full(nq, math.inf)
    return st
