"""Baselines: brute force, hand-optimised "expert" (PASCAL) code, and the
library-style comparators of paper Table V."""

from . import brute, expert
from .fdps_like import fdps_like_forces
from .mlpack_like import MlpackLikeNBC
from .sklearn_like import sklearn_like_two_point

__all__ = [
    "brute", "expert", "sklearn_like_two_point", "MlpackLikeNBC",
    "fdps_like_forces",
]
