"""Brute-force O(N²) reference implementations.

The ground truth for correctness tests and the asymptotic baseline the
tree algorithms are measured against.  Straightforward vectorised NumPy,
blocked to bound memory.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairwise_sqdist", "brute_knn", "brute_kde", "brute_range_count",
    "brute_range_search", "brute_hausdorff", "brute_two_point",
    "brute_forces", "brute_potential",
]


def pairwise_sqdist(Q: np.ndarray, R: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, (nq, nr)."""
    q2 = np.einsum("ij,ij->i", Q, Q)
    r2 = np.einsum("ij,ij->i", R, R)
    d2 = q2[:, None] + r2[None, :] - 2.0 * (Q @ R.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def _blocks(n: int, size: int):
    for s in range(0, n, size):
        yield s, min(s + size, n)


def brute_knn(Q, R, k: int = 1, exclude_self: bool = False, block: int = 1024):
    """(distances, indices) of the k nearest references per query."""
    Q = np.asarray(Q, float)
    R = np.asarray(R, float)
    nq = len(Q)
    dist = np.empty((nq, k))
    idx = np.empty((nq, k), dtype=np.int64)
    for s, e in _blocks(nq, block):
        d2 = pairwise_sqdist(Q[s:e], R)
        if exclude_self:
            d2[np.arange(e - s), np.arange(s, e)] = np.inf
        sel = np.argsort(d2, axis=1, kind="stable")[:, :k]
        # Recompute the selected distances from the points: the dot-trick
        # matrix is fast for selection but loses ~1e-7 absolute accuracy to
        # cancellation, and this function is the test-suite ground truth.
        diff = Q[s:e, None, :] - R[sel]
        exact = np.einsum("ijk,ijk->ij", diff, diff)
        order = np.argsort(exact, axis=1, kind="stable")
        dist[s:e] = np.sqrt(np.take_along_axis(exact, order, axis=1))
        idx[s:e] = np.take_along_axis(sel, order, axis=1)
    if k == 1:
        return dist[:, 0], idx[:, 0]
    return dist, idx


def brute_kde(Q, R, bandwidth: float, weights=None, block: int = 1024):
    """Unnormalised Gaussian KDE sums."""
    Q = np.asarray(Q, float)
    R = np.asarray(R, float)
    c = -1.0 / (2.0 * bandwidth * bandwidth)
    out = np.empty(len(Q))
    for s, e in _blocks(len(Q), block):
        k = np.exp(c * pairwise_sqdist(Q[s:e], R))
        out[s:e] = k @ weights if weights is not None else k.sum(axis=1)
    return out


def brute_range_count(Q, R, h: float, exclude_self: bool = False,
                      block: int = 1024):
    Q = np.asarray(Q, float)
    R = np.asarray(R, float)
    h2 = h * h
    out = np.empty(len(Q))
    for s, e in _blocks(len(Q), block):
        m = pairwise_sqdist(Q[s:e], R) < h2
        if exclude_self:
            m[np.arange(e - s), np.arange(s, e)] = False
        out[s:e] = m.sum(axis=1)
    return out


def brute_range_search(Q, R, h: float, exclude_self: bool = False,
                       block: int = 1024):
    Q = np.asarray(Q, float)
    R = np.asarray(R, float)
    h2 = h * h
    out = []
    for s, e in _blocks(len(Q), block):
        m = pairwise_sqdist(Q[s:e], R) < h2
        if exclude_self:
            m[np.arange(e - s), np.arange(s, e)] = False
        out.extend(np.flatnonzero(row) for row in m)
    return out


def brute_hausdorff(A, B, block: int = 1024) -> float:
    """Directed Hausdorff max_a min_b d(a, b)."""
    A = np.asarray(A, float)
    B = np.asarray(B, float)
    worst = 0.0
    for s, e in _blocks(len(A), block):
        worst = max(worst, float(pairwise_sqdist(A[s:e], B).min(axis=1).max()))
    return float(np.sqrt(worst))


def brute_two_point(X, h: float, block: int = 1024) -> float:
    """Ordered pair count (i ≠ j) with distance < h."""
    X = np.asarray(X, float)
    h2 = h * h
    total = 0
    for s, e in _blocks(len(X), block):
        m = pairwise_sqdist(X[s:e], X) < h2
        m[np.arange(e - s), np.arange(s, e)] = False
        total += int(m.sum())
    return float(total)


def brute_forces(pos, mass, G: float = 1.0, eps: float = 1e-3,
                 block: int = 512) -> np.ndarray:
    """Exact softened gravitational accelerations."""
    pos = np.asarray(pos, float)
    mass = np.asarray(mass, float)
    n = len(pos)
    acc = np.empty_like(pos)
    eps2 = eps * eps
    for s, e in _blocks(n, block):
        d = pos[None, :, :] - pos[s:e, None, :]
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        w = mass[None, :] * r2 ** -1.5
        w[:, s:e][np.arange(e - s), np.arange(e - s)] = 0.0
        acc[s:e] = G * np.einsum("ijk,ij->ik", d, w)
    return acc


def brute_potential(pos, mass, G: float = 1.0, eps: float = 1e-3,
                    block: int = 1024) -> np.ndarray:
    """Exact softened potentials Σ_{r≠q} G m_r / sqrt(d² + ε²)."""
    pos = np.asarray(pos, float)
    mass = np.asarray(mass, float)
    n = len(pos)
    out = np.empty(n)
    eps2 = eps * eps
    for s, e in _blocks(n, block):
        r2 = pairwise_sqdist(pos[s:e], pos) + eps2
        k = G * mass[None, :] / np.sqrt(r2)
        k[np.arange(e - s), np.arange(s, e)] = 0.0
        out[s:e] = k.sum(axis=1)
    return out
