"""Hand-optimised "expert" baselines — stand-ins for the paper's PASCAL
library implementations (Table IV's comparison targets)."""

from .em import expert_em
from .emst import expert_emst
from .hausdorff import expert_hausdorff
from .kde import expert_kde
from .knn import expert_knn
from .range_search import expert_range_count, expert_range_search

__all__ = [
    "expert_knn", "expert_kde", "expert_range_count", "expert_range_search",
    "expert_hausdorff", "expert_em", "expert_emst",
]
