"""Hand-optimised EM for Gaussian mixtures — the PASCAL "expert" baseline.

Fully fused NumPy: log-space responsibilities via log-sum-exp, one
Cholesky per component per iteration, einsum-contracted M-step — the code
a performance programmer writes directly, with none of the Portal layer
machinery or external-kernel call overhead (the paper attributes the
8–9 % Portal/expert gap on EM exactly to those external calls).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cholesky, solve_triangular

__all__ = ["expert_em"]

_LOG2PI = float(np.log(2.0 * np.pi))


def _log_resp(X, means, covs, weights):
    n, d = X.shape
    K = len(means)
    logp = np.empty((n, K))
    for k in range(K):
        L = cholesky(covs[k] + 1e-9 * np.eye(d), lower=True)
        z = solve_triangular(L, (X - means[k]).T, lower=True)
        maha = np.einsum("ij,ij->j", z, z)
        logdet = 2.0 * np.log(np.diag(L)).sum()
        logp[:, k] = np.log(weights[k]) - 0.5 * (maha + logdet + d * _LOG2PI)
    mx = logp.max(axis=1, keepdims=True)
    lse = mx[:, 0] + np.log(np.exp(logp - mx).sum(axis=1))
    return logp - lse[:, None], lse


def expert_em(X, n_components: int, max_iter: int = 50, tol: float = 1e-5,
              seed: int = 0):
    """Returns (means, covariances, weights, log_likelihoods)."""
    X = np.ascontiguousarray(X, dtype=np.float64)
    n, d = X.shape
    K = n_components
    rng = np.random.default_rng(seed)
    means = X[rng.choice(n, size=K, replace=False)].copy()
    # k-means-style hard init (mirrors the Portal implementation).
    assign = ((X[:, None, :] - means[None]) ** 2).sum(-1).argmin(axis=1)
    covs = np.empty((K, d, d))
    weights = np.empty(K)
    for k in range(K):
        sel = X[assign == k]
        if len(sel) < 2:
            sel = X
        means[k] = sel.mean(axis=0)
        covs[k] = np.cov(sel.T) + 1e-6 * np.eye(d)
        weights[k] = max(len(sel), 1) / n
    weights /= weights.sum()

    lls: list[float] = []
    prev = -np.inf
    for _ in range(max_iter):
        log_r, lse = _log_resp(X, means, covs, weights)
        resp = np.exp(log_r)
        nk = resp.sum(axis=0) + 1e-12
        weights = nk / n
        means = (resp.T @ X) / nk[:, None]
        for k in range(K):
            diff = X - means[k]
            covs[k] = np.einsum("i,ij,ik->jk", resp[:, k], diff, diff) / nk[k]
            covs[k] += 1e-6 * np.eye(d)
        ll = float(lse.sum())
        lls.append(ll)
        if abs(ll - prev) < tol * max(1.0, abs(prev)):
            break
        prev = ll
    return means, covs, weights, lls
