"""Hand-optimised Euclidean MST — the PASCAL "expert" baseline.

Dual-tree Borůvka with the manual tunings a performance programmer adds:
the dot-product distance expansion in the base case, per-round cached
component labels on node slices, and an in-round tightened bound.
"""

from __future__ import annotations

import numpy as np

from ...traversal import dual_tree_traversal
from ...trees import build_kdtree

__all__ = ["expert_emst"]


def expert_emst(points, leaf_size: int = 32):
    """Returns (edges (n-1,2) original indices, weights, total_weight)."""
    X = np.ascontiguousarray(points, dtype=np.float64)
    n = len(X)
    tree = build_kdtree(X, leaf_size=leaf_size)
    pts = tree.points
    pn2 = np.einsum("ij,ij->i", pts, pts)
    lo, hi = tree.lo, tree.hi
    start, end = tree.start, tree.end
    n_nodes = tree.n_nodes

    parent = np.arange(n)

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    comp = np.arange(n)
    edges: list[tuple[int, int]] = []
    wts: list[float] = []

    while len(edges) < n - 1:
        best_d = np.full(n, np.inf)
        best_pair = np.full((n, 2), -1, dtype=np.int64)
        cmin = np.empty(n_nodes, dtype=np.int64)
        cmax = np.empty(n_nodes, dtype=np.int64)
        for i in range(n_nodes):
            seg = comp[start[i]:end[i]]
            cmin[i] = seg.min()
            cmax[i] = seg.max()

        def prune(qi, ri):
            if cmin[qi] == cmax[qi] == cmin[ri] == cmax[ri]:
                return 1
            gaps = np.maximum(0.0, np.maximum(lo[ri] - hi[qi], lo[qi] - hi[ri]))
            return 1 if float(gaps @ gaps) > best_d[comp[start[qi]:end[qi]]].max() else 0

        def base_case(qs, qe, rs, re):
            d2 = pn2[qs:qe, None] + pn2[None, rs:re] - 2.0 * (pts[qs:qe] @ pts[rs:re].T)
            np.maximum(d2, 0.0, out=d2)
            cq, cr = comp[qs:qe], comp[rs:re]
            d2[cq[:, None] == cr[None, :]] = np.inf
            j = d2.argmin(axis=1)
            vals = d2[np.arange(d2.shape[0]), j]
            for i in np.flatnonzero(np.isfinite(vals)):
                c = cq[i]
                if vals[i] < best_d[c]:
                    best_d[c] = vals[i]
                    best_pair[c] = (qs + i, rs + j[i])

        dual_tree_traversal(tree, tree, prune, base_case)

        for c in np.unique(comp):
            a, b = best_pair[c]
            if a >= 0:
                ra, rb = find(int(a)), find(int(b))
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
                    edges.append((int(tree.perm[a]), int(tree.perm[b])))
                    wts.append(float(np.sqrt(best_d[c])))
        comp = np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)

    order = np.argsort(wts)
    e = np.asarray(edges, dtype=np.int64)[order]
    w = np.asarray(wts)[order]
    return e, w, float(w.sum())
