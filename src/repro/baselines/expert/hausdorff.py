"""Hand-optimised directed Hausdorff distance — the PASCAL "expert"
baseline (max_a min_b ‖a − b‖)."""

from __future__ import annotations

import numpy as np

from ...traversal import dual_tree_traversal
from ...trees import build_kdtree

__all__ = ["expert_hausdorff"]


def expert_hausdorff(A, B, leaf_size: int = 64) -> float:
    A = np.ascontiguousarray(A, dtype=np.float64)
    B = np.ascontiguousarray(B, dtype=np.float64)
    atree = build_kdtree(A, leaf_size=leaf_size)
    btree = build_kdtree(B, leaf_size=leaf_size)
    ap, bp = atree.points, btree.points
    an2 = np.einsum("ij,ij->i", ap, ap)
    bn2 = np.einsum("ij,ij->i", bp, bp)
    alo, ahi, blo, bhi = atree.lo, atree.hi, btree.lo, btree.hi
    astart, aend = atree.start, atree.end

    best = np.full(len(A), np.inf)  # running min per query, squared

    def pair_min(ai, bi):
        gaps = np.maximum(0.0, np.maximum(blo[bi] - ahi[ai], alo[ai] - bhi[bi]))
        return float(gaps @ gaps)

    def prune(ai, bi):
        return 1 if pair_min(ai, bi) > best[astart[ai]:aend[ai]].max() else 0

    def base_case(as_, ae, bs, be):
        d2 = an2[as_:ae, None] + bn2[None, bs:be] - 2.0 * (ap[as_:ae] @ bp[bs:be].T)
        np.maximum(d2, 0.0, out=d2)
        np.minimum(best[as_:ae], d2.min(axis=1), out=best[as_:ae])

    dual_tree_traversal(atree, btree, prune, base_case, pair_min_dist=pair_min)
    return float(np.sqrt(best.max()))
