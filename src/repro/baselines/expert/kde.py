"""Hand-optimised Gaussian KDE — the PASCAL "expert" baseline.

Same kd-tree and traversal template as the generated code; hand-written
base case using the dot-product distance expansion and a hand-derived
approximation rule identical in effect to the generated one (kernel band
narrower than τ ⇒ centroid contribution times node density).
"""

from __future__ import annotations

import numpy as np

from ...traversal import dual_tree_traversal
from ...trees import build_kdtree

__all__ = ["expert_kde"]


def expert_kde(query, reference=None, bandwidth: float = 1.0,
               tau: float = 1e-3, leaf_size: int = 64) -> np.ndarray:
    Q = np.ascontiguousarray(query, dtype=np.float64)
    self_join = reference is None
    R = Q if self_join else np.ascontiguousarray(reference, dtype=np.float64)
    c = -1.0 / (2.0 * bandwidth * bandwidth)

    qtree = build_kdtree(Q, leaf_size=leaf_size)
    rtree = qtree if self_join else build_kdtree(R, leaf_size=leaf_size)
    qp, rp = qtree.points, rtree.points
    qn2 = np.einsum("ij,ij->i", qp, qp)
    rn2 = np.einsum("ij,ij->i", rp, rp)
    qlo, qhi, rlo, rhi = qtree.lo, qtree.hi, rtree.lo, rtree.hi
    qstart, qend = qtree.start, qtree.end
    rstart, rend = rtree.start, rtree.end
    rcent = rtree.centroid

    acc = np.zeros(len(Q))

    def pair_min(qi, ri):
        gaps = np.maximum(0.0, np.maximum(rlo[ri] - qhi[qi], qlo[qi] - rhi[ri]))
        return float(gaps @ gaps)

    def prune_or_approx(qi, ri):
        gaps = np.maximum(0.0, np.maximum(rlo[ri] - qhi[qi], qlo[qi] - rhi[ri]))
        tmin = float(gaps @ gaps)
        spans = np.maximum(0.0, np.maximum(rhi[ri] - qlo[qi], qhi[qi] - rlo[ri]))
        tmax = float(spans @ spans)
        k_hi = np.exp(c * tmin)
        k_lo = np.exp(c * tmax)
        if k_hi - k_lo <= tau:
            s, e = qstart[qi], qend[qi]
            dq = qp[s:e] - rcent[ri]
            tc = np.einsum("ij,ij->i", dq, dq)
            acc[s:e] += (rend[ri] - rstart[ri]) * np.exp(c * tc)
            return 2
        return 0

    def base_case(qs, qe, rs, re):
        d2 = qn2[qs:qe, None] + rn2[None, rs:re] - 2.0 * (qp[qs:qe] @ rp[rs:re].T)
        np.maximum(d2, 0.0, out=d2)
        acc[qs:qe] += np.exp(c * d2).sum(axis=1)

    dual_tree_traversal(qtree, rtree, prune_or_approx, base_case,
                        pair_min_dist=pair_min)

    inv = np.empty(len(Q), dtype=np.int64)
    inv[qtree.perm] = np.arange(len(Q))
    return acc[inv]
