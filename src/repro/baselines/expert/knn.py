"""Hand-optimised k-NN — the PASCAL "expert" baseline (paper section V-B).

Same kd-tree (median split on the widest dimension) and the same
multi-tree traversal template as the compiler-generated code; the base
case and prune condition are *hand-written* with the tricks a performance
programmer applies manually:

* the dot-product expansion ``‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b`` (one GEMM per
  leaf pair instead of a broadcast difference tensor),
* precomputed per-point squared norms,
* ``argpartition`` instead of a full sort for the k-way merge.
"""

from __future__ import annotations

import numpy as np

from ...traversal import dual_tree_traversal
from ...trees import build_kdtree

__all__ = ["expert_knn"]


def expert_knn(query, reference=None, k: int = 1, leaf_size: int = 64):
    """Hand-optimised k nearest neighbors; returns (dist, idx) sorted."""
    Q = np.ascontiguousarray(query, dtype=np.float64)
    self_join = reference is None
    R = Q if self_join else np.ascontiguousarray(reference, dtype=np.float64)

    qtree = build_kdtree(Q, leaf_size=leaf_size)
    rtree = qtree if self_join else build_kdtree(R, leaf_size=leaf_size)
    qp, rp = qtree.points, rtree.points
    qn2 = np.einsum("ij,ij->i", qp, qp)
    rn2 = np.einsum("ij,ij->i", rp, rp)
    qlo, qhi, rlo, rhi = qtree.lo, qtree.hi, rtree.lo, rtree.hi
    qstart, qend = qtree.start, qtree.end

    nq = len(Q)
    best = np.full((nq, k), np.inf)
    best_idx = np.full((nq, k), -1, dtype=np.int64)

    def pair_min(qi, ri):
        gaps = np.maximum(0.0, np.maximum(rlo[ri] - qhi[qi], qlo[qi] - rhi[ri]))
        return float(gaps @ gaps)

    def prune(qi, ri):
        return 1 if pair_min(qi, ri) > best[qstart[qi]:qend[qi], k - 1].max() else 0

    def base_case(qs, qe, rs, re):
        d2 = qn2[qs:qe, None] + rn2[None, rs:re] - 2.0 * (qp[qs:qe] @ rp[rs:re].T)
        np.maximum(d2, 0.0, out=d2)
        if self_join and qs == rs:
            np.fill_diagonal(d2, np.inf)
        cand_v = np.concatenate([best[qs:qe], d2], axis=1)
        cand_i = np.concatenate(
            [best_idx[qs:qe],
             np.broadcast_to(np.arange(rs, re), d2.shape)], axis=1
        )
        part = np.argpartition(cand_v, k - 1, axis=1)[:, :k]
        vals = np.take_along_axis(cand_v, part, axis=1)
        idxs = np.take_along_axis(cand_i, part, axis=1)
        order = np.argsort(vals, axis=1, kind="stable")
        best[qs:qe] = np.take_along_axis(vals, order, axis=1)
        best_idx[qs:qe] = np.take_along_axis(idxs, order, axis=1)

    dual_tree_traversal(qtree, rtree, prune, base_case, pair_min_dist=pair_min)

    inv = np.empty(nq, dtype=np.int64)
    inv[qtree.perm] = np.arange(nq)
    dist = np.sqrt(best[inv])
    idx = rtree.perm[best_idx[inv]]
    if k == 1:
        return dist[:, 0], idx[:, 0]
    return dist, idx
