"""Hand-optimised range search / range count — the PASCAL "expert" baseline."""

from __future__ import annotations

import numpy as np

from ...traversal import dual_tree_traversal
from ...trees import build_kdtree

__all__ = ["expert_range_count", "expert_range_search"]


def _setup(query, reference, leaf_size):
    Q = np.ascontiguousarray(query, dtype=np.float64)
    self_join = reference is None
    R = Q if self_join else np.ascontiguousarray(reference, dtype=np.float64)
    qtree = build_kdtree(Q, leaf_size=leaf_size)
    rtree = qtree if self_join else build_kdtree(R, leaf_size=leaf_size)
    return Q, R, qtree, rtree, self_join


def expert_range_count(query, reference=None, h: float = 1.0,
                       leaf_size: int = 64) -> np.ndarray:
    """Per-query count of references within ``h`` (self excluded on
    self-joins).

    Note the base case uses the exact difference form, not the GEMM norm
    expansion: a *count* must not flip on ~1e-12 cancellation at the
    threshold, so this is what an expert writes for counting problems.
    """
    Q, R, qtree, rtree, self_join = _setup(query, reference, leaf_size)
    qp, rp = qtree.points, rtree.points
    qlo, qhi, rlo, rhi = qtree.lo, qtree.hi, rtree.lo, rtree.hi
    qstart, qend = qtree.start, qtree.end
    rstart, rend = rtree.start, rtree.end
    h2 = h * h
    acc = np.zeros(len(Q))

    def prune_or_approx(qi, ri):
        gaps = np.maximum(0.0, np.maximum(rlo[ri] - qhi[qi], qlo[qi] - rhi[ri]))
        if float(gaps @ gaps) >= h2:
            return 1
        spans = np.maximum(0.0, np.maximum(rhi[ri] - qlo[qi], qhi[qi] - rlo[ri]))
        if float(spans @ spans) < h2:
            s, e = qstart[qi], qend[qi]
            acc[s:e] += rend[ri] - rstart[ri]
            if self_join:
                lo2, hi2 = max(s, rstart[ri]), min(e, rend[ri])
                if lo2 < hi2:
                    acc[lo2:hi2] -= 1.0
            return 2
        return 0

    def base_case(qs, qe, rs, re):
        diff = qp[qs:qe, None, :] - rp[None, rs:re, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        m = d2 < h2
        if self_join and qs == rs:
            np.fill_diagonal(m, False)
        acc[qs:qe] += m.sum(axis=1)

    dual_tree_traversal(qtree, rtree, prune_or_approx, base_case)
    inv = np.empty(len(Q), dtype=np.int64)
    inv[qtree.perm] = np.arange(len(Q))
    return acc[inv]


def expert_range_search(query, reference=None, h: float = 1.0,
                        leaf_size: int = 64) -> list[np.ndarray]:
    """Per-query sorted original indices of references within ``h``."""
    Q, R, qtree, rtree, self_join = _setup(query, reference, leaf_size)
    qp, rp = qtree.points, rtree.points
    qlo, qhi, rlo, rhi = qtree.lo, qtree.hi, rtree.lo, rtree.hi
    qstart, qend = qtree.start, qtree.end
    rstart, rend = rtree.start, rtree.end
    h2 = h * h
    lists: list[list] = [[] for _ in range(len(Q))]

    def prune_or_approx(qi, ri):
        gaps = np.maximum(0.0, np.maximum(rlo[ri] - qhi[qi], qlo[qi] - rhi[ri]))
        if float(gaps @ gaps) >= h2:
            return 1
        spans = np.maximum(0.0, np.maximum(rhi[ri] - qlo[qi], qhi[qi] - rlo[ri]))
        if float(spans @ spans) < h2:
            idxs = np.arange(rstart[ri], rend[ri])
            for i in range(qstart[qi], qend[qi]):
                if self_join and rstart[ri] <= i < rend[ri]:
                    lists[i].append(idxs[idxs != i])
                else:
                    lists[i].append(idxs)
            return 2
        return 0

    def base_case(qs, qe, rs, re):
        diff = qp[qs:qe, None, :] - rp[None, rs:re, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        m = d2 < h2
        if self_join and qs == rs:
            np.fill_diagonal(m, False)
        for i in range(qe - qs):
            nz = np.flatnonzero(m[i])
            if nz.size:
                lists[qs + i].append(rs + nz)

    dual_tree_traversal(qtree, rtree, prune_or_approx, base_case)
    inv = np.empty(len(Q), dtype=np.int64)
    inv[qtree.perm] = np.arange(len(Q))
    out = []
    for pos in inv:
        chunks = lists[pos]
        merged = np.concatenate(chunks) if chunks else np.empty(0, np.int64)
        out.append(np.sort(rtree.perm[merged.astype(np.int64)]))
    return out
