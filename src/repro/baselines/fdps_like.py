"""FDPS-style Barnes-Hut baseline (paper Table V).

FDPS is a hand-optimised C++ particle-simulation framework whose force
evaluation walks the tree once *per particle* (interaction-list
construction per particle), rather than amortising walks across a query
node as a dual-tree traversal does.  This baseline reproduces that
algorithmic shape on the same octree substrate: one multipole-acceptance
tree walk per particle, with NumPy doing the per-node arithmetic.  The
paper reports Portal 70 % faster than FDPS on 10 M particles — here the
dual-tree implementation should beat this per-particle walker by a
comparable moderate factor.
"""

from __future__ import annotations

import numpy as np

from ..trees import build_octree

__all__ = ["fdps_like_forces"]


def fdps_like_forces(
    positions,
    masses,
    theta: float = 0.5,
    G: float = 1.0,
    eps: float = 1e-3,
    leaf_size: int = 64,
) -> np.ndarray:
    """Per-particle Barnes-Hut accelerations via single-tree walks."""
    pos = np.ascontiguousarray(positions, dtype=np.float64)
    mass = np.ascontiguousarray(masses, dtype=np.float64)
    tree = build_octree(pos, leaf_size=leaf_size, weights=mass)
    pts = tree.points
    m = tree.weights
    lo, hi = tree.lo, tree.hi
    start, end = tree.start, tree.end
    com, M = tree.wcentroid, tree.wsum
    diam = tree.diameter
    eps2 = eps * eps

    n = len(pos)
    acc = np.zeros_like(pts)
    for q in range(n):
        x = pts[q]
        ax = np.zeros(pts.shape[1])
        stack = [0]
        while stack:
            node = stack.pop()
            d = com[node] - x
            r2 = float(d @ d)
            if r2 > 0.0 and diam[node] <= theta * np.sqrt(r2):
                ax += (G * M[node]) * d / (r2 + eps2) ** 1.5
                continue
            kids = tree.children(node)
            if len(kids) == 0:
                s, e = start[node], end[node]
                dd = pts[s:e] - x
                rr2 = np.einsum("ij,ij->i", dd, dd) + eps2
                w = m[s:e] * rr2 ** -1.5
                if s <= q < e:
                    w[q - s] = 0.0
                ax += G * (w @ dd)
            else:
                stack.extend(int(c) for c in kids)
        acc[q] = ax

    inv = np.empty(n, dtype=np.int64)
    inv[tree.perm] = np.arange(n)
    return acc[inv]
