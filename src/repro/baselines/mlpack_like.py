"""MLPACK-style naive Bayes baseline (paper Table V).

MLPACK's NBC is a well-written single-threaded C++ implementation that
evaluates every class density for every point, one point at a time, with
no batching across points (and, per the paper's related-work discussion,
no parallelism).  This baseline reproduces that shape: a per-point loop
computing all class log-likelihoods through individually solved
triangular systems — the same O(n·K·d²) work Portal's version does, but
without the block vectorisation and whitened-tree batching, which is
exactly where the paper's 15–47× factor comes from on a large multicore
machine.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cholesky, solve_triangular

__all__ = ["MlpackLikeNBC"]

_LOG2PI = float(np.log(2.0 * np.pi))


class MlpackLikeNBC:
    """Gaussian Bayes classifier evaluated point-by-point."""

    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        d = X.shape[1]
        self.means_, self.chols_, self.logdets_, self.priors_ = [], [], [], []
        for c in self.classes_:
            Xc = X[y == c]
            mu = Xc.mean(axis=0)
            cov = np.cov(Xc.T) + 1e-6 * np.eye(d)
            L = cholesky(cov, lower=True)
            self.means_.append(mu)
            self.chols_.append(L)
            self.logdets_.append(2.0 * np.log(np.diag(L)).sum())
            self.priors_.append(len(Xc) / len(X))
        return self

    def predict(self, X):
        X = np.asarray(X, dtype=np.float64)
        n, d = X.shape
        K = len(self.classes_)
        out = np.empty(n, dtype=self.classes_.dtype)
        for i in range(n):            # point-at-a-time, as in the library
            best, best_k = -np.inf, 0
            for k in range(K):
                y = X[i] - self.means_[k]
                # forward substitution, one right-hand side at a time
                zz = solve_triangular(self.chols_[k], y, lower=True)
                score = (
                    np.log(self.priors_[k])
                    - 0.5 * (zz @ zz + self.logdets_[k] + d * _LOG2PI)
                )
                if score > best:
                    best, best_k = score, k
            out[i] = self.classes_[best_k]
        return out

    def score(self, X, y):
        return float(np.mean(self.predict(X) == np.asarray(y)))
