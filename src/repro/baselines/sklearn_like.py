"""scikit-learn-style 2-point correlation baseline (paper Table V).

scikit-learn computes 2-point correlation through per-point radius
queries against a single tree (``KDTree.two_point_correlation`` walks the
tree once per query point from Python-driven loops, with no dual-tree
node-pair counting).  This baseline reproduces that algorithmic shape:
one kd-tree, a *per-point* recursive count with node inclusion/exclusion
tests, driven point by point — so it lacks exactly the dual-tree
amortisation that gives Portal its 66–165× factor in the paper.
"""

from __future__ import annotations

import numpy as np

from ..trees import build_kdtree

__all__ = ["sklearn_like_two_point"]


def sklearn_like_two_point(data, h: float, leaf_size: int = 32) -> float:
    """Ordered pair count (i ≠ j) with ‖x_i − x_j‖ < h."""
    X = np.ascontiguousarray(data, dtype=np.float64)
    tree = build_kdtree(X, leaf_size=leaf_size)
    pts = tree.points
    lo, hi = tree.lo, tree.hi
    start, end = tree.start, tree.end
    h2 = h * h
    total = 0

    for qi in range(len(X)):
        x = pts[qi]
        # Per-point single-tree count (iterative stack walk).
        stack = [0]
        while stack:
            node = stack.pop()
            g = np.maximum(0.0, np.maximum(lo[node] - x, x - hi[node]))
            if float(g @ g) >= h2:
                continue
            s = np.maximum(hi[node] - x, x - lo[node])
            if float(s @ s) < h2:
                total += end[node] - start[node]
                continue
            kids = tree.children(node)
            if len(kids) == 0:
                d = pts[start[node]:end[node]] - x
                total += int((np.einsum("ij,ij->i", d, d) < h2).sum())
            else:
                stack.extend(int(c) for c in kids)
        total -= 1  # self pair
    return float(total)
