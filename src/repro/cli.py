"""Command-line interface for the textual Portal language.

Runs ``.portal`` programs (the Appendix-VIII grammar) from the shell::

    python -m repro run program.portal
    python -m repro run program.portal --option tau=1e-3 --option tree=ball
    python -m repro ir program.portal --stage final
    python -m repro explain program.portal

Storage statements in the program reference CSV paths; ``--bind
name=file.csv`` overrides a storage source, letting one program run
against different datasets.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext

import numpy as np

from .dsl import PortalError, parse_program
from .dsl.storage import _read_csv
from .ir.passes import PIPELINE_STAGES, TOGGLEABLE_PASSES
from .observe import collect, tracing


def _parse_options(pairs: list[str]) -> dict:
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--option expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        for cast in (int, float):
            try:
                out[key] = cast(value)
                break
            except ValueError:
                continue
        else:
            if value.lower() in ("true", "false"):
                out[key] = value.lower() == "true"
            else:
                out[key] = value
    return out


def _options(args) -> dict:
    """execute()/compile() options: --option pairs plus the dedicated
    pass-pipeline flags."""
    out = _parse_options(args.option)
    if args.disable_pass:
        out["disable_passes"] = tuple(args.disable_pass)
    if args.verify_ir:
        out["verify_ir"] = True
    return out


def _parse_bindings(pairs: list[str]) -> dict:
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--bind expects name=path.csv, got {pair!r}")
        name, path = pair.split("=", 1)
        out[name] = _read_csv(path)
    return out


def _load(args) -> "PortalProgram":
    with open(args.program) as fh:
        source = fh.read()
    return parse_program(source, bindings=_parse_bindings(args.bind))


def _cmd_run(args) -> int:
    prog = _load(args)
    results = prog.run(**_options(args))
    for name, out in results.items():
        print(f"== {name} ==")
        if out.scalar is not None:
            print(f"  scalar: {out.scalar:g}")
        if out.values is not None:
            v = np.asarray(out.values)
            head = np.array2string(v[: args.head], precision=4,
                                   threshold=64)
            print(f"  values {v.shape}: {head}")
        if out.indices is not None and not isinstance(out.indices, list):
            print(f"  indices: {np.asarray(out.indices)[: args.head]}")
        elif isinstance(out.indices, list):
            sizes = [len(ix) for ix in out.indices[: args.head]]
            print(f"  index lists (first sizes): {sizes}")
    return 0


def _cmd_ir(args) -> int:
    prog = _load(args)
    for name, pexpr in prog.portal_exprs.items():
        pexpr.compile(**_options(args))
        print(f"== {name} [{args.stage}] ==")
        print(pexpr.ir_dump(args.stage))
        if args.generated:
            print(f"\n== {name} [generated backend source] ==")
            print(pexpr.generated_source())
    return 0


def _fmt_rate(x: float) -> str:
    return f"{100.0 * x:.1f}%"


def _fmt_timings(timings_ms: dict) -> str:
    return " | ".join(f"{k} {v:.3f} ms" for k, v in timings_ms.items())


def _cmd_stats(args) -> int:
    """Execute the program and report observability statistics."""
    options = _options(args)
    trace_cm = tracing(args.trace) if args.trace else nullcontext()
    summaries: dict[str, dict] = {}
    with trace_cm, collect() as counters:
        prog = _load(args)  # inside the scope so the parse span is traced
        for name, pexpr in prog.portal_exprs.items():
            pexpr.execute(**options)
            summaries[name] = pexpr.stats()
    if args.json:
        print(json.dumps(
            {"programs": summaries, "counters": counters.as_dict()},
            indent=2,
        ))
        return 0
    for name, s in summaries.items():
        t = s["traversal"]
        print(f"== {name} ==")
        tree = f" tree: {s['tree']}" if s.get("tree") else ""
        engine = f" engine: {s['traversal_engine']}" if s.get("traversal_engine") else ""
        executor = f" executor: {s['executor']}" if s.get("executor") else ""
        cache = f" cache: {s['cache']}" if s.get("cache") else ""
        codegen = f" codegen: {s['codegen']}" if s.get("codegen") else ""
        print(f"  mode: {s['mode']}  backend: {s['backend']}"
              f"{codegen}{tree}{engine}{executor}{cache}")
        pol = s.get("policy") or {}
        line = f"  policy:    {pol.get('source', 'static-auto')}"
        if pol.get("applied"):
            knobs = " ".join(f"{k}={v}" for k, v in
                             sorted(pol["applied"].items()))
            line += f"  [{knobs}]"
        print(line)
        print(
            f"  traversal: visited={t['visited']} pruned={t['pruned']} "
            f"approximated={t['approximated']} "
            f"recursions={t['recursions']} base-cases={t['base_cases']}"
        )
        line = (
            f"  prune-rate: {_fmt_rate(t['prune_rate'])}  "
            f"approximation-rate: {_fmt_rate(t['approx_rate'])}  "
            f"exact pairs: {t['base_case_pairs']}"
        )
        if "exact_pair_fraction" in t:
            line += f" ({_fmt_rate(t['exact_pair_fraction'])} of all pairs)"
        print(line)
        if s.get("bounded"):
            bb = s["bounded"]
            print(
                f"  bounded:   epochs={bb.get('epochs', 0)} "
                f"bound-refreshes={bb.get('bound_refreshes', 0)} "
                f"deferred-prunes={bb.get('deferred_prunes', 0)} "
                f"pending-peak={bb.get('pending_peak', 0)}"
            )
        if s.get("shard"):
            sh = s["shard"]
            print(
                f"  shard:     count={sh.get('count', 0)} "
                f"rounds={sh.get('rounds', 0)} "
                f"pruned={sh.get('pruned', 0)} "
                f"tasks-pruned={sh.get('tasks_pruned', 0)}"
            )
        print(f"  IR passes: {_fmt_timings(s['pass_timings_ms'])}")
        print(f"  compile:   {_fmt_timings(s['compile_timings_ms'])}")
        print(f"  run:       {s['run_ms']:.3f} ms")
    if args.trace:
        print(f"[trace written to {args.trace}]")
    return 0


def _cmd_tune(args) -> int:
    """Run the measured policy search for each PortalExpr and persist
    the winners in the policy cache (see docs/performance.md)."""
    from .policy import SEARCH_BUDGET_S, ensure_policy, policy_store

    prog = _load(args)
    options = _options(args)
    budget = args.budget if args.budget is not None else SEARCH_BUDGET_S
    results: dict[str, dict] = {}
    for name, pexpr in prog.portal_exprs.items():
        key, entry, source = ensure_policy(
            pexpr.layers, options, force=args.force,
            repeats=args.repeats, budget_s=budget,
        )
        results[name] = {
            "key": key.as_str(), "source": source,
            "config": dict(entry.config), "timings": dict(entry.timings),
            "measured_nq": entry.measured_nq,
            "measured_nr": entry.measured_nr,
        }
    store = policy_store()
    if args.json:
        print(json.dumps({"policy_path": store.path, "entries": len(store),
                          "programs": results}, indent=2))
        return 0
    for name, r in results.items():
        print(f"== {name} ==")
        print(f"  key:    {r['key']}")
        print(f"  source: {r['source']}")
        cfg = r["config"]
        print("  config: " + " ".join(f"{k}={cfg[k]}" for k in sorted(cfg)))
        if r["timings"]:
            print(f"  measured at nq={r['measured_nq']} "
                  f"nr={r['measured_nr']}:")
            for label, secs in sorted(r["timings"].items(),
                                      key=lambda kv: kv[1]):
                print(f"    {secs * 1e3:9.3f} ms  {label}")
    print(f"[policy cache: {store.path} ({len(store)} entries)]")
    return 0


def _cmd_serve(args) -> int:
    """Serve the program's PortalExprs over newline-delimited JSON/TCP
    (see docs/serving.md for the wire protocol)."""
    import asyncio

    from .serve import AdmissionConfig, PortalService, ServeFrontend

    prog = _load(args)
    if not prog.portal_exprs:
        raise SystemExit("program defines no PortalExpr to serve")
    options = _options(args)
    admission = AdmissionConfig(
        max_queue=args.max_queue, batch_max=args.batch_max,
        linger_us=args.linger_us, max_concurrent=args.max_concurrent,
    )

    async def run() -> int:
        service = PortalService()
        frontend = ServeFrontend(service, host=args.host, port=args.port)
        host, port = await frontend.start()
        for name, pexpr in prog.portal_exprs.items():
            await service.register(pexpr, options=options,
                                   admission=admission, name=name)
            print(f"registered {name!r}", flush=True)
        print(f"serving on {host}:{port}", flush=True)
        try:
            if args.max_seconds is not None:
                # bounded lifetime: CI smoke / scripted drivers
                try:
                    await asyncio.wait_for(frontend.serve_forever(),
                                           timeout=args.max_seconds)
                except asyncio.TimeoutError:
                    pass
            else:
                await frontend.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            await frontend.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


def _cmd_explain(args) -> int:
    prog = _load(args)
    for name, pexpr in prog.portal_exprs.items():
        program = pexpr.compile(**_options(args))
        cls = program.classification
        print(f"== {name} ==")
        print(pexpr.describe())
        print(f"  category:  {cls.category}")
        print(f"  algorithm: {cls.algorithm}")
        for reason in cls.reasons:
            print(f"    - {reason}")
        print(f"  rule: {program.rule.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Portal language runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("program", help="path to a .portal program")
        p.add_argument("--bind", action="append", default=[],
                       metavar="NAME=CSV",
                       help="override a Storage source with a CSV file")
        p.add_argument("--option", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="execute()/compile() option, e.g. tau=1e-3")
        p.add_argument("--disable-pass", action="append", default=[],
                       metavar="PASS", dest="disable_pass",
                       choices=list(TOGGLEABLE_PASSES),
                       help="skip an IR optimisation pass (repeatable)")
        p.add_argument("--verify-ir", action="store_true",
                       dest="verify_ir",
                       help="run the structural IR verifier after "
                            "every pass")

    p_run = sub.add_parser("run", help="execute the program")
    common(p_run)
    p_run.add_argument("--head", type=int, default=5,
                       help="rows of each output to print")
    p_run.set_defaults(fn=_cmd_run)

    p_ir = sub.add_parser("ir", help="dump the Portal IR")
    common(p_ir)
    p_ir.add_argument("--stage", default="final",
                      choices=list(PIPELINE_STAGES))
    p_ir.add_argument("--generated", action="store_true",
                      help="also dump the generated backend source")
    p_ir.set_defaults(fn=_cmd_ir)

    p_ex = sub.add_parser("explain",
                          help="show classification and generated rules")
    common(p_ex)
    p_ex.set_defaults(fn=_cmd_explain)

    p_st = sub.add_parser(
        "stats",
        help="execute and report prune/approximation rates and "
             "per-pass timings",
    )
    common(p_st)
    p_st.add_argument("--json", action="store_true",
                      help="machine-readable JSON output")
    p_st.add_argument("--trace", metavar="FILE",
                      help="also write JSONL span events to FILE")
    p_st.set_defaults(fn=_cmd_stats)

    p_tn = sub.add_parser(
        "tune",
        help="run the measured policy search and persist the winners "
             "in the policy cache",
    )
    common(p_tn)
    p_tn.add_argument("--force", action="store_true",
                      help="re-search even when a fresh cached entry "
                           "exists")
    p_tn.add_argument("--budget", type=float, default=None,
                      metavar="SECONDS",
                      help="total measurement budget per program "
                           "(default: the search's built-in budget)")
    p_tn.add_argument("--repeats", type=int, default=2,
                      help="timed repeats per candidate (best-of)")
    p_tn.add_argument("--json", action="store_true",
                      help="machine-readable JSON output")
    p_tn.set_defaults(fn=_cmd_tune)

    p_sv = sub.add_parser(
        "serve",
        help="serve the program's PortalExprs over JSON/TCP with "
             "cross-request coalescing",
    )
    common(p_sv)
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=0,
                      help="TCP port (0 = ephemeral, printed on start)")
    p_sv.add_argument("--max-queue", type=int, default=1024,
                      dest="max_queue",
                      help="per-handle admitted-query bound before "
                           "load-shedding")
    p_sv.add_argument("--batch-max", type=int, default=256,
                      dest="batch_max",
                      help="max queries per coalesced batch "
                           "(1 disables coalescing)")
    p_sv.add_argument("--linger-us", type=int, default=2000,
                      dest="linger_us",
                      help="open-batch linger before a timer flush (µs)")
    p_sv.add_argument("--max-concurrent", type=int, default=1,
                      dest="max_concurrent",
                      help="concurrent batched executes per handle")
    p_sv.add_argument("--max-seconds", type=float, default=None,
                      dest="max_seconds",
                      help="exit after this many seconds (CI smoke)")
    p_sv.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except PortalError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
