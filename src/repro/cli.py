"""Command-line interface for the textual Portal language.

Runs ``.portal`` programs (the Appendix-VIII grammar) from the shell::

    python -m repro run program.portal
    python -m repro run program.portal --option tau=1e-3 --option tree=ball
    python -m repro ir program.portal --stage final
    python -m repro explain program.portal

Storage statements in the program reference CSV paths; ``--bind
name=file.csv`` overrides a storage source, letting one program run
against different datasets.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .dsl import PortalError, parse_program
from .dsl.storage import _read_csv


def _parse_options(pairs: list[str]) -> dict:
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--option expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        for cast in (int, float):
            try:
                out[key] = cast(value)
                break
            except ValueError:
                continue
        else:
            if value.lower() in ("true", "false"):
                out[key] = value.lower() == "true"
            else:
                out[key] = value
    return out


def _parse_bindings(pairs: list[str]) -> dict:
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--bind expects name=path.csv, got {pair!r}")
        name, path = pair.split("=", 1)
        out[name] = _read_csv(path)
    return out


def _load(args) -> "PortalProgram":
    with open(args.program) as fh:
        source = fh.read()
    return parse_program(source, bindings=_parse_bindings(args.bind))


def _cmd_run(args) -> int:
    prog = _load(args)
    results = prog.run(**_parse_options(args.option))
    for name, out in results.items():
        print(f"== {name} ==")
        if out.scalar is not None:
            print(f"  scalar: {out.scalar:g}")
        if out.values is not None:
            v = np.asarray(out.values)
            head = np.array2string(v[: args.head], precision=4,
                                   threshold=64)
            print(f"  values {v.shape}: {head}")
        if out.indices is not None and not isinstance(out.indices, list):
            print(f"  indices: {np.asarray(out.indices)[: args.head]}")
        elif isinstance(out.indices, list):
            sizes = [len(ix) for ix in out.indices[: args.head]]
            print(f"  index lists (first sizes): {sizes}")
    return 0


def _cmd_ir(args) -> int:
    prog = _load(args)
    for name, pexpr in prog.portal_exprs.items():
        pexpr.compile(**_parse_options(args.option))
        print(f"== {name} [{args.stage}] ==")
        print(pexpr.ir_dump(args.stage))
        if args.generated:
            print(f"\n== {name} [generated backend source] ==")
            print(pexpr.generated_source())
    return 0


def _cmd_explain(args) -> int:
    prog = _load(args)
    for name, pexpr in prog.portal_exprs.items():
        program = pexpr.compile(**_parse_options(args.option))
        cls = program.classification
        print(f"== {name} ==")
        print(pexpr.describe())
        print(f"  category:  {cls.category}")
        print(f"  algorithm: {cls.algorithm}")
        for reason in cls.reasons:
            print(f"    - {reason}")
        print(f"  rule: {program.rule.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Portal language runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("program", help="path to a .portal program")
        p.add_argument("--bind", action="append", default=[],
                       metavar="NAME=CSV",
                       help="override a Storage source with a CSV file")
        p.add_argument("--option", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="execute()/compile() option, e.g. tau=1e-3")

    p_run = sub.add_parser("run", help="execute the program")
    common(p_run)
    p_run.add_argument("--head", type=int, default=5,
                       help="rows of each output to print")
    p_run.set_defaults(fn=_cmd_run)

    p_ir = sub.add_parser("ir", help="dump the Portal IR")
    common(p_ir)
    p_ir.add_argument("--stage", default="final",
                      choices=["lowered", "flattened", "numopt",
                               "strength", "final"])
    p_ir.add_argument("--generated", action="store_true",
                      help="also dump the generated backend source")
    p_ir.set_defaults(fn=_cmd_ir)

    p_ex = sub.add_parser("explain",
                          help="show classification and generated rules")
    common(p_ex)
    p_ex.set_defaults(fn=_cmd_explain)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except PortalError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
