"""Dataset generators and registry (paper Table II surrogates)."""

from . import synthetic
from .loaders import load_csv, save_csv
from .registry import DATASETS, DatasetInfo, load, table2_rows

__all__ = [
    "synthetic", "DATASETS", "DatasetInfo", "load", "table2_rows",
    "load_csv", "save_csv",
]
