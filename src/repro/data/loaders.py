"""CSV loading and saving helpers for Storage round-trips."""

from __future__ import annotations

import csv
import os

import numpy as np

__all__ = ["save_csv", "load_csv"]


def save_csv(path: str | os.PathLike, data: np.ndarray,
             header: list[str] | None = None) -> None:
    """Write a 2-D array as CSV (optionally with a header row)."""
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("save_csv requires a 2-D array")
    with open(path, "w", newline="") as fh:
        w = csv.writer(fh)
        if header is not None:
            if len(header) != data.shape[1]:
                raise ValueError("header length mismatch")
            w.writerow(header)
        w.writerows(data.tolist())


def load_csv(path: str | os.PathLike) -> np.ndarray:
    """Read a numeric CSV (delegates to the Storage reader)."""
    from ..dsl.storage import _read_csv

    return _read_csv(os.fspath(path))
