"""Dataset registry reproducing paper Table II.

Maps each dataset name to its generator, the paper's original size, its
dimensionality, and the scaled default used on a laptop-class machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import synthetic

__all__ = ["DatasetInfo", "DATASETS", "load", "table2_rows"]


@dataclass(frozen=True)
class DatasetInfo:
    name: str
    generator: Callable[..., np.ndarray]
    paper_n: int
    dim: int
    default_n: int
    description: str


DATASETS: dict[str, DatasetInfo] = {
    "Yahoo!": DatasetInfo(
        "Yahoo!", synthetic.yahoo, 41_904_293, 11, 20_000,
        "front-page click-log surrogate (clustered, heavy tails)",
    ),
    "IHEPC": DatasetInfo(
        "IHEPC", synthetic.ihepc, 2_075_259, 9, 20_000,
        "household power consumption surrogate (correlated channels)",
    ),
    "HIGGS": DatasetInfo(
        "HIGGS", synthetic.higgs, 11_000_000, 28, 12_000,
        "collider-event surrogate (two overlapping processes)",
    ),
    "Census": DatasetInfo(
        "Census", synthetic.census, 2_458_285, 68, 8_000,
        "US Census 1990 surrogate (categorical codes)",
    ),
    "KDD": DatasetInfo(
        "KDD", synthetic.kdd, 4_898_431, 42, 10_000,
        "network-intrusion surrogate (skewed counts)",
    ),
    "Elliptical": DatasetInfo(
        "Elliptical", synthetic.elliptical, 10_000_000, 3, 30_000,
        "elliptical particle distribution for Barnes-Hut",
    ),
}


def load(name: str, n: int | None = None, seed: int = 0) -> np.ndarray:
    """Generate the named dataset at size ``n`` (scaled default if None)."""
    try:
        info = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    X = info.generator(n or info.default_n, seed=seed)
    assert X.shape[1] == info.dim
    return X


def table2_rows() -> list[tuple[str, int, int, int]]:
    """(name, paper N, d, scaled N) rows of Table II."""
    return [
        (i.name, i.paper_n, i.dim, i.default_n) for i in DATASETS.values()
    ]
