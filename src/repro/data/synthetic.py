"""Synthetic dataset generators matching paper Table II characteristics.

The paper evaluates on six real datasets.  They are not redistributable
here, so each generator produces a synthetic surrogate with the same
dimensionality and a similar statistical character (cluster structure,
heavy tails, discreteness), which is what drives tree-algorithm behaviour
(prune rates, leaf occupancy, crossovers).  Sizes are scaled down
uniformly; ``repro.data.registry`` records both the paper's N and the
scaled default.

Generators are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "yahoo", "ihepc", "higgs", "census", "kdd", "elliptical",
]


def yahoo(n: int, seed: int = 0) -> np.ndarray:
    """Yahoo! front-page click-log surrogate: d = 11.

    User/article feature vectors: a few dominant latent factors plus
    heavy-tailed activity counts (log-normal) — clustered with long tails.
    """
    rng = np.random.default_rng(seed)
    k = 6
    centers = rng.normal(scale=3.0, size=(k, 11))
    which = rng.integers(0, k, size=n)
    X = centers[which] + rng.normal(scale=0.7, size=(n, 11))
    X[:, -3:] += rng.lognormal(mean=0.0, sigma=1.0, size=(n, 3))
    return X


def ihepc(n: int, seed: int = 0) -> np.ndarray:
    """Household electric power consumption surrogate: d = 9.

    Strongly correlated smooth daily-cycle channels plus noise — points
    concentrate near a low-dimensional manifold.
    """
    rng = np.random.default_rng(seed)
    t = rng.uniform(0.0, 2.0 * np.pi, size=n)
    base = np.stack(
        [np.sin(t), np.cos(t), np.sin(2 * t), np.cos(2 * t),
         np.sin(3 * t) * 0.5], axis=1
    )
    load = rng.gamma(shape=2.0, scale=1.0, size=(n, 1))
    X = np.concatenate(
        [base * load, load, rng.normal(scale=0.2, size=(n, 3))], axis=1
    )
    return X


def higgs(n: int, seed: int = 0) -> np.ndarray:
    """HIGGS surrogate: d = 28.

    Two overlapping processes (signal/background) of roughly Gaussian
    kinematic features with a handful of heavy-tailed energy columns.
    """
    rng = np.random.default_rng(seed)
    label = rng.random(n) < 0.5
    X = rng.normal(size=(n, 28))
    X[label, :7] += 0.8
    X[:, 21:] = np.abs(X[:, 21:]) ** 1.5  # energy-like tails
    return X


def census(n: int, seed: int = 0) -> np.ndarray:
    """US Census 1990 surrogate: d = 68.

    Mostly low-cardinality categorical codes (small integers) with a few
    continuous columns — many duplicate coordinates, shallow effective
    dimensionality.
    """
    rng = np.random.default_rng(seed)
    cats = rng.integers(0, 5, size=(n, 56)).astype(np.float64)
    ords = rng.integers(0, 17, size=(n, 8)).astype(np.float64)
    cont = rng.lognormal(mean=1.0, sigma=0.75, size=(n, 4))
    return np.concatenate([cats, ords, cont], axis=1)


def kdd(n: int, seed: int = 0) -> np.ndarray:
    """KDD Cup 1999 surrogate: d = 42.

    Network-intrusion style: highly skewed counts, many near-duplicate
    "normal traffic" rows plus a small scattered attack population.
    """
    rng = np.random.default_rng(seed)
    normal = rng.poisson(lam=2.0, size=(int(n * 0.9), 42)).astype(np.float64)
    attack = rng.lognormal(mean=1.0, sigma=1.2, size=(n - len(normal), 42))
    X = np.concatenate([normal, attack], axis=0)
    rng.shuffle(X, axis=0)
    X[:, :8] += rng.normal(scale=0.05, size=(n, 8))  # break exact ties
    return X


def elliptical(n: int, seed: int = 0,
               axes: tuple[float, float, float] = (2.0, 1.2, 0.7)) -> np.ndarray:
    """Elliptical galaxy model for Barnes-Hut: d = 3 (paper section V-A).

    Particles angularly uniform in spherical coordinates with an
    elliptically scaled, centrally concentrated radial profile.
    """
    rng = np.random.default_rng(seed)
    # Uniform directions on the sphere.
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    # Centrally concentrated radius (Hernquist-like profile).
    u = rng.random(n)
    r = np.sqrt(u) / (1.0 - np.sqrt(u) + 1e-3)
    r = np.clip(r, 0.0, 20.0)
    return v * r[:, None] * np.asarray(axes)
