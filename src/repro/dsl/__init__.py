"""The Portal language frontend (paper section III).

Public surface::

    from repro.dsl import (
        Storage, Var, Expr, PortalExpr, PortalOp, PortalFunc,
        sqrt, pow, exp, log, absval,
    )
"""

from .errors import (
    CompileError, ExecutionError, KernelError, OperatorError, ParseError,
    PortalError, SpecificationError, StorageError,
)
from .expr import (
    Const, DimReduce, DistVar, Expr, Indicator, Var, absval, dim_max,
    dim_sum, exp, indicator, log, pow, sqrt,
)
from .funcs import BASE_METRICS, MetricKernel, PortalFunc, normalize_kernel
from .layer import Layer
from .ops import OpCategory, PortalOp, op_info, operator_table, resolve_op
from .portal_expr import PortalExpr
from .storage import Storage

__all__ = [
    # errors
    "PortalError", "SpecificationError", "StorageError", "KernelError",
    "OperatorError", "CompileError", "ParseError", "ExecutionError",
    # expressions
    "Expr", "Var", "Const", "DistVar", "Indicator", "DimReduce",
    "sqrt", "pow", "exp", "log", "absval", "dim_sum", "dim_max", "indicator",
    # kernels & metrics
    "PortalFunc", "MetricKernel", "normalize_kernel", "BASE_METRICS",
    # operators
    "PortalOp", "OpCategory", "op_info", "operator_table", "resolve_op",
    # program objects
    "Storage", "Layer", "PortalExpr",
]

from .parser import PortalProgram, parse_program  # noqa: E402

__all__ += ["PortalProgram", "parse_program"]

from .unparse import unparse_expr, unparse_program  # noqa: E402

__all__ += ["unparse_expr", "unparse_program"]
