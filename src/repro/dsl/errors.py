"""Typed exception hierarchy for the Portal DSL and compiler.

Every user-facing failure mode raises a subclass of :class:`PortalError`
so applications can catch DSL errors distinctly from programming bugs.
"""

from __future__ import annotations


class PortalError(Exception):
    """Base class for all Portal DSL/compiler errors."""


class SpecificationError(PortalError):
    """The Portal program is malformed (bad layer structure, missing kernel,
    wrong operator arity, ...)."""


class StorageError(PortalError):
    """A Storage object is invalid: empty dataset, dimension mismatch,
    unreadable file, or use after :meth:`Storage.clear`."""


class KernelError(PortalError):
    """A kernel/modifying function is invalid: type errors in the symbolic
    expression, non-scalar kernel output where a scalar is required, or an
    unsupported construct."""


class OperatorError(PortalError):
    """An operator is used incorrectly: missing ``k`` for a multi-variable
    reduction, ``k`` supplied where not allowed, or a non-decomposable
    operator chain."""


class CompileError(PortalError):
    """The compiler could not lower or generate code for the program."""


class ParseError(PortalError):
    """The textual Portal program (Appendix-VIII grammar) failed to parse."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        loc = f" at line {line}" if line is not None else ""
        loc += f", column {column}" if column is not None else ""
        super().__init__(message + loc)


class ExecutionError(PortalError):
    """Runtime failure while executing a compiled Portal program."""
