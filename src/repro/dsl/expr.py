"""Symbolic kernel expressions: ``Var``, ``Expr`` and helpers.

This module implements the user-facing symbolic language used to define
custom kernel/modifying functions (paper section III-C, Code 3)::

    q = Var("q")
    r = Var("r")
    EuclidDist = sqrt(pow(q - r, 2))

Expressions are small immutable ASTs.  Variables bound to dataset layers
are *vector* valued (one value per dimension of the dataset); constants
and reduced values are *scalar*.  Following the paper's lowering rules
(Fig. 2 and 3), ``pow`` applied to a vector both exponentiates
element-wise **and** reduces over the dimension axis with ``+`` — this is
what turns ``pow(q - r, 2)`` into the squared Euclidean norm
``Σ_d (q_d - r_d)²``.  ``abs`` on a vector stays a vector, and the
explicit reductions :func:`dim_sum` / :func:`dim_max` are available for
kernels such as Manhattan and Chebyshev distance.

The same AST is consumed by three downstream components:

* the **lowering** stage, which turns it into Portal IR loops,
* the **kernel normaliser** (:func:`normalize_kernel`), which recognises
  distance forms so the prune/approximate generator can reason about the
  kernel as a function of a single distance variable, and
* the **backend code generator**, which emits vectorised NumPy source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from .errors import KernelError

__all__ = [
    "Expr", "Var", "Const", "BinOp", "Neg", "Call", "DimReduce",
    "Indicator", "DistVar", "sqrt", "pow", "exp", "log", "absval",
    "dim_sum", "dim_max", "indicator",
]

_builtin_pow = __builtins__["pow"] if isinstance(__builtins__, dict) else __builtins__.pow


def _wrap(value) -> "Expr":
    """Coerce Python numbers into :class:`Const` nodes."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Const(float(value))
    raise KernelError(f"cannot use {value!r} in a Portal expression")


class Expr:
    """Base class of all symbolic expression nodes.

    Supports the arithmetic operators and comparisons; comparisons produce
    :class:`Indicator` nodes (0/1 valued), matching comparative kernels
    such as ``I(|x_q - x_r| < h)`` in paper Table III.
    """

    #: "scalar" or "vector" — set by subclasses.
    shape: str = "scalar"

    # -- operator overloads ------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other):
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other):
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other):
        return BinOp("*", _wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, _wrap(other))

    def __rtruediv__(self, other):
        return BinOp("/", _wrap(other), self)

    def __pow__(self, other):
        return pow(self, other)

    def __neg__(self):
        return Neg(self)

    def __lt__(self, other):
        return Indicator("<", self, _wrap(other))

    def __le__(self, other):
        return Indicator("<=", self, _wrap(other))

    def __gt__(self, other):
        return Indicator(">", self, _wrap(other))

    def __ge__(self, other):
        return Indicator(">=", self, _wrap(other))

    # -- structural API ----------------------------------------------------
    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for c in self.children():
            yield from c.walk()

    def free_vars(self) -> set["Var"]:
        return {n for n in self.walk() if isinstance(n, Var)}

    def substitute(self, mapping: dict["Expr", "Expr"]) -> "Expr":
        """Return a copy with sub-trees replaced (by structural equality)."""
        for old, new in mapping.items():
            if self == old:
                return new
        return self._rebuild([c.substitute(mapping) for c in self.children()])

    def _rebuild(self, children: list["Expr"]) -> "Expr":
        return self

    def evaluate(self, env: dict[str, np.ndarray | float]) -> np.ndarray | float:
        """Numerically evaluate the expression.

        Vector variables should be bound to arrays whose *last* axis is the
        dimension axis; :class:`DimReduce` nodes reduce over that axis.
        Broadcasting over leading axes gives pairwise evaluation for free.
        """
        raise NotImplementedError

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self._key() == other._key()
            and self.children() == other.children()
        )

    def __hash__(self):
        return hash((type(self).__name__, self._key(), self.children()))

    def _key(self):
        return ()


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A named variable bound to a dataset layer (vector valued)."""

    name: str = ""
    shape: str = field(default="vector")

    _counter = [0]

    def __post_init__(self):
        if not self.name:
            Var._counter[0] += 1
            object.__setattr__(self, "name", f"v{Var._counter[0]}")

    def _key(self):
        return (self.name, self.shape)

    def evaluate(self, env):
        try:
            return env[self.name]
        except KeyError:
            raise KernelError(f"unbound variable {self.name!r}") from None

    def __repr__(self):
        return self.name


@dataclass(frozen=True, eq=False)
class DistVar(Expr):
    """Placeholder for the metric distance in a normalised kernel.

    Produced by :func:`normalize_kernel`; never written by users.
    """

    name: str = "t"
    shape: str = field(default="scalar")

    def _key(self):
        return (self.name,)

    def evaluate(self, env):
        try:
            return env[self.name]
        except KeyError:
            raise KernelError(f"unbound distance variable {self.name!r}") from None

    def __repr__(self):
        return self.name


@dataclass(frozen=True, eq=False)
class Const(Expr):
    value: float = 0.0
    shape: str = field(default="scalar")

    def _key(self):
        return (self.value,)

    def evaluate(self, env):
        return self.value

    def __repr__(self):
        return f"{self.value:g}"


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    op: str = "+"
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]

    def __post_init__(self):
        shape = "vector" if "vector" in (self.lhs.shape, self.rhs.shape) else "scalar"
        object.__setattr__(self, "shape", shape)

    def children(self):
        return (self.lhs, self.rhs)

    def _rebuild(self, children):
        return BinOp(self.op, *children)

    def _key(self):
        return (self.op,)

    def evaluate(self, env):
        a = self.lhs.evaluate(env)
        b = self.rhs.evaluate(env)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            return a / b
        if self.op == "**":
            return a ** b
        raise KernelError(f"unknown binary operator {self.op!r}")

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True, eq=False)
class Neg(Expr):
    operand: Expr = None  # type: ignore[assignment]

    def __post_init__(self):
        object.__setattr__(self, "shape", self.operand.shape)

    def children(self):
        return (self.operand,)

    def _rebuild(self, children):
        return Neg(children[0])

    def evaluate(self, env):
        return -self.operand.evaluate(env)

    def __repr__(self):
        return f"(-{self.operand!r})"


_SCALAR_FUNCS: dict[str, Callable] = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "abs": np.abs,
}


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """Application of a built-in scalar function (sqrt, exp, log, abs)."""

    func: str = ""
    operand: Expr = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.func not in _SCALAR_FUNCS:
            raise KernelError(f"unknown function {self.func!r}")
        if self.func != "abs" and self.operand.shape == "vector":
            raise KernelError(
                f"{self.func}() requires a scalar argument; reduce the vector "
                f"first (e.g. with pow(v, 2) or dim_sum(v))"
            )
        object.__setattr__(self, "shape", self.operand.shape)

    def children(self):
        return (self.operand,)

    def _rebuild(self, children):
        return Call(self.func, children[0])

    def _key(self):
        return (self.func,)

    def evaluate(self, env):
        return _SCALAR_FUNCS[self.func](self.operand.evaluate(env))

    def __repr__(self):
        return f"{self.func}({self.operand!r})"


@dataclass(frozen=True, eq=False)
class DimReduce(Expr):
    """Reduction of a vector expression over the dimension axis."""

    reduce: str = "+"  # "+" or "max"
    operand: Expr = None  # type: ignore[assignment]
    shape: str = field(default="scalar")

    def __post_init__(self):
        if self.operand.shape != "vector":
            raise KernelError("DimReduce requires a vector operand")
        if self.reduce not in ("+", "max"):
            raise KernelError(f"unsupported dimension reduction {self.reduce!r}")

    def children(self):
        return (self.operand,)

    def _rebuild(self, children):
        return DimReduce(self.reduce, children[0])

    def _key(self):
        return (self.reduce,)

    def evaluate(self, env):
        v = self.operand.evaluate(env)
        v = np.asarray(v)
        return v.sum(axis=-1) if self.reduce == "+" else v.max(axis=-1)

    def __repr__(self):
        sym = "Σ_d" if self.reduce == "+" else "max_d"
        return f"{sym} {self.operand!r}"


@dataclass(frozen=True, eq=False)
class Indicator(Expr):
    """Comparative kernel node: evaluates to 1.0 where the comparison holds.

    Comparative kernels such as ``I(|x_q - x_r| < h)`` (range search,
    2-point correlation) classify the problem as a *pruning* problem
    (paper section II-B).
    """

    op: str = "<"
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]
    shape: str = field(default="scalar")

    def __post_init__(self):
        if self.lhs.shape == "vector" or self.rhs.shape == "vector":
            raise KernelError("comparisons require scalar operands")
        if self.op not in ("<", "<=", ">", ">="):
            raise KernelError(f"unsupported comparison {self.op!r}")

    def children(self):
        return (self.lhs, self.rhs)

    def _rebuild(self, children):
        return Indicator(self.op, *children)

    def _key(self):
        return (self.op,)

    def evaluate(self, env):
        a = self.lhs.evaluate(env)
        b = self.rhs.evaluate(env)
        if self.op == "<":
            m = np.less(a, b)
        elif self.op == "<=":
            m = np.less_equal(a, b)
        elif self.op == ">":
            m = np.greater(a, b)
        else:
            m = np.greater_equal(a, b)
        return m.astype(np.float64) if isinstance(m, np.ndarray) else float(m)

    def __repr__(self):
        return f"I({self.lhs!r} {self.op} {self.rhs!r})"


# -- public constructor helpers ---------------------------------------------

def sqrt(x) -> Expr:
    """Square root.  Requires a scalar expression."""
    return Call("sqrt", _wrap(x))


def pow(x, n) -> Expr:  # noqa: A001 - mirrors the paper's surface syntax
    """Power with the paper's vector semantics.

    On a scalar, ``pow(x, n) = x**n``.  On a vector, ``pow`` exponentiates
    element-wise and reduces over the dimension axis with ``+`` — so
    ``pow(q - r, 2)`` is the squared Euclidean norm (paper Fig. 2 lowers
    exactly this pattern into ``for d: t += pow(q_d - r_d, 2)``).
    """
    x = _wrap(x)
    n = _wrap(n)
    if not isinstance(n, Const):
        raise KernelError("pow exponent must be a constant")
    body = BinOp("**", x, n)
    if x.shape == "vector":
        return DimReduce("+", body)
    return body


def exp(x) -> Expr:
    """Exponential.  Requires a scalar expression."""
    return Call("exp", _wrap(x))


def log(x) -> Expr:
    """Natural logarithm.  Requires a scalar expression."""
    return Call("log", _wrap(x))


def absval(x) -> Expr:
    """Element-wise absolute value (vector in, vector out)."""
    return Call("abs", _wrap(x))


def dim_sum(x) -> Expr:
    """Explicit sum-reduction of a vector expression over dimensions."""
    return DimReduce("+", _wrap(x))


def dim_max(x) -> Expr:
    """Explicit max-reduction of a vector expression over dimensions."""
    return DimReduce("max", _wrap(x))


def indicator(cmp: Indicator) -> Indicator:
    """Identity helper so specifications can read ``indicator(d < h)``."""
    if not isinstance(cmp, Indicator):
        raise KernelError("indicator() expects a comparison expression")
    return cmp
