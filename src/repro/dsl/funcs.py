"""Pre-defined distance metrics and kernel normalisation.

Implements the ``PortalFunc`` metrics of paper section III-C (Code 2) and
the *kernel normaliser* that recognises distance forms inside user-written
symbolic kernels.  A normalised kernel is a :class:`MetricKernel`:

    ``K(x_q, x_r) = g(t)``  where  ``t = base_distance(x_q, x_r)``

with ``base`` one of the canonical distance forms (squared Euclidean,
Manhattan, Chebyshev) and ``g`` a scalar expression in the single distance
variable ``t``.  All downstream reasoning — pruning bounds, approximation
bounds, and vectorised code generation — works on this normal form, which
is why Portal restricts optimised kernels to functions that "decrease
monotonically with distance" or are comparative in distance
(section II-C).  Kernels that do not normalise are still accepted as
*external* kernels and executed by the brute-force backend, mirroring the
paper's treatment of external C++ functions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .errors import KernelError
from .expr import (
    BinOp, Call, Const, DimReduce, DistVar, Expr, Indicator, Neg, Var,
    absval, exp, sqrt,
)

__all__ = [
    "PortalFunc", "MetricKernel", "normalize_kernel", "resolve_func",
    "BASE_METRICS",
]

#: Canonical base distance forms recognised by the compiler.  ``sqeuclidean``
#: carries the Euclidean family (plain Euclidean is ``g = sqrt(t)``).
BASE_METRICS = ("sqeuclidean", "manhattan", "chebyshev")


class PortalFunc(enum.Enum):
    """Pre-defined distance metrics (paper Code 1 and Code 2)."""

    EUCLIDEAN = "EUCLIDEAN"
    SQREUCDIST = "SQREUCDIST"
    MANHATTAN = "MANHATTAN"
    CHEBYSHEV = "CHEBYSHEV"
    MAHALANOBIS = "MAHALANOBIS"
    GAUSSIAN = "GAUSSIAN"


_T = DistVar("t")


@dataclass
class MetricKernel:
    """A kernel in distance normal form ``K = g(base_distance)``.

    Attributes
    ----------
    base:
        One of :data:`BASE_METRICS`.
    g:
        Scalar :class:`Expr` over the distance variable ``t``.  For the
        plain metrics this is ``t`` itself or ``sqrt(t)``.
    whiten:
        True when the points must be transformed by the inverse Cholesky
        factor of a covariance matrix before distances are taken — the
        Mahalanobis numerical optimisation of paper section IV-D.
    covariance:
        The covariance matrix for ``whiten`` kernels (set at compile time
        from layer parameters if not given here).
    source:
        The original surface expression, kept for IR dumps.
    """

    base: str
    g: Expr
    whiten: bool = False
    covariance: np.ndarray | None = None
    source: Expr | None = None
    _mono_cache: str | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.base not in BASE_METRICS:
            raise KernelError(f"unknown base metric {self.base!r}")

    # -- evaluation ---------------------------------------------------------
    def value(self, t: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``g`` at base-distance ``t`` (vectorised)."""
        return self.g.evaluate({"t": t})

    def bounds(self, t_min, t_max) -> tuple[np.ndarray | float, np.ndarray | float]:
        """Bounds of ``g`` over a base-distance interval ``[t_min, t_max]``.

        Valid because optimised kernels are monotone in distance (checked
        at compile time); for a decreasing ``g`` the extrema swap ends.
        """
        lo, hi = self.value(t_max), self.value(t_min)
        if self.monotone() == "increasing":
            lo, hi = hi, lo
        return lo, hi

    # -- structural properties ------------------------------------------------
    @property
    def is_indicator(self) -> bool:
        """True for comparative kernels such as ``I(t < h)``."""
        return isinstance(self.g, Indicator)

    def indicator_threshold(self) -> tuple[str, float] | None:
        """For ``I(t' ◦ h)`` kernels, the comparison in *base-distance* units.

        Returns ``(op, h_base)`` where the threshold has been translated to
        the base metric (e.g. ``sqrt(t) < h`` becomes ``t < h²``), or None
        if the kernel is not a simple one-sided indicator.
        """
        g = self.g
        if not isinstance(g, Indicator):
            return None
        lhs, op, rhs = g.lhs, g.op, g.rhs
        # Accept "h > dist" spelled either way around.
        if isinstance(lhs, Const) and not isinstance(rhs, Const):
            lhs, rhs = rhs, lhs
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        if not isinstance(rhs, Const):
            return None
        h = rhs.value
        if lhs == _T:
            return op, h
        if lhs == sqrt(_T):
            if h < 0:
                # sqrt(t) is never negative: I(sqrt(t) < h) is identically 0.
                return None
            return op, h * h
        return None

    def monotone(self) -> str | None:
        """Monotonicity of ``g`` on t ≥ 0: 'decreasing', 'increasing' or None.

        Determined by dense sampling — robust for the composed scalar
        functions the DSL admits, and cheap since it runs once per compile.
        """
        if self._mono_cache is None:
            t = np.concatenate([[0.0], np.logspace(-9, 9, 513)])
            with np.errstate(all="ignore"):
                v = np.asarray(self.value(t), dtype=np.float64)
            v = v[np.isfinite(v)]
            if v.size < 2:
                self._mono_cache = "none"
            else:
                d = np.diff(v)
                # Tolerance relative to the local magnitude, so a genuine
                # dip is not masked by huge values elsewhere on the grid.
                tol = 1e-12 * (np.abs(v[:-1]) + np.abs(v[1:]) + 1.0)
                if np.all(d <= tol):
                    self._mono_cache = "decreasing"
                elif np.all(d >= -tol):
                    self._mono_cache = "increasing"
                else:
                    self._mono_cache = "none"
        return None if self._mono_cache == "none" else self._mono_cache

    def describe(self) -> str:
        base = {"sqeuclidean": "‖q−r‖²", "manhattan": "‖q−r‖₁",
                "chebyshev": "‖q−r‖∞"}[self.base]
        text = f"g(t) = {self.g!r} with t = {base}"
        if self.whiten:
            text += " (points whitened by L⁻¹, Σ = LLᵀ)"
        return text


def _euclid_form(q: Var, r: Var) -> Expr:
    return DimReduce("+", BinOp("**", BinOp("-", q, r), Const(2.0)))


def _manhattan_form(q: Var, r: Var) -> Expr:
    return DimReduce("+", Call("abs", BinOp("-", q, r)))


def _chebyshev_form(q: Var, r: Var) -> Expr:
    return DimReduce("max", Call("abs", BinOp("-", q, r)))


def _match_distance(node: Expr, qname: str, rname: str) -> str | None:
    """If *node* is a canonical distance form over the two layer variables,
    return its base metric name."""

    def is_diff(e: Expr) -> bool:
        return (
            isinstance(e, BinOp) and e.op == "-"
            and isinstance(e.lhs, Var) and isinstance(e.rhs, Var)
            and {e.lhs.name, e.rhs.name} == {qname, rname}
        )

    if isinstance(node, DimReduce):
        inner = node.operand
        if node.reduce == "+":
            if (
                isinstance(inner, BinOp) and inner.op == "**"
                and isinstance(inner.rhs, Const) and inner.rhs.value == 2.0
                and is_diff(inner.lhs)
            ):
                return "sqeuclidean"
            if isinstance(inner, Call) and inner.func == "abs" and is_diff(inner.operand):
                return "manhattan"
        elif node.reduce == "max":
            if isinstance(inner, Call) and inner.func == "abs" and is_diff(inner.operand):
                return "chebyshev"
    return None


def normalize_kernel(expr: Expr, qvar: Var, rvar: Var) -> MetricKernel | None:
    """Rewrite a surface kernel into distance normal form.

    Finds the distance sub-expressions over the pair of layer variables,
    requires them to share a single base metric, and substitutes the
    distance variable ``t``.  Returns None when the kernel references the
    layer variables outside a recognised distance form (an *external*
    kernel, executed brute-force only).
    """
    found: dict[Expr, str] = {}

    def scan(node: Expr):
        base = _match_distance(node, qvar.name, rvar.name)
        if base is not None:
            found[node] = base
            return
        for c in node.children():
            scan(c)

    scan(expr)
    if not found:
        return None
    bases = set(found.values())
    if len(bases) > 1:
        raise KernelError(
            f"kernel mixes distance metrics {sorted(bases)}; use a single metric"
        )
    g = expr.substitute({node: _T for node in found})
    remaining = {v.name for v in g.free_vars()} & {qvar.name, rvar.name}
    if remaining:
        return None
    return MetricKernel(base=bases.pop(), g=g, source=expr)


def resolve_func(func, *, params: dict | None = None,
                 qvar: Var | None = None, rvar: Var | None = None):
    """Resolve an ``addLayer`` kernel argument.

    Accepts a :class:`PortalFunc`, a symbolic :class:`Expr`, an already
    normalised :class:`MetricKernel`, or an arbitrary Python callable
    (external kernel).  Returns ``(metric_kernel | None, external | None)``.
    """
    params = params or {}
    if func is None:
        return None, None
    if isinstance(func, MetricKernel):
        return func, None
    if isinstance(func, PortalFunc):
        return _predefined(func, params), None
    if isinstance(func, Expr):
        q = qvar if qvar is not None else Var("q")
        r = rvar if rvar is not None else Var("r")
        mk = normalize_kernel(func, q, r)
        if mk is None:
            # Symbolic but not distance-normalisable: fall back to external
            # evaluation of the expression itself.
            def external(Q, R):
                return func.evaluate({q.name: Q[:, None, :], r.name: R[None, :, :]})
            external.__name__ = "symbolic_external_kernel"
            return None, external
        return mk, None
    if callable(func):
        return None, func
    raise KernelError(f"cannot interpret kernel argument {func!r}")


def _predefined(func: PortalFunc, params: dict) -> MetricKernel:
    if func is PortalFunc.EUCLIDEAN:
        return MetricKernel("sqeuclidean", sqrt(_T))
    if func is PortalFunc.SQREUCDIST:
        return MetricKernel("sqeuclidean", _T)
    if func is PortalFunc.MANHATTAN:
        return MetricKernel("manhattan", _T)
    if func is PortalFunc.CHEBYSHEV:
        return MetricKernel("chebyshev", _T)
    if func is PortalFunc.MAHALANOBIS:
        cov = params.get("covariance")
        return MetricKernel(
            "sqeuclidean", _T, whiten=True,
            covariance=None if cov is None else np.asarray(cov, dtype=np.float64),
        )
    if func is PortalFunc.GAUSSIAN:
        sigma = float(params.get("bandwidth", params.get("sigma", 1.0)))
        if sigma <= 0:
            raise KernelError("Gaussian kernel requires a positive bandwidth")
        return MetricKernel(
            "sqeuclidean", exp(Neg(BinOp("/", _T, Const(2.0 * sigma * sigma))))
        )
    raise KernelError(f"unsupported PortalFunc {func!r}")  # pragma: no cover
