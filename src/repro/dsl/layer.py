"""Layers: one (operator, dataset, kernel) triple of a Portal problem.

Problems are built by chaining layers (paper section III): the outermost
layer maps to the outermost loop of the lowered program, and each inner
layer filters its dataset through its operator and passes the result
outward through injected intermediate storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .errors import SpecificationError
from .expr import Expr, Var
from .funcs import MetricKernel, PortalFunc, resolve_func
from .ops import OpCategory, PortalOp, op_info, resolve_op
from .storage import Storage

__all__ = ["Layer"]


@dataclass
class Layer:
    """A single layer of a :class:`~repro.dsl.portal_expr.PortalExpr`.

    Built via ``PortalExpr.addLayer``; not usually constructed directly.
    """

    op: PortalOp
    storage: Storage
    k: int | None = None
    var: Var | None = None
    #: Kernel as supplied by the user (PortalFunc / Expr / callable / None).
    func: Any = None
    #: Normalised kernel, when the compiler recognised a distance form.
    metric_kernel: MetricKernel | None = None
    #: Opaque external kernel ``f(Q, R) -> (nq, nr)``, when not normalisable.
    external: Callable | None = None
    #: Layer parameters (bandwidth, covariance, radius h, ...).
    params: dict = field(default_factory=dict)

    @property
    def info(self):
        return op_info(self.op)

    @property
    def output_size(self) -> int:
        """Units of storage injected per evaluation of this layer
        (paper section IV-B)."""
        cat = self.info.category
        if cat is OpCategory.ALL:
            return self.storage.n
        if cat is OpCategory.SINGLE:
            return 1
        # Multi: k units, unbounded for UNION/UNIONARG (reported as -1).
        return self.k if self.k is not None else -1

    @classmethod
    def build(cls, op_spec, args: tuple, params: dict) -> "Layer":
        """Parse the flexible ``addLayer`` argument forms of the paper:

        * ``addLayer(op, storage)``
        * ``addLayer(op, storage, func)``
        * ``addLayer(op, var, storage)``
        * ``addLayer(op, var, storage, func)``
        * ``addLayer((op, k), ...)`` for multi-variable reductions
        """
        op, k = resolve_op(op_spec)
        var: Var | None = None
        rest = list(args)
        if rest and isinstance(rest[0], Var):
            var = rest.pop(0)
        if not rest or not isinstance(rest[0], Storage):
            raise SpecificationError(
                "addLayer requires a Storage argument: "
                "addLayer(op[, var], storage[, kernel])"
            )
        storage = rest.pop(0)
        func = rest.pop(0) if rest else None
        if rest:
            raise SpecificationError(
                f"too many positional arguments to addLayer: {rest!r}"
            )
        layer = cls(op=op, storage=storage, k=k, var=var, func=func, params=dict(params))
        if k is not None and k > storage.n:
            raise SpecificationError(
                f"{op.name} with k={k} exceeds dataset size {storage.n}"
            )
        return layer

    def resolve_kernel(self, qvar: Var | None) -> None:
        """Normalise this layer's kernel (needs the adjacent layer's Var)."""
        if self.func is None:
            return
        mk, ext = resolve_func(
            self.func, params=self.params, qvar=qvar, rvar=self.var
        )
        if mk is not None and mk.whiten and mk.covariance is None:
            cov = self.params.get("covariance")
            if cov is not None:
                import numpy as np

                mk.covariance = np.asarray(cov, dtype=float)
        self.metric_kernel = mk
        self.external = ext

    def describe(self) -> str:
        parts = [self.op.name if self.k is None else f"{self.op.name}(k={self.k})"]
        if self.var is not None:
            parts.append(self.var.name)
        parts.append(self.storage.name)
        if isinstance(self.func, PortalFunc):
            parts.append(self.func.name)
        elif isinstance(self.func, Expr):
            parts.append(repr(self.func))
        elif callable(self.func):
            parts.append(getattr(self.func, "__name__", "external"))
        return "Layer(" + ", ".join(parts) + ")"
