"""Portal operators (paper Table I) and their algebraic properties.

Operators are grouped into three categories:

* **All** — ``FORALL`` applies no filtering; its layer emits one output per
  input point.
* **Single** variable reductions — reduce a set of values to one value
  (``SUM``, ``PROD``, ``MIN``, ``MAX``, ``ARGMIN``, ``ARGMAX``).
* **Multi** variable reductions — reduce a set of values to a smaller set,
  of size ``k`` for the ``K*`` operators, or unbounded for ``UNION`` /
  ``UNIONARG``.

The properties recorded here drive the whole compiler: storage injection
sizes (paper section IV-B), initial accumulator values (section IV-A),
the pruning/approximation classification (section II-B), and the
decomposability check that gates the choice of the tree-based algorithm
(section II-C).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from .errors import OperatorError

__all__ = ["PortalOp", "OpCategory", "OpInfo", "op_info", "resolve_op"]


class OpCategory(enum.Enum):
    """Operator categories from paper Table I."""

    ALL = "All"
    SINGLE = "Single"
    MULTI = "Multi"


class PortalOp(enum.Enum):
    """The mathematical operators supported by the Portal language."""

    FORALL = "FORALL"       # ∀
    SUM = "SUM"             # Σ
    PROD = "PROD"           # Π
    MIN = "MIN"             # min
    MAX = "MAX"             # max
    ARGMIN = "ARGMIN"       # arg min
    ARGMAX = "ARGMAX"       # arg max
    UNION = "UNION"         # ∪ (all values passing a predicate kernel)
    UNIONARG = "UNIONARG"   # ∪arg (indices passing a predicate kernel)
    KMIN = "KMIN"           # min^k
    KMAX = "KMAX"           # max^k
    KARGMIN = "KARGMIN"     # arg min^k
    KARGMAX = "KARGMAX"     # arg max^k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortalOp.{self.name}"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of a Portal operator.

    Attributes
    ----------
    category:
        Table-I category (All / Single / Multi).
    mathematical:
        The mathematical notation used in the paper, for table dumps.
    comparative:
        True for order-based reductions (min/max families).  A comparative
        operator makes the problem a *pruning* problem (section II-B).
    arithmetic:
        True for Σ/Π style accumulations.  Purely arithmetic operator
        chains with non-comparative kernels form *approximation* problems.
    returns_index:
        True when the reduction's output is an index into the layer's
        dataset rather than a kernel value.
    requires_k:
        True when the operator must be parameterised with a filter width
        ``k`` (the ``K*`` family).
    identity:
        Neutral element used to initialise the injected storage
        (section IV-A); ``None`` for operators without one (FORALL, UNION).
    decomposable:
        Whether the reduction over a dataset decomposes over an arbitrary
        partition of that dataset — the property required to run the
        multi-tree algorithm (section II-C).  All Table-I operators are
        decomposable; the flag exists so user-registered operators can
        opt out and be rejected with a clear error.
    """

    category: OpCategory
    mathematical: str
    comparative: bool = False
    arithmetic: bool = False
    returns_index: bool = False
    requires_k: bool = False
    identity: float | None = None
    decomposable: bool = True


_OP_TABLE: dict[PortalOp, OpInfo] = {
    PortalOp.FORALL: OpInfo(OpCategory.ALL, "∀"),
    PortalOp.SUM: OpInfo(OpCategory.SINGLE, "Σ", arithmetic=True, identity=0.0),
    PortalOp.PROD: OpInfo(OpCategory.SINGLE, "Π", arithmetic=True, identity=1.0),
    PortalOp.MIN: OpInfo(
        OpCategory.SINGLE, "min", comparative=True, identity=math.inf
    ),
    PortalOp.MAX: OpInfo(
        OpCategory.SINGLE, "max", comparative=True, identity=-math.inf
    ),
    PortalOp.ARGMIN: OpInfo(
        OpCategory.SINGLE, "arg min", comparative=True, returns_index=True,
        identity=math.inf,
    ),
    PortalOp.ARGMAX: OpInfo(
        OpCategory.SINGLE, "arg max", comparative=True, returns_index=True,
        identity=-math.inf,
    ),
    PortalOp.UNION: OpInfo(OpCategory.MULTI, "∪", comparative=True),
    PortalOp.UNIONARG: OpInfo(
        OpCategory.MULTI, "∪ arg", comparative=True, returns_index=True
    ),
    PortalOp.KMIN: OpInfo(
        OpCategory.MULTI, "min^k", comparative=True, requires_k=True,
        identity=math.inf,
    ),
    PortalOp.KMAX: OpInfo(
        OpCategory.MULTI, "max^k", comparative=True, requires_k=True,
        identity=-math.inf,
    ),
    PortalOp.KARGMIN: OpInfo(
        OpCategory.MULTI, "arg min^k", comparative=True, returns_index=True,
        requires_k=True, identity=math.inf,
    ),
    PortalOp.KARGMAX: OpInfo(
        OpCategory.MULTI, "arg max^k", comparative=True, returns_index=True,
        requires_k=True, identity=-math.inf,
    ),
}


def op_info(op: PortalOp) -> OpInfo:
    """Return the :class:`OpInfo` record for *op*."""
    return _OP_TABLE[op]


#: Operators whose reductions keep the *smallest* values.
MIN_LIKE = frozenset(
    {PortalOp.MIN, PortalOp.ARGMIN, PortalOp.KMIN, PortalOp.KARGMIN}
)
#: Operators whose reductions keep the *largest* values.
MAX_LIKE = frozenset(
    {PortalOp.MAX, PortalOp.ARGMAX, PortalOp.KMAX, PortalOp.KARGMAX}
)


def resolve_op(spec) -> tuple[PortalOp, int | None]:
    """Normalise an ``addLayer`` operator argument to ``(op, k)``.

    The paper's API accepts either a bare operator, e.g.
    ``PortalOp.ARGMIN``, or a tuple carrying the multi-reduction width,
    e.g. ``(PortalOp.KARGMIN, k)``.  Strings naming an operator are also
    accepted for convenience and for the textual frontend.

    Raises
    ------
    OperatorError
        If ``k`` is missing for a ``K*`` operator, supplied for an
        operator that does not take one, or not a positive integer.
    """
    k: int | None = None
    if isinstance(spec, tuple):
        if len(spec) != 2:
            raise OperatorError(
                f"operator tuple must be (op, k), got {spec!r}"
            )
        spec, k = spec
    if isinstance(spec, str):
        try:
            spec = PortalOp[spec.upper()]
        except KeyError:
            raise OperatorError(f"unknown Portal operator {spec!r}") from None
    if not isinstance(spec, PortalOp):
        raise OperatorError(f"not a Portal operator: {spec!r}")
    info = _OP_TABLE[spec]
    if info.requires_k:
        if k is None:
            raise OperatorError(
                f"{spec.name} is a multi-variable reduction and requires k, "
                f"e.g. addLayer(({spec.name}, k), ...)"
            )
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise OperatorError(f"k must be a positive integer, got {k!r}")
    elif k is not None:
        raise OperatorError(f"{spec.name} does not take a k parameter")
    return spec, k


def operator_table() -> list[tuple[str, str, str]]:
    """Rows of paper Table I: (category, mathematical, Portal operator)."""
    return [
        (info.category.value, info.mathematical, op.name)
        for op, info in _OP_TABLE.items()
    ]
