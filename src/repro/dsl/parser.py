"""Textual Portal frontend: the Appendix-VIII grammar.

The paper's grammar::

    <PortalProgram> -> <StorageDef>+ <VarDef>* <PortalExprDef>
    <StorageDef>    -> "Storage" <name> "(" <file_name> ")" ";"
    <VarDef>        -> "Var" <name> ";"
    <PortalExprDef> -> "PortalExpr" <name> ";" <AddLayer>+
    <AddLayer>      -> <name>.addLayer(<OP>[, <var>], <storage>[, <kernel>]);
    <Kernel>        -> sqrt(K) | pow(K, c) | exp(K) | ... | comparisons
    <OP>            -> FORALL | SUM | PROD | ARGMIN | ... | (KARGMIN, k)

This module parses Portal programs written as text (rather than through
the embedded Python API) into the same :class:`PortalExpr` objects,
demonstrating that the language is independent of its host embedding.
Storages named in the program can be bound to in-memory arrays through
the ``bindings`` argument instead of CSV paths.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..observe import span
from .errors import ParseError
from .expr import Expr, Var, absval, exp, indicator, log, pow, sqrt
from .funcs import PortalFunc
from .ops import PortalOp
from .portal_expr import PortalExpr
from .storage import Storage

__all__ = ["parse_program", "PortalProgram"]

_TOKEN_RE = re.compile(
    r"""
    (?P<STRING>"[^"]*")
  | (?P<NUMBER>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<NAME>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<COMMENT>//[^\n]*|/\*.*?\*/)
  | (?P<OP>::|<=|>=|==|[-+*/(),;.<>=])
  | (?P<WS>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)

_FUNCS = {"sqrt": sqrt, "pow": pow, "exp": exp, "log": log, "abs": absval}


@dataclass
class _Token:
    kind: str
    text: str
    line: int
    col: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(
                f"unexpected character {source[pos]!r}",
                line, pos - line_start + 1,
            )
        kind = m.lastgroup
        text = m.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, text, line, pos - line_start + 1))
        nl = text.count("\n")
        if nl:
            line += nl
            line_start = pos + text.rfind("\n") + 1
        pos = m.end()
    tokens.append(_Token("EOF", "", line, 0))
    return tokens


@dataclass
class PortalProgram:
    """A parsed textual Portal program, ready to run."""

    storages: dict[str, Storage] = field(default_factory=dict)
    variables: dict[str, Var] = field(default_factory=dict)
    expressions: dict[str, Expr] = field(default_factory=dict)
    portal_exprs: dict[str, PortalExpr] = field(default_factory=dict)
    #: names of PortalExprs whose execute() the program calls, in order
    executed: list[str] = field(default_factory=list)
    #: output-name -> portal-expr-name from `Storage out = e.getOutput();`
    outputs: dict[str, str] = field(default_factory=dict)

    def run(self, **options) -> dict[str, object]:
        """Execute every ``execute()`` statement; returns outputs by name."""
        results: dict[str, object] = {}
        for name in self.executed:
            results[name] = self.portal_exprs[name].execute(**options)
        for out_name, expr_name in self.outputs.items():
            results[out_name] = self.portal_exprs[expr_name].getOutput()
        return results


class _Parser:
    def __init__(self, tokens: list[_Token], bindings: dict | None):
        self.tokens = tokens
        self.i = 0
        self.bindings = bindings or {}
        self.program = PortalProgram()

    # -- token helpers ----------------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.i]

    def next(self) -> _Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(
                f"expected {text!r}, got {tok.text!r}", tok.line, tok.col
            )
        return tok

    def expect_name(self) -> _Token:
        tok = self.next()
        if tok.kind != "NAME":
            raise ParseError(
                f"expected a name, got {tok.text!r}", tok.line, tok.col
            )
        return tok

    # -- statements -------------------------------------------------------------
    def parse(self) -> PortalProgram:
        while self.peek().kind != "EOF":
            tok = self.peek()
            if tok.text == "Storage":
                self._storage_def()
            elif tok.text == "Var":
                self._var_def()
            elif tok.text == "Expr":
                self._expr_def()
            elif tok.text == "PortalExpr":
                self._portal_expr_def()
            elif tok.kind == "NAME":
                self._method_call()
            else:
                raise ParseError(
                    f"unexpected token {tok.text!r}", tok.line, tok.col
                )
        if not self.program.portal_exprs:
            raise ParseError("program defines no PortalExpr")
        return self.program

    def _storage_def(self) -> None:
        self.expect("Storage")
        name = self.expect_name().text
        if self.peek().text == "(":
            self.expect("(")
            tok = self.next()
            if tok.kind == "STRING":
                source = tok.text[1:-1]
                if source in self.bindings:
                    storage = Storage(self.bindings[source], name=name)
                else:
                    storage = Storage(source, name=name)
            elif tok.kind == "NAME" and tok.text in self.bindings:
                storage = Storage(self.bindings[tok.text], name=name)
            else:
                raise ParseError(
                    f"Storage source {tok.text!r} is neither a quoted path "
                    f"nor a bound name", tok.line, tok.col,
                )
            self.expect(")")
            self.expect(";")
            self.program.storages[name] = storage
        elif self.peek().text == "=":
            # Storage out = expr.getOutput();
            self.expect("=")
            expr_name = self.expect_name().text
            self.expect(".")
            method = self.expect_name().text
            if method != "getOutput":
                raise ParseError(f"unknown Storage initialiser {method!r}")
            self.expect("(")
            self.expect(")")
            self.expect(";")
            if expr_name not in self.program.portal_exprs:
                raise ParseError(f"unknown PortalExpr {expr_name!r}")
            self.program.outputs[name] = expr_name
        else:
            raise ParseError("malformed Storage statement")

    def _var_def(self) -> None:
        self.expect("Var")
        name = self.expect_name().text
        self.expect(";")
        self.program.variables[name] = Var(name)

    def _expr_def(self) -> None:
        self.expect("Expr")
        name = self.expect_name().text
        self.expect("=")
        expr = self._expression()
        self.expect(";")
        self.program.expressions[name] = expr

    def _portal_expr_def(self) -> None:
        self.expect("PortalExpr")
        name = self.expect_name().text
        self.expect(";")
        self.program.portal_exprs[name] = PortalExpr(name)

    def _method_call(self) -> None:
        owner = self.expect_name().text
        self.expect(".")
        method = self.expect_name().text
        pexpr = self.program.portal_exprs.get(owner)
        if pexpr is None:
            raise ParseError(f"unknown PortalExpr {owner!r}")
        if method == "addLayer":
            self.expect("(")
            op = self._operator()
            args = []
            while self.peek().text == ",":
                self.expect(",")
                args.append(self._layer_arg())
            self.expect(")")
            self.expect(";")
            pexpr.addLayer(op, *args)
        elif method == "execute":
            self.expect("(")
            self.expect(")")
            self.expect(";")
            self.program.executed.append(owner)
        else:
            raise ParseError(f"unknown method {method!r}")

    def _qualified_name(self, namespace: str) -> str:
        """A name, optionally written C++-style as ``Namespace::NAME``
        (the paper's embedded snippets use ``PortalOp::FORALL``)."""
        name = self.expect_name().text
        if name == namespace and self.peek().text == "::":
            self.expect("::")
            name = self.expect_name().text
        return name

    def _operator(self):
        tok = self.peek()
        if tok.text == "(":
            self.expect("(")
            name = self._qualified_name("PortalOp")
            self.expect(",")
            k_tok = self.next()
            if k_tok.kind != "NUMBER":
                raise ParseError("multi-reduction k must be a number",
                                 k_tok.line, k_tok.col)
            self.expect(")")
            return (self._op_by_name(name), int(float(k_tok.text)))
        return self._op_by_name(self._qualified_name("PortalOp"))

    def _op_by_name(self, name: str):
        # Accept the PortalOp:: prefix-less names of the grammar.
        try:
            return PortalOp[name.upper()]
        except KeyError:
            raise ParseError(f"unknown Portal operator {name!r}") from None

    def _layer_arg(self):
        tok = self.peek()
        if tok.kind == "NAME":
            name = tok.text
            if name == "PortalFunc":
                self.next()
                self.expect("::")
                fname = self.expect_name().text
                if fname.upper() not in PortalFunc.__members__:
                    raise ParseError(f"unknown PortalFunc {fname!r}")
                return PortalFunc[fname.upper()]
            if name in self.program.variables:
                self.next()
                return self.program.variables[name]
            if name in self.program.storages:
                self.next()
                return self.program.storages[name]
            if name in self.program.expressions:
                self.next()
                return self.program.expressions[name]
            if name.upper() in PortalFunc.__members__:
                self.next()
                return PortalFunc[name.upper()]
        # Otherwise: an inline kernel expression.
        return self._expression()

    # -- expressions ------------------------------------------------------------
    def _expression(self) -> Expr:
        return self._comparison()

    def _comparison(self) -> Expr:
        lhs = self._additive()
        tok = self.peek()
        if tok.text in ("<", "<=", ">", ">="):
            self.next()
            rhs = self._additive()
            cmp = {"<": lhs < rhs, "<=": lhs <= rhs,
                   ">": lhs > rhs, ">=": lhs >= rhs}[tok.text]
            return indicator(cmp)
        return lhs

    def _additive(self) -> Expr:
        lhs = self._multiplicative()
        while self.peek().text in ("+", "-"):
            op = self.next().text
            rhs = self._multiplicative()
            lhs = lhs + rhs if op == "+" else lhs - rhs
        return lhs

    def _multiplicative(self) -> Expr:
        lhs = self._unary()
        while self.peek().text in ("*", "/"):
            op = self.next().text
            rhs = self._unary()
            lhs = lhs * rhs if op == "*" else lhs / rhs
        return lhs

    def _unary(self) -> Expr:
        if self.peek().text == "-":
            from .expr import Const

            self.next()
            operand = self._unary()
            if isinstance(operand, Const):
                # Fold into a negative literal so `-2` round-trips as
                # Const(-2.0) rather than Neg(Const(2.0)).
                return Const(-operand.value)
            return -operand
        return self._primary()

    def _primary(self) -> Expr:
        tok = self.next()
        if tok.text == "(":
            e = self._expression()
            self.expect(")")
            return e
        if tok.kind == "NUMBER":
            from .expr import Const

            return Const(float(tok.text))
        if tok.kind == "NAME":
            if tok.text in _FUNCS:
                self.expect("(")
                arg = self._expression()
                if tok.text == "pow":
                    self.expect(",")
                    expo = self._expression()
                    self.expect(")")
                    return pow(arg, expo)
                self.expect(")")
                return _FUNCS[tok.text](arg)
            if tok.text in self.program.variables:
                return self.program.variables[tok.text]
            if tok.text in self.program.expressions:
                return self.program.expressions[tok.text]
            raise ParseError(f"unknown name {tok.text!r} in expression",
                             tok.line, tok.col)
        raise ParseError(f"unexpected token {tok.text!r} in expression",
                         tok.line, tok.col)


def parse_program(source: str, bindings: dict | None = None) -> PortalProgram:
    """Parse a textual Portal program.

    ``bindings`` maps names (or quoted pseudo-paths) appearing in
    ``Storage name(...)`` statements to in-memory arrays, so programs can
    run without touching the filesystem.
    """
    with span("parse", source_bytes=len(source)):
        return _Parser(_tokenize(source), bindings).parse()
