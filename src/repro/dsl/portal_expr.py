"""``PortalExpr``: the main problem-definition object (paper section III).

A PortalExpr holds the chain of layers specifying an N-body problem.
``execute()`` runs the full compiler pipeline — classification, tree
construction, lowering to Portal IR, optimisation passes, code generation
— and then the (optionally parallel) multi-tree traversal.  ``getOutput()``
returns the outer layer's storage, and the intermediate IR of every
compiler stage stays inspectable via :meth:`ir_dump` and
:meth:`generated_source`.
"""

from __future__ import annotations

from typing import Any

from .errors import SpecificationError
from .expr import Var
from .layer import Layer
from .ops import OpCategory, PortalOp

__all__ = ["PortalExpr"]


class PortalExpr:
    """An N-body problem expressed as a chain of Portal layers."""

    def __init__(self, name: str = "portal_expr"):
        self.name = name
        self.layers: list[Layer] = []
        self._program = None  # CompiledProgram after execute()
        self._output = None

    # -- construction -----------------------------------------------------------
    def addLayer(self, op, *args, **params) -> Layer:
        """Append a layer.  See :meth:`Layer.build` for accepted forms."""
        layer = Layer.build(op, args, params)
        self.layers.append(layer)
        return layer

    add_layer = addLayer  # PEP-8 alias

    # -- validation ----------------------------------------------------------------
    def validate(self) -> None:
        """Check the program is a well-formed N-body specification.

        Raises :class:`SpecificationError` describing the first problem
        found.  Called automatically by :meth:`execute`.
        """
        if len(self.layers) < 2:
            raise SpecificationError(
                "an N-body problem needs at least two layers "
                "(an outer operator over one dataset and an inner reduction "
                "over another)"
            )
        inner = self.layers[-1]
        if inner.func is None:
            raise SpecificationError(
                "the innermost layer must specify a kernel function"
            )
        dims = {l.storage.dim for l in self.layers}
        if len(dims) > 1:
            raise SpecificationError(
                f"all layer datasets must share dimensionality; got {sorted(dims)}"
            )
        for layer in self.layers:
            if not layer.info.decomposable:
                raise SpecificationError(
                    f"operator {layer.op.name} is not decomposable over its "
                    f"dataset; the multi-tree algorithm requires "
                    f"decomposability (paper section II-C)"
                )
        # Resolve kernels now that adjacent layers are known.
        for i, layer in enumerate(self.layers):
            qvar = self.layers[i - 1].var if i > 0 else None
            if qvar is None and i > 0:
                qvar = Var(f"_layer{i - 1}")
                self.layers[i - 1].var = qvar
            if layer.var is None:
                layer.var = Var(f"_layer{i}")
            layer.resolve_kernel(qvar)

    # -- compiler hooks ---------------------------------------------------------
    def compile(self, **options):
        """Run the compiler pipeline without executing; returns the program."""
        from ..backend.jit import compile_expr

        self.validate()
        self._program = compile_expr(self, options)
        return self._program

    def execute(self, **options):
        """Compile (if needed) and run the problem; returns the output.

        Options (all keyword-only) include ``backend`` ('vectorized',
        'interp' or 'brute'), ``tree`` ('kd', 'ball', 'octree'),
        ``leaf_size``, ``tau`` (approximation threshold), ``parallel``,
        ``workers``, ``shards`` (``'auto'`` or a count — partition the
        reference set into spatial shards with one tree each and combine
        per-shard results; see :mod:`repro.parallel.shard`) and
        ``fastmath``.  See :class:`repro.backend.jit.CompileOptions`.
        """
        program = self.compile(**options)
        self._output = program.run()
        return self._output

    def getOutput(self):
        """The output of the last :meth:`execute` call."""
        if self._output is None:
            raise SpecificationError("execute() has not been called")
        return self._output

    get_output = getOutput  # PEP-8 alias

    # -- introspection ------------------------------------------------------------
    @property
    def program(self):
        if self._program is None:
            raise SpecificationError("compile() or execute() has not been called")
        return self._program

    def ir_dump(self, stage: str = "final") -> str:
        """Pretty-printed Portal IR after the named compiler stage
        ('lowered', 'flattened', 'numopt', 'strength', 'final')."""
        return self.program.ir_dump(stage)

    def stats(self) -> dict:
        """Observability summary of the last compile/run (see
        ``docs/observability.md``): traversal counters with prune and
        approximation rates, per-IR-pass timings, per-compile-stage
        timings, and the run wall-clock.  Sharded runs add a ``"shard"``
        block — shard count, broadcast rounds, ``pruned`` /
        ``tasks_pruned`` kill counts and per-shard traversal stats.
        Requires :meth:`compile` (the traversal counters are zero until
        :meth:`execute`)."""
        return self.program.stats_summary()

    def generated_source(self) -> str:
        """The vectorised Python source emitted by the backend."""
        return self.program.generated_source()

    def describe(self) -> str:
        lines = [f"PortalExpr {self.name!r}:"]
        lines += [f"  [{i}] {l.describe()}" for i, l in enumerate(self.layers)]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"PortalExpr({self.name!r}, {len(self.layers)} layers)"
