"""``Storage``: the primary user-facing data structure (paper section III-B).

A Storage wraps a dataset of ``n`` points in ``d`` dimensions.  It can be
constructed from a CSV file path, any array-like, or another Storage.
Portal selects a column- or row-major physical layout from the
dimensionality (see :mod:`repro.backend.layout`); both views are exposed
and materialised lazily.

Storages may carry per-point *weights* (the density ``s(x_r)`` of the
classical N-body form — particle masses in Barnes-Hut, mixture
responsibilities in EM) and a *labels* vector (class ids for the naive
Bayes classifier).

Storages also memoize their content *fingerprints* (the BLAKE2 digests
the execution cache keys on, see :mod:`repro.backend.cache`), so cache
hits do not re-hash the dataset on every ``execute()``.  The memo is
invalidated through the mutation path: code that writes into a live
Storage's arrays in place must call :meth:`Storage.mark_mutated`
(iterative problems in this codebase — k-means, EM — instead build a
fresh Storage per step, which always re-fingerprints).
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..backend.layout import Layout, choose_layout
from .errors import StorageError

__all__ = ["Storage", "StorageDelta", "MUTATION_LOG_MAX"]

#: Bound on the per-Storage mutation log.  A live tree further than this
#: many mutations behind the Storage head can no longer be refit and
#: falls back to a full rebuild — the log exists to make the *recent*
#: past cheap, not to be a journal.
MUTATION_LOG_MAX = 32


@dataclass(frozen=True)
class StorageDelta:
    """One recorded mutation: enough to replay it onto a live tree.

    ``version`` is the Storage version *after* the mutation, so a tree
    built at version ``v`` is brought current by replaying every delta
    with ``version > v`` (they are consecutive whenever the log chain is
    intact — a bare :meth:`Storage.mark_mutated` breaks it on purpose).
    """

    version: int
    kind: str  # 'insert' | 'delete' | 'update'
    idx: np.ndarray | None
    points: np.ndarray | None
    weights: np.ndarray | None


class Storage:
    """A dataset participating in a Portal layer.

    Parameters
    ----------
    source:
        A CSV file path, an array-like of shape ``(n, d)`` (a 1-D input is
        treated as ``n`` points in one dimension), or another Storage
        (shares the underlying array).
    weights:
        Optional per-point weights, shape ``(n,)``.
    labels:
        Optional per-point integer labels, shape ``(n,)``.
    name:
        Optional name used in IR dumps and error messages.
    """

    def __init__(self, source, *, weights=None, labels=None, name: str | None = None):
        if isinstance(source, Storage):
            data = source.data
            name = name or source.name
            weights = weights if weights is not None else source.weights
            labels = labels if labels is not None else source.labels
        elif isinstance(source, (str, os.PathLike)):
            data = _read_csv(os.fspath(source))
            name = name or os.path.splitext(os.path.basename(os.fspath(source)))[0]
        else:
            data = np.asarray(source, dtype=np.float64)
            if data.ndim == 1:
                data = data[:, None]
        if data.ndim != 2:
            raise StorageError(
                f"Storage requires 2-D data (n points × d dims); got shape {data.shape}"
            )
        if data.shape[0] == 0:
            raise StorageError("Storage cannot be empty")
        if not np.all(np.isfinite(data)):
            raise StorageError("Storage data contains NaN or infinite values")

        self._data = np.ascontiguousarray(data, dtype=np.float64)
        self._colmajor: np.ndarray | None = None
        self._cleared = False
        self._version = 0
        self._fp_cache: dict[str, tuple] = {}
        #: Recent mutations (bounded), replayable onto live trees.
        self._mutation_log: list[StorageDelta] = []
        #: Live trees built over this Storage's data by the tree cache:
        #: ``(kind, leaf_size, split) -> (built_version, tree)``.
        self._live_trees: dict[tuple, tuple] = {}
        #: Shared-memory tokens under which this Storage's columns are
        #: currently published (evicted on mutation).
        self._shm_tokens: set[str] = set()
        self.name = name or "storage"
        self.weights = None if weights is None else _check_vec(
            weights, self.n, "weights", float
        )
        self.labels = None if labels is None else _check_vec(
            labels, self.n, "labels", int
        )
        self._cleared = False

    # -- basic properties -----------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """Row-major view, shape ``(n, d)``."""
        self._check_alive()
        return self._data

    @property
    def colmajor(self) -> np.ndarray:
        """Column-major view, shape ``(d, n)``, materialised on first use."""
        self._check_alive()
        if self._colmajor is None:
            self._colmajor = np.ascontiguousarray(self._data.T)
        return self._colmajor

    @property
    def n(self) -> int:
        self._check_alive()
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        self._check_alive()
        return self._data.shape[1]

    @property
    def layout(self) -> str:
        """The physical layout Portal selects for this dataset."""
        return choose_layout(self.dim)

    def physical(self) -> np.ndarray:
        """The array in Portal's selected layout (what codegen reads)."""
        return self.colmajor if self.layout == Layout.COLUMN else self.data

    # -- content identity -------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter: bumped by :meth:`mark_mutated`."""
        return self._version

    def mark_mutated(self) -> None:
        """Declare that this Storage's arrays were written in place.

        Invalidates the memoized content fingerprints (and the lazily
        materialised column-major view) so the next ``execute()``
        re-fingerprints and correctly misses the execution caches, evicts
        any shared-memory blocks still published under this Storage's
        old tokens (a warm process pool must never read stale columns),
        and — because an arbitrary in-place write cannot be replayed —
        breaks the mutation-log chain, so live trees fall back to a full
        rebuild instead of an unsound refit.
        """
        self._bump_version()
        self._mutation_log.clear()
        self._live_trees.clear()

    def _bump_version(self) -> None:
        self._version += 1
        self._colmajor = None
        self._fp_cache.clear()
        self._evict_stale_shm()

    def _evict_stale_shm(self) -> None:
        if not self._shm_tokens:
            return
        tokens = tuple(self._shm_tokens)
        self._shm_tokens.clear()
        from ..parallel import shm

        shm.evict_stale_blocks(tokens)

    def note_shm_token(self, token: str | None) -> None:
        """Record that this Storage's columns are published to shared
        memory under ``token`` (called by the compiler when it hands a
        program to the process executor), so a later mutation can evict
        exactly those blocks."""
        if token:
            self._shm_tokens.add(token)

    # -- mutation API -----------------------------------------------------------
    def insert_batch(self, points, weights=None, labels=None) -> np.ndarray:
        """Append points; returns their (stable) new row indices.

        A weighted Storage defaults missing ``weights`` to 1; an
        unweighted one rejects them.  The mutation is copy-on-write (the
        previous ``data`` array is never written into), recorded in the
        mutation log so live trees refit instead of rebuilding.
        """
        self._check_alive()
        pts = np.asarray(points, dtype=np.float64).reshape(-1, self.dim)
        m = pts.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        if not np.all(np.isfinite(pts)):
            raise StorageError("insert_batch points contain NaN or infinity")
        w = None
        if self.weights is not None:
            w = (np.ones(m) if weights is None
                 else np.broadcast_to(
                     np.asarray(weights, dtype=np.float64), (m,)).copy())
            if not np.all(np.isfinite(w)):
                raise StorageError("insert_batch weights must be finite")
        elif weights is not None:
            raise StorageError("Storage carries no weights; cannot insert them")
        lab = None
        if self.labels is not None:
            if labels is None:
                raise StorageError("Storage carries labels; provide them")
            lab = np.broadcast_to(
                np.asarray(labels, dtype=np.int64), (m,)).copy()
        elif labels is not None:
            raise StorageError("Storage carries no labels; cannot insert them")
        ids = np.arange(self.n, self.n + m, dtype=np.int64)
        self._data = np.ascontiguousarray(np.concatenate([self._data, pts]))
        if w is not None:
            self.weights = np.concatenate([self.weights, w])
        if lab is not None:
            self.labels = np.concatenate([self.labels, lab])
        self._record(StorageDelta(self._version + 1, "insert", ids.copy(),
                                  pts.copy(), w))
        return ids

    def delete_batch(self, idx) -> None:
        """Delete rows by index; surviving rows compact downwards (the
        semantics of ``np.delete``).  Copy-on-write and logged."""
        self._check_alive()
        idx = np.unique(np.atleast_1d(np.asarray(idx, dtype=np.int64)))
        if idx.size == 0:
            return
        if idx.size and (idx[0] < 0 or idx[-1] >= self.n):
            raise StorageError(f"delete_batch index out of range 0..{self.n - 1}")
        if idx.size >= self.n:
            raise StorageError("cannot delete every row of a Storage")
        self._data = np.ascontiguousarray(np.delete(self._data, idx, axis=0))
        if self.weights is not None:
            self.weights = np.delete(self.weights, idx)
        if self.labels is not None:
            self.labels = np.delete(self.labels, idx)
        self._record(StorageDelta(self._version + 1, "delete", idx,
                                  None, None))

    def update_batch(self, idx, points=None, weights=None) -> None:
        """Overwrite coordinates and/or weights of existing rows.
        Copy-on-write and logged."""
        self._check_alive()
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        if idx.size == 0:
            return
        if points is None and weights is None:
            raise StorageError("update_batch needs points and/or weights")
        if idx.min() < 0 or idx.max() >= self.n:
            raise StorageError(f"update_batch index out of range 0..{self.n - 1}")
        pts = None
        if points is not None:
            pts = np.asarray(points, dtype=np.float64).reshape(
                idx.size, self.dim)
            if not np.all(np.isfinite(pts)):
                raise StorageError("update_batch points contain NaN or infinity")
            data = self._data.copy()
            data[idx] = pts
            self._data = data
        w = None
        if weights is not None:
            if self.weights is None:
                raise StorageError(
                    "Storage carries no weights; cannot update them")
            w = np.broadcast_to(
                np.asarray(weights, dtype=np.float64), (idx.size,)).copy()
            if not np.all(np.isfinite(w)):
                raise StorageError("update_batch weights must be finite")
            neww = self.weights.copy()
            neww[idx] = w
            self.weights = neww
        self._record(StorageDelta(self._version + 1, "update", idx.copy(),
                                  None if pts is None else pts.copy(), w))

    def _record(self, delta: StorageDelta) -> None:
        self._bump_version()
        assert delta.version == self._version
        self._mutation_log.append(delta)
        del self._mutation_log[:-MUTATION_LOG_MAX]

    def deltas_since(self, version: int) -> list[StorageDelta] | None:
        """The consecutive mutation chain from ``version`` to the current
        head, oldest first — or ``None`` when the chain is broken (log
        overflow, or an unreplayable :meth:`mark_mutated`)."""
        if version == self._version:
            return []
        chain = [d for d in self._mutation_log if d.version > version]
        expected = list(range(version + 1, self._version + 1))
        if [d.version for d in chain] != expected:
            return None
        return chain

    def fingerprint(self, which: str = "data") -> tuple | None:
        """Memoized content fingerprint of ``data`` or ``weights``.

        Same value as :func:`repro.backend.cache.array_fingerprint` on
        the raw array, but the O(n) BLAKE2 hash is paid once per
        (Storage, version) instead of on every cache-key computation —
        repeated ``execute()`` calls over the same Storage build their
        program-cache key without re-hashing the dataset.
        """
        self._check_alive()
        arr = self._data if which == "data" else getattr(self, which, None)
        if arr is None:
            return None
        # The buffer address + shape guard catches attribute rebinds
        # (e.g. replacing .weights); in-place writes must go through
        # mark_mutated(), which bumps the version.
        key = (self._version, arr.__array_interface__["data"][0], arr.shape)
        cached = self._fp_cache.get(which)
        if cached is not None and cached[0] == key:
            return cached[1]
        from ..backend.cache import array_fingerprint

        fp = array_fingerprint(arr)
        self._fp_cache[which] = (key, fp)
        return fp

    # -- lifecycle --------------------------------------------------------------
    def clear(self) -> None:
        """Release the underlying arrays (paper section III-B).

        Any later access raises :class:`StorageError`.
        """
        self._data = None  # type: ignore[assignment]
        self._colmajor = None
        self.weights = None
        self.labels = None
        self._mutation_log.clear()
        self._live_trees.clear()
        self._evict_stale_shm()
        self._cleared = True

    def _check_alive(self) -> None:
        if self._cleared:
            raise StorageError(f"Storage {self.name!r} used after clear()")

    # -- conveniences ------------------------------------------------------------
    def subset(self, idx) -> "Storage":
        """A new Storage over a subset of points (copies)."""
        self._check_alive()
        return Storage(
            self._data[idx],
            weights=None if self.weights is None else self.weights[idx],
            labels=None if self.labels is None else self.labels[idx],
            name=f"{self.name}[subset]",
        )

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        if self._cleared:
            return f"Storage({self.name!r}, cleared)"
        return f"Storage({self.name!r}, n={self.n}, d={self.dim}, layout={self.layout})"


def _check_vec(v, n: int, what: str, kind) -> np.ndarray:
    arr = np.asarray(v, dtype=np.float64 if kind is float else np.int64)
    if arr.shape != (n,):
        raise StorageError(f"{what} must have shape ({n},), got {arr.shape}")
    if kind is float and not np.all(np.isfinite(arr)):
        raise StorageError(f"{what} contains NaN or infinite values")
    return arr


def _read_csv(path: str) -> np.ndarray:
    """Read a numeric CSV (optional non-numeric header row is skipped)."""
    if not os.path.exists(path):
        raise StorageError(f"CSV file not found: {path}")
    rows: list[Sequence[float]] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        for i, row in enumerate(reader):
            if not row:
                continue
            try:
                rows.append([float(x) for x in row])
            except ValueError:
                if i == 0:
                    continue  # header
                raise StorageError(f"non-numeric value in {path} line {i + 1}")
    if not rows:
        raise StorageError(f"CSV file {path} contains no data rows")
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise StorageError(f"CSV file {path} has ragged rows")
    return np.asarray(rows, dtype=np.float64)
