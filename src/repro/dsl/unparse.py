"""Unparsing: embedded Portal programs back to Appendix-VIII text.

The inverse of :mod:`repro.dsl.parser`: serialises symbolic expressions
and whole :class:`PortalExpr` programs to the textual grammar, so
programs built through the Python API can be saved as ``.portal`` files
(and round-tripped through the parser — property-tested in the suite).
"""

from __future__ import annotations

from .errors import KernelError
from .expr import (
    BinOp, Call, Const, DimReduce, Expr, Indicator, Neg, Var,
)
from .funcs import PortalFunc
from .layer import Layer
from .portal_expr import PortalExpr

__all__ = ["unparse_expr", "unparse_program"]


def unparse_expr(e: Expr) -> str:
    """Serialise a symbolic expression to Portal grammar text."""
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Const):
        v = e.value
        return str(int(v)) if float(v).is_integer() and abs(v) < 1e15 else repr(v)
    if isinstance(e, Neg):
        return f"(-{unparse_expr(e.operand)})"
    if isinstance(e, BinOp):
        if e.op == "**":
            return f"pow({unparse_expr(e.lhs)}, {unparse_expr(e.rhs)})"
        return f"({unparse_expr(e.lhs)} {e.op} {unparse_expr(e.rhs)})"
    if isinstance(e, Call):
        return f"{e.func}({unparse_expr(e.operand)})"
    if isinstance(e, DimReduce):
        # The grammar spells the sum-reduced power as pow(vec, c)
        # (paper Fig. 2 lowering convention).
        if (
            e.reduce == "+"
            and isinstance(e.operand, BinOp)
            and e.operand.op == "**"
        ):
            return (f"pow({unparse_expr(e.operand.lhs)}, "
                    f"{unparse_expr(e.operand.rhs)})")
        raise KernelError(
            "explicit dimension reductions (dim_sum/dim_max) have no "
            "textual spelling in the Appendix-VIII grammar"
        )
    if isinstance(e, Indicator):
        # Parenthesised: comparisons bind loosest, so an indicator nested
        # in arithmetic would otherwise re-parse with the wrong precedence.
        return f"({unparse_expr(e.lhs)} {e.op} {unparse_expr(e.rhs)})"
    raise KernelError(f"cannot unparse expression node {type(e).__name__}")


def _unparse_layer(owner: str, layer: Layer) -> tuple[str, str | None]:
    """Returns (addLayer line, optional Expr definition line)."""
    op = layer.op.name if layer.k is None else f"({layer.op.name}, {layer.k})"
    args = [op]
    if layer.var is not None and not layer.var.name.startswith("_"):
        args.append(layer.var.name)
    args.append(layer.storage.name)
    expr_def = None
    if isinstance(layer.func, PortalFunc):
        args.append(layer.func.name)
    elif isinstance(layer.func, Expr):
        args.append(unparse_expr(layer.func))
    elif callable(layer.func):
        raise KernelError(
            "external Python kernels cannot be serialised to Portal text"
        )
    return f"{owner}.addLayer({', '.join(args)});", expr_def


def unparse_program(pexpr: PortalExpr, sources: dict[str, str] | None = None,
                    with_output: bool = True) -> str:
    """Serialise a PortalExpr to a textual Portal program.

    ``sources`` maps storage names to the path spelled in the emitted
    ``Storage name("path")`` statements (defaults to ``<name>.csv``).
    """
    sources = sources or {}
    lines: list[str] = []
    seen: set[str] = set()
    for layer in pexpr.layers:
        name = layer.storage.name
        if name not in seen:
            seen.add(name)
            path = sources.get(name, f"{name}.csv")
            lines.append(f'Storage {name}("{path}");')
    for layer in pexpr.layers:
        if layer.var is not None and not layer.var.name.startswith("_"):
            lines.append(f"Var {layer.var.name};")
    owner = _sanitise(pexpr.name)
    lines.append(f"PortalExpr {owner};")
    for layer in pexpr.layers:
        call, _ = _unparse_layer(owner, layer)
        lines.append(call)
    lines.append(f"{owner}.execute();")
    if with_output:
        lines.append(f"Storage output = {owner}.getOutput();")
    return "\n".join(lines) + "\n"


def _sanitise(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not out or not (out[0].isalpha() or out[0] == "_"):
        out = "p_" + out
    return out
