"""2-D Laplace fast multipole method (the paper's reference [7])."""

from .expansions import direct_potential, l2l, l2p, m2l, m2m, m2p, p2m
from .fmm2d import FMMReport, fmm_field, fmm_potential
from .grid import UniformGrid

__all__ = [
    "fmm_potential", "fmm_field", "FMMReport", "UniformGrid",
    "p2m", "m2m", "m2l", "l2l", "l2p", "m2p", "direct_potential",
]
