"""Complex multipole/local expansions for the 2-D Laplace kernel.

The potential of a unit charge at z₀ is ``φ(z) = Re log(z − z₀)``.
About a center zc the far field has the multipole form

    φ(z) = Q·log(z − zc) + Σ_{k≥1} a_k / (z − zc)^k,
    Q = Σ qᵢ,    a_k = −Σ qᵢ (zᵢ − zc)^k / k,

and near a target center the field of well-separated sources has the
local (Taylor) form ``φ(z) = Σ_{l≥0} b_l (z − zc)^l``.  This module
implements the classical Greengard–Rokhlin translation operators:

* :func:`p2m` — sources → multipole,
* :func:`m2m` — shift a child multipole to the parent center,
* :func:`m2l` — convert a well-separated multipole to a local expansion,
* :func:`l2l` — shift a parent local expansion to a child center,
* :func:`m2p` / :func:`l2p` — direct evaluations.

Truncating at p terms gives relative error ~ (√2/3)^p per translation.
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb

__all__ = ["p2m", "m2m", "m2l", "l2l", "l2p", "m2p", "direct_potential"]


def p2m(z: np.ndarray, q: np.ndarray, zc: complex, p: int) -> np.ndarray:
    """Multipole expansion (a_0 = Q, a_1..a_p) of charges q at z about zc."""
    a = np.zeros(p + 1, dtype=np.complex128)
    a[0] = q.sum()
    d = z - zc
    power = np.ones_like(d)
    for k in range(1, p + 1):
        power = power * d
        a[k] = -(q * power).sum() / k
    return a


def m2m(a: np.ndarray, delta: complex) -> np.ndarray:
    """Shift a multipole expansion by δ = (old center − new center)."""
    p = len(a) - 1
    b = np.zeros_like(a)
    b[0] = a[0]
    for l in range(1, p + 1):
        s = -a[0] * delta ** l / l
        for k in range(1, l + 1):
            s += a[k] * delta ** (l - k) * comb(l - 1, k - 1, exact=True)
        b[l] = s
    return b


def m2l(a: np.ndarray, delta: complex) -> np.ndarray:
    """Convert a multipole about zc1 into a local expansion about zc2,
    δ = zc1 − zc2 (cells must be well separated)."""
    p = len(a) - 1
    b = np.zeros_like(a)
    sign = [(-1.0) ** k for k in range(p + 1)]
    b[0] = a[0] * np.log(-delta) + sum(
        a[k] * sign[k] / delta ** k for k in range(1, p + 1)
    )
    for l in range(1, p + 1):
        s = -a[0] / (l * delta ** l)
        for k in range(1, p + 1):
            s += (a[k] * sign[k] / delta ** (l + k)
                  * comb(l + k - 1, k - 1, exact=True))
        b[l] = s
    return b


def l2l(b: np.ndarray, delta: complex) -> np.ndarray:
    """Re-center a local expansion: coefficients about zc − δ given
    coefficients about zc (δ = old center − new center).

    Uses repeated synthetic division (Horner re-centering), exact for a
    degree-p polynomial.
    """
    c = b.copy()
    p = len(b) - 1
    for j in range(p):
        for k in range(p - 1, j - 1, -1):
            c[k] = c[k] - delta * c[k + 1]
    return c


def l2p(b: np.ndarray, z: np.ndarray, zc: complex) -> np.ndarray:
    """Evaluate a local expansion at points z (returns Re φ)."""
    d = z - zc
    acc = np.zeros_like(d)
    for coef in b[::-1]:
        acc = acc * d + coef
    return acc.real


def m2p(a: np.ndarray, z: np.ndarray, zc: complex) -> np.ndarray:
    """Evaluate a multipole expansion directly at points z (Re φ)."""
    d = z - zc
    out = a[0] * np.log(d)
    inv = 1.0 / d
    powk = inv.copy()
    for k in range(1, len(a)):
        out = out + a[k] * powk
        powk = powk * inv
    return out.real


def direct_potential(z_targets: np.ndarray, z_sources: np.ndarray,
                     q: np.ndarray, block: int = 512) -> np.ndarray:
    """Exact near-field: Σ qᵢ Re log(z − zᵢ), skipping coincident pairs.

    Blocked over targets so the (n_t, n_s) pairwise matrix never exceeds
    ``block · n_s`` entries.
    """
    out = np.empty(len(z_targets))
    for s in range(0, len(z_targets), block):
        e = min(s + block, len(z_targets))
        d = z_targets[s:e, None] - z_sources[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            lg = np.log(np.abs(d))
        lg[~np.isfinite(lg)] = 0.0   # self / coincident points contribute 0
        out[s:e] = lg @ q
    return out
