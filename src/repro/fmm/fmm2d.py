"""The 2-D Laplace fast multipole method (Greengard–Rokhlin).

The O(N) algorithm the paper cites ([7]) as one of the two foundational
fast N-body methods (with Barnes-Hut).  Standard structure over the
uniform grid:

1. **P2M** — multipole expansion of every finest-level cell;
2. **M2M upward pass** — children's multipoles shift into parents;
3. **M2L + L2L downward pass** — at every level each cell accumulates the
   local expansion of its interaction list, plus its parent's shifted
   local expansion;
4. **L2P + near field** — evaluate the local expansion at the cell's
   points and add the exact contribution of the ≤ 9 adjacent cells.

Truncation at ``p`` terms gives ~(√2/3)^p ≈ 0.47^p relative error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .expansions import direct_potential, l2l, l2p, m2l, m2m, p2m
from .grid import UniformGrid

__all__ = ["fmm_potential", "FMMReport"]


@dataclass
class FMMReport:
    """Diagnostics of one FMM evaluation."""

    levels: int
    p: int
    n_cells: int
    m2l_translations: int
    near_field_pairs: int


def _build_expansions(points, charges, p: int, points_per_cell: int):
    """Shared FMM pipeline: P2M, the M2M upward pass and the M2L + L2L
    downward pass.  Returns ``(grid, local, m2l_count)`` with the local
    expansion of every occupied finest-level cell."""
    points = np.asarray(points, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    if len(points) != len(charges):
        raise ValueError("points and charges length mismatch")
    if p < 1:
        raise ValueError("expansion order p must be >= 1")
    grid = UniformGrid.build(points, points_per_cell=points_per_cell)
    z = grid.z
    L = grid.levels

    # Multipole expansions per level: dict[(level, i, j)] -> coeffs.
    multipole: dict[tuple[int, int, int], np.ndarray] = {}

    # --- P2M at the finest level ------------------------------------------------
    m = grid.cells_at(L)
    for cell, idx in grid.cell_points.items():
        i, j = divmod(int(cell), m)
        zc = grid.center(L, i, j)
        multipole[(L, i, j)] = p2m(z[idx], charges[idx], zc, p)

    # --- M2M upward pass -----------------------------------------------------------
    for level in range(L - 1, 1, -1):
        for (lv, i, j), a in list(multipole.items()):
            if lv != level + 1:
                continue
            pi, pj = i >> 1, j >> 1
            delta = grid.center(level + 1, i, j) - grid.center(level, pi, pj)
            shifted = m2m(a, delta)
            key = (level, pi, pj)
            if key in multipole:
                multipole[key] = multipole[key] + shifted
            else:
                multipole[key] = shifted

    # --- downward pass: M2L + L2L ---------------------------------------------------
    local: dict[tuple[int, int, int], np.ndarray] = {}
    m2l_count = 0
    for level in range(2, L + 1):
        occupied = [k for k in multipole if k[0] == level]
        for (lv, i, j) in occupied:
            zc = grid.center(level, i, j)
            b = np.zeros(p + 1, dtype=np.complex128)
            # Parent's local expansion, re-centered to this cell.
            parent = local.get((level - 1, i >> 1, j >> 1))
            if parent is not None:
                delta = grid.center(level - 1, i >> 1, j >> 1) - zc
                b = b + l2l(parent, delta)
            # Interaction list M2L.
            for (a_i, a_j) in grid.interaction_list(level, i, j):
                src = multipole.get((level, a_i, a_j))
                if src is None:
                    continue
                delta = grid.center(level, a_i, a_j) - zc
                b = b + m2l(src, delta)
                m2l_count += 1
            local[(level, i, j)] = b

    return grid, local, m2l_count


def fmm_potential(
    points,
    charges,
    p: int = 8,
    points_per_cell: int = 20,
    return_report: bool = False,
):
    """Potentials ``φ_i = Σ_{j≠i} q_j · log‖x_i − x_j‖`` in O(N).

    Parameters
    ----------
    points:
        ``(n, 2)`` positions.
    charges:
        ``(n,)`` source strengths.
    p:
        Expansion order (accuracy ~ 0.47^p).
    """
    charges = np.asarray(charges, dtype=np.float64)
    grid, local, m2l_count = _build_expansions(points, charges, p,
                                               points_per_cell)
    z = grid.z
    L = grid.levels
    m = grid.cells_at(L)

    # --- L2P + near field -------------------------------------------------------------
    out = np.zeros(len(z))
    near_pairs = 0
    for cell, idx in grid.cell_points.items():
        i, j = divmod(int(cell), m)
        zc = grid.center(L, i, j)
        b = local.get((L, i, j))
        if b is not None:
            out[idx] = l2p(b, z[idx], zc)
        # Near field: same cell (self-interactions) + adjacent cells.
        out[idx] += direct_potential(z[idx], z[idx], charges[idx])
        near_pairs += len(idx) * len(idx)
        for (a_i, a_j) in grid.neighbours(L, i, j):
            nb = grid.cell_points.get(a_i * m + a_j)
            if nb is None:
                continue
            out[idx] += direct_potential(z[idx], z[nb], charges[nb])
            near_pairs += len(idx) * len(nb)

    if return_report:
        return out, FMMReport(
            levels=L, p=p, n_cells=len(grid.cell_points),
            m2l_translations=m2l_count, near_field_pairs=near_pairs,
        )
    return out


def fmm_field(
    points,
    charges,
    p: int = 8,
    points_per_cell: int = 20,
) -> np.ndarray:
    """Complex derivative ``dφ/dz`` of the log potential at every point,
    ``w_i = Σ_{j≠i} q_j / (z_i − z_j)``, in O(N).

    The physical gradient is ``∇φ = conj(w)`` interpreted as a 2-vector;
    point-vortex velocities are ``conj(w / (2πi))`` with circulations as
    charges.
    """
    charges = np.asarray(charges, dtype=np.float64)
    grid, local, _ = _build_expansions(points, charges, p, points_per_cell)
    z = grid.z
    L = grid.levels
    m = grid.cells_at(L)

    out = np.zeros(len(z), dtype=np.complex128)
    for cell, idx in grid.cell_points.items():
        i, j = divmod(int(cell), m)
        zc = grid.center(L, i, j)
        b = local.get((L, i, j))
        if b is not None:
            # d/dz Σ b_l (z − zc)^l = Σ l·b_l (z − zc)^{l-1}: Horner.
            deriv = np.arange(1, len(b)) * b[1:]
            d = z[idx] - zc
            acc = np.zeros_like(d)
            for coef in deriv[::-1]:
                acc = acc * d + coef
            out[idx] = acc
        # Near field: Σ q_j / (z − z_j) over the same and adjacent cells.
        out[idx] += _direct_field(z[idx], z[idx], charges[idx])
        for (a_i, a_j) in grid.neighbours(L, i, j):
            nb = grid.cell_points.get(a_i * m + a_j)
            if nb is None:
                continue
            out[idx] += _direct_field(z[idx], z[nb], charges[nb])
    return out


def _direct_field(z_targets, z_sources, q, block: int = 512) -> np.ndarray:
    """Exact ``Σ q_j / (z − z_j)``, skipping coincident pairs."""
    out = np.empty(len(z_targets), dtype=np.complex128)
    for s in range(0, len(z_targets), block):
        e = min(s + block, len(z_targets))
        d = z_targets[s:e, None] - z_sources[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = 1.0 / d
        inv[~np.isfinite(inv)] = 0.0
        out[s:e] = inv @ q
    return out
