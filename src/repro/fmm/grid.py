"""Uniform level-synchronised quadtree grid for the 2-D FMM.

The classic (Greengard–Rokhlin) fast multipole method works on a uniform
hierarchy: level ℓ divides the bounding square into 2^ℓ × 2^ℓ cells, and
every translation operator acts between cells of neighbouring levels or
well-separated cells of the same level.  This module provides that grid:
point binning, cell centers, neighbour sets and *interaction lists*
(children of the parent's neighbours that are not the cell's own
neighbours).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UniformGrid"]


@dataclass
class UniformGrid:
    """A level-synchronised quadtree over 2-D points.

    Points are represented as complex numbers (x + iy) — the natural
    coordinates of the 2-D Laplace FMM.
    """

    z: np.ndarray                 # complex point coordinates
    levels: int                   # finest level index L (root = level 0)
    lo: complex                   # lower-left corner of the root square
    side: float                   # root square side length
    #: finest-level cell index of every point, shape (n,), int (i * m + j)
    leaf_of_point: np.ndarray
    #: per finest-level cell: point index lists
    cell_points: dict[int, np.ndarray]

    @classmethod
    def build(cls, points: np.ndarray, points_per_cell: int = 20,
              max_level: int = 8) -> "UniformGrid":
        """Choose the finest level so cells average ``points_per_cell``."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("the 2-D FMM requires (n, 2) points")
        n = len(points)
        if n == 0:
            raise ValueError("no points")
        lo_xy = points.min(axis=0)
        hi_xy = points.max(axis=0)
        side = float(max(hi_xy[0] - lo_xy[0], hi_xy[1] - lo_xy[1]))
        side = side * (1 + 1e-12) + 1e-300
        levels = int(np.clip(np.round(np.log(max(n, 1) / points_per_cell)
                                      / np.log(4.0)), 2, max_level))
        m = 1 << levels
        z = points[:, 0] + 1j * points[:, 1]
        ij = np.minimum(
            ((points - lo_xy) / side * m).astype(np.int64), m - 1
        )
        leaf = ij[:, 0] * m + ij[:, 1]
        order = np.argsort(leaf, kind="stable")
        cells: dict[int, np.ndarray] = {}
        sorted_leaf = leaf[order]
        boundaries = np.flatnonzero(np.diff(sorted_leaf)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [n]])
        for s, e in zip(starts, ends):
            cells[int(sorted_leaf[s])] = order[s:e]
        return cls(
            z=z, levels=levels, lo=complex(lo_xy[0], lo_xy[1]), side=side,
            leaf_of_point=leaf, cell_points=cells,
        )

    # -- geometry ---------------------------------------------------------------
    def cells_at(self, level: int) -> int:
        return 1 << level

    def cell_size(self, level: int) -> float:
        return self.side / (1 << level)

    def center(self, level: int, i: int, j: int) -> complex:
        h = self.cell_size(level)
        return self.lo + complex((i + 0.5) * h, (j + 0.5) * h)

    def centers_grid(self, level: int) -> np.ndarray:
        """(m, m) complex array of cell centers at *level*."""
        m = self.cells_at(level)
        h = self.cell_size(level)
        ii, jj = np.meshgrid(np.arange(m), np.arange(m), indexing="ij")
        return self.lo + ((ii + 0.5) * h + 1j * (jj + 0.5) * h)

    def neighbours(self, level: int, i: int, j: int) -> list[tuple[int, int]]:
        """The ≤ 8 adjacent cells (excluding the cell itself)."""
        m = self.cells_at(level)
        out = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                a, b = i + di, j + dj
                if 0 <= a < m and 0 <= b < m:
                    out.append((a, b))
        return out

    def interaction_list(self, level: int, i: int,
                         j: int) -> list[tuple[int, int]]:
        """Children of the parent's neighbours that are well separated
        from (i, j): the classic FMM interaction list (≤ 27 cells)."""
        if level == 0:
            return []
        m = self.cells_at(level)
        pi, pj = i >> 1, j >> 1
        near = set(self.neighbours(level, i, j))
        near.add((i, j))
        out = []
        for a, b in self.neighbours(level - 1, pi, pj):
            for ci in (2 * a, 2 * a + 1):
                for cj in (2 * b, 2 * b + 1):
                    if ci < m and cj < m and (ci, cj) not in near:
                        out.append((ci, cj))
        return out
