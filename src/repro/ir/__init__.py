"""Portal IR: nodes, lowering and the optimisation pipeline (paper §IV)."""

from .flattening import flatten
from .lowering import kernel_to_ir, lower
from .nodes import (
    Alloc, Assign, AugAssign, Block, CallStmt, Comment, For, IfStmt, IRCall,
    IRFunction, IRProgram, LoadExpr, ReturnStmt, Stmt, StoreStmt, SymRef,
)
from .numerical_opt import numerical_optimize
from .passes import (
    PIPELINE_STAGES, PassManager, constant_fold, dead_code_eliminate,
)
from .printer import render_function, render_program, render_stages, render_stmt
from .storage_injection import InjectionRow, injection_plan
from .strength_reduction import strength_reduce

__all__ = [
    "SymRef", "LoadExpr", "IRCall", "Stmt", "Block", "Alloc", "For",
    "Assign", "AugAssign", "StoreStmt", "IfStmt", "ReturnStmt", "Comment",
    "CallStmt", "IRFunction", "IRProgram",
    "lower", "kernel_to_ir", "flatten", "numerical_optimize",
    "strength_reduce", "constant_fold", "dead_code_eliminate",
    "PassManager", "PIPELINE_STAGES",
    "render_stmt", "render_function", "render_program", "render_stages",
    "InjectionRow", "injection_plan",
]
