"""Common-subexpression elimination by hash-consing (paper section IV-F).

Every IR expression is pure (loads included), and structural
equality/hashing on :class:`~repro.dsl.expr.Expr` gives content identity
for free, so CSE reduces to counting structurally equal non-leaf subtrees
and hoisting each repeated one into a single ``cse<N>`` temporary.

The pass works scope-wide: within one block it shares subexpressions
*across* statements (the band rule's ``band_hi(g(tmin), g(tmax))`` /
``band_lo(g(tmin), g(tmax))`` pair collapses to two shared kernel
evaluations), not just within one statement.  Sharing is only applied
along runs of statements where no name the expression depends on is
redefined; nested loop bodies and branches are separate scopes, so no
loop-carried value is ever hoisted out of its loop.

The rescan loop hoists the largest repeated subtree first and recounts:
hoisting ``(a-b)*(a-b)`` leaves ``a-b`` occurring once, so its
components are not hoisted again — temporaries chain only when they are
genuinely shared.
"""

from __future__ import annotations

import itertools

from ..dsl.expr import Expr
from .nodes import (
    Alloc, Assign, AugAssign, Block, CallStmt, For, IfStmt, IRFunction,
    IRProgram, LoadExpr, ReturnStmt, Stmt, StoreStmt, SymRef, _map_expr_tree,
)

__all__ = ["common_subexpression_eliminate"]


def _names_read(e: Expr) -> set[str]:
    out: set[str] = set()
    for node in e.walk():
        if isinstance(node, SymRef):
            out.add(node.name)
        elif isinstance(node, LoadExpr):
            out.add(node.array)
    return out


def _names_written(s: Stmt) -> set[str]:
    """Names a statement may mutate, recursing into nested blocks.
    ``CallStmt`` intrinsics (sorted_insert, append, ...) mutate their
    array arguments, so every argument name counts as written."""
    out: set[str] = set()
    for stmt in s.walk():
        if isinstance(stmt, (Assign, AugAssign)):
            out.add(stmt.target)
        elif isinstance(stmt, Alloc):
            out.add(stmt.name)
        elif isinstance(stmt, StoreStmt):
            out.add(stmt.array)
        elif isinstance(stmt, CallStmt):
            for a in stmt.args:
                out |= _names_read(a)
        elif isinstance(stmt, For):
            out.add(stmt.var)
    return out


def _direct_exprs(s: Stmt) -> tuple[Expr, ...]:
    """Expression operands evaluated directly by *s* (``Stmt.exprs()``
    does not recurse into nested blocks, which is exactly the scope
    boundary CSE needs)."""
    return s.exprs()


def _count_subtrees(stmts: list[Stmt]) -> dict[Expr, int]:
    counts: dict[Expr, int] = {}

    def visit(e: Expr):
        if e.children():
            counts[e] = counts.get(e, 0) + 1
        for c in e.children():
            visit(c)

    for s in stmts:
        for e in _direct_exprs(s):
            visit(e)
    return counts


def _occurrences(e: Expr, sub: Expr) -> int:
    n = 1 if e == sub else 0
    for c in e.children():
        n += _occurrences(c, sub)
    return n


def _rewrite_direct(s: Stmt, fn) -> Stmt:
    """Rewrite only the directly evaluated expressions of *s* (nested
    blocks untouched — they are separate CSE scopes)."""
    if isinstance(s, Assign):
        return Assign(s.target, _map_expr_tree(s.value, fn))
    if isinstance(s, AugAssign):
        return AugAssign(
            s.target, s.op, _map_expr_tree(s.value, fn),
            None if s.index is None else _map_expr_tree(s.index, fn),
        )
    if isinstance(s, StoreStmt):
        return StoreStmt(
            s.array, tuple(_map_expr_tree(i, fn) for i in s.indices),
            _map_expr_tree(s.value, fn),
        )
    if isinstance(s, ReturnStmt):
        return ReturnStmt(
            None if s.value is None else _map_expr_tree(s.value, fn)
        )
    if isinstance(s, CallStmt):
        return CallStmt(s.func, tuple(_map_expr_tree(a, fn) for a in s.args))
    if isinstance(s, Alloc):
        return Alloc(
            s.name,
            None if s.size is None else _map_expr_tree(s.size, fn),
            None if s.init is None else _map_expr_tree(s.init, fn),
        )
    if isinstance(s, For):
        return For(s.var, _map_expr_tree(s.start, fn),
                   _map_expr_tree(s.end, fn), s.body)
    if isinstance(s, IfStmt):
        return IfStmt(_map_expr_tree(s.cond, fn), s.then, s.orelse)
    return s


def _find_run(stmts: list[Stmt], sub: Expr) -> tuple[int, int] | None:
    """First maximal statement range sharing ≥2 occurrences of *sub* with
    no interposed write to any name *sub* reads.  A statement may both
    read *sub* and write its dependencies (``t = max(t, gap)``): reads
    happen first, so its occurrences join the run, which ends after it."""
    deps = _names_read(sub)
    start = None
    occ = 0
    for i, s in enumerate(stmts):
        here = sum(_occurrences(e, sub) for e in _direct_exprs(s))
        if here:
            if start is None:
                start = i
            occ += here
        if _names_written(s) & deps:
            if occ >= 2:
                return (start, i)
            start, occ = None, 0
    if occ >= 2 and start is not None:
        return (start, len(stmts) - 1)
    return None


def _cse_scope(stmts: list[Stmt], counter) -> list[Stmt]:
    stmts = list(stmts)
    while True:
        counts = _count_subtrees(stmts)
        candidates = [e for e, c in counts.items() if c >= 2]
        candidates.sort(key=lambda e: (-sum(1 for _ in e.walk()), repr(e)))
        hoisted = False
        for sub in candidates:
            run = _find_run(stmts, sub)
            if run is None:
                continue
            lo, hi = run
            name = f"cse{next(counter)}"
            ref = SymRef(name)
            replace = lambda e, sub=sub, ref=ref: ref if e == sub else e
            for i in range(lo, hi + 1):
                stmts[i] = _rewrite_direct(stmts[i], replace)
            stmts.insert(lo, Assign(name, sub))
            hoisted = True
            break
        if not hoisted:
            return stmts


def _cse_block(block: Block, counter) -> Block:
    out: list[Stmt] = []
    for s in block.stmts:
        if isinstance(s, For):
            s = For(s.var, s.start, s.end, _cse_block(s.body, counter))
        elif isinstance(s, IfStmt):
            s = IfStmt(
                s.cond, _cse_block(s.then, counter),
                None if s.orelse is None else _cse_block(s.orelse, counter),
            )
        out.append(s)
    return Block(_cse_scope(out, counter))


def common_subexpression_eliminate(program: IRProgram) -> IRProgram:
    """Hoist repeated pure subexpressions into shared temporaries."""
    counter = itertools.count(1)
    return IRProgram(
        {
            name: IRFunction(fn.name, fn.params, _cse_block(fn.body, counter))
            for name, fn in program.functions.items()
        },
        dict(program.meta),
    )
