"""Dead-code elimination by liveness from layer outputs (section IV-F).

A value is live when it is reachable from an observable effect: injected
storage (the layer outputs), array stores, statement-level intrinsic
calls, returns, and accumulator updates into live targets.  Liveness is
computed as a fixpoint over the whole function — a chain of temporaries
feeding only a dead assignment dies with it, unlike the previous
single-sweep pass which kept any name that was merely *mentioned*.

Structure statements follow their contents: a loop or branch whose body
retains no effectful statement is dropped entirely (its bounds and
condition are pure).  Array allocations and comments are always kept —
arrays may be mutated through intrinsics the liveness model does not
trace, and comments carry the paper-figure annotations.
"""

from __future__ import annotations

from ..dsl.expr import Expr
from .nodes import (
    Alloc, Assign, AugAssign, Block, CallStmt, Comment, For, IfStmt,
    IRFunction, IRProgram, LoadExpr, ReturnStmt, Stmt, StoreStmt, SymRef,
)

__all__ = ["dead_code_eliminate"]


def _names_read(exprs) -> set[str]:
    out: set[str] = set()
    for e in exprs:
        for node in e.walk():
            if isinstance(node, SymRef):
                out.add(node.name)
            elif isinstance(node, LoadExpr):
                out.add(node.array)
    return out


def _is_output(name: str) -> bool:
    return name.startswith("storage")


def _stmt_live(s: Stmt, live: set[str]) -> bool:
    if isinstance(s, (StoreStmt, CallStmt, ReturnStmt)):
        return True
    if isinstance(s, Assign):
        return s.target in live or _is_output(s.target)
    if isinstance(s, AugAssign):
        return s.target in live or _is_output(s.target)
    if isinstance(s, Alloc):
        # Array allocations are always kept (mutated via intrinsics).
        return s.size is not None or s.name in live or _is_output(s.name)
    if isinstance(s, (For, IfStmt)):
        return any(
            _stmt_live(inner, live)
            for b in s.blocks() for inner in b.stmts
        )
    return False  # comments are handled separately


def _mark(fn: IRFunction) -> set[str]:
    """Fixpoint liveness: names read by any live statement."""
    live: set[str] = set()
    while True:
        new = set(live)
        for s in fn.body.walk():
            if isinstance(s, Comment):
                continue
            if _stmt_live(s, new):
                new |= _names_read(s.exprs())
        if new == live:
            return live
        live = new


def _sweep(block: Block, live: set[str]) -> Block:
    out: list[Stmt] = []
    for s in block.stmts:
        if isinstance(s, Comment):
            out.append(s)
            continue
        if isinstance(s, For):
            body = _sweep(s.body, live)
            if any(not isinstance(i, Comment) for i in body.stmts):
                out.append(For(s.var, s.start, s.end, body))
            continue
        if isinstance(s, IfStmt):
            then = _sweep(s.then, live)
            orelse = None if s.orelse is None else _sweep(s.orelse, live)
            kept_then = any(not isinstance(i, Comment) for i in then.stmts)
            kept_else = orelse is not None and any(
                not isinstance(i, Comment) for i in orelse.stmts
            )
            if kept_then or kept_else:
                out.append(IfStmt(s.cond, then, orelse))
            continue
        if _stmt_live(s, live):
            out.append(s)
    return Block(out)


def dead_code_eliminate(program: IRProgram) -> IRProgram:
    """Remove statements unreachable from layer outputs and effects."""

    def clean(fn: IRFunction) -> IRFunction:
        live = _mark(fn)
        return IRFunction(fn.name, fn.params, _sweep(fn.body, live))

    return IRProgram(
        {k: clean(f) for k, f in program.functions.items()},
        dict(program.meta),
    )
