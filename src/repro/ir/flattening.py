"""Flattening pass (paper section IV-C).

Rewrites multi-dimensional loads and stores into one-dimensional strided
accesses: ``load(A, i, d)`` becomes ``load(A, i·A.stride0 + d·A.stride1)``.
The strides are symbolic; their values are fixed by the layout the
compiler selected for each dataset (column-major for d ≤ 4, else
row-major — section IV-F), so the same flattened IR serves both layouts.
"""

from __future__ import annotations

from ..dsl.expr import BinOp, Const, Expr
from .nodes import IRProgram, LoadExpr, StoreStmt, SymRef, Stmt

__all__ = ["flatten"]


def _flat_index(array: str, indices: tuple[Expr, ...]) -> Expr:
    terms = [
        BinOp("*", idx, SymRef(f"{array}.stride{axis}"))
        for axis, idx in enumerate(indices)
    ]
    out = terms[0]
    for t in terms[1:]:
        out = BinOp("+", out, t)
    return out


def flatten(program: IRProgram) -> IRProgram:
    """Flatten every multi-index load/store in the program."""

    def rewrite_expr(e: Expr) -> Expr:
        if isinstance(e, LoadExpr) and len(e.indices) > 1:
            return LoadExpr(e.array, (_flat_index(e.array, e.indices),))
        return e

    def rewrite_stmt(s: Stmt):
        if isinstance(s, StoreStmt) and len(s.indices) > 1:
            return StoreStmt(s.array, (_flat_index(s.array, s.indices),), s.value)
        return s

    out = program.map_exprs(rewrite_expr)
    out = IRProgram(
        {k: f.map_stmts(rewrite_stmt) for k, f in out.functions.items()},
        dict(out.meta),
    )
    out.meta["flattened"] = True
    return out
