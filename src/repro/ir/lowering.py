"""Lowering: PortalExpr → Portal IR (paper sections IV-A and IV-B).

Synthesises the nested loops for the three traversal functions.  Loop
order follows the layer order (outermost layer → outermost loop); each
layer gets its injected storage initialised to the operator's identity
value, the kernel is lowered into the innermost loop, and each operator's
mathematical functionality is emitted at the end of its synthesised loop
(e.g. the comparison code that maintains a running minimum).

The lowered program contains four functions:

* ``BaseCase``      — leaf-pair point-to-point computation,
* ``PruneApprox``   — node-pair prune / approximate decision,
* ``ComputeApprox`` — the replacement computation when approximating,
* ``BruteForce``    — the same loop nest over whole datasets, kept for
  correctness checks (section IV).
"""

from __future__ import annotations

import math

from ..dsl.errors import CompileError
from ..dsl.expr import (
    BinOp, Call, Const, DimReduce, DistVar, Expr, Indicator, Neg, Var,
)
from ..dsl.funcs import MetricKernel
from ..dsl.layer import Layer
from ..dsl.ops import PortalOp, op_info
from ..rules import Classification, RuleSpec
from .nodes import (
    Alloc, Assign, AugAssign, Block, CallStmt, Comment, For, IfStmt, IRCall,
    IRFunction, IRProgram, LoadExpr, ReturnStmt, StoreStmt, SymRef,
)

__all__ = ["lower", "kernel_to_ir"]


def kernel_to_ir(g: Expr, t_name: str = "t") -> Expr:
    """Rewrite a normalised kernel body ``g`` into IR form.

    The distance variable becomes a :class:`SymRef`, surface ``Call``
    nodes become :class:`IRCall` nodes, and ``x ** c`` becomes
    ``pow(x, c)`` so the strength-reduction pass sees the canonical
    long-latency operations of section IV-E.
    """

    def rewrite(node: Expr) -> Expr:
        if isinstance(node, DistVar):
            return SymRef(t_name)
        if isinstance(node, Call):
            return IRCall(node.func, (rewrite(node.operand),))
        if isinstance(node, BinOp):
            lhs, rhs = rewrite(node.lhs), rewrite(node.rhs)
            if node.op == "**":
                return IRCall("pow", (lhs, rhs))
            return BinOp(node.op, lhs, rhs)
        if isinstance(node, Neg):
            return Neg(rewrite(node.operand))
        if isinstance(node, Indicator):
            return Indicator(node.op, rewrite(node.lhs), rewrite(node.rhs))
        if isinstance(node, (Const, SymRef)):
            return node
        if isinstance(node, DimReduce):
            raise CompileError(
                "unexpected unreduced vector expression in normalised kernel"
            )
        return node

    return rewrite(g)


def _distance_loop(base: str, qdata: str, rdata: str, qv: str, rv: str) -> list:
    """IR statements computing base-distance ``t`` between points ``qv`` of
    ``qdata`` and ``rv`` of ``rdata`` (the innermost dimension loop of
    Fig. 2)."""
    d = SymRef("d")
    diff = BinOp(
        "-", LoadExpr(qdata, (SymRef(qv), d)), LoadExpr(rdata, (SymRef(rv), d))
    )
    if base == "sqeuclidean":
        update = AugAssign("t", "+", IRCall("pow", (diff, Const(2.0))))
    elif base == "manhattan":
        update = AugAssign("t", "+", IRCall("abs", (diff,)))
    elif base == "chebyshev":
        update = Assign("t", IRCall("max", (SymRef("t"), IRCall("abs", (diff,)))))
    else:  # pragma: no cover
        raise CompileError(f"unknown base metric {base!r}")
    return [
        Alloc("t", init=Const(0.0)),
        For("d", Const(0), SymRef("dim"), Block([update])),
    ]


def _mahalanobis_stmts(qdata: str, rdata: str, qv: str, rv: str) -> list:
    """Pre-numerical-optimisation Mahalanobis lowering (Fig. 3 blue box):
    the naive form with the explicit inverse covariance."""
    return [
        Comment("Mahalanobis distance (naive: inverse covariance, O(m^3))"),
        Assign(
            "y",
            IRCall(
                "point_diff",
                (SymRef(f"{qdata}_rows"), SymRef(qv),
                 SymRef(f"{rdata}_rows"), SymRef(rv)),
            ),
        ),
        Assign("t", IRCall("mahalanobis", (SymRef("y"), SymRef("Sigma")))),
    ]


def _inner_init(layer: Layer) -> list:
    """Storage injection for an inner reduction layer (section IV-B)."""
    info = layer.info
    stmts = [Comment("Storage injection for inner layer")]
    if layer.op is PortalOp.FORALL:
        stmts.append(Alloc("storage1", size=SymRef(f"{layer.storage.name}.size")))
    elif layer.op in (PortalOp.UNION, PortalOp.UNIONARG):
        stmts.append(Alloc("storage1", size=SymRef("dynamic")))
    elif info.requires_k:
        stmts.append(
            Alloc("storage1", size=Const(layer.k), init=Const(info.identity))
        )
        if info.returns_index:
            stmts.append(Alloc("storage1_arg", size=Const(layer.k), init=Const(-1)))
    else:
        stmts.append(Alloc("storage1", init=Const(info.identity)))
        if info.returns_index:
            stmts.append(Alloc("storage1_arg", init=Const(-1)))
    return stmts


def _inner_update(layer: Layer, rv: str) -> list:
    """The operator's mathematical functionality at the end of the
    synthesised reference loop (section IV-A)."""
    k = SymRef("kval")
    r = SymRef(rv)
    op = layer.op
    if op is PortalOp.FORALL:
        return [StoreStmt("storage1", (r,), k)]
    if op is PortalOp.SUM:
        return [AugAssign("storage1", "+", k)]
    if op is PortalOp.PROD:
        return [AugAssign("storage1", "*", k)]
    if op is PortalOp.MIN:
        return [IfStmt(Indicator("<", k, SymRef("storage1")),
                       Block([Assign("storage1", k)]))]
    if op is PortalOp.MAX:
        return [IfStmt(Indicator(">", k, SymRef("storage1")),
                       Block([Assign("storage1", k)]))]
    if op is PortalOp.ARGMIN:
        return [IfStmt(Indicator("<", k, SymRef("storage1")),
                       Block([Assign("storage1", k), Assign("storage1_arg", r)]))]
    if op is PortalOp.ARGMAX:
        return [IfStmt(Indicator(">", k, SymRef("storage1")),
                       Block([Assign("storage1", k), Assign("storage1_arg", r)]))]
    if op in (PortalOp.KMIN, PortalOp.KARGMIN):
        return [CallStmt("sorted_insert_asc", (SymRef("storage1"),
                                               SymRef("storage1_arg"), k, r))]
    if op in (PortalOp.KMAX, PortalOp.KARGMAX):
        return [CallStmt("sorted_insert_desc", (SymRef("storage1"),
                                                SymRef("storage1_arg"), k, r))]
    if op is PortalOp.UNION:
        return [IfStmt(Indicator(">", k, Const(0.0)),
                       Block([CallStmt("append", (SymRef("storage1"), k))]))]
    if op is PortalOp.UNIONARG:
        return [IfStmt(Indicator(">", k, Const(0.0)),
                       Block([CallStmt("append", (SymRef("storage1"), r))]))]
    raise CompileError(f"inner operator {op.name} has no lowering template")


def _outer_init(layer: Layer) -> list:
    info = layer.info
    stmts = [Comment("Storage injection for outer layer")]
    if layer.op is PortalOp.FORALL:
        stmts.append(Alloc("storage0", size=SymRef(f"{layer.storage.name}.size")))
    elif info.identity is not None:
        stmts.append(Alloc("storage0", init=Const(info.identity)))
    else:
        raise CompileError(
            f"outer operator {layer.op.name} has no lowering template"
        )
    return stmts


def _outer_merge(layer: Layer, inner: Layer, qv: str) -> list:
    """Merge the inner layer's result into the outer storage at the end of
    the query loop."""
    # Union filters and inner FORALL collect into storage1 directly; arg
    # reductions expose their index companion.
    if inner.op in (PortalOp.UNION, PortalOp.UNIONARG, PortalOp.FORALL):
        result = SymRef("storage1")
    else:
        result = SymRef("storage1_arg" if inner.info.returns_index else "storage1")
    q = SymRef(qv)
    op = layer.op
    if op is PortalOp.FORALL:
        if inner.info.requires_k or inner.op in (
            PortalOp.UNION, PortalOp.UNIONARG, PortalOp.FORALL,
        ):
            return [CallStmt("store_row", (SymRef("storage0"), q, result))]
        return [StoreStmt("storage0", (q,), result)]
    if op is PortalOp.SUM:
        return [AugAssign("storage0", "+", SymRef("storage1"))]
    if op is PortalOp.PROD:
        return [AugAssign("storage0", "*", SymRef("storage1"))]
    if op is PortalOp.MIN:
        return [IfStmt(Indicator("<", SymRef("storage1"), SymRef("storage0")),
                       Block([Assign("storage0", SymRef("storage1"))]))]
    if op is PortalOp.MAX:
        return [IfStmt(Indicator(">", SymRef("storage1"), SymRef("storage0")),
                       Block([Assign("storage0", SymRef("storage1"))]))]
    raise CompileError(f"outer operator {op.name} has no lowering template")


def _base_case(
    layers: list[Layer], kernel: MetricKernel | None, names: dict
) -> IRFunction:
    outer, inner = layers[0], layers[-1]
    qv, rv = names["qvar"], names["rvar"]
    qdata, rdata = names["qdata"], names["rdata"]

    if kernel is None:
        kernel_stmts = [
            Comment("external kernel: not lowered, linked at codegen"),
            Assign("kval", IRCall("external_kernel",
                                  (SymRef(qdata), SymRef(qv),
                                   SymRef(rdata), SymRef(rv)))),
        ]
    elif kernel.whiten:
        kernel_stmts = _mahalanobis_stmts(qdata, rdata, qv, rv)
        g_ir = kernel_to_ir(kernel.g)
        kernel_stmts.append(
            Assign("kval", g_ir) if not isinstance(g_ir, SymRef)
            else Assign("kval", SymRef("t"))
        )
    else:
        kernel_stmts = [Comment("Lowering the kernel function")]
        kernel_stmts += _distance_loop(kernel.base, qdata, rdata, qv, rv)
        g_ir = kernel_to_ir(kernel.g)
        kernel_stmts.append(Assign("kval", g_ir))

    ref_loop = For(
        rv, SymRef(f"{names['rname']}.start"), SymRef(f"{names['rname']}.end"),
        Block(kernel_stmts + _inner_update(inner, rv)),
    )
    query_body = Block(
        _inner_init(inner) + [ref_loop] + _outer_merge(outer, inner, qv)
    )
    body = Block(
        _outer_init(outer)
        + [For(qv, SymRef(f"{names['qname']}.start"),
               SymRef(f"{names['qname']}.end"), query_body)]
    )
    return IRFunction("BaseCase", (names["qname"], names["rname"]), body)


def _box_distance_stmts(base: str, which: str) -> list:
    """IR computing ``tmin`` or ``tmax`` between node boxes N1 and N2 from
    bounding-box metadata (Fig. 2 right: Portal uses tree metadata such as
    min/max/center without touching points)."""
    d = SymRef("d")
    if which == "min":
        gap = IRCall(
            "max",
            (Const(0.0),
             IRCall("max",
                    (BinOp("-", LoadExpr("N2_min", (d,)), LoadExpr("N1_max", (d,))),
                     BinOp("-", LoadExpr("N1_min", (d,)), LoadExpr("N2_max", (d,)))))),
        )
        name = "tmin"
    else:
        gap = IRCall(
            "max",
            (BinOp("-", LoadExpr("N2_max", (d,)), LoadExpr("N1_min", (d,))),
             BinOp("-", LoadExpr("N1_max", (d,)), LoadExpr("N2_min", (d,)))),
        )
        name = "tmax"
    if base == "sqeuclidean":
        update = AugAssign(name, "+", IRCall("pow", (gap, Const(2.0))))
    elif base == "manhattan":
        update = AugAssign(name, "+", gap)
    else:  # chebyshev
        update = Assign(name, IRCall("max", (SymRef(name), gap)))
    return [
        Alloc(name, init=Const(0.0)),
        For("d", Const(0), SymRef("dim"), Block([update])),
    ]


def _g_of(kernel: MetricKernel, t_sym: str) -> Expr:
    g_ir = kernel_to_ir(kernel.g, t_name=t_sym)
    return g_ir


def _prune_approx(
    kernel: MetricKernel | None, rule: RuleSpec, names: dict
) -> IRFunction:
    stmts: list = [
        Comment("Prune/Approximate condition for nodes N1 (query) and "
                "N2 (reference)")
    ]
    base = kernel.base if kernel is not None else "sqeuclidean"
    if rule.kind == "none":
        stmts.append(Comment("no pruning/approximation opportunity"))
        stmts.append(ReturnStmt(Const(0.0)))
    elif rule.kind == "bound-min":
        stmts += _box_distance_stmts(base, "min")
        stmts += _box_distance_stmts(base, "max")
        stmts.append(Assign("g_lo", IRCall(
            "band_lo", (_g_of(kernel, "tmin"), _g_of(kernel, "tmax")))))
        stmts.append(Comment("B(N1): largest current retained value in N1"))
        stmts.append(Assign("bound", IRCall("node_bound", (SymRef("N1"),))))
        stmts.append(ReturnStmt(Indicator(">", SymRef("g_lo"), SymRef("bound"))))
    elif rule.kind == "bound-max":
        stmts += _box_distance_stmts(base, "min")
        stmts += _box_distance_stmts(base, "max")
        stmts.append(Assign("g_hi", IRCall(
            "band_hi", (_g_of(kernel, "tmin"), _g_of(kernel, "tmax")))))
        stmts.append(Comment("B(N1): smallest current retained value in N1"))
        stmts.append(Assign("bound", IRCall("node_bound", (SymRef("N1"),))))
        stmts.append(ReturnStmt(Indicator("<", SymRef("g_hi"), SymRef("bound"))))
    elif rule.kind == "indicator":
        h = Const(rule.indicator_h)
        stmts += _box_distance_stmts(base, "min")
        stmts += _box_distance_stmts(base, "max")
        # Entirely outside the satisfying region -> prune (contribute 0);
        # entirely inside -> closed-form contribution in ComputeApprox.
        neg = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}[rule.indicator_op]
        stmts.append(IfStmt(Indicator(neg, SymRef("tmin"), h),
                            Block([ReturnStmt(Const(1.0))])))
        if rule.inside_action is not None:
            stmts.append(IfStmt(Indicator(rule.indicator_op, SymRef("tmax"), h),
                                Block([ReturnStmt(Const(1.0))])))
        stmts.append(ReturnStmt(Const(0.0)))
    elif rule.kind == "approx":
        if rule.criterion == "band":
            stmts += _box_distance_stmts(base, "min")
            stmts += _box_distance_stmts(base, "max")
            stmts.append(Assign("g_hi", IRCall(
                "band_hi", (_g_of(kernel, "tmin"), _g_of(kernel, "tmax")))))
            stmts.append(Assign("g_lo", IRCall(
                "band_lo", (_g_of(kernel, "tmin"), _g_of(kernel, "tmax")))))
            stmts.append(ReturnStmt(Indicator(
                "<=", BinOp("-", SymRef("g_hi"), SymRef("g_lo")),
                Const(rule.tau))))
        else:  # mac
            stmts += _box_distance_stmts(base, "min")
            stmts.append(Comment("multipole acceptance: diameter/distance <= θ"))
            stmts.append(ReturnStmt(Indicator(
                "<=",
                BinOp("/", IRCall("node_diameter", (SymRef("N2"),)),
                      IRCall("sqrt", (SymRef("tmin"),))),
                Const(rule.theta))))
    else:  # pragma: no cover
        raise CompileError(f"unknown rule kind {rule.kind!r}")
    return IRFunction("PruneApprox", ("N1", "N2"), Block(stmts))


def _compute_approx(
    layers: list[Layer], kernel: MetricKernel | None, rule: RuleSpec,
    names: dict, classification: Classification,
) -> IRFunction:
    stmts: list = []
    params = ("N1", "N2")
    if rule.kind == "none" and not classification.is_pruning:
        stmts.append(Comment("no approximation rule generated (brute force)"))
        stmts.append(ReturnStmt(Const(0.0)))
        return IRFunction("ComputeApprox", ("N1", "N2"), Block(stmts))
    if classification.is_pruning and rule.kind in ("none", "bound-min", "bound-max"):
        stmts.append(Comment(
            f"{names['problem']} is a pruning problem, hence there is no "
            "approximation"))
        stmts.append(ReturnStmt(Const(0.0)))
    elif rule.kind == "indicator":
        stmts.append(Comment("closed-form contribution for all-inside pairs "
                             "(0 for all-outside pairs)"))
        if rule.inside_action == "count_product":
            # The traversal driver passes the node-pair max distance in;
            # declare it so the IR verifier sees a defined name.
            params = ("N1", "N2", "tmax")
            stmts.append(IfStmt(
                Indicator(rule.indicator_op, SymRef("tmax"),
                          Const(rule.indicator_h)),
                Block([AugAssign("storage0", "+",
                                 BinOp("*", IRCall("node_count", (SymRef("N1"),)),
                                       IRCall("node_count", (SymRef("N2"),))))])))
        elif rule.inside_action == "count_per_query":
            stmts.append(For("q", SymRef("N1.start"), SymRef("N1.end"), Block([
                AugAssign("storage0", "+", IRCall("node_count", (SymRef("N2"),)),
                          index=SymRef("q")),
            ])))
        elif rule.inside_action == "append_all":
            stmts.append(For("q", SymRef("N1.start"), SymRef("N1.end"), Block([
                CallStmt("append_range",
                         (SymRef("storage0"), SymRef("q"),
                          SymRef("N2.start"), SymRef("N2.end"))),
            ])))
        stmts.append(ReturnStmt(Const(0.0)))
    else:  # approximation problems
        stmts.append(Comment(
            "center contribution of the node times its density "
            "(center of mass for weighted data)"))
        g_center = _g_of(kernel, "t_center")
        stmts.append(For("q", SymRef("N1.start"), SymRef("N1.end"), Block([
            Assign("t_center", IRCall(
                "point_node_center_dist",
                (SymRef(names["qdata"]), SymRef("q"), SymRef("N2")))),
            AugAssign("storage0", "+",
                      BinOp("*", IRCall("node_weight", (SymRef("N2"),)), g_center),
                      index=SymRef("q")),
        ])))
    return IRFunction("ComputeApprox", params, Block(stmts))


def _rename_storage(stmts: list, mapping: dict) -> list:
    """Rename storage targets and references in *stmts* (recursing into
    nested blocks) — used by the m-layer lowering to give each level its
    own accumulator."""

    def fix_expr(e: Expr) -> Expr:
        if isinstance(e, SymRef) and e.name in mapping:
            return SymRef(mapping[e.name])
        return e

    def fix_stmt(s):
        if isinstance(s, Alloc) and s.name in mapping:
            return Alloc(mapping[s.name], s.size, s.init)
        if isinstance(s, Assign) and s.target in mapping:
            return Assign(mapping[s.target], s.value)
        if isinstance(s, AugAssign) and s.target in mapping:
            return AugAssign(mapping[s.target], s.op, s.value, s.index)
        if isinstance(s, StoreStmt) and s.array in mapping:
            return StoreStmt(mapping[s.array], s.indices, s.value)
        return s

    return list(Block(stmts).map_exprs(fix_expr).map_stmts(fix_stmt).stmts)


def _base_case_multilayer(layers: list[Layer]) -> IRFunction:
    """Loop-nest lowering for m ≥ 3 layers (the general form of
    equation 2): one loop per layer, outermost first, with the kernel
    evaluated over the m layer variables at the innermost level and each
    operator's update emitted at the end of its loop."""
    m = len(layers)
    names = [l.storage.name for l in layers]
    vars_ = [l.var.name if l.var is not None else f"i{i}"
             for i, l in enumerate(layers)]

    kernel_args = tuple(
        IRCall("point_of", (SymRef(f"{names[i]}_rows"), SymRef(vars_[i])))
        for i in range(m)
    )
    body: list = [
        Comment("kernel over the m layer variables"),
        Assign("kval", IRCall("kernel_eval", kernel_args)),
    ]
    # Innermost-out: each layer's reduction update wraps the loop below.
    for i in range(m - 1, 0, -1):
        layer = layers[i]
        # Rename the per-level storages so levels don't collide: level i
        # accumulates into storage<i> (level 1 keeps the two-layer name).
        acc = f"storage{i}"
        mapping = {"storage1": acc, "storage1_arg": f"{acc}_arg"}
        update = _rename_storage(_inner_update(layer, vars_[i]), mapping)
        init = _rename_storage(_inner_init(layer), mapping)
        inner_stmts = body + update
        loop = For(vars_[i], SymRef(f"{names[i]}.start"),
                   SymRef(f"{names[i]}.end"), Block(inner_stmts))
        body = (
            [Comment(f"layer {i}: {layer.op.name} over {names[i]}")]
            + init + [loop]
        )
        if i > 1:
            body += [Assign("kval", SymRef(acc))]
    outer = layers[0]
    query_body = Block(body + _outer_merge(outer, layers[1], vars_[0]))
    full = Block(
        _outer_init(outer)
        + [For(vars_[0], SymRef(f"{names[0]}.start"),
               SymRef(f"{names[0]}.end"), query_body)]
    )
    return IRFunction("BaseCase", tuple(names), full)


def lower(
    layers: list[Layer],
    kernel: MetricKernel | None,
    classification: Classification,
    rule: RuleSpec,
    problem_name: str = "problem",
) -> IRProgram:
    """Lower a validated Portal problem to the initial IR stage.

    Two-layer problems get the full treatment of Figs 2–3; problems with
    m ≥ 3 layers lower to the generalized loop nest with a schematic
    kernel call (they execute through the dense multi-layer backend).
    """
    if len(layers) > 2:
        base = _base_case_multilayer(layers)
        prune = IRFunction("PruneApprox", ("N1", "N2"), Block([
            Comment("m-layer programs run the dense backend: no "
                    "prune/approximate rule generated"),
            ReturnStmt(Const(0.0)),
        ]))
        approx = IRFunction("ComputeApprox", ("N1", "N2"), Block([
            ReturnStmt(Const(0.0)),
        ]))
        return IRProgram(
            functions={"BaseCase": base, "PruneApprox": prune,
                       "ComputeApprox": approx,
                       "BruteForce": IRFunction("BruteForce", base.params,
                                                base.body)},
            meta={"dim": layers[0].storage.dim,
                  "classification": classification, "rule": rule,
                  "base": None, "problem": problem_name, "m": len(layers)},
        )
    if len(layers) != 2:
        raise CompileError(
            f"an N-body problem needs at least two layers; got {len(layers)}"
        )
    outer, inner = layers
    names = {
        "qvar": outer.var.name if outer.var is not None else "q",
        "rvar": inner.var.name if inner.var is not None else "r",
        "qname": outer.storage.name,
        "rname": inner.storage.name,
        "qdata": f"{outer.storage.name}_data",
        "rdata": f"{inner.storage.name}_data",
        "problem": problem_name,
    }
    base_case = _base_case(layers, kernel, names)
    prune = _prune_approx(kernel, rule, names)
    approx = _compute_approx(layers, kernel, rule, names, classification)
    brute = IRFunction("BruteForce", base_case.params, base_case.body)
    return IRProgram(
        functions={
            "BaseCase": base_case,
            "PruneApprox": prune,
            "ComputeApprox": approx,
            "BruteForce": brute,
        },
        meta={
            "names": names,
            "dim": outer.storage.dim,
            "classification": classification,
            "rule": rule,
            "base": kernel.base if kernel is not None else None,
            "problem": problem_name,
        },
    )
