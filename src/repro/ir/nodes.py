"""Portal IR: the imperative intermediate representation (paper Figs 1–3).

The IR is a small statement language over the symbolic expression nodes of
:mod:`repro.dsl.expr`, extended with three IR-only leaves:

* :class:`SymRef` — reference to a scalar temporary or parameter,
* :class:`LoadExpr` — (possibly multi-dimensional) array load; the
  flattening pass rewrites multi-index loads into one-dimensional strided
  loads (paper section IV-C),
* :class:`IRCall` — call of an IR-level function (``pow``, ``sqrt``,
  ``fast_inverse_sqrt``, ``cholesky``, ``forward_sub``, ...), the nodes
  the numerical-optimisation and strength-reduction passes rewrite.

Statements form :class:`Block` trees inside :class:`IRFunction`; a
compiled problem is an :class:`IRProgram` holding the three traversal
functions (BaseCase, Prune/Approximate, ComputeApprox) plus the
brute-force variant used for correctness checks (section IV).

Passes use the uniform ``map_exprs`` / ``map_blocks`` traversal helpers so
each optimisation is a ~50-line tree rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..dsl.expr import Const, Expr

__all__ = [
    "SymRef", "LoadExpr", "IRCall",
    "Stmt", "Block", "Alloc", "For", "Assign", "AugAssign", "StoreStmt",
    "IfStmt", "ReturnStmt", "Comment", "CallStmt",
    "IRFunction", "IRProgram",
]


# ---------------------------------------------------------------------------
# IR-only expression leaves
# ---------------------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class SymRef(Expr):
    """Reference to a scalar temporary, loop variable or parameter."""

    name: str = ""
    shape: str = field(default="scalar")

    def _key(self):
        return (self.name,)

    def evaluate(self, env):
        return env[self.name]

    def __repr__(self):
        return self.name


@dataclass(frozen=True, eq=False)
class LoadExpr(Expr):
    """Array load ``load(array, i, j, ...)``.

    Multi-index loads are produced by lowering and rewritten by the
    flattening pass into single-index loads whose index expression folds
    the strides in.
    """

    array: str = ""
    indices: tuple[Expr, ...] = ()
    shape: str = field(default="scalar")

    def children(self):
        return self.indices

    def _rebuild(self, children):
        return LoadExpr(self.array, tuple(children))

    def _key(self):
        return (self.array, len(self.indices))

    def evaluate(self, env):
        arr = env[self.array]
        idx = tuple(int(i.evaluate(env)) for i in self.indices)
        return arr[idx if len(idx) > 1 else idx[0]]

    def __repr__(self):
        idx = ",".join(repr(i) for i in self.indices)
        return f"load({self.array},{idx})"


#: Functions callable from the IR, with reference implementations used by
#: the interpreter backend.
IR_FUNCS: dict[str, Callable] = {}


def _register_ir_funcs():
    from scipy.linalg import cholesky as _chol, solve_triangular

    from ..backend import fastmath

    IR_FUNCS.update(
        {
            "pow": lambda x, n: x ** n,
            "sqrt": np.sqrt,
            "exp": np.exp,
            "log": np.log,
            "abs": np.abs,
            "min": lambda a, b: np.minimum(a, b),
            "max": lambda a, b: np.maximum(a, b),
            "fast_inverse_sqrt": fastmath.fast_inverse_sqrt,
            "cholesky": lambda S: _chol(S, lower=True),
            "forward_sub": lambda L, y: solve_triangular(L, y, lower=True),
            "dot": np.dot,
            # dot(x, x) after the simplify pass: same product, one read.
            "sqnorm": lambda v: np.dot(v, v),
            # Dense Mahalanobis form: replaced by the numerical-optimisation
            # pass; kept executable so pre-pass IR is still interpretable.
            "mahalanobis": lambda y, S: float(y @ np.linalg.inv(S) @ y),
        }
    )


@dataclass(frozen=True, eq=False)
class IRCall(Expr):
    """Call of an IR-level function by name."""

    func: str = ""
    args: tuple[Expr, ...] = ()
    shape: str = field(default="scalar")

    def children(self):
        return self.args

    def _rebuild(self, children):
        return IRCall(self.func, tuple(children))

    def _key(self):
        return (self.func, len(self.args))

    def evaluate(self, env):
        if not IR_FUNCS:
            _register_ir_funcs()
        fn = IR_FUNCS.get(self.func)
        if fn is None:
            fn = env.get(self.func)
        if fn is None:
            raise KeyError(f"unknown IR function {self.func!r}")
        return fn(*(a.evaluate(env) for a in self.args))

    def __repr__(self):
        return f"{self.func}({', '.join(repr(a) for a in self.args)})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class for IR statements."""

    def exprs(self) -> tuple[Expr, ...]:
        """Direct expression operands of this statement."""
        return ()

    def blocks(self) -> tuple["Block", ...]:
        """Nested statement blocks."""
        return ()

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> "Stmt":
        """Return a copy with every expression operand rewritten by *fn*
        (recursing into nested blocks)."""
        return self

    def walk(self) -> Iterator["Stmt"]:
        yield self
        for b in self.blocks():
            for s in b.stmts:
                yield from s.walk()


def _map_expr_tree(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Bottom-up expression rewrite."""
    rebuilt = expr._rebuild([_map_expr_tree(c, fn) for c in expr.children()])
    return fn(rebuilt)


@dataclass
class Block:
    stmts: list[Stmt] = field(default_factory=list)

    def map_exprs(self, fn) -> "Block":
        return Block([s.map_exprs(fn) for s in self.stmts])

    def map_stmts(self, fn: Callable[[Stmt], list[Stmt] | Stmt | None]) -> "Block":
        """Rewrite statements (None drops, list splices), recursing first."""
        out: list[Stmt] = []
        for s in self.stmts:
            if isinstance(s, For):
                s = For(s.var, s.start, s.end, s.body.map_stmts(fn))
            elif isinstance(s, IfStmt):
                s = IfStmt(
                    s.cond, s.then.map_stmts(fn),
                    None if s.orelse is None else s.orelse.map_stmts(fn),
                )
            r = fn(s)
            if r is None:
                continue
            out.extend(r if isinstance(r, list) else [r])
        return Block(out)

    def walk(self) -> Iterator[Stmt]:
        for s in self.stmts:
            yield from s.walk()


@dataclass
class Comment(Stmt):
    text: str = ""


@dataclass
class Alloc(Stmt):
    """Storage injection: ``alloc name[size] = init`` (section IV-B)."""

    name: str = ""
    size: Expr | None = None  # None => scalar temporary
    init: Expr | None = None

    def exprs(self):
        return tuple(e for e in (self.size, self.init) if e is not None)

    def map_exprs(self, fn):
        return Alloc(
            self.name,
            None if self.size is None else _map_expr_tree(self.size, fn),
            None if self.init is None else _map_expr_tree(self.init, fn),
        )


@dataclass
class For(Stmt):
    """``for var in start ... end`` — implicit stride 1 (section IV-A)."""

    var: str = "i"
    start: Expr = None  # type: ignore[assignment]
    end: Expr = None  # type: ignore[assignment]
    body: Block = field(default_factory=Block)

    def exprs(self):
        return (self.start, self.end)

    def blocks(self):
        return (self.body,)

    def map_exprs(self, fn):
        return For(
            self.var, _map_expr_tree(self.start, fn),
            _map_expr_tree(self.end, fn), self.body.map_exprs(fn),
        )


@dataclass
class Assign(Stmt):
    target: str = ""
    value: Expr = None  # type: ignore[assignment]

    def exprs(self):
        return (self.value,)

    def map_exprs(self, fn):
        return Assign(self.target, _map_expr_tree(self.value, fn))


@dataclass
class AugAssign(Stmt):
    """``target op= value`` — the loop-end reduction updates."""

    target: str = ""
    op: str = "+"
    value: Expr = None  # type: ignore[assignment]
    #: Optional store index when the target is an array cell.
    index: Expr | None = None

    def exprs(self):
        return (self.value,) + ((self.index,) if self.index is not None else ())

    def map_exprs(self, fn):
        return AugAssign(
            self.target, self.op, _map_expr_tree(self.value, fn),
            None if self.index is None else _map_expr_tree(self.index, fn),
        )


@dataclass
class StoreStmt(Stmt):
    array: str = ""
    indices: tuple[Expr, ...] = ()
    value: Expr = None  # type: ignore[assignment]

    def exprs(self):
        return self.indices + (self.value,)

    def map_exprs(self, fn):
        return StoreStmt(
            self.array,
            tuple(_map_expr_tree(i, fn) for i in self.indices),
            _map_expr_tree(self.value, fn),
        )


@dataclass
class IfStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = field(default_factory=Block)
    orelse: Block | None = None

    def exprs(self):
        return (self.cond,)

    def blocks(self):
        return (self.then,) + ((self.orelse,) if self.orelse is not None else ())

    def map_exprs(self, fn):
        return IfStmt(
            _map_expr_tree(self.cond, fn),
            self.then.map_exprs(fn),
            None if self.orelse is None else self.orelse.map_exprs(fn),
        )


@dataclass
class CallStmt(Stmt):
    """Statement-level call (e.g. ``sorted_insert`` for K* filters)."""

    func: str = ""
    args: tuple[Expr, ...] = ()

    def exprs(self):
        return self.args

    def map_exprs(self, fn):
        return CallStmt(self.func, tuple(_map_expr_tree(a, fn) for a in self.args))


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None

    def exprs(self):
        return (self.value,) if self.value is not None else ()

    def map_exprs(self, fn):
        return ReturnStmt(
            None if self.value is None else _map_expr_tree(self.value, fn)
        )


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------

@dataclass
class IRFunction:
    """One of the traversal functions in IR form."""

    name: str
    params: tuple[str, ...]
    body: Block

    def map_exprs(self, fn) -> "IRFunction":
        return IRFunction(self.name, self.params, self.body.map_exprs(fn))

    def map_stmts(self, fn) -> "IRFunction":
        return IRFunction(self.name, self.params, self.body.map_stmts(fn))


@dataclass
class IRProgram:
    """The IR of a full Portal problem at one compiler stage.

    ``functions`` holds BaseCase / PruneApprox / ComputeApprox (and
    BruteForce); ``meta`` records problem classification and layer info
    the backend needs.
    """

    functions: dict[str, IRFunction]
    meta: dict = field(default_factory=dict)

    def map_exprs(self, fn) -> "IRProgram":
        return IRProgram(
            {k: f.map_exprs(fn) for k, f in self.functions.items()},
            dict(self.meta),
        )

    def __getitem__(self, name: str) -> IRFunction:
        return self.functions[name]


def const(v: float) -> Const:
    return Const(float(v))
