"""Numerical-optimisation pass (paper section IV-D).

Rewrites the naive Mahalanobis distance

    t = (x_q − μ_r)ᵀ Σ⁻¹ (x_q − μ_r)        — O(m³) matrix inverse

into the Cholesky / forward-substitution form

    L = cholesky(Σ)          (hoisted to the function entry: Σ is loop
                              invariant, so L is computed once)
    x = forward_sub(L, y)    where y = x_q − μ_r
    t = xᵀ x                 — O(m²/2)

exploiting that a covariance matrix is symmetric positive semi-definite.
About 60 % of the statistical-inference N-body problems surveyed by the
paper contain a Mahalanobis form, which is why this domain-specific pass
exists.
"""

from __future__ import annotations

from .nodes import Assign, Block, Comment, IRCall, IRFunction, IRProgram, SymRef, Stmt

__all__ = ["numerical_optimize"]


def _rewrite_function(fn: IRFunction) -> tuple[IRFunction, bool]:
    changed = [False]

    def rewrite(s: Stmt):
        if (
            isinstance(s, Assign)
            and isinstance(s.value, IRCall)
            and s.value.func == "mahalanobis"
        ):
            changed[0] = True
            y, sigma = s.value.args
            return [
                Comment("numerical optimisation: Cholesky + forward "
                        "substitution (O(m^2/2))"),
                Assign("x_solved", IRCall("forward_sub", (SymRef("L_Sigma"), y))),
                Assign(s.target, IRCall("dot", (SymRef("x_solved"),
                                                SymRef("x_solved")))),
            ]
        return s

    body = fn.body.map_stmts(rewrite)
    if changed[0]:
        hoist = [
            Comment("loop-invariant: factorise the covariance once"),
            Assign("L_Sigma", IRCall("cholesky", (SymRef("Sigma"),))),
        ]
        body = Block(hoist + body.stmts)
    return IRFunction(fn.name, fn.params, body), changed[0]


def numerical_optimize(program: IRProgram) -> IRProgram:
    """Apply the Mahalanobis rewrite to every function of the program."""
    functions = {}
    any_changed = False
    for name, fn in program.functions.items():
        fn2, changed = _rewrite_function(fn)
        functions[name] = fn2
        any_changed |= changed
    out = IRProgram(functions, dict(program.meta))
    out.meta["numerical_optimized"] = any_changed
    return out
