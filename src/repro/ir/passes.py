"""Standard passes and the pass manager (paper sections IV and IV-F).

The manager runs the pipeline of Fig. 1 —

    Lowering & Storage Injection → Flattening → Numerical Optimization →
    Strength Reduction → standard cleanups (constant folding, DCE) →
    Code Generation

— and keeps the IR snapshot after every stage so Figs 2 and 3 (the
per-stage IR dumps for nearest neighbor and KDE) can be regenerated.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..dsl.expr import BinOp, Const, Expr, Neg
from ..observe import contribute, span
from .flattening import flatten
from .nodes import (
    Alloc, Assign, IRCall, IRFunction, IRProgram, Stmt, SymRef,
)
from .numerical_opt import numerical_optimize
from .strength_reduction import strength_reduce

__all__ = [
    "constant_fold", "dead_code_eliminate", "common_subexpression_eliminate",
    "PassManager", "PIPELINE_STAGES", "TOGGLEABLE_PASSES",
]

#: Ordered stage names of the compiler pipeline (Fig. 1).
PIPELINE_STAGES = (
    "lowered", "flattened", "numopt", "strength", "final",
)

#: Optimisation passes that may be disabled individually (flattening is
#: not optional: the backends address flattened 1-D strided storage).
TOGGLEABLE_PASSES = ("numopt", "strength", "fold", "cse", "dce")

_FOLDABLE = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "abs": abs,
    "pow": lambda x, n: x ** n,
    "max": max,
    "min": min,
}


def constant_fold(program: IRProgram) -> IRProgram:
    """Evaluate constant sub-expressions and apply algebraic identities."""

    def fold(e: Expr) -> Expr:
        if isinstance(e, Neg) and isinstance(e.operand, Const):
            return Const(-e.operand.value)
        if isinstance(e, BinOp):
            a, b = e.lhs, e.rhs
            if isinstance(a, Const) and isinstance(b, Const):
                try:
                    return Const({
                        "+": a.value + b.value,
                        "-": a.value - b.value,
                        "*": a.value * b.value,
                        "/": a.value / b.value if b.value != 0 else math.inf,
                        "**": a.value ** b.value,
                    }[e.op])
                except (OverflowError, ValueError):
                    return e
            # Identities: x*1, 1*x, x+0, 0+x, x-0, x/1.
            if e.op == "*" and isinstance(b, Const) and b.value == 1.0:
                return a
            if e.op == "*" and isinstance(a, Const) and a.value == 1.0:
                return b
            if e.op == "+" and isinstance(b, Const) and b.value == 0.0:
                return a
            if e.op == "+" and isinstance(a, Const) and a.value == 0.0:
                return b
            if e.op == "-" and isinstance(b, Const) and b.value == 0.0:
                return a
            if e.op == "/" and isinstance(b, Const) and b.value == 1.0:
                return a
        if isinstance(e, IRCall) and e.func in _FOLDABLE and all(
            isinstance(a, Const) for a in e.args
        ):
            try:
                return Const(float(_FOLDABLE[e.func](*(a.value for a in e.args))))
            except (ValueError, OverflowError):
                return e
        return e

    return program.map_exprs(fold)


def dead_code_eliminate(program: IRProgram) -> IRProgram:
    """Remove assignments and scalar allocations whose names are never read.

    Conservative: storage names (program outputs) and array allocations
    are always kept.
    """

    def clean(fn: IRFunction) -> IRFunction:
        used: set[str] = set()
        for stmt in fn.body.walk():
            for e in stmt.exprs():
                for node in e.walk():
                    if isinstance(node, SymRef):
                        used.add(node.name)

        def rewrite(s: Stmt):
            if isinstance(s, Assign) and s.target not in used and not (
                s.target.startswith("storage")
            ):
                return None
            if (
                isinstance(s, Alloc)
                and s.size is None
                and s.name not in used
                and not s.name.startswith("storage")
            ):
                return None
            return s

        return fn.map_stmts(rewrite)

    return IRProgram(
        {k: clean(f) for k, f in program.functions.items()}, dict(program.meta)
    )


def _repeated_subexprs(e: Expr) -> list[Expr]:
    """Non-leaf subexpressions appearing at least twice, largest first."""
    counts: dict[Expr, int] = {}

    def visit(n: Expr):
        if n.children():
            counts[n] = counts.get(n, 0) + 1
        for c in n.children():
            visit(c)

    visit(e)
    repeated = [n for n, c in counts.items() if c >= 2]
    repeated.sort(key=lambda n: -sum(1 for _ in n.walk()))
    return repeated


def common_subexpression_eliminate(program: IRProgram) -> IRProgram:
    """Per-statement local CSE.

    The strength-reduction pass duplicates operand trees (``pow(x, 2)``
    becomes ``x * x`` with ``x`` materialised twice); this pass hoists
    each repeated pure subexpression of a single statement into a fresh
    temporary.  All IR expressions are pure (loads included), and scoping
    to one statement avoids any cross-statement dependence analysis.
    """
    from .nodes import AugAssign, ReturnStmt, StoreStmt

    counter = [0]

    def clean(fn: IRFunction) -> IRFunction:
        def rewrite(s):
            if not isinstance(s, (Assign, AugAssign, StoreStmt, ReturnStmt)):
                return s
            values = s.exprs()
            if not values:
                return s
            prefix: list = []
            current = s
            # One hoist per repeated subtree, largest first, rescanning
            # after each rewrite (a hoist can collapse other repeats).
            while True:
                target_exprs = current.exprs()
                candidates: list[Expr] = []
                for v in target_exprs:
                    candidates.extend(_repeated_subexprs(v))
                if not candidates:
                    break
                sub = candidates[0]
                counter[0] += 1
                name = f"cse{counter[0]}"
                prefix.append(Assign(name, sub))
                current = current.map_exprs(
                    lambda e, sub=sub, name=name:
                        SymRef(name) if e == sub else e
                )
            if not prefix:
                return s
            return prefix + [current]

        return fn.map_stmts(rewrite)

    return IRProgram(
        {k: clean(f) for k, f in program.functions.items()},
        dict(program.meta),
    )


@dataclass
class PassManager:
    """Runs the optimisation pipeline, recording per-stage snapshots.

    ``timings`` accumulates per-pass wall-clock seconds (always on — a
    handful of ``perf_counter`` calls per compile); each pass also emits
    an ``ir.pass.<name>`` tracer span when tracing is enabled.  Passes
    named in ``disabled`` (see :data:`TOGGLEABLE_PASSES`) are skipped —
    the differential test harness uses this to check that every
    optimisation is semantics-preserving.
    """

    fastmath: bool = True
    disabled: frozenset[str] = frozenset()
    snapshots: dict[str, IRProgram] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        self.disabled = frozenset(self.disabled)
        unknown = self.disabled - set(TOGGLEABLE_PASSES)
        if unknown:
            raise ValueError(
                f"unknown passes in disabled={sorted(unknown)}; "
                f"toggleable: {TOGGLEABLE_PASSES}"
            )

    def _apply(self, name: str, fn, prog: IRProgram) -> IRProgram:
        if name in self.disabled:
            self.timings.setdefault(name, 0.0)
            return prog
        t0 = time.perf_counter()
        with span(f"ir.pass.{name}"):
            out = fn(prog)
        dt = time.perf_counter() - t0
        self.timings[name] = self.timings.get(name, 0.0) + dt
        contribute({f"passes.{name}_s": dt})
        return out

    def run(self, lowered: IRProgram) -> IRProgram:
        self.snapshots["lowered"] = lowered
        prog = self._apply("flatten", flatten, lowered)
        self.snapshots["flattened"] = prog
        prog = self._apply("numopt", numerical_optimize, prog)
        self.snapshots["numopt"] = prog
        prog = self._apply(
            "strength",
            lambda p: strength_reduce(p, fastmath=self.fastmath),
            prog,
        )
        self.snapshots["strength"] = prog
        prog = self._apply("fold", constant_fold, prog)
        prog = self._apply("cse", common_subexpression_eliminate, prog)
        prog = self._apply("fold", constant_fold, prog)
        prog = self._apply("dce", dead_code_eliminate, prog)
        self.snapshots["final"] = prog
        return prog

    def stage(self, name: str) -> IRProgram:
        if name not in self.snapshots:
            raise KeyError(
                f"unknown stage {name!r}; available: {sorted(self.snapshots)}"
            )
        return self.snapshots[name]
