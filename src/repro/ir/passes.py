"""Standard passes and the pass manager (paper sections IV and IV-F).

The manager runs the pipeline of Fig. 1 —

    Lowering & Storage Injection → Flattening → Numerical Optimization →
    Strength Reduction → standard cleanups (algebraic simplification,
    constant folding, CSE, DCE) → Code Generation

— and keeps the IR snapshot after every stage so Figs 2 and 3 (the
per-stage IR dumps for nearest neighbor and KDE) can be regenerated.

When ``verify`` is enabled the structural verifier
(:mod:`repro.ir.verify`) checks the program after lowering and after
every pass, so a pass that emits invalid IR fails immediately with an
:class:`~repro.ir.verify.IRVerificationError` naming it — rather than as
a downstream miscompile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..observe import contribute, span
from .cse import common_subexpression_eliminate
from .dce import dead_code_eliminate
from .flattening import flatten
from .nodes import IRProgram
from .numerical_opt import numerical_optimize
from .simplify import fold_node, simplify
from .strength_reduction import strength_reduce
from .verify import verify_program

__all__ = [
    "constant_fold", "dead_code_eliminate", "common_subexpression_eliminate",
    "simplify", "PassManager", "PIPELINE_STAGES", "TOGGLEABLE_PASSES",
]

#: Ordered stage names of the compiler pipeline (Fig. 1).  Snapshots are
#: taken after flattening, after each named optimisation stage, and after
#: the closing fold+DCE cleanup ("final").
PIPELINE_STAGES = (
    "lowered", "flattened", "numopt", "strength", "simplify", "cse", "final",
)

#: Optimisation passes that may be disabled individually (flattening is
#: not optional: the backends address flattened 1-D strided storage).
TOGGLEABLE_PASSES = ("numopt", "strength", "simplify", "fold", "cse", "dce")


def constant_fold(program: IRProgram) -> IRProgram:
    """Evaluate constant sub-expressions and apply exact identities
    (the folding core shared with :func:`repro.ir.simplify.simplify`)."""
    return program.map_exprs(fold_node)


@dataclass
class PassManager:
    """Runs the optimisation pipeline, recording per-stage snapshots.

    ``timings`` accumulates per-pass wall-clock seconds (always on — a
    handful of ``perf_counter`` calls per compile); each pass also emits
    an ``ir.pass.<name>`` tracer span when tracing is enabled.  Passes
    named in ``disabled`` (see :data:`TOGGLEABLE_PASSES`) are skipped —
    the differential test harness uses this to check that every
    optimisation is semantics-preserving.  With ``verify`` on, the
    structural verifier runs after every pass (timed under the
    ``verify`` key and the ``passes.verify_s`` counter).
    """

    fastmath: bool = True
    disabled: frozenset[str] = frozenset()
    verify: bool = False
    snapshots: dict[str, IRProgram] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        self.disabled = frozenset(self.disabled)
        unknown = self.disabled - set(TOGGLEABLE_PASSES)
        if unknown:
            raise ValueError(
                f"unknown passes in disabled={sorted(unknown)}; "
                f"toggleable: {TOGGLEABLE_PASSES}"
            )

    def _verify(self, name: str, prog: IRProgram):
        t0 = time.perf_counter()
        try:
            verify_program(prog, pass_name=name)
        except Exception:
            contribute({"passes.verify_failures": 1})
            raise
        finally:
            dt = time.perf_counter() - t0
            self.timings["verify"] = self.timings.get("verify", 0.0) + dt
            contribute({"passes.verify_s": dt})

    def _apply(self, name: str, fn, prog: IRProgram) -> IRProgram:
        if name in self.disabled:
            self.timings.setdefault(name, 0.0)
            return prog
        t0 = time.perf_counter()
        with span(f"ir.pass.{name}"):
            out = fn(prog)
        dt = time.perf_counter() - t0
        self.timings[name] = self.timings.get(name, 0.0) + dt
        contribute({f"passes.{name}_s": dt})
        if self.verify:
            self._verify(name, out)
        return out

    def run(self, lowered: IRProgram) -> IRProgram:
        self.snapshots["lowered"] = lowered
        if self.verify:
            self._verify("lowering", lowered)
        prog = self._apply("flatten", flatten, lowered)
        self.snapshots["flattened"] = prog
        prog = self._apply("numopt", numerical_optimize, prog)
        self.snapshots["numopt"] = prog
        prog = self._apply(
            "strength",
            lambda p: strength_reduce(p, fastmath=self.fastmath),
            prog,
        )
        self.snapshots["strength"] = prog
        prog = self._apply(
            "simplify",
            lambda p: simplify(p, fastmath=self.fastmath),
            prog,
        )
        self.snapshots["simplify"] = prog
        prog = self._apply("fold", constant_fold, prog)
        prog = self._apply("cse", common_subexpression_eliminate, prog)
        self.snapshots["cse"] = prog
        prog = self._apply("fold", constant_fold, prog)
        prog = self._apply("dce", dead_code_eliminate, prog)
        self.snapshots["final"] = prog
        return prog

    def stage(self, name: str) -> IRProgram:
        if name not in self.snapshots:
            raise KeyError(
                f"unknown stage {name!r}; available: {sorted(self.snapshots)}"
            )
        return self.snapshots[name]
