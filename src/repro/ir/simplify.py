"""Algebraic simplification pass over the Table I operator set.

Extends plain constant folding with identity/zero rewrites and a small
set of inverse-function cancellations.  Rewrites that are exact in IEEE
double arithmetic are always applied; rewrites that can change a result
in corner cases (``x * 0 → 0`` hides NaN/Inf propagation,
``exp(log(x)) → x`` changes overflow behaviour) are gated behind the
``fastmath`` compile flag, mirroring the strength-reduction pass.

The single-node folding core (:func:`fold_node`) is shared with the
pass manager's standalone ``fold`` pass.
"""

from __future__ import annotations

import math

from ..dsl.expr import BinOp, Const, Expr, Indicator, Neg
from .nodes import IRCall, IRProgram

__all__ = ["simplify", "fold_node"]

_FOLDABLE = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "abs": abs,
    "pow": lambda x, n: x ** n,
    "max": max,
    "min": min,
}

_CMP = {
    "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
}


def _const(e: Expr, value: float) -> bool:
    return isinstance(e, Const) and e.value == value


def fold_node(e: Expr) -> Expr:
    """Constant folding + exact identities for one (rebuilt) node."""
    if isinstance(e, Neg) and isinstance(e.operand, Const):
        return Const(-e.operand.value)
    if isinstance(e, BinOp):
        a, b = e.lhs, e.rhs
        if isinstance(a, Const) and isinstance(b, Const):
            try:
                return Const({
                    "+": a.value + b.value,
                    "-": a.value - b.value,
                    "*": a.value * b.value,
                    "/": a.value / b.value if b.value != 0 else math.inf,
                    "**": a.value ** b.value,
                }[e.op])
            except (OverflowError, ValueError):
                return e
        # Identities: x*1, 1*x, x+0, 0+x, x-0, x/1.
        if e.op == "*" and _const(b, 1.0):
            return a
        if e.op == "*" and _const(a, 1.0):
            return b
        if e.op == "+" and _const(b, 0.0):
            return a
        if e.op == "+" and _const(a, 0.0):
            return b
        if e.op == "-" and _const(b, 0.0):
            return a
        if e.op == "/" and _const(b, 1.0):
            return a
    if isinstance(e, IRCall) and e.func in _FOLDABLE and all(
        isinstance(a, Const) for a in e.args
    ):
        try:
            return Const(float(_FOLDABLE[e.func](*(a.value for a in e.args))))
        except (ValueError, OverflowError):
            return e
    return e


def _simplify_node(e: Expr, fastmath: bool) -> Expr:
    e = fold_node(e)
    if isinstance(e, Neg) and isinstance(e.operand, Neg):
        return e.operand.operand
    if isinstance(e, Indicator) and isinstance(e.lhs, Const) and isinstance(
        e.rhs, Const
    ):
        return Const(1.0 if _CMP[e.op](e.lhs.value, e.rhs.value) else 0.0)
    if isinstance(e, BinOp):
        a, b = e.lhs, e.rhs
        if e.op == "-" and _const(a, 0.0):
            return Neg(b)
        if e.op == "+" and a == b:
            # x + x == 2*x exactly in IEEE arithmetic; halves the reads.
            return BinOp("*", Const(2.0), a)
        if fastmath:
            # Unsafe identities: hide NaN/Inf propagation from x.
            if e.op == "*" and (_const(a, 0.0) or _const(b, 0.0)):
                return Const(0.0)
            if e.op == "/" and _const(a, 0.0):
                return Const(0.0)
            if e.op == "-" and a == b:
                return Const(0.0)
            if e.op == "/" and a == b:
                return Const(1.0)
    if isinstance(e, IRCall):
        args = e.args
        if e.func == "pow" and len(args) == 2 and _const(args[1], 1.0):
            return args[0]
        if e.func == "pow" and len(args) == 2 and _const(args[1], 0.0):
            return Const(1.0)
        if e.func in ("min", "max") and len(args) == 2 and args[0] == args[1]:
            return args[0]
        if (e.func == "abs" and len(args) == 1
                and isinstance(args[0], IRCall) and args[0].func == "abs"):
            return args[0]
        if e.func == "dot" and len(args) == 2 and args[0] == args[1]:
            # dot(x, x) → sqnorm(x): evaluates x once (paper Table I norm).
            return IRCall("sqnorm", (args[0],))
        if fastmath and e.func == "exp" and len(args) == 1 and (
            isinstance(args[0], IRCall) and args[0].func == "log"
        ):
            return args[0].args[0]
        if fastmath and e.func == "log" and len(args) == 1 and (
            isinstance(args[0], IRCall) and args[0].func == "exp"
        ):
            return args[0].args[0]
        if fastmath and e.func == "sqrt" and len(args) == 1 and (
            isinstance(args[0], IRCall) and args[0].func == "pow"
            and len(args[0].args) == 2 and _const(args[0].args[1], 2.0)
        ):
            return IRCall("abs", (args[0].args[0],))
        if fastmath and e.func == "pow" and len(args) == 2 and (
            _const(args[1], 2.0)
            and isinstance(args[0], IRCall) and args[0].func == "sqrt"
        ):
            return args[0].args[0]
    return e


def simplify(program: IRProgram, fastmath: bool = False) -> IRProgram:
    """Apply algebraic simplification to every function of *program*."""
    out = program.map_exprs(lambda e: _simplify_node(e, fastmath))
    out.meta["simplified"] = True
    return out
