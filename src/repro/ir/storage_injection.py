"""Storage-injection planning (paper section IV-B).

Lowering emits the ``alloc`` statements inline; this module additionally
computes the *injection plan* — how many units of storage each layer's
operator requires — which the runtime uses to allocate accumulator state
and which the tests assert against the paper's rules:

* single-variable reductions inject **one** unit per evaluation,
* multi-variable reductions inject **k** units (unbounded for ∪ / ∪arg),
* ∀ injects storage equal to the layer's dataset size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl.layer import Layer
from ..dsl.ops import OpCategory, PortalOp

__all__ = ["InjectionRow", "injection_plan"]


@dataclass(frozen=True)
class InjectionRow:
    layer_index: int
    op: PortalOp
    category: OpCategory
    #: units of storage per evaluation of this layer; -1 means unbounded
    units: int
    #: whether an index companion array is injected (arg-operators)
    with_index: bool
    description: str


def injection_plan(layers: list[Layer]) -> list[InjectionRow]:
    rows = []
    for i, layer in enumerate(layers):
        info = layer.info
        units = layer.output_size if info.category is not OpCategory.ALL else layer.storage.n
        if info.category is OpCategory.ALL:
            desc = f"∀ injects |{layer.storage.name}| = {layer.storage.n} units"
        elif info.category is OpCategory.SINGLE:
            units = 1
            desc = f"{layer.op.name} injects 1 unit per evaluation"
        else:
            if layer.k is not None:
                units = layer.k
                desc = f"{layer.op.name} injects k = {layer.k} units per evaluation"
            else:
                units = -1
                desc = f"{layer.op.name} injects an unbounded (dynamic) buffer"
        rows.append(
            InjectionRow(
                layer_index=i,
                op=layer.op,
                category=info.category,
                units=units,
                with_index=info.returns_index,
                description=desc,
            )
        )
    return rows
