"""Strength-reduction pass (paper section IV-E).

Replaces long-latency operations with cheaper forms:

* ``pow(x, n)`` with an integer exponent ``n < 4`` becomes a chained
  multiplication (exact — always applied);
* ``1 / sqrt(x)`` becomes ``fast_inverse_sqrt(x)`` (applied when
  ``fastmath`` is enabled);
* ``sqrt(x)`` becomes ``1 / fast_inverse_sqrt(x)`` — the paper's safe
  form, which returns 0 rather than NaN at x = 0 (also ``fastmath``);
* ``1 / (1 / z)`` collapses to ``z`` (cleans up compositions of the two
  rules above).

For approximation problems this pass is an additional accuracy/time knob,
so ``fastmath`` is surfaced as a compile option.
"""

from __future__ import annotations

from ..dsl.expr import BinOp, Const, Expr
from .nodes import IRCall, IRProgram, _map_expr_tree

__all__ = ["strength_reduce", "reduce_expr"]


def _chain_multiply(x: Expr, n: int) -> Expr:
    out = x
    for _ in range(n - 1):
        out = BinOp("*", out, x)
    return out


def _make_rewriter(fastmath: bool):
    def rewrite(e: Expr) -> Expr:
        if isinstance(e, IRCall) and e.func == "pow" and len(e.args) == 2:
            x, n = e.args
            if isinstance(n, Const) and float(n.value).is_integer():
                ni = int(n.value)
                if ni == 0:
                    return Const(1.0)
                if 1 <= ni < 4:
                    return _chain_multiply(x, ni)
            return e
        if fastmath and isinstance(e, IRCall) and e.func == "sqrt":
            return BinOp(
                "/", Const(1.0), IRCall("fast_inverse_sqrt", (e.args[0],))
            )
        if isinstance(e, BinOp) and e.op == "/":
            # 1 / sqrt(x)  ->  fast_inverse_sqrt(x)
            if (
                fastmath
                and isinstance(e.lhs, Const) and e.lhs.value == 1.0
                and isinstance(e.rhs, IRCall) and e.rhs.func == "sqrt"
            ):
                return IRCall("fast_inverse_sqrt", (e.rhs.args[0],))
            # 1 / (1 / z)  ->  z
            if (
                isinstance(e.lhs, Const) and e.lhs.value == 1.0
                and isinstance(e.rhs, BinOp) and e.rhs.op == "/"
                and isinstance(e.rhs.lhs, Const) and e.rhs.lhs.value == 1.0
            ):
                return e.rhs.rhs
        return e

    return rewrite


def strength_reduce(program: IRProgram, fastmath: bool = True) -> IRProgram:
    """Apply strength reduction to every function of the program."""
    out = program.map_exprs(_make_rewriter(fastmath))
    out.meta["strength_reduced"] = True
    out.meta["fastmath"] = fastmath
    return out


def reduce_expr(e: Expr, fastmath: bool = True) -> Expr:
    """Strength-reduce a bare expression (used by the code generator on
    the kernel body, so the emitted source contains the reduced forms)."""
    return _map_expr_tree(e, _make_rewriter(fastmath))
