"""Strength-reduction pass (paper section IV-E).

Replaces long-latency operations with cheaper forms:

* ``pow(x, n)`` with an integer exponent ``2 ≤ n ≤ 8`` becomes a chain
  of multiplications by binary exponentiation (exact — always applied);
  in statement context the operand ``x`` and intermediate squares are
  materialised once into shared ``sr<N>`` temporaries, so the rewrite
  never duplicates the operand tree (the duplication CSE previously had
  to rediscover);
* ``1 / sqrt(x)`` becomes ``fast_inverse_sqrt(x)`` (applied when
  ``fastmath`` is enabled);
* ``sqrt(x)`` becomes ``1 / fast_inverse_sqrt(x)`` — the paper's safe
  form, which returns 0 rather than NaN at x = 0 (also ``fastmath``);
* ``1 / (1 / z)`` collapses to ``z`` (cleans up compositions of the two
  rules above).

For approximation problems this pass is an additional accuracy/time knob,
so ``fastmath`` is surfaced as a compile option.
"""

from __future__ import annotations

from ..dsl.expr import BinOp, Const, Expr
from .nodes import (
    Alloc, Assign, AugAssign, CallStmt, For, IfStmt, IRCall, IRFunction,
    IRProgram, ReturnStmt, Stmt, StoreStmt, SymRef, _map_expr_tree,
)

__all__ = ["strength_reduce", "reduce_expr", "MAX_POW_CHAIN"]

#: Largest integer exponent expanded into a multiplication chain.
MAX_POW_CHAIN = 8


def _pow_chain(base: Expr, n: int, materialize) -> Expr:
    """Binary-exponentiation chain for ``base ** n`` (2 ≤ n ≤ 8).
    *materialize* shares an intermediate square: a hoisted temporary in
    statement context, the same sub-tree object in expression context."""
    mul = lambda a, b: BinOp("*", a, b)
    if n == 2:
        return mul(base, base)
    if n == 3:
        return mul(mul(base, base), base)
    sq = materialize(mul(base, base))
    if n == 4:
        return mul(sq, sq)
    if n == 5:
        return mul(mul(sq, sq), base)
    if n == 6:
        return mul(mul(sq, sq), sq)
    if n == 7:
        return mul(mul(mul(sq, sq), sq), base)
    sq2 = materialize(mul(sq, sq))  # n == 8
    return mul(sq2, sq2)


def _make_rewriter(fastmath: bool, hoist=None):
    """Node rewriter; *hoist* (when given) materialises an expression into
    a fresh shared temporary, returning its :class:`SymRef`."""

    def materialize(e: Expr) -> Expr:
        if hoist is None or isinstance(e, (SymRef, Const)):
            return e
        return hoist(e)

    def rewrite(e: Expr) -> Expr:
        if isinstance(e, IRCall) and e.func == "pow" and len(e.args) == 2:
            x, n = e.args
            if isinstance(n, Const) and float(n.value).is_integer():
                ni = int(n.value)
                if ni == 0:
                    return Const(1.0)
                if ni == 1:
                    return x
                if 2 <= ni <= MAX_POW_CHAIN:
                    return _pow_chain(materialize(x), ni, materialize)
            return e
        if fastmath and isinstance(e, IRCall) and e.func == "sqrt":
            return BinOp(
                "/", Const(1.0), IRCall("fast_inverse_sqrt", (e.args[0],))
            )
        if isinstance(e, BinOp) and e.op == "/":
            # 1 / sqrt(x)  ->  fast_inverse_sqrt(x)
            if (
                fastmath
                and isinstance(e.lhs, Const) and e.lhs.value == 1.0
                and isinstance(e.rhs, IRCall) and e.rhs.func == "sqrt"
            ):
                return IRCall("fast_inverse_sqrt", (e.rhs.args[0],))
            # 1 / (1 / z)  ->  z
            if (
                isinstance(e.lhs, Const) and e.lhs.value == 1.0
                and isinstance(e.rhs, BinOp) and e.rhs.op == "/"
                and isinstance(e.rhs.lhs, Const) and e.rhs.lhs.value == 1.0
            ):
                return e.rhs.rhs
        return e

    return rewrite


def _reduce_stmt(s: Stmt, fastmath: bool, counter: list[int]):
    """Rewrite the directly evaluated expressions of one statement,
    hoisting pow operands into ``sr<N>`` temporaries prefixed before it.
    (Direct expressions of loops and branches — bounds, conditions — are
    evaluated once before their bodies, so the prefix is sound there
    too; bodies are rewritten as their own statements.)"""
    prefix: list[Stmt] = []

    def hoist(e: Expr) -> Expr:
        counter[0] += 1
        name = f"sr{counter[0]}"
        prefix.append(Assign(name, e))
        return SymRef(name)

    node = _make_rewriter(fastmath, hoist)

    def rw(e: Expr) -> Expr:
        return _map_expr_tree(e, node)

    if isinstance(s, Assign):
        s = Assign(s.target, rw(s.value))
    elif isinstance(s, AugAssign):
        s = AugAssign(s.target, s.op, rw(s.value),
                      None if s.index is None else rw(s.index))
    elif isinstance(s, StoreStmt):
        s = StoreStmt(s.array, tuple(rw(i) for i in s.indices), rw(s.value))
    elif isinstance(s, ReturnStmt):
        s = ReturnStmt(None if s.value is None else rw(s.value))
    elif isinstance(s, CallStmt):
        s = CallStmt(s.func, tuple(rw(a) for a in s.args))
    elif isinstance(s, Alloc):
        s = Alloc(s.name,
                  None if s.size is None else rw(s.size),
                  None if s.init is None else rw(s.init))
    elif isinstance(s, For):
        s = For(s.var, rw(s.start), rw(s.end), s.body)
    elif isinstance(s, IfStmt):
        s = IfStmt(rw(s.cond), s.then, s.orelse)
    return prefix + [s] if prefix else s


def strength_reduce(program: IRProgram, fastmath: bool = True) -> IRProgram:
    """Apply strength reduction to every function of the program."""
    counter = [0]
    functions = {
        name: fn.map_stmts(lambda s: _reduce_stmt(s, fastmath, counter))
        for name, fn in program.functions.items()
    }
    out = IRProgram(functions, dict(program.meta))
    out.meta["strength_reduced"] = True
    out.meta["fastmath"] = fastmath
    return out


def reduce_expr(e: Expr, fastmath: bool = True) -> Expr:
    """Strength-reduce a bare expression (used by the code generator on
    the kernel body, so the emitted source contains the reduced forms).
    Intermediate squares are shared sub-tree objects; the emitter's
    value numbering materialises each shared square once."""
    return _map_expr_tree(e, _make_rewriter(fastmath))
