"""Structural IR verifier: the machine-checkable validity contract that
every optimisation pass must preserve.

Optimisation passes are tree rewrites, and a buggy rewrite typically
leaves one of a small number of structural footprints behind: a reference
to a temporary whose defining assignment was dropped, a frontend node
(``Var``/``DimReduce``) smuggled into the IR, an ``IRCall`` rebuilt with
the wrong arity, a multi-index load surviving past flattening, or an
accumulator update against an undefined target.  :func:`verify_program`
checks all of these invariants over a whole :class:`IRProgram`:

* only IR node types appear (no unlowered frontend expressions),
* every ``BinOp``/``AugAssign``/``Indicator`` operator is legal,
* every ``IRCall``/``CallStmt`` names a known function with the right arity,
* loads carry at least one index, and exactly one once the program is
  flattened,
* every ``SymRef``/load target is defined before use (or is an external
  environment name: parameters, storages, tree metadata, strides),
* compiler-generated temporaries (``cse*``/``sr*``) are assigned exactly
  once (SSA-style single definition) and never used as accumulators,
* accumulator updates use a supported reduction operator and indexed
  updates only target injected storage.

The pass manager runs the verifier after every pass when
``CompileOptions.verify_ir`` is enabled (the default in the test suite);
a violation raises :class:`IRVerificationError` naming the offending
pass, function and statement.
"""

from __future__ import annotations

import re

from ..dsl.errors import CompileError
from ..dsl.expr import (
    BinOp, Call, Const, DimReduce, DistVar, Expr, Indicator, Neg, Var,
)
from .nodes import (
    Alloc, Assign, AugAssign, Block, CallStmt, Comment, For, IfStmt, IRCall,
    IRFunction, IRProgram, LoadExpr, ReturnStmt, Stmt, StoreStmt, SymRef,
)

__all__ = ["IRVerificationError", "verify_program", "verify_function"]


class IRVerificationError(CompileError):
    """A pass produced structurally invalid IR.

    Carries the offending ``pass_name`` / ``function`` / rendered
    ``stmt`` so test harnesses (and humans) can attribute the breakage.
    """

    def __init__(self, message: str, *, pass_name: str | None = None,
                 function: str | None = None, stmt: str | None = None):
        self.message = message
        self.pass_name = pass_name
        self.function = function
        self.stmt = stmt
        where = f"after pass {pass_name!r}" if pass_name else "in IR"
        if function:
            where += f", function {function!r}"
        if stmt:
            where += f", at `{stmt}`"
        super().__init__(f"IR verification failed {where}: {message}")


#: Legal operator sets of the IR surface (Table I lowers onto these).
_BINOP_OPS = frozenset({"+", "-", "*", "/", "**"})
_AUG_OPS = frozenset({"+", "*"})  # the reductions the backends implement
_CMP_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})

#: Known IR functions with their arity (``None`` = variadic).  Math
#: functions are rewritten by the passes; the rest are backend intrinsics
#: bound by the interpreter/code generator at run time.
KNOWN_FUNCS: dict[str, int | None] = {
    # math (Table I operator set)
    "pow": 2, "sqrt": 1, "exp": 1, "log": 1, "abs": 1,
    "min": 2, "max": 2, "fast_inverse_sqrt": 1,
    "cholesky": 1, "forward_sub": 2, "dot": 2, "sqnorm": 1,
    "mahalanobis": 2,
    # traversal / tree-metadata intrinsics
    "point_diff": 4, "band_lo": 2, "band_hi": 2, "node_bound": 1,
    "node_count": 1, "node_weight": 1, "node_diameter": 1,
    "point_node_center_dist": 3, "point_of": 2,
    "kernel_eval": None, "external_kernel": 4,
    # statement-level (side-effecting) intrinsics
    "sorted_insert_asc": 4, "sorted_insert_desc": 4,
    "append": 2, "append_range": 4, "store_row": 3,
}

#: Names the execution environment provides without an IR definition.
_EXTERNAL_NAMES = frozenset({"dim", "Sigma", "N1", "N2", "dynamic"})

_TEMP_RE = re.compile(r"^(cse|sr)\d+$")


def _is_external(name: str, params: tuple[str, ...]) -> bool:
    """Environment-provided names: function parameters, storage arrays and
    their companions, node-box metadata, and flattening strides."""
    return (
        "." in name
        or name in params
        or name in _EXTERNAL_NAMES
        or name.endswith("_data")
        or name.endswith("_rows")
        or name.startswith("storage")
        or name.startswith("N1_")
        or name.startswith("N2_")
    )


class _FunctionChecker:
    def __init__(self, fn: IRFunction, flattened: bool):
        self.fn = fn
        self.flattened = flattened
        self.assign_counts: dict[str, int] = {}
        self.aug_targets: set[str] = set()
        self.alloc_names: set[str] = set()

    # -- error helper -------------------------------------------------------
    def fail(self, message: str, stmt: Stmt | None = None):
        rendered = None
        if stmt is not None:
            from .printer import render_stmt

            rendered = render_stmt(stmt).strip()
        raise IRVerificationError(
            message, function=self.fn.name, stmt=rendered
        )

    # -- expressions --------------------------------------------------------
    def check_expr(self, e: Expr, defined: set[str], stmt: Stmt):
        if isinstance(e, (Var, DistVar, DimReduce, Call)):
            self.fail(
                f"frontend node {type(e).__name__} survived lowering: {e!r}",
                stmt,
            )
        if isinstance(e, Const):
            return
        if isinstance(e, SymRef):
            if e.name not in defined and not _is_external(e.name, self.fn.params):
                self.fail(f"dangling reference to undefined name {e.name!r}",
                          stmt)
            return
        if isinstance(e, LoadExpr):
            if not e.indices:
                self.fail(f"load of {e.array!r} with no index", stmt)
            if self.flattened and len(e.indices) != 1:
                self.fail(
                    f"multi-index load of {e.array!r} after flattening", stmt
                )
            if (e.array not in defined
                    and not _is_external(e.array, self.fn.params)):
                self.fail(f"load from undefined array {e.array!r}", stmt)
            for i in e.indices:
                self.check_expr(i, defined, stmt)
            return
        if isinstance(e, BinOp):
            if e.op not in _BINOP_OPS:
                self.fail(f"illegal binary operator {e.op!r}", stmt)
            self.check_expr(e.lhs, defined, stmt)
            self.check_expr(e.rhs, defined, stmt)
            return
        if isinstance(e, Neg):
            self.check_expr(e.operand, defined, stmt)
            return
        if isinstance(e, Indicator):
            if e.op not in _CMP_OPS:
                self.fail(f"illegal comparison operator {e.op!r}", stmt)
            self.check_expr(e.lhs, defined, stmt)
            self.check_expr(e.rhs, defined, stmt)
            return
        if isinstance(e, IRCall):
            if e.func not in KNOWN_FUNCS:
                self.fail(f"call of unknown IR function {e.func!r}", stmt)
            arity = KNOWN_FUNCS[e.func]
            if arity is not None and len(e.args) != arity:
                self.fail(
                    f"{e.func} expects {arity} argument(s), got {len(e.args)}",
                    stmt,
                )
            for a in e.args:
                self.check_expr(a, defined, stmt)
            return
        self.fail(f"unknown expression node {type(e).__name__}", stmt)

    # -- statements ---------------------------------------------------------
    def check_block(self, block: Block, defined: set[str]) -> set[str]:
        """Check one block; returns the names it defines (lenient: branch
        and loop definitions propagate, since lowering initialises
        accumulators before the loops that read them)."""
        for s in block.stmts:
            if isinstance(s, Comment):
                continue
            elif isinstance(s, Alloc):
                if s.name in self.alloc_names:
                    self.fail(f"duplicate allocation of {s.name!r}", s)
                self.alloc_names.add(s.name)
                for e in s.exprs():
                    self.check_expr(e, defined, s)
                defined.add(s.name)
            elif isinstance(s, Assign):
                self.check_expr(s.value, defined, s)
                self.assign_counts[s.target] = (
                    self.assign_counts.get(s.target, 0) + 1
                )
                defined.add(s.target)
            elif isinstance(s, AugAssign):
                if s.op not in _AUG_OPS:
                    self.fail(
                        f"unsupported accumulator operator {s.op!r}", s
                    )
                if (s.target not in defined
                        and not _is_external(s.target, self.fn.params)):
                    self.fail(
                        f"accumulator update of undefined target "
                        f"{s.target!r}", s,
                    )
                if s.index is not None and not s.target.startswith("storage"):
                    self.fail(
                        "indexed accumulator update must target injected "
                        f"storage, not {s.target!r}", s,
                    )
                self.aug_targets.add(s.target)
                for e in s.exprs():
                    self.check_expr(e, defined, s)
            elif isinstance(s, StoreStmt):
                if (s.array not in defined
                        and not _is_external(s.array, self.fn.params)):
                    self.fail(f"store into undefined array {s.array!r}", s)
                for e in s.exprs():
                    self.check_expr(e, defined, s)
            elif isinstance(s, CallStmt):
                if s.func not in KNOWN_FUNCS:
                    self.fail(f"call of unknown function {s.func!r}", s)
                arity = KNOWN_FUNCS[s.func]
                if arity is not None and len(s.args) != arity:
                    self.fail(
                        f"{s.func} expects {arity} argument(s), "
                        f"got {len(s.args)}", s,
                    )
                for a in s.args:
                    self.check_expr(a, defined, s)
            elif isinstance(s, ReturnStmt):
                if s.value is not None:
                    self.check_expr(s.value, defined, s)
            elif isinstance(s, For):
                self.check_expr(s.start, defined, s)
                self.check_expr(s.end, defined, s)
                inner = set(defined) | {s.var}
                self.check_block(s.body, inner)
                defined |= inner
            elif isinstance(s, IfStmt):
                self.check_expr(s.cond, defined, s)
                then_defs = set(defined)
                self.check_block(s.then, then_defs)
                else_defs = set(defined)
                if s.orelse is not None:
                    self.check_block(s.orelse, else_defs)
                defined |= then_defs | else_defs
            else:
                self.fail(f"unknown statement type {type(s).__name__}", s)
        return defined

    def check(self):
        if not isinstance(self.fn.body, Block):
            self.fail("function body is not a Block")
        self.check_block(self.fn.body, set())
        # SSA-style single definition for compiler-generated temporaries.
        for name, count in self.assign_counts.items():
            if _TEMP_RE.match(name) and count != 1:
                self.fail(
                    f"compiler temporary {name!r} assigned {count} times "
                    "(single definition required)"
                )
        for name in self.aug_targets:
            if _TEMP_RE.match(name):
                self.fail(
                    f"compiler temporary {name!r} used as an accumulator"
                )


def verify_function(fn: IRFunction, flattened: bool = False):
    """Verify one IR function; raises :class:`IRVerificationError`."""
    _FunctionChecker(fn, flattened).check()


def verify_program(program: IRProgram, pass_name: str | None = None):
    """Verify every function of *program*, attributing failures to
    *pass_name* (the pass that produced this IR)."""
    if not isinstance(program, IRProgram) or not program.functions:
        raise IRVerificationError(
            "pass did not return a non-empty IRProgram", pass_name=pass_name
        )
    flattened = bool(program.meta.get("flattened"))
    for fn in program.functions.values():
        try:
            verify_function(fn, flattened=flattened)
        except IRVerificationError as err:
            raise IRVerificationError(
                # Re-raise with the pass attached, preserving location.
                err.message,
                pass_name=pass_name, function=err.function, stmt=err.stmt,
            ) from None
