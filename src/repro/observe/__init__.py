"""``repro.observe`` — pipeline observability (tracing, counters, timing).

The measurement substrate behind the paper's evaluation claims: *where*
does the time go, and *how effective* are the PASCAL prune/approximation
rules?  Two cooperating facilities, both off by default and costing a
single branch when disabled:

* :mod:`~repro.observe.tracer` — structured JSONL span events for every
  pipeline stage (parse, lowering, each IR pass, codegen, tree build,
  traversal, per-task parallel execution);
* :mod:`~repro.observe.counters` — a registry of named counters fed by
  the traversals (node visits, prune hits, approximation hits, leaf
  base-case pair counts), the rule generator and the compiler driver.

Front doors: ``PortalExpr.stats()`` for one program's numbers, the
``python -m repro stats`` CLI subcommand for ``.portal`` programs, and
``benchmarks/harness.py`` for prune-rate / pass-time benchmark columns.
See ``docs/observability.md``.
"""

from .counters import Counters, active_counters, collect, contribute
from .tracer import (
    Tracer, disable_tracing, enable_tracing, event, get_tracer, span,
    tracing,
)

__all__ = [
    "Counters", "active_counters", "collect", "contribute",
    "Tracer", "disable_tracing", "enable_tracing", "event", "get_tracer",
    "span", "tracing",
]
