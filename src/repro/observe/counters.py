"""The Counters registry: named counters fed by the runtime.

The traversals (:mod:`repro.traversal`), the brute-force and interpreter
backends, the rule generator and the compiler driver all *contribute* to
the registry installed by :func:`collect`::

    from repro.observe import collect

    with collect() as counters:
        knn(Q, R, k=5)
    counters.get("traversal.pruned")        # prune hits
    counters.rate("traversal.pruned", "traversal.visited")

Contributions happen at coarse boundaries (one ``update`` per traversal
or per compile, never per node), so the enabled path is cheap and the
disabled path — no registry installed — is a single load-and-branch in
:func:`contribute` / :func:`active_counters`.

Standard keys
-------------
``traversal.visited / pruned / approximated / recursions / base_cases /
base_case_pairs`` — merged :class:`~repro.traversal.TraversalStats`;
``traversal.frontier_peak`` — the batched engine's widest recorded
classification level (summed over tasks under parallel execution);
``bounded.epochs / deferred_prunes / bound_refreshes / pending_peak`` —
the bound-aware epoch engine's loop counters (``deferred_prunes`` counts
pairs pruned on a later epoch than the one they were generated in — the
cost of snapshot staleness); ``rules.classified.<category>``,
``rules.generated.<kind>`` — PASCAL rule machinery; ``compile.count``,
``passes.<name>_s`` and ``compile.<stage>_s`` — pipeline invocations and
wall-clock seconds.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["Counters", "collect", "active_counters", "contribute"]


class Counters:
    """A thread-safe registry of named numeric counters."""

    __slots__ = ("_values", "_lock")

    def __init__(self):
        self._values: dict[str, float] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, n: float = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + n

    def update(self, mapping: dict[str, float]) -> None:
        with self._lock:
            for name, n in mapping.items():
                self._values[name] = self._values.get(name, 0) + n

    def merge(self, other: "Counters") -> None:
        self.update(other.as_dict())

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._values.get(name, default)

    def rate(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` as a fraction (0.0 when empty)."""
        with self._lock:
            den = self._values.get(denominator, 0)
            if not den:
                return 0.0
            return self._values.get(numerator, 0) / den

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            return dict(self._values)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"


#: The installed registry, or None (the common, zero-overhead case).
_active: Counters | None = None
#: Stack of installed registries behind ``_active``.  ``collect`` blocks
#: may be entered from different threads (the serving layer executes
#: programs on a worker pool) and therefore exit in any order; the stack
#: removes *this block's* registry by identity instead of blindly
#: restoring "the previous" one, so an out-of-order exit can never
#: resurrect an already-exited registry as the active one.
_stack: list[Counters] = []
_stack_lock = threading.Lock()


def active_counters() -> Counters | None:
    return _active


def contribute(mapping: dict[str, float]) -> None:
    """Add ``mapping`` into the active registry; no-op when none is set."""
    c = _active
    if c is not None:
        c.update(mapping)


@contextmanager
def collect(counters: Counters | None = None):
    """Install a registry for the duration of the block and yield it.

    Nested ``collect`` blocks shadow the outer registry; on exit the
    most recently installed still-open registry becomes active again.

    The registry is process-global, not per-thread: contributions from
    worker threads land in whichever block is active, which is what the
    parallel executors rely on.  Concurrent ``collect`` blocks from
    different threads therefore share attribution while they overlap
    (counts merge into the innermost open block), but exiting in any
    order is safe: each block removes exactly its own registry, so a
    finished block's registry can never remain installed.
    """
    global _active
    registry = counters if counters is not None else Counters()
    with _stack_lock:
        _stack.append(registry)
        _active = registry
    try:
        yield registry
    finally:
        with _stack_lock:
            for i in range(len(_stack) - 1, -1, -1):
                if _stack[i] is registry:
                    del _stack[i]
                    break
            _active = _stack[-1] if _stack else None
