"""Structured tracing for the compiler/runtime pipeline.

A :class:`Tracer` emits one JSON object per line (JSONL) for every
*span* — a named, timed section of the pipeline: parsing, lowering, each
IR pass, code generation, tree construction, the traversal, and each
parallel task.  The schema of a span record is::

    {"event": "span", "name": "ir.pass.strength", "ts_ms": 12.4,
     "dur_ms": 0.31, "thread": 140032, "attrs": {...}}

``ts_ms`` is milliseconds since the tracer was created; ``attrs`` holds
span-specific attributes (``stage``, ``mode``, ``q_root``, ...).  Point
events use ``"event": "event"`` and omit ``dur_ms``.

Tracing is **off by default** and the disabled fast path is a single
module-level load-and-branch: :func:`span` returns a shared no-op
context manager when no tracer is installed, so instrumented code costs
nothing measurable when observability is not requested.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "Tracer", "span", "event", "enable_tracing", "disable_tracing",
    "get_tracer", "tracing",
]


class _NullSpan:
    """Shared no-op span: the entire disabled-path cost of tracing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def note(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_tracer", "name", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def note(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb):
        dur = time.perf_counter() - self._t0
        record = {
            "event": "span",
            "name": self.name,
            "dur_ms": round(dur * 1e3, 6),
            "thread": threading.get_ident(),
        }
        if exc is not None:
            record["error"] = repr(exc)
        if self.attrs:
            record["attrs"] = self.attrs
        self._tracer._emit(record)
        return False


class Tracer:
    """Writes span/event records as JSON lines to a file or stream.

    ``sink`` may be a path (opened in append mode and owned by the
    tracer) or any object with a ``write`` method.  Emission is guarded
    by a lock so parallel-task spans from worker threads interleave
    record-atomically.
    """

    def __init__(self, sink):
        if isinstance(sink, (str, os.PathLike)):
            self._fh = open(sink, "a")
            self._owns_fh = True
        else:
            self._fh = sink
            self._owns_fh = False
        self._lock = threading.Lock()
        self._t_start = time.perf_counter()
        self.records_emitted = 0

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        record = {"event": "event", "name": name,
                  "thread": threading.get_ident()}
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def _emit(self, record: dict) -> None:
        record["ts_ms"] = round(
            (time.perf_counter() - self._t_start) * 1e3, 6
        )
        line = json.dumps(record, default=str)
        with self._lock:
            self._fh.write(line + "\n")
            self.records_emitted += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns_fh:
            self._fh.close()


#: The installed tracer, or None (the common, zero-overhead case).
_tracer: Tracer | None = None


def get_tracer() -> Tracer | None:
    return _tracer


def enable_tracing(sink) -> Tracer:
    """Install a :class:`Tracer` writing to ``sink`` and return it."""
    global _tracer
    disable_tracing()
    _tracer = Tracer(sink)
    return _tracer


def disable_tracing() -> None:
    """Remove the installed tracer (closing a tracer-owned file)."""
    global _tracer
    if _tracer is not None:
        _tracer.close()
        _tracer = None


def span(name: str, **attrs):
    """A timed span context manager; no-op when tracing is disabled."""
    t = _tracer
    if t is None:
        return _NULL_SPAN
    return t.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Emit a point event; no-op when tracing is disabled."""
    t = _tracer
    if t is not None:
        t.event(name, **attrs)


@contextmanager
def tracing(sink):
    """Scoped tracing: install a tracer for the duration of the block."""
    t = enable_tracing(sink)
    try:
        yield t
    finally:
        disable_tracing()
