"""Task + data parallelism for the tree traversal (paper section IV-F)."""

from .executor import (
    default_workers, run_process_tasks, run_tasks, shutdown_pools,
)
from .scheduler import expand_frontier, parallel_dual_tree

#: Sharded-reference-layout entry points re-exported lazily: shard.py
#: pulls in the worker/process machinery (→ backend → DSL), which can
#: re-enter this package mid-import, so an eager import here would be
#: circular.
_LAZY = {
    "resolve_shard_count": "shard", "plan_shards": "shard",
    "run_sharded": "shard", "build_shard_pack": "shard",
    "build_shard_execution": "shard", "combine_shard_states": "shard",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{mod}", __name__), name)


__all__ = [
    "default_workers", "run_tasks", "run_process_tasks", "shutdown_pools",
    "expand_frontier", "parallel_dual_tree",
    "resolve_shard_count", "plan_shards", "run_sharded",
    "build_shard_pack", "build_shard_execution", "combine_shard_states",
]
