"""Task + data parallelism for the tree traversal (paper section IV-F)."""

from .executor import (
    default_workers, run_process_tasks, run_tasks, shutdown_pools,
)
from .scheduler import expand_frontier, parallel_dual_tree

__all__ = [
    "default_workers", "run_tasks", "run_process_tasks", "shutdown_pools",
    "expand_frontier", "parallel_dual_tree",
]
