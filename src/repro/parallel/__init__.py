"""Task + data parallelism for the tree traversal (paper section IV-F)."""

from .executor import default_workers, run_tasks
from .scheduler import expand_frontier, parallel_dual_tree

__all__ = [
    "default_workers", "run_tasks", "expand_frontier", "parallel_dual_tree",
]
