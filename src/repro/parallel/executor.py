"""Thread-pool task execution for the parallel traversal.

NumPy kernels release the GIL, so leaf base cases from different tasks
overlap on multicore hosts.  Tasks are closures prepared by the
scheduler; each task owns a *disjoint query range*, so state updates
never race (see :mod:`repro.parallel.scheduler`).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = ["default_workers", "run_tasks"]


def default_workers() -> int:
    """Worker count: all available cores (the paper tunes per problem;
    we default to the machine)."""
    return max(1, os.cpu_count() or 1)


def run_tasks(tasks: Sequence[Callable[[], object]], workers: int | None = None):
    """Run ``tasks`` on a thread pool; returns their results in order.

    Exceptions propagate to the caller (first one raised wins), matching
    serial semantics.
    """
    workers = workers or default_workers()
    if workers <= 1 or len(tasks) <= 1:
        return [t() for t in tasks]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(t) for t in tasks]
        return [f.result() for f in futures]
