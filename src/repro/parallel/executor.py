"""Thread- and process-pool task execution for the parallel traversal.

Two pool backends behind one abstraction:

* **thread** — NumPy kernels release the GIL, so leaf base cases from
  different tasks overlap on multicore hosts.  Tasks are closures
  prepared by the scheduler; each task owns a *disjoint query range*, so
  state updates never race (see :mod:`repro.parallel.scheduler`).
* **process** — the scalar stack engine and the batched engine's replay
  loop hold the GIL between kernel calls, so CPU-bound Python tasks
  serialize on threads.  :func:`run_process_tasks` runs *picklable task
  payloads* on worker processes that reattach the program's arrays from
  shared memory (:mod:`repro.parallel.shm`) and execute
  :func:`repro.parallel.worker.run_task`.

Pools are **persistent**: created on first use and reused across
``execute()`` calls (keyed by worker count), so a service answering
repeated queries pays process spawn and import cost once.
:func:`shutdown_pools` tears them down (registered via ``atexit``).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import (
    FIRST_EXCEPTION, ProcessPoolExecutor, ThreadPoolExecutor, wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

__all__ = [
    "default_workers", "run_tasks", "run_process_tasks", "shutdown_pools",
]


def default_workers() -> int:
    """Worker count: ``$REPRO_WORKERS`` override, else the cores *this
    process may run on*.

    The environment override (documented alongside ``REPRO_EXECUTOR``
    and ``REPRO_MP_START``) pins the pool size for reproducible shard
    and benchmark runs on shared CI hosts, where the affinity mask can
    differ run to run.  Without it, ``os.sched_getaffinity`` respects
    cgroup CPU sets and ``taskset`` restrictions (container CI, shared
    batch hosts), where ``os.cpu_count()`` reports the whole machine and
    oversubscribes the pool.  Falls back to ``cpu_count()`` on platforms
    without affinity support (macOS, Windows).
    """
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# persistent pools
# ---------------------------------------------------------------------------

_pools: dict[tuple[str, int], object] = {}
_pools_lock = threading.Lock()


def _start_method() -> str:
    """Multiprocessing start method: ``$REPRO_MP_START`` override, else
    ``fork`` where available (instant worker start, inherited imports),
    else the platform default."""
    override = os.environ.get("REPRO_MP_START", "").strip()
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _pool(kind: str, workers: int):
    key = (kind, workers)
    with _pools_lock:
        pool = _pools.get(key)
        if pool is None:
            if kind == "thread":
                pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="portal-task"
                )
            else:
                ctx = multiprocessing.get_context(_start_method())
                pool = ProcessPoolExecutor(max_workers=workers,
                                           mp_context=ctx)
            _pools[key] = pool
        return pool


def _discard_pool(kind: str, workers: int) -> None:
    with _pools_lock:
        pool = _pools.pop((kind, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every persistent pool (test isolation / interpreter
    exit).  The next ``run_*`` call lazily recreates what it needs."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def _drain(futures):
    """Settle submitted futures with serial exception semantics: the
    earliest-submitted failure wins, and queued tasks that have not
    started yet are cancelled rather than run to completion (tasks
    already executing finish — they cannot be interrupted)."""
    wait(futures, return_when=FIRST_EXCEPTION)
    if any(f.done() and not f.cancelled() and f.exception() is not None
           for f in futures):
        # Something failed: stop queued tasks, then let the tasks
        # already executing settle so the scan below sees every
        # failure — the *earliest-submitted* one must win, which is
        # not necessarily the one that finished first.
        for pending in futures:
            pending.cancel()
        wait(futures)
        for f in futures:
            if f.cancelled():
                continue
            exc = f.exception()
            if exc is not None:
                raise exc from None
    return [f.result() for f in futures]


def run_tasks(tasks: Sequence[Callable[[], object]], workers: int | None = None):
    """Run callable ``tasks`` on the persistent thread pool; returns
    their results in order.  Exceptions propagate with serial semantics
    (see :func:`_drain`)."""
    workers = workers or default_workers()
    if workers <= 1 or len(tasks) <= 1:
        return [t() for t in tasks]
    pool = _pool("thread", workers)
    return _drain([pool.submit(t) for t in tasks])


def run_process_tasks(
    fn: Callable[[object], object],
    payloads: Sequence[object],
    workers: int | None = None,
):
    """Run ``fn(payload)`` for each payload on the persistent process
    pool; returns results in submission order.

    ``fn`` and every payload must be picklable (the scheduler ships
    program *keys* and shared-memory manifests, never closures).  A
    broken pool — a worker killed by the OOM killer or a signal — is
    discarded so the next call starts from a fresh pool, then the error
    propagates.
    """
    workers = workers or default_workers()
    if workers <= 1 or len(payloads) <= 1:
        return [fn(p) for p in payloads]
    pool = _pool("process", workers)
    try:
        return _drain([pool.submit(fn, p) for p in payloads])
    except BrokenProcessPool:
        _discard_pool("process", workers)
        raise
