"""Thread-pool task execution for the parallel traversal.

NumPy kernels release the GIL, so leaf base cases from different tasks
overlap on multicore hosts.  Tasks are closures prepared by the
scheduler; each task owns a *disjoint query range*, so state updates
never race (see :mod:`repro.parallel.scheduler`).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, Sequence

__all__ = ["default_workers", "run_tasks"]


def default_workers() -> int:
    """Worker count: all available cores (the paper tunes per problem;
    we default to the machine)."""
    return max(1, os.cpu_count() or 1)


def run_tasks(tasks: Sequence[Callable[[], object]], workers: int | None = None):
    """Run ``tasks`` on a thread pool; returns their results in order.

    Exceptions propagate to the caller, matching serial semantics: the
    earliest-submitted failure wins, and queued tasks that have not
    started yet are cancelled rather than run to completion (tasks
    already executing finish — threads cannot be interrupted).
    """
    workers = workers or default_workers()
    if workers <= 1 or len(tasks) <= 1:
        return [t() for t in tasks]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(t) for t in tasks]
        wait(futures, return_when=FIRST_EXCEPTION)
        if any(f.done() and not f.cancelled() and f.exception() is not None
               for f in futures):
            # Something failed: stop queued tasks, then let the tasks
            # already executing settle so the scan below sees every
            # failure — the *earliest-submitted* one must win, which is
            # not necessarily the one that finished first.
            for pending in futures:
                pending.cancel()
            wait(futures)
            for f in futures:
                if f.cancelled():
                    continue
                exc = f.exception()
                if exc is not None:
                    raise exc from None
        return [f.result() for f in futures]
