"""Parent-side orchestration of the process executor.

:func:`parallel_dual_tree_process` is the process counterpart of
:func:`repro.parallel.scheduler.parallel_dual_tree`: the *same* query
frontier decomposition, but each (query-subtree × reference-root) task
is shipped to a worker process as a picklable payload (program token +
shared-memory manifest + generated source + ``q_root``) instead of a
closure.  Workers return partial accumulator slices — including the
bounded engine's signed per-query ``qbound`` bound array — which the
parent merges **in frontier order** into the program's state arrays —
byte-for-byte the values the thread executor's shared-array updates
would have produced, because every task writes a disjoint query range.
Tree structure (children CSR, expansion CSR, per-node levels for the
bounded engine's bound propagation) is republished through
:mod:`repro.parallel.shm` alongside the kernel operands.

Per-task ``TraversalStats`` are merged exactly as the thread path merges
them, and each worker's counter registry is shipped back and
``contribute``-d into the parent's active registry, so observability
totals are identical across executors.
"""

from __future__ import annotations

import itertools
import os

import numpy as np

from ..observe import contribute, span
from ..traversal import TraversalStats
from .executor import default_workers, run_process_tasks
from .scheduler import TASKS_PER_WORKER, expand_frontier
from .worker import STATE_ARRAY_NAMES, run_task
from . import shm

__all__ = ["parallel_dual_tree_process"]

_ephemeral_seq = itertools.count()


def _split_bindings(static_bindings: dict) -> tuple[dict, dict, list[str]]:
    """Partition the artifact's static bindings into shared-memory
    arrays, picklable scalars, and names bound to ``None``."""
    arrays: dict[str, np.ndarray] = {}
    scalars: dict = {}
    none_names: list[str] = []
    for name, value in static_bindings.items():
        if name in STATE_ARRAY_NAMES or name == "out_lists":
            continue  # workers allocate their own accumulators
        if value is None:
            none_names.append(name)
        elif isinstance(value, np.ndarray):
            arrays[name] = value
        else:
            scalars[name] = value
    return arrays, scalars, none_names


def _tree_structure(tree, prefix: str) -> dict[str, np.ndarray]:
    """The traversal-facing tree arrays a worker's ``TreeView`` needs
    (``start``/``end`` ship with the kernel bindings already).  The
    per-node level array feeds the bounded engine's bottom-up node-bound
    propagation worker-side."""
    exp_off, exp_flat = tree.expansion_children()
    return {
        f"{prefix}_is_leaf": tree.is_leaf_arr,
        f"{prefix}_child_offset": tree.child_offset,
        f"{prefix}_child_list": tree.child_list,
        f"{prefix}_exp_offsets": exp_off,
        f"{prefix}_exp_flat": exp_flat,
        f"{prefix}_level": tree.levels(),
    }


def parallel_dual_tree_process(
    qtree,
    rtree,
    source: str,
    static_bindings: dict,
    state,
    nr: int,
    token: str | None,
    engine: str = "stack",
    workers: int | None = None,
    min_tasks: int | None = None,
    codegen_backend: str = "numpy",
) -> TraversalStats:
    """Run the parallel dual-tree traversal on the process pool,
    merging worker partials into ``state``; returns the merged stats.

    ``token`` keys the shared-memory publication (the program-cache
    token); ``None`` — an uncacheable program — publishes under an
    ephemeral token that is released when the run finishes.
    """
    workers = workers or default_workers()
    frontier = expand_frontier(qtree, min_tasks or workers * TASKS_PER_WORKER)

    arrays, scalars, none_names = _split_bindings(static_bindings)
    arrays.update(_tree_structure(qtree, "q"))
    same_tree = rtree is qtree
    if not same_tree:
        # For same_tree programs the worker's r-side TreeView aliases the
        # q-side one (the r-named *kernel* bindings still ship — shm
        # dedupes the underlying buffers).
        arrays.update(_tree_structure(rtree, "r"))

    ephemeral = token is None
    if ephemeral:
        token = f"ephemeral-{os.getpid()}-{next(_ephemeral_seq)}"
    try:
        with span("parallel.shm_publish", token=token, arrays=len(arrays)):
            shm_name, manifest = shm.publish_arrays(token, arrays)

        common = {
            "token": token,
            "shm_name": shm_name,
            "manifest": manifest,
            "source": source,
            "scalars": scalars,
            "none_names": none_names,
            "state_spec": (state.outer_op, state.inner_op, state.k,
                           state.nq, nr),
            "same_tree": same_tree,
            "engine": engine,
            # Workers rebuild kernels from the shipped source with this
            # backend (a native program re-warms its JIT once per
            # worker, under the worker's own counters registry).
            "codegen_backend": codegen_backend,
        }
        payloads = [dict(common, q_root=int(q)) for q in frontier]

        with span("parallel.run_process_tasks", tasks=len(payloads),
                  workers=workers):
            results = run_process_tasks(run_task, payloads, workers=workers)
    finally:
        if ephemeral:
            shm.release_block(token)

    total = TraversalStats()
    for res in results:
        s, e = res["s"], res["e"]
        for name, chunk in res["arrays"].items():
            state.arrays[name][s:e] = chunk
        if res["lists"] is not None:
            state.lists[s:e] = res["lists"]
        total.merge(res["stats"])
        contribute(res["counters"])
    return total
