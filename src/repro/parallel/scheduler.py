"""Parallel traversal scheduling (paper section IV-F).

The paper spawns OpenMP tasks recursively "until all the threads are
saturated, at which point we switch to data parallelism".  The same
policy here: the *query* tree is expanded breadth-first until there are
enough subtrees to saturate the worker pool (task parallelism), then each
(query-subtree × reference-root) task runs a full dual-tree traversal
(data parallelism over the query points it owns).

Partitioning by **query subtree only** is what makes shared-state updates
safe: every accumulator in this codebase is indexed by query position, so
two tasks never write the same element.  Problems whose output is a
single scalar reduce per-query partials at finalisation, so they are
covered by the same invariant.
"""

from __future__ import annotations

from typing import Callable

from ..observe import span
from ..traversal import (
    TraversalStats, batched_dual_tree_traversal,
    bounded_batched_dual_tree_traversal, dual_tree_traversal,
)
from ..trees.node import ArrayTree
from .executor import default_workers, run_tasks

__all__ = ["parallel_dual_tree", "expand_frontier"]

#: Target tasks per worker: enough slack for load balancing without
#: swamping scheduling overhead.
TASKS_PER_WORKER = 4


def expand_frontier(tree: ArrayTree, min_nodes: int) -> list[int]:
    """Breadth-first expansion of the query tree until at least
    ``min_nodes`` subtree roots are available (or only leaves remain)."""
    frontier = [0]
    while len(frontier) < min_nodes:
        nxt: list[int] = []
        grew = False
        for node in frontier:
            kids = tree.children(node)
            if len(kids):
                nxt.extend(int(c) for c in kids)
                grew = True
            else:
                nxt.append(node)
        frontier = nxt
        if not grew:
            break
    return frontier


def parallel_dual_tree(
    qtree: ArrayTree,
    rtree: ArrayTree,
    prune_or_approx: Callable[[int, int], int] | None,
    base_case: Callable[[int, int, int, int], None],
    pair_min_dist: Callable[[int, int], float] | None = None,
    workers: int | None = None,
    min_tasks: int | None = None,
    engine: str = "stack",
    classify_batch: Callable | None = None,
    apply_action: Callable | None = None,
    pair_min_dist_batch: Callable | None = None,
    bound_key_batch: Callable | None = None,
    classify_bound_batch: Callable | None = None,
    base_case_group: Callable | None = None,
    qbound=None,
) -> TraversalStats:
    """Parallel counterpart of
    :func:`repro.traversal.dualtree.dual_tree_traversal`.

    ``min_tasks`` pins the query-frontier size independently of the
    worker count, giving an identical task decomposition across worker
    counts (the determinism tests rely on this).  With
    ``engine='batched'`` each query-subtree task runs the batched
    frontier traversal instead of the scalar stack engine; with
    ``engine='bounded-batched'`` it runs the epoch-based bound-aware
    engine (tasks own disjoint query subtrees, so their ``qbound``
    slices and per-task node-bound snapshots never interfere).  Same
    decomposition in all cases, so the determinism guarantee carries
    over.
    """
    workers = workers or default_workers()
    frontier = expand_frontier(qtree, min_tasks or workers * TASKS_PER_WORKER)

    def make_task(q_root: int):
        def task() -> TraversalStats:
            with span("parallel.task", q_root=q_root, engine=engine):
                if engine == "bounded-batched":
                    return bounded_batched_dual_tree_traversal(
                        qtree, rtree, bound_key_batch, classify_bound_batch,
                        base_case_group, qbound, q_root=q_root,
                    )
                if engine == "batched":
                    return batched_dual_tree_traversal(
                        qtree, rtree, classify_batch, apply_action,
                        base_case, pair_min_dist_batch=pair_min_dist_batch,
                        q_root=q_root,
                    )
                return dual_tree_traversal(
                    qtree, rtree, prune_or_approx, base_case,
                    pair_min_dist=pair_min_dist, q_root=q_root,
                )
        return task

    with span("parallel.run_tasks", tasks=len(frontier), workers=workers):
        results = run_tasks([make_task(q) for q in frontier],
                            workers=workers)
    total = TraversalStats()
    for st in results:
        total.merge(st)
    return total
