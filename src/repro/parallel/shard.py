"""Sharded reference layout: per-shard trees, replicated queries.

The scale-out inversion of the process executor's data layout.  The
scheduler path (:mod:`repro.parallel.scheduler` /
:mod:`repro.parallel.process_backend`) keeps **one replicated reference
tree** and partitions the *query* tree across tasks — which means every
worker holds (a view of) the full reference set, and reference-set size
is bounded by what one tree build can hold.  This module inverts that:

* :func:`plan_shards` partitions the reference set into ``P`` spatial
  shards by recursive median cuts (largest part first, widest-spread
  dimension, computed from per-dimension 1-D column gathers so the full
  ``(n, d)`` matrix is never re-materialised);
* one :class:`~repro.trees.node.ArrayTree` is built **per shard** (in
  parallel, through the derived-key tree cache) — no concatenated copy
  of the full reference set ever exists;
* the *query* tree is replicated: every shard's traversal runs the same
  query tree against its own small reference tree, and a per-problem
  **combine step** derived from the inner operator's algebra
  (:func:`combine_shard_states`) merges the per-shard partial states —
  elementwise Σ/Π for arithmetic reductions, elementwise min/max for
  comparative ones, a k-way merge on (value, index) for the ``K*``
  family, chunk concatenation for unions.

Correctness rests on operator decomposability (paper section II-C): a
decomposable reduction over the reference set equals the reduction of
per-shard reductions over any partition, and the spatial partition is a
partition.  Self-pair exclusion survives the layout change through the
``RSELF`` remap emitted under ``CodegenSpec.self_map`` (the shard tree is
*never* the query tree, so the unsharded diagonal test cannot apply).

Cross-shard pruning — the perf centerpiece for bound rules (k-NN,
Hausdorff): each shard only tightens its ``qbound`` from its *own*
points, so a shard holding distant points keeps traversing long after
the combined answer is settled.  Between bounded-batched epochs the
coordinator pauses every shard (``max_epochs``), min-reduces the signed
per-query bounds into a **global bound**, and broadcasts it back as the
engine's ``extern_bound``.  Shards whose root-level promise key cannot
beat the worst global bound are killed wholesale (``shard.pruned``);
in process mode individual paused tasks are killed against their query
slice's bound (``shard.tasks_pruned``).  The broadcast only removes
dominated work — any candidate it prunes is beaten by a candidate
retained on another shard — so the combined output is exact.

Observability: ``shard.runs``, ``shard.builds``, ``shard.pruned``,
``shard.tasks_pruned``, ``shard.rounds`` counters plus ``shard.run`` /
``shard.tree_build`` / ``shard.shm_publish`` / ``shard.phase`` spans,
and ``PortalExpr.stats()["shard"]`` carries per-shard traversal stats.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass

import numpy as np

from ..dsl.ops import MIN_LIKE, PortalOp, op_info
from ..observe import contribute, span
from ..traversal import (
    TraversalStats, batched_dual_tree_traversal,
    bounded_batched_dual_tree_traversal, dual_tree_traversal,
)
from . import shm
from .executor import default_workers, run_process_tasks, run_tasks
from .process_backend import _split_bindings, _tree_structure
from .scheduler import TASKS_PER_WORKER, expand_frontier
from .worker import run_task

__all__ = [
    "AUTO_SHARD_MIN_POINTS", "SEED_EPOCHS", "resolve_shard_count",
    "plan_shards", "ShardPack", "ShardExecution", "build_shard_pack",
    "build_shard_execution", "combine_shard_states", "run_sharded",
]

#: ``shards='auto'`` targets at least this many reference points per
#: shard: below it, per-shard tree builds and the combine step cost more
#: than the parallelism returns (measured on the Table IV scaling runs).
AUTO_SHARD_MIN_POINTS = 200_000

#: Epochs every shard runs before the first cross-shard bound broadcast.
#: Enough for the engine's ramp (64 → 4096 doubling) to run real base
#: cases and produce finite bounds, small enough that a dominated shard
#: is killed before touching the bulk of its pool.
SEED_EPOCHS = 12

_ephemeral_seq = itertools.count()
_ROOT = np.zeros(1, dtype=np.int64)


def resolve_shard_count(shards, nr: int, workers: int | None = None) -> int:
    """Resolve the ``shards`` execute() option to a concrete count.

    ``'auto'`` picks ``min(workers, nr // AUTO_SHARD_MIN_POINTS)`` — one
    shard per worker, but never shards small reference sets where the
    per-shard overhead dominates.  Explicit counts are clamped to the
    reference-set size.
    """
    if shards in (None, 1):
        return 1
    nr = int(nr)
    if shards == "auto":
        cap = max(1, nr // AUTO_SHARD_MIN_POINTS)
        return max(1, min(workers or default_workers(), cap, nr))
    count = int(shards)
    if count < 1:
        raise ValueError(f"shards must be >= 1, got {count}")
    return max(1, min(count, nr))


def viable_shard_counts(nr: int, workers: int,
                        min_points: int = AUTO_SHARD_MIN_POINTS) -> list[int]:
    """Shard counts worth measuring for an ``nr``-point reference set.

    Always ``[1]``; adds one-per-worker sharding only when every shard
    would hold at least ``min_points`` points and there is more than one
    worker to feed — below that the per-shard build + combine overhead
    always loses, so the policy search never spends budget on it.
    """
    counts = [1]
    if workers and workers > 1:
        cap = max(1, int(nr) // int(min_points))
        candidate = min(int(workers), cap)
        if candidate > 1:
            counts.append(candidate)
    return counts


def plan_shards(points: np.ndarray, nshards: int) -> list[np.ndarray]:
    """Partition ``points`` into ``nshards`` spatially compact index sets.

    Top-of-kd-tree median cuts: repeatedly split the largest part at the
    median of its widest-spread dimension until ``nshards`` parts exist.
    Each spread/median is computed from a 1-D gather of one coordinate
    column (``points[idx, d]``) — the full ``(len(idx), d)`` row gather
    is left to the per-shard tree build, so planning never materialises
    a second copy of the dataset.  Deterministic for a given input; the
    returned index arrays are ascending and tile ``[0, n)`` exactly.
    """
    n = len(points)
    parts: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    while len(parts) < nshards:
        j = max(range(len(parts)), key=lambda i: len(parts[i]))
        idx = parts[j]
        if len(idx) < 2:  # pragma: no cover - resolve_shard_count clamps
            break
        spreads = [
            float(points[idx, d].max() - points[idx, d].min())
            for d in range(points.shape[1])
        ]
        col = points[idx, int(np.argmax(spreads))]
        half = len(idx) // 2
        sel = np.argpartition(col, half)
        parts[j:j + 1] = [np.sort(idx[sel[:half]]), np.sort(idx[sel[half:]])]
    return parts


@dataclass
class ShardPack:
    """Cacheable per-shard products of one compile: trees, the
    shard-position → original-reference-id maps, and the reference-side
    static kernel bindings (including ``RSELF`` for self-map programs)."""

    count: int
    trees: list
    orig: list[np.ndarray]
    bindings: list[dict]


@dataclass
class ShardExecution:
    """Per-instantiation runnable state: one fresh full-``nq``
    :class:`~repro.backend.state.State` and one bound kernel set per
    shard (states are never shared across programs)."""

    pack: ShardPack
    states: list
    kernels: list


def build_shard_pack(
    kind: str,
    rpoints: np.ndarray,
    rweights: np.ndarray | None,
    leaf_size: int,
    split: str,
    nshards: int,
    base_key: tuple,
    inv_qperm: np.ndarray | None = None,
    cache_enabled: bool = True,
) -> ShardPack:
    """Plan the shards and build one tree per shard, in parallel.

    ``base_key`` is the parent dataset's memoized fingerprint tuple —
    the derived tree-cache key (see
    :func:`repro.backend.cache.cached_build_subset_tree`) means repeated
    compiles over the same data rebuild nothing.  ``inv_qperm`` (original
    id → query-tree position) is supplied for self-map programs and
    yields each shard's ``RSELF`` binding.
    """
    from ..backend.cache import cached_build_subset_tree

    parts = plan_shards(rpoints, nshards)
    nshards = len(parts)
    with span("shard.tree_build", shards=nshards, tree=kind):
        trees = run_tasks([
            (lambda p=p, i=i: cached_build_subset_tree(
                kind, rpoints, p, leaf_size, rweights, split,
                base_key, (i, nshards), enabled=cache_enabled))
            for i, p in enumerate(parts)
        ])
    origs: list[np.ndarray] = []
    bindings: list[dict] = []
    for i, (tree, part) in enumerate(zip(trees, parts)):
        orig = np.ascontiguousarray(part[tree.perm])
        rweight = (
            tree.wsum if tree.weights is not None
            else (tree.end - tree.start).astype(np.float64)
        )
        rcentroid = tree.wcentroid if tree.weights is not None else tree.centroid
        b = dict(
            RCOL=tree.points_col, RROW=tree.points, RN2=tree.sqnorms(),
            rlo=tree.lo, rhi=tree.hi, rstart=tree.start, rend=tree.end,
            rcentroid=rcentroid, rweight=rweight,
            rdiam2=tree.diameter ** 2, rw=tree.weights,
        )
        if inv_qperm is not None:
            b["RSELF"] = np.ascontiguousarray(inv_qperm[orig])
        origs.append(orig)
        bindings.append(b)
    contribute({"shard.builds": nshards})
    return ShardPack(count=nshards, trees=trees, orig=origs, bindings=bindings)


def build_shard_execution(
    pack: ShardPack,
    source: str,
    code,
    codegen_backend: str,
    q_bindings: dict,
    outer_op,
    inner_op,
    k: int | None,
    nq: int,
) -> ShardExecution:
    """Allocate fresh per-shard states and bind the generated kernels
    against (query-side bindings + this shard's reference bindings +
    this shard's accumulators)."""
    from ..backend.backends import get_backend
    from ..backend.state import allocate_state

    backend = get_backend(codegen_backend)
    states, kernels = [], []
    for i in range(pack.count):
        st = allocate_state(outer_op, inner_op, k, nq, int(pack.trees[i].n))
        bindings = dict(q_bindings)
        bindings.update(pack.bindings[i])
        bindings.update(st.arrays)
        if st.lists is not None:
            bindings["out_lists"] = st.lists
        kernels.append(backend.bind(source, code, bindings))
        states.append(st)
    return ShardExecution(pack=pack, states=states, kernels=kernels)


# ---------------------------------------------------------------------------
# combine step
# ---------------------------------------------------------------------------

def combine_shard_states(shard_exec: ShardExecution, final_state) -> None:
    """Merge per-shard partial states into ``final_state`` using the
    inner operator's reduction algebra.

    Shard ``best_idx`` entries are shard-tree positions; they are mapped
    to *original* reference ids here (through each shard's ``orig``
    array), so finalisation runs with ``rperm=None``.  Ties — equal
    values on different shards — resolve to the lowest shard index
    (stable sorts / first-hit argmin), which is deterministic but may
    legitimately differ from the unsharded traversal-order tie-break.
    """
    states = shard_exec.states
    pack = shard_exec.pack
    op = final_state.inner_op
    info = op_info(op)
    k = final_state.k

    if op is PortalOp.SUM:
        final_state.arrays["acc"][:] = np.sum(
            [st.arrays["acc"] for st in states], axis=0)
    elif op is PortalOp.PROD:
        final_state.arrays["acc"][:] = np.prod(
            [st.arrays["acc"] for st in states], axis=0)
    elif op in (PortalOp.MIN, PortalOp.MAX):
        red = np.minimum if op is PortalOp.MIN else np.maximum
        final_state.arrays["best"][:] = red.reduce(
            np.stack([st.arrays["best"] for st in states]))
    elif op in (PortalOp.ARGMIN, PortalOp.ARGMAX):
        vals = np.stack([st.arrays["best"] for st in states])  # (P, nq)
        sel = (np.argmin(vals, axis=0) if op is PortalOp.ARGMIN
               else np.argmax(vals, axis=0))
        cols = np.arange(vals.shape[1])
        final_state.arrays["best"][:] = vals[sel, cols]
        idxs = np.stack([st.arrays["best_idx"] for st in states])
        chosen = idxs[sel, cols]
        mapped = np.full_like(chosen, -1)
        for s in range(pack.count):
            m = (sel == s) & (chosen >= 0)
            mapped[m] = pack.orig[s][chosen[m]]
        final_state.arrays["best_idx"][:] = mapped
    elif info.requires_k:  # KMIN / KMAX / KARGMIN / KARGMAX
        vals = np.concatenate([st.arrays["best"] for st in states], axis=1)
        sign = 1.0 if op in MIN_LIKE else -1.0
        order = np.argsort(sign * vals, axis=1, kind="stable")[:, :k]
        final_state.arrays["best"][:] = np.take_along_axis(vals, order,
                                                           axis=1)
        if info.returns_index:
            mapped_cols = []
            for s, st in enumerate(states):
                idx = st.arrays["best_idx"]
                out = np.full_like(idx, -1)
                m = idx >= 0
                out[m] = pack.orig[s][idx[m]]
                mapped_cols.append(out)
            idxs = np.concatenate(mapped_cols, axis=1)
            final_state.arrays["best_idx"][:] = np.take_along_axis(
                idxs, order, axis=1)
    elif op in (PortalOp.UNION, PortalOp.UNIONARG):
        for qi in range(final_state.nq):
            merged = final_state.lists[qi]
            merged.clear()
            for s, st in enumerate(states):
                for chunk in st.lists[qi]:
                    if op is PortalOp.UNIONARG:
                        chunk = pack.orig[s][
                            np.asarray(chunk, dtype=np.int64)]
                    merged.append(chunk)
    else:  # pragma: no cover - FORALL never reaches tree mode
        raise ValueError(f"cannot combine shards for operator {op.name}")

    if "qbound" in final_state.arrays:
        # Purely observational after the combine; the signed convention
        # makes min the right reduction for both bound-rule kinds.
        final_state.arrays["qbound"][:] = np.minimum.reduce(
            [st.arrays["qbound"] for st in states])


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def _root_key(kernels, q_root: int = 0) -> float:
    """Signed promise key of (``q_root`` × shard root) — the most
    optimistic value this shard could still contribute under that query
    subtree.  Geometry only; state-independent."""
    q = np.array([q_root], dtype=np.int64)
    return float(np.asarray(kernels.bound_key_batch(q, _ROOT)).reshape(-1)[0])


def _merge_result(state, res: dict) -> None:
    s, e = res["s"], res["e"]
    for name, chunk in res["arrays"].items():
        state.arrays[name][s:e] = chunk
    if res["lists"] is not None:
        state.lists[s:e] = res["lists"]


def run_sharded(
    qtree,
    shard_exec: ShardExecution,
    final_state,
    engine: str,
    *,
    parallel: bool = False,
    executor: str = "thread",
    workers: int | None = None,
    min_tasks: int | None = None,
    token: str | None = None,
    q_bindings: dict | None = None,
    source: str = "",
    codegen_backend: str = "numpy",
) -> tuple[TraversalStats, dict]:
    """Run one compiled program across its reference shards and combine.

    Returns ``(merged TraversalStats, shard_info)`` where ``shard_info``
    carries the broadcast counters and per-shard stats surfaced through
    ``stats()["shard"]``.  Thread/serial execution runs one traversal
    per shard in-process (accumulating into per-shard state directly);
    process execution fans (shard × query-subtree) payloads to the
    worker pool through per-shard shared-memory blocks.
    """
    P = shard_exec.pack.count
    info: dict = {"count": P, "rounds": 1, "pruned": 0, "tasks_pruned": 0}
    workers_n = workers or default_workers()
    use_process = parallel and executor == "process" and workers_n > 1
    with span("shard.run", shards=P, engine=engine,
              executor="process" if use_process else "thread"):
        if use_process:
            per_shard = _run_process(
                qtree, shard_exec, engine, workers_n, min_tasks, token,
                q_bindings or {}, source, codegen_backend, info)
        else:
            per_shard = _run_inline(
                qtree, shard_exec, engine,
                workers_n if parallel else 1, info)

    combine_shard_states(shard_exec, final_state)
    total = TraversalStats()
    for st in per_shard:
        total.merge(st)
    if not use_process:
        # Process workers contribute traversal counters via their
        # shipped registries; in-process traversals ran with caller-owned
        # stats objects, so contribute the merged totals once here.
        total.contribute()
    info["per_shard"] = [st.as_dict() for st in per_shard]
    contribute({
        "shard.runs": 1,
        "shard.pruned": info["pruned"],
        "shard.tasks_pruned": info["tasks_pruned"],
        "shard.rounds": info["rounds"],
    })
    return total, info


def _run_inline(qtree, shard_exec, engine, pool_workers, info):
    """Serial/thread path: one traversal per shard against its own state
    (shards are the unit of thread parallelism — the layout inversion)."""
    pack, states, kernels = (shard_exec.pack, shard_exec.states,
                             shard_exec.kernels)
    P = pack.count
    stats_list = [TraversalStats() for _ in range(P)]

    if engine != "bounded-batched":
        def make(i):
            kk = kernels[i]
            def run():
                if engine == "batched":
                    batched_dual_tree_traversal(
                        qtree, pack.trees[i], kk.classify_batch,
                        kk.apply_action, kk.base_case,
                        pair_min_dist_batch=kk.pair_min_dist_batch,
                        stats=stats_list[i])
                else:
                    dual_tree_traversal(
                        qtree, pack.trees[i], kk.prune_or_approx,
                        kk.base_case, pair_min_dist=kk.pair_min_dist,
                        stats=stats_list[i])
            return run
        run_tasks([make(i) for i in range(P)], workers=pool_workers)
        return stats_list

    # Bounded engine: epoch-bounded rounds with a cross-shard bound
    # broadcast at each barrier.  Every round resumes the shards still
    # pending under the latest global bound and a growing epoch budget
    # (seed rounds are narrow so dominated shards are killed before
    # touching the bulk of their pools; later rounds widen so the
    # barrier overhead amortises).  A shard whose root promise key
    # cannot beat the *worst* global bound over all queries is killed
    # wholesale — a query whose bound is still ``+inf`` somewhere keeps
    # every shard alive, since any shard might hold its neighbours.
    pauses = [dict() for _ in range(P)]
    pending: list = [None] * P
    extern = None
    budget = SEED_EPOCHS
    alive = list(range(P))
    while alive:
        def make(i):
            kk = kernels[i]
            resume = pending[i]
            def run():
                pauses[i].clear()
                bounded_batched_dual_tree_traversal(
                    qtree, pack.trees[i], kk.bound_key_batch,
                    kk.classify_bound_batch, kk.base_case_group,
                    states[i].arrays["qbound"], stats=stats_list[i],
                    max_epochs=budget, resume=resume,
                    extern_bound=extern, pause_out=pauses[i])
            return run

        with span("shard.phase", phase=info["rounds"], tasks=len(alive)):
            run_tasks([make(i) for i in alive], workers=pool_workers)

        still = [i for i in alive
                 if pauses[i].get("pending") is not None]
        if not still:
            break
        for i in still:
            pending[i] = pauses[i]["pending"]
        info["rounds"] += 1
        extern = np.minimum.reduce([st.arrays["qbound"] for st in states])
        gmax = float(np.max(extern))
        alive = []
        for i in still:
            if _root_key(kernels[i]) > gmax:
                info["pruned"] += 1
            else:
                alive.append(i)
        budget *= 4
    return stats_list


def _run_process(qtree, shard_exec, engine, workers_n, min_tasks, token,
                 q_bindings, source, codegen_backend, info):
    """Process path: publish one query-side block plus one block per
    shard, fan (shard × query-subtree) tasks out, broadcast bounds
    between phases, merge partial slices back into per-shard states."""
    pack, states, kernels = (shard_exec.pack, shard_exec.states,
                             shard_exec.kernels)
    P = pack.count
    ephemeral = token is None
    base = token or f"ephemeral-shard-{os.getpid()}-{next(_ephemeral_seq)}"
    published: list[str] = []

    q_arrays, q_scalars, _ = _split_bindings(q_bindings)
    q_arrays.update(_tree_structure(qtree, "q"))

    try:
        with span("shard.shm_publish", shards=P):
            q_token = f"{base}::q"
            q_name, q_manifest = shm.publish_arrays(q_token, q_arrays)
            published.append(q_token)
            r_blocks = []
            for i in range(P):
                r_arrays, r_scalars, _ = _split_bindings(pack.bindings[i])
                r_arrays.update(_tree_structure(pack.trees[i], "r"))
                r_token = f"{base}::r{i}"
                r_name, r_manifest = shm.publish_arrays(r_token, r_arrays)
                published.append(r_token)
                r_blocks.append((r_name, r_manifest, r_scalars))

        tasks_target = min_tasks or workers_n * TASKS_PER_WORKER
        frontier = [int(q) for q in
                    expand_frontier(qtree, max(1, -(-tasks_target // P)))]

        commons = []
        for i in range(P):
            merged = dict(q_bindings)
            merged.update(pack.bindings[i])
            none_names = [name for name, value in merged.items()
                          if value is None]
            scalars = dict(q_scalars)
            scalars.update(r_blocks[i][2])
            commons.append({
                "token": f"{base}::s{i}",
                "shm_name": q_name,
                "manifest": q_manifest,
                "r_block": (r_blocks[i][0], r_blocks[i][1]),
                "source": source,
                "scalars": scalars,
                "none_names": none_names,
                "state_spec": (states[i].outer_op, states[i].inner_op,
                               states[i].k, states[i].nq,
                               int(pack.trees[i].n)),
                "same_tree": False,
                "engine": engine,
                "codegen_backend": codegen_backend,
            })

        bounded = engine == "bounded-batched"
        phase1 = []
        for i in range(P):
            for q in frontier:
                payload = dict(commons[i], q_root=q)
                if bounded:
                    payload["max_epochs"] = SEED_EPOCHS
                phase1.append((i, q, payload))

        with span("shard.phase", phase=1, tasks=len(phase1)):
            results = run_process_tasks(
                run_task, [p for _, _, p in phase1], workers=workers_n)

        per_shard_stats = [TraversalStats() for _ in range(P)]
        task_results: dict[tuple[int, int], dict] = {}
        for (i, q, _), res in zip(phase1, results):
            task_results[(i, q)] = res
            _merge_result(states[i], res)
            per_shard_stats[i].merge(res["stats"])
            contribute(res["counters"])

        pending = [key for key, res in task_results.items()
                   if res.get("pending") is not None]
        if bounded and pending:
            info["rounds"] = 2
            gbound = np.minimum.reduce(
                [st.arrays["qbound"] for st in states])
            gmax = float(np.max(gbound))
            killed_shards = set()
            for i in {key[0] for key in pending}:
                if _root_key(kernels[i]) > gmax:
                    killed_shards.add(i)
                    info["pruned"] += 1
            phase2 = []
            for (i, q) in pending:
                if i in killed_shards:
                    continue
                res = task_results[(i, q)]
                s, e = res["s"], res["e"]
                if _root_key(kernels[i], q_root=q) > float(
                        np.max(gbound[s:e])):
                    info["tasks_pruned"] += 1
                    continue
                phase2.append((i, q, dict(
                    commons[i], q_root=q, resume=res["pending"],
                    state_arrays=res["arrays"], state_lists=res["lists"],
                    extern=np.ascontiguousarray(gbound[s:e]))))
            if phase2:
                with span("shard.phase", phase=2, tasks=len(phase2)):
                    results2 = run_process_tasks(
                        run_task, [p for _, _, p in phase2],
                        workers=workers_n)
                for (i, q, _), res in zip(phase2, results2):
                    _merge_result(states[i], res)
                    per_shard_stats[i].merge(res["stats"])
                    contribute(res["counters"])
    finally:
        if ephemeral:
            for t in published:
                shm.release_block(t)
    return per_shard_stats
