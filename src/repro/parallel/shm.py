"""Shared-memory publication of program data for process workers.

The process executor cannot ship trees and dataset columns to workers by
pickling them — serialising a multi-MB dataset per task would erase the
parallel win.  Instead the parent *publishes* every ndarray a compiled
program reads (Storage columns, ArrayTree structure and metadata) into a
single ``multiprocessing.shared_memory`` block, once per program, and
ships only the block's **manifest** — ``{name: (offset, dtype, shape)}``
— with each task.  Workers reattach zero-copy and build read-only ndarray
views over the block.

Blocks are content-addressed: the registry key is the program token
(derived from the program-cache key, i.e. the blake2b dataset
fingerprints plus the compile-relevant options), so repeated
``execute()`` calls over the same data republish nothing
(``shm.publish.hit``).  Lifecycle mirrors the execution caches: a small
LRU bounded alongside ``tree_cache``, evicted blocks are closed and
unlinked, and :func:`release_shared_blocks` (called by
``repro.backend.cache.clear_caches`` and at interpreter exit) drops
everything.
"""

from __future__ import annotations

import atexit
import threading
from collections import OrderedDict
from multiprocessing import shared_memory

import numpy as np

from ..observe import contribute

__all__ = [
    "publish_arrays", "attach_arrays", "release_block", "evict_stale_blocks",
    "release_shared_blocks", "shared_block_stats",
]

#: Alignment of each array inside a block; 64 bytes keeps every view on
#: its own cache line boundary regardless of preceding dtypes.
_ALIGN = 64

#: Max blocks kept published.  Sized with ``tree_cache`` in mind: a block
#: holds one program's dataset + trees, and the bench/test workloads
#: cycle through a handful of datasets.  The sharded layout publishes one
#: query block plus one block *per shard* under a single program (tokens
#: ``{token}::q`` / ``{token}::r{i}``), so the bound accommodates a
#: couple of concurrently-live sharded programs at the default shard
#: counts without thrashing.
MAX_BLOCKS = 24


class SharedBlock:
    """One published shared-memory segment holding a set of named arrays.

    ``manifest`` maps each array name to ``(offset, dtype_str, shape)``.
    Arrays that alias the same buffer (e.g. a tree's ``start`` array
    published under two names) are written once and share an offset.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        packed: dict[str, np.ndarray] = {
            name: np.ascontiguousarray(arr) for name, arr in arrays.items()
        }
        # Dedupe by content identity of the prepared buffer: two names
        # whose contiguous forms share (address, dtype, shape) map to
        # one copy in the block.
        slots: dict[tuple, int] = {}
        manifest: dict[str, tuple[int, str, tuple[int, ...]]] = {}
        order: list[tuple[int, np.ndarray]] = []
        total = 0
        for name, arr in packed.items():
            ident = (arr.__array_interface__["data"][0], arr.dtype.str,
                     arr.shape)
            offset = slots.get(ident)
            if offset is None:
                offset = (total + _ALIGN - 1) // _ALIGN * _ALIGN
                total = offset + arr.nbytes
                slots[ident] = offset
                order.append((offset, arr))
            manifest[name] = (offset, arr.dtype.str, arr.shape)

        self.shm = shared_memory.SharedMemory(create=True,
                                              size=max(total, 1))
        for offset, arr in order:
            dst = np.ndarray(arr.shape, dtype=arr.dtype,
                             buffer=self.shm.buf, offset=offset)
            dst[...] = arr
        self.manifest = manifest
        self.nbytes = max(total, 1)
        # The publishing process owns the segment's lifetime; only the
        # owner may unlink.  close() used to be callable twice through
        # two paths at interpreter shutdown (LRU eviction / explicit
        # release racing the atexit hook), where the second unlink()
        # raised — the flag pair makes it idempotent and owner-guarded.
        self._owner = True
        self._closed = False
        self._close_lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> None:
        """Close (and, for the owner, unlink) the segment.  Idempotent
        and tolerant of a segment already gone — a worker still attached
        or a concurrent release must never raise, least of all from the
        ``atexit`` hook."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self.shm.close()
        except (OSError, ValueError):  # pragma: no cover - shutdown race
            pass
        if not self._owner:
            return
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - platform shutdown quirks
            pass


# ---------------------------------------------------------------------------
# parent-side registry
# ---------------------------------------------------------------------------

_blocks: OrderedDict[str, SharedBlock] = OrderedDict()
_blocks_lock = threading.Lock()


def publish_arrays(
    token: str, arrays: dict[str, np.ndarray]
) -> tuple[str, dict]:
    """Publish ``arrays`` under ``token``; returns ``(shm_name, manifest)``.

    Idempotent per token: a block already published for this token is
    reused without touching the arrays (``shm.publish.hit``).  The
    registry is a small LRU — evicted blocks are closed and unlinked,
    which is safe because workers hold their own attachment open.
    """
    with _blocks_lock:
        block = _blocks.get(token)
        if block is not None:
            _blocks.move_to_end(token)
            contribute({"shm.publish.hit": 1})
            return block.name, block.manifest
    # Build outside the lock: packing copies array data and may be slow.
    block = SharedBlock(arrays)
    evicted: list[SharedBlock] = []
    with _blocks_lock:
        race = _blocks.get(token)
        if race is not None:
            _blocks.move_to_end(token)
            contribute({"shm.publish.hit": 1})
            evicted.append(block)  # lost the race; discard ours
            block = race
        else:
            _blocks[token] = block
            contribute({"shm.publish.miss": 1})
            while len(_blocks) > MAX_BLOCKS:
                _, old = _blocks.popitem(last=False)
                evicted.append(old)
    for old in evicted:
        old.close()
    return block.name, block.manifest


def release_block(token: str) -> None:
    """Unpublish one token's block (no-op if absent)."""
    with _blocks_lock:
        block = _blocks.pop(token, None)
    if block is not None:
        block.close()


def evict_stale_blocks(tokens) -> int:
    """Unpublish every block keyed by one of ``tokens`` or by a derived
    shard token (``{token}::q`` / ``{token}::r{i}``).

    The mutation-staleness hook: ``publish_arrays`` is idempotent per
    token and workers cache attachments per token, so after an in-place
    dataset mutation the old token's blocks would keep serving the
    pre-mutation columns to a warm process pool.  ``Storage`` calls this
    from its version bump; evictions are counted under
    ``shm.stale_evicted``.  Returns the number of blocks dropped.
    """
    prefixes = tuple(t for t in tokens if t)
    if not prefixes:
        return 0
    exact = set(prefixes)
    with _blocks_lock:
        victims = [t for t in _blocks
                   if t in exact or any(t.startswith(p + "::")
                                        for p in prefixes)]
        blocks = [_blocks.pop(t) for t in victims]
    for block in blocks:
        block.close()
    if blocks:
        contribute({"shm.stale_evicted": len(blocks)})
    return len(blocks)


def release_shared_blocks() -> None:
    """Unpublish everything (cache-clear hook and ``atexit``)."""
    with _blocks_lock:
        blocks = list(_blocks.values())
        _blocks.clear()
    for block in blocks:
        block.close()


def _atexit_release() -> None:
    # Interpreter shutdown must never raise from here, even racing a
    # concurrent eviction or a worker mid-detach.
    try:
        release_shared_blocks()
    except Exception:  # pragma: no cover - shutdown only
        pass


atexit.register(_atexit_release)


def shared_block_stats() -> dict:
    """Occupancy of the publication registry, for diagnostics."""
    with _blocks_lock:
        return {
            "blocks": len(_blocks),
            "bytes": sum(b.nbytes for b in _blocks.values()),
        }


# ---------------------------------------------------------------------------
# worker-side attachment
# ---------------------------------------------------------------------------

def attach_arrays(
    shm_name: str, manifest: dict
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Attach to a published block; returns the handle and read-only views.

    The caller must keep the returned handle alive as long as the views
    are in use and ``close()`` (not unlink) it afterwards — the parent
    owns the segment's lifetime.
    """
    # CPython registers *attached* segments with the resource tracker
    # as if the attacher owned them (bpo-39959).  Pool workers share the
    # parent's tracker (the fd is inherited by fork and spawn alike) and
    # its cache is a set, so the duplicate registration is a no-op — and
    # unregistering here would strip the parent's own entry, making its
    # eventual unlink() complain.  So: attach, touch nothing.
    handle = shared_memory.SharedMemory(name=shm_name)
    views: dict[str, np.ndarray] = {}
    for name, (offset, dtype_str, shape) in manifest.items():
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str),
                          buffer=handle.buf, offset=offset)
        view.flags.writeable = False
        views[name] = view
    return handle, views
