"""Process-pool worker side of the process executor.

:func:`run_task` is the (picklable, module-level) function the parent
submits to the process pool.  A task payload carries no arrays and no
closures — only the shared-memory manifest, the generated kernel
*source*, the state allocation spec and the query-subtree root id.  The
worker:

1. attaches the published block (:func:`repro.parallel.shm.attach_arrays`)
   and builds read-only views — zero copies of the dataset or trees;
2. recompiles the generated source and binds it against **worker-local
   accumulator arrays** (full-size, identity-filled) — the per-task
   partial state;
3. runs the same stack/batched traversal the thread executor would run,
   rooted at ``q_root``, under a local counters registry;
4. returns only its query slice ``[qstart[q_root], qend[q_root])`` of
   each accumulator plus the task's ``TraversalStats`` and counters.

Because every accumulator is indexed by query position and a task rooted
at ``q_root`` touches exactly its own slice (the disjoint-query-range
invariant of :mod:`repro.parallel.scheduler`), the parent can merge the
returned slices in frontier order and obtain state bit-identical to the
thread executor's shared-array updates.

Attachments, compiled namespaces and state arrays are cached per program
token, so a warm worker re-runs tasks for a known program without
re-attaching or re-``exec``-ing anything — it only resets its slice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..backend.backends import get_backend
from ..backend.codegen import GeneratedKernels
from ..backend.state import State, allocate_state
from ..dsl.ops import op_info
from ..observe import collect
from ..traversal import (
    batched_dual_tree_traversal, bounded_batched_dual_tree_traversal,
    dual_tree_traversal,
)
from . import shm

__all__ = ["run_task", "TreeView", "reset_state_range"]

#: Accumulator names bound by the parent that workers allocate fresh.
STATE_ARRAY_NAMES = frozenset({"best", "best_idx", "acc", "dense", "qbound"})


class TreeView:
    """The minimal tree facade the traversal engines touch, backed by
    shared-memory views (``start``/``end``/``is_leaf_arr``/``children``/
    ``expansion_children``/``levels`` — everything else about
    :class:`~repro.trees.node.ArrayTree` stays parent-side)."""

    __slots__ = ("start", "end", "is_leaf_arr", "child_offset",
                 "child_list", "_exp", "_level", "_bound_plan")

    def __init__(self, views: dict[str, np.ndarray], prefix: str):
        self.start = views[f"{prefix}start"]
        self.end = views[f"{prefix}end"]
        self.is_leaf_arr = views[f"{prefix}_is_leaf"]
        self.child_offset = views[f"{prefix}_child_offset"]
        self.child_list = views[f"{prefix}_child_list"]
        self._exp = (views[f"{prefix}_exp_offsets"],
                     views[f"{prefix}_exp_flat"])
        self._level = views[f"{prefix}_level"]
        # Populated lazily by the bounded engine's _bound_plan().
        self._bound_plan = None

    def children(self, i: int) -> np.ndarray:
        return self.child_list[self.child_offset[i]:self.child_offset[i + 1]]

    def expansion_children(self) -> tuple[np.ndarray, np.ndarray]:
        return self._exp

    def levels(self) -> np.ndarray:
        return self._level


def reset_state_range(state: State, s: int, e: int) -> None:
    """Reset accumulators over query positions ``[s, e)`` to their
    allocation-time identities, so a cached worker program can run a new
    task over that range as if the state were fresh."""
    info = op_info(state.inner_op)
    if state.lists is not None:
        for i in range(s, e):
            state.lists[i] = []
    for name, arr in state.arrays.items():
        if name == "best_idx":
            arr[s:e] = -1
        elif name == "dense":
            arr[s:e] = 0.0
        elif name == "qbound":
            arr[s:e] = np.inf  # signed-bound identity, both rule kinds
        else:
            arr[s:e] = info.identity


@dataclass
class _WorkerProgram:
    handle: object
    views: dict[str, np.ndarray]
    state: State
    kernels: GeneratedKernels
    qview: TreeView
    rview: TreeView
    rhandle: object = None

    def close(self) -> None:
        # Drop the views before the mapping: ndarrays over shm.buf keep
        # the segment mapped and make close() raise BufferError.
        self.views = {}
        self.qview = self.rview = None  # type: ignore[assignment]
        self.kernels = None  # type: ignore[assignment]
        for handle in (self.handle, self.rhandle):
            if handle is None:
                continue
            try:
                handle.close()
            except BufferError:
                pass


_PROGRAMS: OrderedDict[str, _WorkerProgram] = OrderedDict()
# Sized for sharded programs, where every shard is its own worker
# program (token "{token}::s{i}"): a warm worker can hold all shards of
# a couple of programs without evicting between epochs.
_MAX_PROGRAMS = 16


def _program(payload: dict) -> _WorkerProgram:
    token = payload["token"]
    prog = _PROGRAMS.get(token)
    if prog is not None:
        _PROGRAMS.move_to_end(token)
        return prog

    handle, views = shm.attach_arrays(payload["shm_name"],
                                      payload["manifest"])
    rhandle = None
    r_block = payload.get("r_block")
    if r_block is not None:
        # Sharded layout: the reference side (shard tree + columns +
        # RSELF) lives in its own per-shard block, published separately
        # from the query-side block every shard reuses.
        rhandle, rviews = shm.attach_arrays(r_block[0], r_block[1])
        views = {**views, **rviews}
    outer_op, inner_op, k, nq, nr = payload["state_spec"]
    state = allocate_state(outer_op, inner_op, k, nq, nr)
    bindings: dict = dict(views)
    for name in payload["none_names"]:
        bindings[name] = None
    bindings.update(payload["scalars"])
    bindings.update(state.arrays)
    if state.lists is not None:
        bindings["out_lists"] = state.lists
    source = payload["source"]
    code = compile(source, "<portal-worker>", "exec")
    # Rebuild with the backend that emitted the source: a native program
    # JIT-compiles (warms) its kernels here, once per worker process.
    backend = get_backend(payload.get("codegen_backend", "numpy"))
    kernels = backend.bind(source, code, bindings)
    qview = TreeView(views, "q")
    rview = qview if payload["same_tree"] else TreeView(views, "r")

    prog = _WorkerProgram(handle=handle, views=views, state=state,
                          kernels=kernels, qview=qview, rview=rview,
                          rhandle=rhandle)
    _PROGRAMS[token] = prog
    while len(_PROGRAMS) > _MAX_PROGRAMS:
        _, old = _PROGRAMS.popitem(last=False)
        old.close()
    return prog


def run_task(payload: dict) -> dict:
    """Run one (query-subtree × reference-root) traversal task; returns
    the partial accumulator slices, stats and counters for its range."""
    with collect() as counters:
        # Program build happens *inside* the collect scope so bind-time
        # counters (backend.native.compile_s / .fallback on a cold
        # worker) ship back with the task result.
        prog = _program(payload)
        kk = prog.kernels
        state = prog.state
        q_root = int(payload["q_root"])
        s = int(prog.qview.start[q_root])
        e = int(prog.qview.end[q_root])
        resume = payload.get("resume")
        if resume is None:
            reset_state_range(state, s, e)
        else:
            # Phase-2 resume of a paused bounded traversal: pool workers
            # have no task affinity, so the parent ships the paused
            # accumulator slices back and we restore them verbatim.
            for name, arr in payload.get("state_arrays", {}).items():
                state.arrays[name][s:e] = arr
            if state.lists is not None:
                restored = payload.get("state_lists")
                if restored is not None:
                    state.lists[s:e] = [list(x) for x in restored]

        pause: dict = {}
        if payload["engine"] == "bounded-batched":
            extern = payload.get("extern")
            extern_full = None
            if extern is not None:
                # The engine indexes the extern bound by absolute query
                # position; the payload only carries this task's slice.
                extern_full = np.full(len(state.arrays["qbound"]), np.inf)
                extern_full[s:e] = extern
            stats = bounded_batched_dual_tree_traversal(
                prog.qview, prog.rview, kk.bound_key_batch,
                kk.classify_bound_batch, kk.base_case_group,
                state.arrays["qbound"], q_root=q_root,
                max_epochs=payload.get("max_epochs"), resume=resume,
                extern_bound=extern_full, pause_out=pause,
            )
        elif payload["engine"] == "batched":
            stats = batched_dual_tree_traversal(
                prog.qview, prog.rview, kk.classify_batch, kk.apply_action,
                kk.base_case, pair_min_dist_batch=kk.pair_min_dist_batch,
                q_root=q_root,
            )
        else:
            stats = dual_tree_traversal(
                prog.qview, prog.rview, kk.prune_or_approx, kk.base_case,
                pair_min_dist=kk.pair_min_dist, q_root=q_root,
            )

    return {
        "s": s,
        "e": e,
        "stats": stats,
        "counters": counters.as_dict(),
        "arrays": {name: np.ascontiguousarray(arr[s:e])
                   for name, arr in state.arrays.items()},
        "lists": None if state.lists is None else state.lists[s:e],
        "pending": pause.get("pending"),
    }
