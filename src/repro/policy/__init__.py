"""``repro.policy`` — the self-tuning execution policy (ROADMAP item 5).

Routing knobs have multiplied — traversal engine, executor, codegen
target, leaf size, shard count — and until this package the ``auto``
choices were a handful of hard-coded rules spread across the compiler.
This package replaces them with a *measured* policy:

* :mod:`~repro.policy.features` maps an execution to a
  :class:`~repro.policy.features.PolicyKey` (program fingerprint class ×
  tree kind × bucketed sizes);
* :mod:`~repro.policy.search` times a pruned candidate enumeration of
  the joint configuration space on subsampled inputs (coordinate
  descent under a wall-clock budget);
* :mod:`~repro.policy.store` persists tuned decisions in a JSON policy
  cache versioned by ``ARTIFACT_SCHEMA`` + a host fingerprint, so a
  tuned choice survives process restarts;
* this module arbitrates: ``CompileOptions.policy`` selects
  ``"static"`` (hard-coded rules, the default), ``"auto"`` (use a
  cached decision when one exists, fall back to the static rules on a
  miss) or ``"search"`` (measure on a miss, then use and persist the
  result).  Live runs feed *observed* counters back: a run whose
  prune/base-case profile deviates badly from the tuning measurement
  marks the entry stale (``policy.stale_marked``), after which ``auto``
  and ``search`` both re-search instead of trusting it.

Resolution order inside the compiler: explicit user options always win;
then a policy decision; then the static ``auto`` rules.  The policy only
ever selects configurations the differential suites prove
output-identical, so routing through it is bitwise-neutral.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..observe import contribute
from .features import PolicyKey, policy_key, program_class, size_bucket
from .search import (
    Candidate, SEARCH_BUDGET_S, SEARCH_REPEATS, enumerate_axes, run_search,
    search_policy, static_candidate, subsampled_layers,
)
from .store import (
    POLICY_SCHEMA, PolicyEntry, PolicyStore, default_policy_path,
    host_fingerprint, policy_store, reset_policy_store,
)

__all__ = [
    "POLICY_MODES", "PolicyDecision", "PolicyEntry", "PolicyKey",
    "PolicyStore", "Candidate", "apply_decision", "default_policy_path",
    "ensure_policy", "host_fingerprint", "note_native_fallback",
    "observe_run", "policy_key", "policy_store", "resolve_execution_policy",
    "resolve_policy_mode", "reset_policy_store", "run_search",
    "warm_policy",
]

#: accepted values of ``CompileOptions.policy`` / ``REPRO_POLICY``
POLICY_MODES = ("static", "auto", "search")

#: Online-refinement thresholds: a live run deviating this much from
#: the tuning measurement marks the entry stale.  Generous on purpose —
#: prune rates drift with data distribution; only *badly* wrong entries
#: (the tree changed character, the JIT disappeared) should be retired.
DEVIATION_PRUNE_DELTA = 0.4
DEVIATION_PAIR_FACTOR = 8.0
#: exact-pair fractions are scale-dependent, so they are only compared
#: when the live problem size is within this factor of the measured one
DEVIATION_SIZE_WINDOW = 4.0

from ..dsl.ops import MAX_LIKE, MIN_LIKE  # noqa: E402


@dataclass
class PolicyDecision:
    """A resolved policy: where it came from and what it chose."""

    source: str          # 'policy-cache' | 'fresh-search'
    key: PolicyKey
    config: dict


def resolve_policy_mode(options: dict | None) -> str:
    """The policy mode an option dict implies (``REPRO_POLICY`` fills
    the gap when the option is absent) — used by callers that consult
    the policy outside ``CompileOptions`` (the serving warmup)."""
    mode = (options or {}).get("policy")
    if mode is None:
        mode = os.environ.get("REPRO_POLICY", "").strip() or "static"
    return mode


def _bound_rule(layers) -> bool:
    """Whether the inner reduction routes to the bound-aware engine
    (used to seed the search's engine axis; a wrong guess degrades
    gracefully through the compiler's own routing)."""
    inner = layers[-1]
    kern = inner.metric_kernel
    return inner.op in (MIN_LIKE | MAX_LIKE) and not (
        kern is not None and kern.is_indicator)


def _search_and_store(layers, base_options: dict, opts, key: PolicyKey, *,
                      nq: int | None = None,
                      repeats: int = SEARCH_REPEATS,
                      budget_s: float | None = SEARCH_BUDGET_S) -> PolicyEntry:
    from ..parallel import default_workers
    from .search import SEARCH_SUBSAMPLE_Q

    workers = opts.workers or default_workers()
    max_q = SEARCH_SUBSAMPLE_Q if nq is None else min(int(nq),
                                                      SEARCH_SUBSAMPLE_Q)
    entry = run_search(
        layers, base_options, bound_rule=_bound_rule(layers),
        workers=workers, repeats=repeats, budget_s=budget_s, max_q=max_q,
    )
    policy_store().put(key, entry)
    return entry


def resolve_execution_policy(layers, opts, options: dict) -> PolicyDecision | None:
    """Resolve the policy for one ``execute()`` (mode ``auto``/``search``).

    Returns ``None`` when the static rules should route (``auto`` with
    no usable entry) — the caller falls through to the hard-coded
    defaults, counted under ``policy.miss``.
    """
    key = policy_key(layers, opts)
    store = policy_store()
    entry = store.get(key)
    if entry is not None and not entry.stale:
        contribute({"policy.hit": 1})
        return PolicyDecision("policy-cache", key, dict(entry.config))
    if entry is not None and entry.stale:
        # A previously-tuned entry was retired by the staleness rule:
        # both modes re-measure rather than fall back blind.
        contribute({"policy.stale_research": 1})
        entry = _search_and_store(layers, options, opts, key)
        return PolicyDecision("fresh-search", key, dict(entry.config))
    if opts.policy == "search":
        entry = _search_and_store(layers, options, opts, key)
        return PolicyDecision("fresh-search", key, dict(entry.config))
    contribute({"policy.miss": 1})
    return None


def apply_decision(opts, config: dict, explicit: frozenset) -> dict:
    """Write a policy decision into ``CompileOptions``, skipping every
    knob the caller set explicitly (user options always win; the env
    CI knobs ``REPRO_CODEGEN``/``REPRO_EXECUTOR``/``REPRO_SHARDS`` count
    as explicit).  Returns the knobs actually applied."""
    applied: dict = {}
    if "traversal" not in explicit and "traversal" in config:
        opts.traversal = applied["traversal"] = str(config["traversal"])
    if "leaf_size" not in explicit and config.get("leaf_size"):
        opts.leaf_size = applied["leaf_size"] = int(config["leaf_size"])
    if "codegen" not in explicit and "codegen" in config:
        opts.codegen = applied["codegen"] = str(config["codegen"])
    if "shards" not in explicit and config.get("shards"):
        opts.shards = applied["shards"] = int(config["shards"])
    if not ({"parallel", "executor", "workers"} & explicit) and \
            "executor" in config:
        executor = str(config["executor"])
        applied["executor"] = executor
        if executor == "serial":
            opts.parallel = False
        else:
            opts.parallel = True
            opts.executor = executor
    return applied


def note_native_fallback(key: PolicyKey) -> None:
    """A policy-chosen native codegen degraded to numpy at resolve time:
    the environment lost its JIT since tuning, so the measurement no
    longer describes this host — retire the entry."""
    contribute({"policy.native_unavailable": 1})
    policy_store().mark_stale(key)


def observe_run(key_str: str, stats, nq: int, nr: int) -> None:
    """Online refinement: compare a live run's counters against the
    entry's tuning measurement; mark the entry stale on bad deviation.

    Called from ``CompiledProgram.run()`` only when the execution was
    routed by a cached policy decision.  Never raises.
    """
    try:
        key = PolicyKey.from_str(key_str)
        store = policy_store()
        entry = store.get(key)
        if entry is None or entry.stale or stats is None:
            return
        visited = getattr(stats, "visited", 0)
        pairs = getattr(stats, "base_case_pairs", 0)
        prune_rate = (stats.pruned / visited) if visited else 0.0
        deviated = abs(prune_rate - entry.ref.get("prune_rate", prune_rate)) \
            > DEVIATION_PRUNE_DELTA
        ref_epf = entry.ref.get("exact_pair_fraction", 0.0)
        measured = entry.measured_nq * entry.measured_nr
        live = nq * nr
        if (not deviated and ref_epf > 0.0 and measured > 0 and live > 0
                and max(live, measured) / min(live, measured)
                <= DEVIATION_SIZE_WINDOW):
            epf = pairs / live
            ratio = max(epf, 1e-12) / max(ref_epf, 1e-12)
            deviated = ratio > DEVIATION_PAIR_FACTOR or \
                ratio < 1.0 / DEVIATION_PAIR_FACTOR
        if deviated:
            store.mark_stale(key)
        else:
            contribute({"policy.observe_ok": 1})
    except Exception:  # pragma: no cover - observability must never fail a run
        contribute({"policy.observe_failed": 1})


def _ensure_kernels(layers):
    """Resolve layer kernels exactly as ``PortalExpr.validate`` does.

    ``execute()`` resolves kernels before the compiler keys the policy,
    but the tune/warm paths key it on a never-executed expression — an
    unresolved kernel would hash as "external" and the entry would never
    be found again.  Idempotent, like ``validate()`` itself.
    """
    from ..dsl.expr import Var

    for i, layer in enumerate(layers):
        qvar = layers[i - 1].var if i > 0 else None
        if qvar is None and i > 0:
            qvar = Var(f"_layer{i - 1}")
            layers[i - 1].var = qvar
        if layer.var is None:
            layer.var = Var(f"_layer{i}")
        layer.resolve_kernel(qvar)
    return layers


def ensure_policy(layers, options: dict | None = None, *,
                  nq: int | None = None, force: bool = False,
                  repeats: int = SEARCH_REPEATS,
                  budget_s: float | None = SEARCH_BUDGET_S):
    """Make sure a usable policy entry exists for this program shape;
    search (and persist) when missing, stale, or ``force`` is set.

    Returns ``(key, entry, source)`` where source is ``"policy-cache"``
    or ``"fresh-search"``.  The front door for ``python -m repro tune``
    and the serving layer's register-time warmup.
    """
    from ..backend.jit import CompileOptions

    layers = _ensure_kernels(layers)
    base_options = dict(options or {})
    base_options.pop("policy", None)
    opts = CompileOptions.from_dict(dict(base_options))
    key = policy_key(layers, opts, nq=nq)
    if not force:
        entry = policy_store().get(key)
        if entry is not None and not entry.stale:
            contribute({"policy.hit": 1})
            return key, entry, "policy-cache"
    entry = _search_and_store(layers, base_options, opts, key, nq=nq,
                              repeats=repeats, budget_s=budget_s)
    return key, entry, "fresh-search"


def warm_policy(layers, options: dict | None = None, *,
                nq: int | None = None):
    """Register-time policy consult for the serving layer.

    Mode ``auto`` looks the entry up (so the first real batch starts
    from a warm store, counted ``policy.hit``/``policy.miss``); mode
    ``search`` runs the budgeted search for the serving batch shape so
    real traffic never pays it.  Mode ``static`` is a no-op.
    """
    mode = resolve_policy_mode(options)
    if mode == "static":
        return None
    contribute({"policy.warm_consult": 1})
    if mode == "search":
        return ensure_policy(layers, options, nq=nq)
    from ..backend.jit import CompileOptions

    layers = _ensure_kernels(layers)
    base_options = dict(options or {})
    base_options.pop("policy", None)
    opts = CompileOptions.from_dict(base_options)
    key = policy_key(layers, opts, nq=nq)
    entry = policy_store().get(key)
    if entry is not None and not entry.stale:
        contribute({"policy.hit": 1})
        return key, entry, "policy-cache"
    contribute({"policy.miss": 1})
    return None
