"""Execution → policy-key feature extraction.

A policy entry must generalise across executions that *behave* the same
while never being applied to one that behaves differently.  The key
therefore captures:

* a **program fingerprint class** — the structural shape of the problem
  (operator pair, bound-rule vs. stateless routing class, base metric,
  kernel op mix with constants abstracted away, indicator/whitening
  flags, approximation on/off) — two KDE runs with different bandwidths
  share a class, a KDE run and a k-NN run never do;
* the **tree kind** (kd / ball / octree — different traversal geometry);
* **bucketed problem sizes** — log₂ buckets of N_q and N_r plus the
  exact dimensionality and k.  Within a bucket the engine/executor
  trade-offs are stable; across buckets they are exactly what the
  policy is re-measured for.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from ..dsl.expr import Const, Expr
from ..dsl.ops import MAX_LIKE, MIN_LIKE, op_info

__all__ = ["PolicyKey", "policy_key", "program_class", "size_bucket"]


def size_bucket(n: int) -> int:
    """log₂ bucket of a dataset size (0 for empty/singleton sets)."""
    return int(math.log2(n)) if n and n > 1 else 0


def _kernel_shape(expr: Expr | None) -> str:
    """Structural render of a kernel expression with constants abstracted
    (``C``): the op mix and nesting, not the parameter values."""
    if expr is None:
        return "-"
    if isinstance(expr, Const):
        return "C"
    name = type(expr).__name__
    op = getattr(expr, "op", None)
    head = f"{name}[{op}]" if isinstance(op, str) else name
    kids = ",".join(_kernel_shape(c) for c in expr.children())
    return f"{head}({kids})" if kids else head


def program_class(layers, opts) -> str:
    """Fingerprint class digest of a two-layer program (see module doc)."""
    outer, inner = layers[0], layers[-1]
    kern = inner.metric_kernel
    # Bound-rule problems (k-NN, Hausdorff, furthest-point) route to the
    # epoch engine; stateless reductions to the plain batched one.  The
    # class must separate them: their engine/executor profiles differ.
    bound = inner.op in (MIN_LIKE | MAX_LIKE) and not (
        kern is not None and kern.is_indicator)
    tau = opts.tau if opts.tau is not None else float(
        inner.params.get("tau", 0.0) or 0.0)
    parts = (
        "policy-class-v1",
        outer.op.name,
        inner.op.name,
        "k" if op_info(inner.op).requires_k else "-",
        "bound" if bound else "stateless",
        kern.base if kern is not None else "external",
        _kernel_shape(kern.g if kern is not None else None),
        "ind" if (kern is not None and kern.is_indicator) else "-",
        "whiten" if (kern is not None and kern.whiten) else "-",
        "approx" if tau > 0.0 else "exact",
        opts.criterion if tau > 0.0 else "-",
    )
    return hashlib.blake2b("|".join(parts).encode(),
                           digest_size=8).hexdigest()


@dataclass(frozen=True)
class PolicyKey:
    """One row of the policy table: program class × tree × size buckets."""

    program_class: str
    tree: str
    nq_bucket: int
    nr_bucket: int
    dim: int
    k: int | None

    def as_str(self) -> str:
        """Stable string form (the JSON store's entry key)."""
        k = "-" if self.k is None else str(self.k)
        return (f"{self.program_class}:{self.tree}:q{self.nq_bucket}"
                f":r{self.nr_bucket}:d{self.dim}:k{k}")

    @classmethod
    def from_str(cls, text: str) -> "PolicyKey":
        cls_, tree, q, r, d, k = text.split(":")
        return cls(
            program_class=cls_, tree=tree, nq_bucket=int(q[1:]),
            nr_bucket=int(r[1:]), dim=int(d[1:]),
            k=None if k[1:] == "-" else int(k[1:]),
        )


def policy_key(layers, opts, nq: int | None = None,
               nr: int | None = None) -> PolicyKey:
    """Extract the policy key for executing ``layers`` under ``opts``.

    ``nq``/``nr`` override the layer storage sizes — the serving layer
    keys its register-time warmup on the configured max batch size
    rather than the one-row probe.
    """
    outer, inner = layers[0], layers[-1]
    return PolicyKey(
        program_class=program_class(layers, opts),
        tree=opts.tree,
        nq_bucket=size_bucket(nq if nq is not None else outer.storage.n),
        nr_bucket=size_bucket(nr if nr is not None else inner.storage.n),
        dim=outer.storage.dim,
        k=inner.k,
    )
