"""Measured policy search over the joint execution-configuration space.

The generalisation of ``tune_leaf_size``'s subsample-timing approach
(paper V-B) from one knob to the joint space

    {engine × executor × codegen × leaf size × shards}.

The full cross product is ~70 configurations — far too many to time per
policy key — so the search is structured:

* **pruned enumeration**: per-axis candidate lists drop everything the
  existing validity rules forbid (native codegen without numba, the
  process/thread executors on single-core hosts, shard counts the
  reference set cannot feed, the epoch engine on stateless problems);
* **coordinate descent**: starting from the static ``auto`` choice,
  one axis is swept at a time (executor first — the biggest lever —
  then engine, leaf size, codegen, shards), keeping the incumbent for
  every other axis.  ~12 timed configurations instead of ~70;
* **budgeted timing**: measurements run through
  :func:`repro.util.tune.measure_candidates` on *subsampled* inputs
  (stride subsample, spatially unbiased) under a total wall-clock
  budget — when the budget runs out the best-so-far wins.

The search executes real programs through the real compiler (with
``policy="static"`` pinned so it can never recurse into itself) and
finishes with one counter-collected run of the winner, recording the
reference metrics (prune rate, exact-pair fraction) that the online
staleness rule compares live runs against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..observe import collect, contribute, span
from ..util.tune import measure_candidates
from .store import PolicyEntry

__all__ = [
    "Candidate", "SEARCH_LEAF_CANDIDATES", "SEARCH_SUBSAMPLE_Q",
    "SEARCH_SUBSAMPLE_R", "SEARCH_BUDGET_S", "enumerate_axes",
    "search_policy", "static_candidate",
]

#: leaf sizes the search sweeps (a subset of the tune_leaf_size grid —
#: the extremes rarely win and each costs a fresh tree build)
SEARCH_LEAF_CANDIDATES = (32, 64, 128)

#: subsample caps: searches over larger inputs run on a stride draw
#: (relative ranking is the product, not absolute seconds)
SEARCH_SUBSAMPLE_Q = 4096
SEARCH_SUBSAMPLE_R = 16384

#: total measurement budget per search (seconds); best-so-far wins when
#: it runs out
SEARCH_BUDGET_S = 5.0

#: timed repeats per candidate (best-of, after one warm run)
SEARCH_REPEATS = 2

#: shard counts only enter the search when the (subsampled) reference
#: set has at least this many points per candidate shard — below it the
#: per-shard build + combine overhead always loses
SEARCH_SHARD_MIN_POINTS = 4096


@dataclass(frozen=True)
class Candidate:
    """One point of the joint configuration space."""

    traversal: str   # 'batched' | 'bounded-batched' | 'stack'
    executor: str    # 'serial' | 'thread' | 'process'
    codegen: str     # 'numpy' | 'native'
    leaf_size: int
    shards: int

    def label(self) -> str:
        return (f"{self.traversal}/{self.executor}/{self.codegen}"
                f"/leaf{self.leaf_size}/shards{self.shards}")

    def options(self) -> dict:
        """The ``execute()`` option overrides this candidate pins."""
        out = {
            "traversal": self.traversal, "codegen": self.codegen,
            "leaf_size": int(self.leaf_size), "shards": int(self.shards),
        }
        if self.executor == "serial":
            out["parallel"] = False
        else:
            out["parallel"] = True
            out["executor"] = self.executor
        return out

    def config(self) -> dict:
        """The JSON-storable decision dict."""
        return {
            "traversal": self.traversal, "executor": self.executor,
            "codegen": self.codegen, "leaf_size": int(self.leaf_size),
            "shards": int(self.shards),
        }


def static_candidate(bound_rule: bool, leaf_size: int | None = None) -> Candidate:
    """The configuration the hard-coded ``auto`` rules pick today — the
    coordinate-descent start point (and the fallback when every
    measurement fails)."""
    return Candidate(
        traversal="bounded-batched" if bound_rule else "batched",
        executor="serial", codegen="numpy",
        leaf_size=int(leaf_size or 64), shards=1,
    )


def enumerate_axes(nq: int, nr: int, *, bound_rule: bool,
                   workers: int) -> dict[str, list]:
    """Pruned per-axis candidate lists (validity rules applied here)."""
    from ..backend.native import native_available

    engines = (["bounded-batched", "stack"] if bound_rule
               else ["batched", "stack"])
    if nq * nr > 1 << 22:
        # The scalar stack engine is hopeless at this scale; don't spend
        # budget proving it again.
        engines = engines[:1]
    executors = ["serial"]
    if workers > 1:
        executors += ["thread", "process"]
    codegens = ["numpy"] + (["native"] if native_available() else [])
    leafs = sorted({int(l) for l in SEARCH_LEAF_CANDIDATES})
    from ..parallel.shard import viable_shard_counts

    shards = viable_shard_counts(nr, workers,
                                 min_points=SEARCH_SHARD_MIN_POINTS)
    return {
        "executor": executors,
        "traversal": engines,
        "leaf_size": leafs,
        "codegen": codegens,
        "shards": shards,
    }


#: axis sweep order: biggest lever first
AXIS_ORDER = ("executor", "traversal", "leaf_size", "codegen", "shards")


def _stride_subsample(data: np.ndarray, cap: int) -> np.ndarray:
    """Deterministic, spatially unbiased subsample: every ``ceil(n/cap)``-th
    row.  Slicing (``data[:cap]``) would keep one spatial corner of a
    sorted dataset and bias every tree-shape measurement."""
    n = len(data)
    if n <= cap:
        return data
    step = -(-n // cap)
    return np.ascontiguousarray(data[::step])


def subsampled_layers(layers, max_q: int = SEARCH_SUBSAMPLE_Q,
                      max_r: int = SEARCH_SUBSAMPLE_R):
    """A fresh :class:`~repro.dsl.portal_expr.PortalExpr` factory over
    subsampled copies of the layer datasets.

    Layers sharing one Storage (monochromatic problems) keep sharing the
    subsampled Storage — self-pair exclusion and ``same_tree`` kernels
    depend on that identity.  Vars / kernels / params are reused, like
    the serving layer's per-batch regeneration.
    """
    from ..dsl.portal_expr import PortalExpr
    from ..dsl.storage import Storage

    caps = [max_q] + [max_r] * (len(layers) - 1)
    subs: dict[int, Storage] = {}
    for layer, cap in zip(layers, caps):
        st = layer.storage
        if id(st) in subs:
            continue
        data = _stride_subsample(st.data, cap)
        weights = None
        if st.weights is not None:
            weights = _stride_subsample(st.weights, cap)
        subs[id(st)] = Storage(data, weights=weights,
                               name=f"{st.name}@tune")

    def build() -> PortalExpr:
        expr = PortalExpr("policy-tune")
        for layer in layers:
            op_spec = layer.op if layer.k is None else (layer.op, layer.k)
            args = [] if layer.var is None else [layer.var]
            args.append(subs[id(layer.storage)])
            if layer.func is not None:
                args.append(layer.func)
            expr.addLayer(op_spec, *args, **layer.params)
        return expr

    first = subs[id(layers[0].storage)]
    last = subs[id(layers[-1].storage)]
    return build, first.n, last.n


def search_policy(run, axes: dict[str, list], start: Candidate, *,
                  repeats: int = SEARCH_REPEATS,
                  budget_s: float | None = SEARCH_BUDGET_S,
                  clock=None) -> tuple[Candidate, dict[str, float]]:
    """Coordinate-descent minimisation of ``run(candidate)`` wall-clock.

    One axis at a time in :data:`AXIS_ORDER`; each sweep replaces only
    that axis on the incumbent, reusing timings for configurations
    already measured.  ``budget_s`` bounds the *total* measurement time
    across all sweeps.
    """
    now = clock if clock is not None else time.perf_counter
    t_start = now()
    timings: dict[str, float] = {}
    best = start
    for axis in AXIS_ORDER:
        sweep, seen = [], set()
        for cand in [best] + [replace(best, **{axis: v})
                              for v in axes.get(axis, [])]:
            label = cand.label()
            if label not in timings and label not in seen:
                seen.add(label)
                sweep.append(cand)
        if not sweep:
            continue
        remaining = (None if budget_s is None
                     else max(0.0, budget_s - (now() - t_start)))
        if remaining == 0.0 and timings:
            contribute({"policy.search_budget_exhausted": 1})
            break
        measured = measure_candidates(
            run, sweep, repeats=repeats, clock=now, budget_s=remaining)
        timings.update({c.label(): t for c, t in measured.items()})
        best = _relabel(min(timings, key=timings.get))
    return best, timings


def _relabel(label: str) -> Candidate:
    """Recover the Candidate for a timing label (labels are injective:
    no axis value contains a slash)."""
    traversal, executor, codegen, leaf, shards = label.split("/")
    return Candidate(
        traversal=traversal, executor=executor, codegen=codegen,
        leaf_size=int(leaf[len("leaf"):]),
        shards=int(shards[len("shards"):]),
    )


def run_search(layers, base_options: dict, *, bound_rule: bool,
               workers: int, repeats: int = SEARCH_REPEATS,
               budget_s: float | None = SEARCH_BUDGET_S,
               max_q: int = SEARCH_SUBSAMPLE_Q,
               max_r: int = SEARCH_SUBSAMPLE_R) -> PolicyEntry:
    """End-to-end measured search for one program: subsample, sweep,
    reference-run the winner, return the storable entry.

    ``base_options`` are the caller's execute() options with every
    searched knob stripped; ``policy`` is pinned to ``"static"`` so the
    timed executions resolve through the hard-coded rules and never
    re-enter the policy layer.
    """
    build, sub_nq, sub_nr = subsampled_layers(layers, max_q, max_r)
    base = {k: v for k, v in base_options.items()
            if k not in ("traversal", "executor", "parallel", "codegen",
                         "leaf_size", "shards", "workers", "policy")}
    base["policy"] = "static"

    def run(cand: Candidate) -> None:
        build().execute(**base, **cand.options())

    axes = enumerate_axes(sub_nq, sub_nr, bound_rule=bound_rule,
                          workers=workers)
    start = static_candidate(bound_rule,
                             base_options.get("leaf_size"))
    t0 = time.perf_counter()
    with span("policy.search", nq=sub_nq, nr=sub_nr):
        # Warm once outside the timings: the first execution pays
        # compile + tree build for the subsample; candidates after it
        # share the tree/program caches exactly as serving traffic does.
        try:
            run(start)
        except Exception:
            contribute({"policy.search_failed": 1})
            return PolicyEntry(config=start.config(),
                               measured_nq=sub_nq, measured_nr=sub_nr)
        best, timings = search_policy(
            run, axes, start, repeats=repeats, budget_s=budget_s)
    contribute({"policy.search": 1})
    contribute({"policy.search_s": time.perf_counter() - t0})

    # Reference metrics of the winner for the online staleness rule.
    ref: dict[str, float] = {}
    with collect() as counters:
        expr = build()
        expr.execute(**base, **best.options())
    snap = counters.as_dict()
    visited = snap.get("traversal.visited", 0)
    pairs = snap.get("traversal.base_case_pairs", 0)
    ref["prune_rate"] = (snap.get("traversal.pruned", 0) / visited
                         if visited else 0.0)
    ref["exact_pair_fraction"] = (pairs / (sub_nq * sub_nr)
                                  if sub_nq and sub_nr else 0.0)
    return PolicyEntry(
        config=best.config(),
        timings={k: round(v, 6) for k, v in timings.items()},
        ref=ref, measured_nq=sub_nq, measured_nr=sub_nr,
    )
