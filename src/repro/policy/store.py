"""Persistent policy cache: tuned choices that survive process restarts.

One JSON file (default ``~/.cache/repro/policy.json``, overridable via
``REPRO_POLICY_PATH``) holding the measured policy table.  The file is
versioned by the compile pipeline's :data:`ARTIFACT_SCHEMA`, this
module's own :data:`POLICY_SCHEMA`, and a **host fingerprint** (CPU
count, usable affinity, numba availability, numpy version, machine) —
measured timings from a different pipeline or a different machine must
never steer this one, so any mismatch drops the stored entries wholesale
(counted, never fatal).  A corrupt or truncated file likewise degrades
to an empty table under ``policy.load_failed``; the static ``auto``
rules remain the fallback in every failure mode.

Writes are atomic (tmp + rename) so a crashed process never leaves a
half-written table for the next one to trip over.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..observe import contribute

__all__ = [
    "POLICY_SCHEMA", "PolicyEntry", "PolicyStore", "default_policy_path",
    "host_fingerprint", "policy_store", "reset_policy_store",
]

#: Version of the on-disk policy table layout.  Bumped when the entry
#: schema or key format changes shape; old files are dropped wholesale.
POLICY_SCHEMA = 1


def default_policy_path() -> str:
    """Resolve the policy file path (``REPRO_POLICY_PATH`` wins)."""
    env = os.environ.get("REPRO_POLICY_PATH", "").strip()
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro", "policy.json")


def host_fingerprint() -> str:
    """Digest of the host facts a measured policy is conditioned on.

    Anything that changes the relative ranking of candidate
    configurations invalidates the table: core count and usable
    affinity (executor/shard choices), numba availability (codegen
    choices), the numpy version and machine architecture (kernel
    throughput).
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        affinity = None
    try:
        import numba  # noqa: F401
        has_numba = True
    except ImportError:
        has_numba = False
    parts = (platform.machine(), str(os.cpu_count()), str(affinity),
             str(has_numba), np.__version__)
    return hashlib.blake2b("|".join(parts).encode(),
                           digest_size=8).hexdigest()


@dataclass
class PolicyEntry:
    """One tuned decision: the winning configuration plus the
    measurement context needed for online refinement."""

    #: chosen knobs: traversal / executor / codegen / leaf_size / shards
    config: dict
    #: candidate-label → best-of seconds from the tuning search
    timings: dict = field(default_factory=dict)
    #: reference run metrics of the winning config (prune_rate,
    #: exact_pair_fraction, ...) — the baseline the staleness rule
    #: compares live runs against
    ref: dict = field(default_factory=dict)
    #: problem size the measurement actually ran at (subsampled searches
    #: record the subsample, so scale-dependent metrics are only
    #: compared against runs of comparable size)
    measured_nq: int = 0
    measured_nr: int = 0
    stale: bool = False
    created: float = 0.0
    hits: int = 0

    @classmethod
    def from_dict(cls, d: dict) -> "PolicyEntry":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


class PolicyStore:
    """Thread-safe, lazily-loaded view of one policy file."""

    def __init__(self, path: str | None = None):
        self._path = path
        self._lock = threading.RLock()
        self._entries: dict[str, PolicyEntry] | None = None

    @property
    def path(self) -> str:
        return self._path or default_policy_path()

    # -- load / save -----------------------------------------------------------
    def _load(self) -> dict[str, PolicyEntry]:
        """Read the file once; every failure mode yields an empty table."""
        from ..backend.cache import ARTIFACT_SCHEMA

        if self._entries is not None:
            return self._entries
        entries: dict[str, PolicyEntry] = {}
        path = self.path
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    payload = json.load(fh)
                if not isinstance(payload, dict):
                    raise ValueError("policy file is not a JSON object")
                if payload.get("policy_schema") != POLICY_SCHEMA or \
                        payload.get("artifact_schema") != ARTIFACT_SCHEMA:
                    contribute({"policy.schema_mismatch": 1})
                elif payload.get("host") != host_fingerprint():
                    contribute({"policy.host_mismatch": 1})
                else:
                    for key, raw in payload.get("entries", {}).items():
                        entries[key] = PolicyEntry.from_dict(raw)
            except Exception:
                # Corrupt/truncated/unreadable: the static auto rules
                # still route everything — never raise from here.
                contribute({"policy.load_failed": 1})
                entries = {}
        self._entries = entries
        return entries

    def _save(self) -> None:
        from ..backend.cache import ARTIFACT_SCHEMA

        path = self.path
        payload = {
            "policy_schema": POLICY_SCHEMA,
            "artifact_schema": ARTIFACT_SCHEMA,
            "host": host_fingerprint(),
            "entries": {k: asdict(e) for k, e in (self._entries or {}).items()},
        }
        try:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")
            os.replace(tmp, path)
            contribute({"policy.store_saved": 1})
        except OSError:  # pragma: no cover - unwritable cache dir
            contribute({"policy.store_save_failed": 1})

    # -- table operations ------------------------------------------------------
    def get(self, key) -> PolicyEntry | None:
        with self._lock:
            entry = self._load().get(key.as_str())
            if entry is not None:
                entry.hits += 1
            return entry

    def put(self, key, entry: PolicyEntry) -> None:
        with self._lock:
            if not entry.created:
                entry.created = time.time()
            self._load()[key.as_str()] = entry
            self._save()

    def mark_stale(self, key) -> bool:
        """Flag an entry whose live counters deviated from its tuning
        measurement; returns whether an entry was present."""
        with self._lock:
            entry = self._load().get(key.as_str())
            if entry is None or entry.stale:
                return entry is not None
            entry.stale = True
            self._save()
            contribute({"policy.stale_marked": 1})
            return True

    def forget(self) -> None:
        """Drop the in-memory view (the next access re-reads the file) —
        the test-isolation hook wired into ``clear_caches()``."""
        with self._lock:
            self._entries = None

    def clear(self) -> None:
        """Empty the table and persist the empty file."""
        with self._lock:
            self._entries = {}
            self._save()

    def __len__(self) -> int:
        with self._lock:
            return len(self._load())


_store_lock = threading.Lock()
_store: PolicyStore | None = None


def policy_store() -> PolicyStore:
    """The process-wide store for the current ``REPRO_POLICY_PATH``."""
    global _store
    with _store_lock:
        if _store is None or _store.path != default_policy_path():
            _store = PolicyStore()
        return _store


def reset_policy_store() -> None:
    """Forget the process-wide store (tests switch paths between cases)."""
    global _store
    with _store_lock:
        _store = None
