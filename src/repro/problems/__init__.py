"""The nine evaluated N-body problems (paper Table III), each a thin
wrapper over the Portal DSL or the tree/traversal substrate."""

from .barnes_hut import (
    barnes_hut_acceleration, barnes_hut_potential, leapfrog_step,
)
from .em import GaussianMixtureEM, em_fit
from .emst import EMSTResult, emst
from .hausdorff import directed_hausdorff, hausdorff
from .kde import kde
from .knn import knn
from .naive_bayes import NaiveBayesClassifier, naive_bayes_fit
from .range_search import range_count, range_search
from .two_point import two_point_correlation

__all__ = [
    "knn", "kde", "range_search", "range_count", "directed_hausdorff",
    "hausdorff", "emst", "EMSTResult", "GaussianMixtureEM", "em_fit",
    "NaiveBayesClassifier", "naive_bayes_fit", "two_point_correlation",
    "barnes_hut_potential", "barnes_hut_acceleration", "leapfrog_step",
]

from .three_point import three_point_correlation  # noqa: E402

__all__ += ["three_point_correlation"]

from .correlation_function import (  # noqa: E402
    XiResult, binned_pair_counts, landy_szalay, pair_count,
)

__all__ += ["pair_count", "binned_pair_counts", "landy_szalay", "XiResult"]

from .mean_shift import MeanShiftResult, mean_shift  # noqa: E402

__all__ += ["mean_shift", "MeanShiftResult"]

from .dbscan import NOISE, DBSCANResult, dbscan  # noqa: E402

__all__ += ["dbscan", "DBSCANResult", "NOISE"]

from .kmeans import KMeansResult, kmeans  # noqa: E402

__all__ += ["kmeans", "KMeansResult"]

from .knn_classifier import KNNClassifier, knn_regress  # noqa: E402

__all__ += ["KNNClassifier", "knn_regress"]
