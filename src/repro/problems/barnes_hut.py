"""Barnes-Hut N-body simulation (paper Table III, validated against FDPS).

Portal specification: ``∀_q Σ_r f`` with the gravitational kernel
``f = G·M_q·M_r / (‖x_q − x_r‖² + ε²)`` and the multipole acceptance
approximation ``diameter(N_r)/dist ≤ θ``, replacing a far node's points
by its center of mass.

Two entry points:

* :func:`barnes_hut_potential` — the scalar form expressed through the
  Portal DSL (a weighted FORALL/SUM with the ``mac`` criterion), proving
  the physics problem fits the same language as the ML problems;
* :func:`barnes_hut_acceleration` — the full vector-valued force
  computation used for time integration, built directly on the
  octree + dual-tree substrate (vector kernels are outside the scalar
  DSL, as in the paper where Barnes-Hut force evaluation is the
  hand-analysed validation case).
"""

from __future__ import annotations

import numpy as np

from ..dsl import Const, MetricKernel, PortalExpr, PortalOp, Storage, sqrt
from ..dsl.expr import BinOp, DistVar
from ..traversal import TraversalStats, dual_tree_traversal
from ..parallel import parallel_dual_tree
from ..trees import build_octree

__all__ = ["barnes_hut_potential", "barnes_hut_acceleration", "leapfrog_step"]


def gravity_kernel(G: float = 1.0, eps: float = 1e-3) -> MetricKernel:
    """Softened point-mass potential kernel ``g(t) = G / sqrt(t + ε²)``
    over squared Euclidean distance ``t`` (monotone decreasing, so the
    approximation machinery applies)."""
    t = DistVar("t")
    g = BinOp("/", Const(G), sqrt(BinOp("+", t, Const(eps * eps))))
    return MetricKernel("sqeuclidean", g)


def barnes_hut_potential(
    positions,
    masses,
    theta: float = 0.5,
    G: float = 1.0,
    eps: float = 1e-3,
    **options,
) -> np.ndarray:
    """Gravitational potential magnitude at every particle via the DSL.

    ``Φ_q = Σ_{r≠q} G·m_r / sqrt(‖x_q − x_r‖² + ε²)``
    """
    store = Storage(positions, weights=np.asarray(masses, dtype=np.float64),
                    name="particles")
    expr = PortalExpr("barnes-hut-potential")
    expr.addLayer(PortalOp.FORALL, store)
    expr.addLayer(PortalOp.SUM, store, gravity_kernel(G, eps))
    options.setdefault("criterion", "mac")
    options.setdefault("theta", theta)
    if store.dim <= 3:
        options.setdefault("tree", "octree")
    out = expr.execute(**options)
    return np.asarray(out.values)


def _node_quadrupoles(tree) -> np.ndarray:
    """Traceless quadrupole tensor per node about its center of mass:
    ``Q_ij = Σ_k m_k (3 r_i r_j − ‖r‖² δ_ij)`` with ``r = x_k − com``."""
    d = tree.dim
    eye = np.eye(d)
    Q = np.zeros((tree.n_nodes, d, d))
    for i in range(tree.n_nodes):
        s, e = tree.slice(i)
        r = tree.points[s:e] - tree.wcentroid[i]
        m = tree.weights[s:e]
        outer = np.einsum("k,ki,kj->ij", m, r, r)
        Q[i] = 3.0 * outer - (m * np.einsum("ki,ki->k", r, r)).sum() * eye
    return Q


def barnes_hut_acceleration(
    positions,
    masses,
    theta: float = 0.5,
    G: float = 1.0,
    eps: float = 1e-3,
    leaf_size: int = 64,
    parallel: bool = False,
    workers: int | None = None,
    return_stats: bool = False,
    order: int = 1,
):
    """Gravitational acceleration of every particle (vector Barnes-Hut).

    Dual-tree traversal over one octree: far node pairs use the reference
    node's multipole expansion (acceptance ``diam/dist ≤ θ``), near leaf
    pairs evaluate exact softened pairwise forces, vectorised per leaf
    batch.

    ``order`` selects the expansion: 1 = monopole (the paper's center of
    mass), 2 = monopole + traceless quadrupole correction (the dipole
    vanishes about the center of mass), which cuts the far-field error at
    a given θ — the first step toward the FMM the paper's background
    discusses.
    """
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    masses = np.ascontiguousarray(masses, dtype=np.float64)
    if positions.shape[1] > 3:
        raise ValueError("Barnes-Hut is limited to d <= 3 (paper Table V)")
    if len(masses) != len(positions):
        raise ValueError("masses and positions length mismatch")

    if order not in (1, 2):
        raise ValueError("order must be 1 (monopole) or 2 (+quadrupole)")

    tree = build_octree(positions, leaf_size=leaf_size, weights=masses)
    pts = tree.points
    m = tree.weights
    lo, hi = tree.lo, tree.hi
    start, end = tree.start, tree.end
    com, M = tree.wcentroid, tree.wsum
    diam2 = tree.diameter ** 2
    theta2 = theta * theta
    eps2 = eps * eps
    quad = _node_quadrupoles(tree) if order >= 2 else None

    acc = np.zeros_like(pts)

    def prune_or_approx(qi: int, ri: int) -> int:
        gaps = np.maximum(0.0, np.maximum(lo[ri] - hi[qi], lo[qi] - hi[ri]))
        tmin = float(gaps @ gaps)
        if tmin > 0.0 and diam2[ri] <= theta2 * tmin:
            s, e = start[qi], end[qi]
            d = com[ri] - pts[s:e]
            r2 = np.einsum("ij,ij->i", d, d) + eps2
            acc[s:e] += (G * M[ri]) * d * (r2 ** -1.5)[:, None]
            if quad is not None:
                # Quadrupole field gradient (d points q → com, so the
                # standard n̂ = (x_q − com)/r is −d̂):
                #   a_i = G [ Q_ij n_j / r⁴ − 5/2 (nᵀQn) n_i / r⁴ ] · 1/r
                # expressed below with d directly (odd powers flip sign).
                r2c = np.maximum(r2, eps2)
                inv_r5 = r2c ** -2.5
                Qd = d @ quad[ri]                       # (nq, dim)
                dQd = np.einsum("ij,ij->i", Qd, d)      # dᵀ Q d
                acc[s:e] += G * (
                    -Qd * inv_r5[:, None]
                    + 2.5 * (dQd * inv_r5 / r2c)[:, None] * d
                )
            return 2
        return 0

    def base_case(qs: int, qe: int, rs: int, re: int) -> None:
        d = pts[None, rs:re, :] - pts[qs:qe, None, :]
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        w = m[rs:re] * r2 ** -1.5
        if qs == rs:
            np.fill_diagonal(w, 0.0)
        acc[qs:qe] += G * np.einsum("ijk,ij->ik", d, w)

    if parallel:
        stats = parallel_dual_tree(tree, tree, prune_or_approx, base_case,
                                   workers=workers)
    else:
        stats = dual_tree_traversal(tree, tree, prune_or_approx, base_case)

    inv = np.empty_like(tree.perm)
    inv[tree.perm] = np.arange(len(tree.perm))
    result = acc[inv]
    if return_stats:
        return result, stats
    return result


def leapfrog_step(
    positions, velocities, masses, dt: float,
    theta: float = 0.5, G: float = 1.0, eps: float = 1e-3,
) -> tuple[np.ndarray, np.ndarray]:
    """One kick-drift-kick leapfrog step using Barnes-Hut forces."""
    a0 = barnes_hut_acceleration(positions, masses, theta=theta, G=G, eps=eps)
    v_half = velocities + 0.5 * dt * a0
    new_pos = positions + dt * v_half
    a1 = barnes_hut_acceleration(new_pos, masses, theta=theta, G=G, eps=eps)
    new_vel = v_half + 0.5 * dt * a1
    return new_pos, new_vel
