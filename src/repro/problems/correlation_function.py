"""Two-point correlation *function*: binned pair counts and the
Landy–Szalay estimator.

The paper evaluates the single-radius 2-point correlation count; the
astronomy use case its introduction motivates measures the correlation
function ξ(r) over radial bins, comparing a data catalog D against a
random catalog R through the Landy–Szalay estimator

    ξ(r) = (DD(r) − 2 DR(r) + RR(r)) / RR(r)

where DD/DR/RR are normalised pair counts per bin.  All three counts run
through the same dual-tree counting machinery as the headline 2-PC
benchmark: cross-catalog counts are a (SUM, SUM) program over two
Storages, and per-bin counts come from differencing cumulative counts at
the bin edges (each edge enjoys the full inside/outside closed-form
pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsl import PortalExpr, PortalOp, Storage, Var, indicator, pow, sqrt

__all__ = ["pair_count", "binned_pair_counts", "landy_szalay", "XiResult"]


def pair_count(A, B=None, h: float = 1.0, **options) -> float:
    """Ordered cross-pair count: |{(a, b) : ‖a − b‖ < h}|.

    With ``B=None`` counts within ``A``, excluding self pairs (the
    paper's 2-PC).  Cross-catalog counts include every (a, b) pair.
    """
    A = A if isinstance(A, Storage) else Storage(A, name="A")
    self_join = B is None
    if self_join:
        B = A
    elif not isinstance(B, Storage):
        B = Storage(B, name="B")
    if h <= 0:
        raise ValueError("h must be positive")
    q, r = Var("q"), Var("r")
    e = PortalExpr("pair-count")
    e.addLayer(PortalOp.SUM, q, A)
    e.addLayer(PortalOp.SUM, r, B, indicator(sqrt(pow(q - r, 2)) < h))
    options.setdefault("exclude_self", self_join)
    out = e.execute(**options)
    return float(out.scalar)


def binned_pair_counts(A, B=None, edges=None, **options) -> np.ndarray:
    """Ordered pair counts per radial bin ``[edges[i], edges[i+1])``.

    Computed as differences of cumulative counts at the edges, so each
    edge query benefits from the closed-form inside/outside pruning.
    """
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or len(edges) < 2:
        raise ValueError("edges must be a 1-D array of at least 2 radii")
    if np.any(np.diff(edges) <= 0) or edges[0] < 0:
        raise ValueError("edges must be non-negative and increasing")
    cumulative = []
    for h in edges:
        cumulative.append(0.0 if h == 0 else pair_count(A, B, h=h, **options))
    return np.diff(cumulative)


@dataclass
class XiResult:
    """Binned Landy–Szalay correlation-function estimate."""

    edges: np.ndarray
    xi: np.ndarray
    dd: np.ndarray
    dr: np.ndarray
    rr: np.ndarray

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])


def landy_szalay(data, randoms, edges, **options) -> XiResult:
    """Landy–Szalay estimate of ξ(r) over the given radial bins.

    ``data`` is the observed catalog, ``randoms`` an (ideally larger)
    uniform catalog over the same volume.  For an unclustered ``data``
    drawn from the same distribution as ``randoms``, ξ ≈ 0 in every bin.
    """
    data = data if isinstance(data, Storage) else Storage(data, name="data")
    randoms = randoms if isinstance(randoms, Storage) else Storage(
        randoms, name="randoms")
    nd, nr = data.n, randoms.n
    if nd < 2 or nr < 2:
        raise ValueError("catalogs need at least 2 points each")

    dd = binned_pair_counts(data, None, edges, **options)
    dr = binned_pair_counts(data, randoms, edges, **options)
    rr = binned_pair_counts(randoms, None, edges, **options)

    # Normalise ordered counts by the number of ordered pairs.
    dd_n = dd / (nd * (nd - 1))
    dr_n = dr / (nd * nr)
    rr_n = rr / (nr * (nr - 1))

    with np.errstate(divide="ignore", invalid="ignore"):
        xi = (dd_n - 2.0 * dr_n + rr_n) / rr_n
    xi[~np.isfinite(xi)] = np.nan
    return XiResult(edges=np.asarray(edges, float), xi=xi, dd=dd, dr=dr,
                    rr=rr)
