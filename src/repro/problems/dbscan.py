"""DBSCAN clustering on top of the range-search machinery.

Another "algorithm expressed in this style": DBSCAN's only geometric
primitive is the ε-neighbourhood query, which is exactly the range-search
N-body problem (``∀_q ∪arg_r I(‖x_q − x_r‖ < ε)``).  One dual-tree pass
materialises every neighbourhood — including the wholesale closed-form
inclusions for dense regions — and the native part is just the classic
core-point expansion over the precomputed lists.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..dsl.storage import Storage
from .range_search import range_search

__all__ = ["dbscan", "DBSCANResult", "NOISE"]

#: Label assigned to noise points.
NOISE = -1


@dataclass
class DBSCANResult:
    """Cluster labels (NOISE = −1) and core-point mask."""

    labels: np.ndarray
    core_mask: np.ndarray
    n_clusters: int

    def cluster_sizes(self) -> np.ndarray:
        if self.n_clusters == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.labels[self.labels >= 0],
                           minlength=self.n_clusters)


def dbscan(
    data,
    eps: float,
    min_samples: int = 5,
    **options,
) -> DBSCANResult:
    """Density-based clustering.

    Parameters
    ----------
    eps:
        Neighbourhood radius (the range-search ``h``).
    min_samples:
        Minimum neighbourhood size (including the point itself) for a
        point to be *core*.
    options:
        Forwarded to the range-search Portal program (``leaf_size``,
        ``parallel``, ...).
    """
    data = data if isinstance(data, Storage) else Storage(data, name="data")
    if eps <= 0:
        raise ValueError("eps must be positive")
    if min_samples < 1:
        raise ValueError("min_samples must be >= 1")
    n = data.n

    # One N-body pass: every ε-neighbourhood (self excluded by the range
    # search; re-included in the core test below).
    neighbourhoods = range_search(data, None, h=eps, **options)
    sizes = np.fromiter((len(nb) + 1 for nb in neighbourhoods),
                        dtype=np.int64, count=n)
    core = sizes >= min_samples

    labels = np.full(n, NOISE, dtype=np.int64)
    cluster = 0
    for seed in range(n):
        if labels[seed] != NOISE or not core[seed]:
            continue
        # Grow a new cluster from this core point (BFS over cores).
        labels[seed] = cluster
        queue = deque([seed])
        while queue:
            p = queue.popleft()
            if not core[p]:
                continue
            for q in neighbourhoods[p]:
                q = int(q)
                if labels[q] == NOISE:
                    labels[q] = cluster
                    queue.append(q)
        cluster += 1

    return DBSCANResult(labels=labels, core_mask=core, n_clusters=cluster)
