"""Expectation–Maximization for Gaussian mixtures (paper Table III, EM*).

The paper decomposes EM into two N-body sub-problems expressed in Portal
— the E-step (``∀_n ∀_k r_nk``) and the log-likelihood
(``Σ_n log Σ_k π_k N(x_n|μ_k, Σ_k)``) — plus native iteration logic (the
M-step), and notes that EM shows the largest deviation from expert code
(8–9 %) *because of external function calls*: the Gaussian component
kernel needs per-component covariances, so it is linked as an external
function rather than lowered.  This module mirrors that structure
exactly: both sub-problems run through ``PortalExpr`` with an external
kernel; the M-step is plain NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import cholesky, solve_triangular

from ..dsl import PortalExpr, PortalOp, Storage

__all__ = ["GaussianMixtureEM", "em_fit"]

_LOG2PI = float(np.log(2.0 * np.pi))


def _log_gaussian(X: np.ndarray, mean: np.ndarray, cov: np.ndarray) -> np.ndarray:
    """log N(x | mean, cov) for every row of X (Cholesky-based — the same
    numerical optimisation the compiler applies to Mahalanobis forms)."""
    d = X.shape[1]
    L = cholesky(cov + 1e-9 * np.eye(d), lower=True)
    return _log_gaussian_chol(X, mean, L)


def _log_gaussian_chol(X: np.ndarray, mean: np.ndarray, L: np.ndarray) -> np.ndarray:
    """log N(x | mean, LLᵀ) given the precomputed Cholesky factor."""
    d = X.shape[1]
    z = solve_triangular(L, (X - mean).T, lower=True)
    maha = np.einsum("ij,ij->j", z, z)
    logdet = 2.0 * np.log(np.diag(L)).sum()
    return -0.5 * (maha + logdet + d * _LOG2PI)


def _component_kernel(means, covs, weights):
    """Build the external Portal kernel evaluating π_k N(x | μ_k, Σ_k).

    The per-component Cholesky factors are computed once per E-step call
    (loop-invariant — the same hoisting the compiler's numerical
    optimisation pass performs on internal Mahalanobis kernels)."""
    d = means.shape[1]
    chols = [cholesky(c + 1e-9 * np.eye(d), lower=True) for c in covs]

    def kernel(Q, R, qs, rs):
        out = np.empty((Q.shape[0], R.shape[0]))
        for j in range(R.shape[0]):
            k = rs + j
            out[:, j] = np.exp(
                _log_gaussian_chol(Q, means[k], chols[k])
            ) * weights[k]
        return out

    kernel.__name__ = "gaussian_component_kernel"
    return kernel


@dataclass
class GaussianMixtureEM:
    """Gaussian mixture model fitted with EM over Portal sub-problems."""

    n_components: int
    max_iter: int = 50
    tol: float = 1e-5
    seed: int = 0

    means_: np.ndarray | None = None
    covariances_: np.ndarray | None = None
    weights_: np.ndarray | None = None
    log_likelihoods_: list[float] = field(default_factory=list)
    n_iter_: int = 0

    # -- Portal sub-problem: E-step (∀_n ∀_k) -----------------------------------
    def _estep_responsibilities(self, data: Storage) -> np.ndarray:
        comp_storage = Storage(self.means_, name="components")
        # External kernel (paper section III-C): π_k N(x | μ_k, Σ_k) for
        # the component block — the reason EM shows the largest Portal vs
        # expert deviation in the paper.
        component_kernel = _component_kernel(
            self.means_, self.covariances_, self.weights_
        )

        expr = PortalExpr("em-e-step")
        expr.addLayer(PortalOp.FORALL, data)
        expr.addLayer(PortalOp.FORALL, comp_storage, component_kernel)
        out = expr.execute()
        dense = np.asarray(out.values)
        total = dense.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return dense / total

    # -- Portal sub-problem: log-likelihood (Σ_n log Σ_k) -----------------------
    def log_likelihood(self, data) -> float:
        data = data if isinstance(data, Storage) else Storage(data, name="data")
        comp_storage = Storage(self.means_, name="components")
        component_kernel = _component_kernel(
            self.means_, self.covariances_, self.weights_
        )

        expr = PortalExpr("em-log-likelihood")
        expr.addLayer(PortalOp.SUM, data, np.log)   # log is the modifier
        expr.addLayer(PortalOp.SUM, comp_storage, component_kernel)
        out = expr.execute(exclude_self=False)
        return float(out.scalar)

    # -- native iteration logic (the paper's "native C++" part) ----------------
    def fit(self, data) -> "GaussianMixtureEM":
        data = data if isinstance(data, Storage) else Storage(data, name="data")
        X = data.data
        n, d = X.shape
        K = self.n_components
        if K < 1 or K > n:
            raise ValueError(f"n_components must be in [1, {n}]")

        rng = np.random.default_rng(self.seed)
        self.means_ = X[rng.choice(n, size=K, replace=False)].copy()
        # Hard-assign each point to its nearest initial mean and run one
        # M-step (k-means-style init avoids the uniform-responsibility
        # saddle a shared wide covariance would create).
        d2 = ((X[:, None, :] - self.means_[None, :, :]) ** 2).sum(-1)
        assign = d2.argmin(axis=1)
        resp0 = np.zeros((n, K))
        resp0[np.arange(n), assign] = 1.0
        self.covariances_ = np.empty((K, d, d))
        self.weights_ = np.empty(K)
        nk = resp0.sum(axis=0) + 1e-12
        self.weights_ = nk / n
        self.means_ = (resp0.T @ X) / nk[:, None]
        for k in range(K):
            diff = X - self.means_[k]
            self.covariances_[k] = (
                (resp0[:, k][:, None] * diff).T @ diff
            ) / nk[k] + 1e-6 * np.eye(d)

        prev_ll = -np.inf
        for it in range(self.max_iter):
            resp = self._estep_responsibilities(data)       # Portal E-step
            # M-step (native).
            nk = resp.sum(axis=0) + 1e-12
            self.weights_ = nk / n
            self.means_ = (resp.T @ X) / nk[:, None]
            for k in range(K):
                diff = X - self.means_[k]
                self.covariances_[k] = (
                    (resp[:, k][:, None] * diff).T @ diff
                ) / nk[k] + 1e-6 * np.eye(d)
            ll = self.log_likelihood(data)                  # Portal log-lik
            self.log_likelihoods_.append(ll)
            self.n_iter_ = it + 1
            if abs(ll - prev_ll) < self.tol * max(1.0, abs(prev_ll)):
                break
            prev_ll = ll
        return self

    def predict_proba(self, data) -> np.ndarray:
        data = data if isinstance(data, Storage) else Storage(data, name="data")
        return self._estep_responsibilities(data)

    def predict(self, data) -> np.ndarray:
        return self.predict_proba(data).argmax(axis=1)


def em_fit(data, n_components: int, max_iter: int = 50,
           tol: float = 1e-5, seed: int = 0) -> GaussianMixtureEM:
    """Convenience wrapper: fit a Gaussian mixture with EM."""
    return GaussianMixtureEM(
        n_components=n_components, max_iter=max_iter, tol=tol, seed=seed
    ).fit(data)
