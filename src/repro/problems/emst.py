"""Euclidean minimum spanning tree (paper Table III row: MST*).

Portal specification per Borůvka round: ``∀_components argmin`` over
point pairs crossing the component boundary — the paper marks MST as an
*iterative* algorithm whose inner N-body sub-problem is expressed in
Portal while the iteration logic is native host code.  This module is
that composition: a dual-tree Borůvka where each round runs a
component-aware nearest-foreign-neighbor traversal over the kd-tree
substrate with the same bound-based pruning as nearest neighbors, plus a
second exact prune for node pairs entirely inside one component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsl.storage import Storage
from ..traversal import TraversalStats, dual_tree_traversal
from ..trees import build_kdtree

__all__ = ["emst", "EMSTResult"]


@dataclass
class EMSTResult:
    """Edges (original indices) and weights of the spanning tree."""

    edges: np.ndarray        # (n-1, 2) int
    weights: np.ndarray      # (n-1,) float — Euclidean edge lengths
    total_weight: float
    rounds: int
    stats: TraversalStats


class _UnionFind:
    def __init__(self, n: int):
        self.parent = np.arange(n)

    def find(self, x: int) -> int:
        p = self.parent
        root = x
        while p[root] != root:
            root = p[root]
        while p[x] != root:
            p[x], x = root, p[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[max(ra, rb)] = min(ra, rb)
        return True


def emst(points, leaf_size: int = 32) -> EMSTResult:
    """Compute the Euclidean minimum spanning tree with dual-tree Borůvka."""
    if isinstance(points, Storage):
        points = points.data
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = len(points)
    if n < 2:
        raise ValueError("EMST needs at least two points")

    tree = build_kdtree(points, leaf_size=leaf_size)
    pts = tree.points                      # permuted order
    pn2 = np.einsum("ij,ij->i", pts, pts)
    perm = tree.perm
    lo, hi = tree.lo, tree.hi
    start, end = tree.start, tree.end
    n_nodes = tree.n_nodes

    uf = _UnionFind(n)
    comp = np.arange(n)                    # component root per permuted point
    edges: list[tuple[int, int]] = []
    wts: list[float] = []
    stats = TraversalStats()
    rounds = 0

    while len(edges) < n - 1:
        rounds += 1
        # Per-component best candidate this round.
        best_d = np.full(n, np.inf)        # indexed by component root
        best_pair = np.full((n, 2), -1, dtype=np.int64)

        # Per-node single-component markers (cheap per-round precompute).
        cmin = np.empty(n_nodes, dtype=np.int64)
        cmax = np.empty(n_nodes, dtype=np.int64)
        for i in range(n_nodes):
            seg = comp[start[i]:end[i]]
            cmin[i] = seg.min()
            cmax[i] = seg.max()

        def prune_or_approx(qi, ri):
            # Exact prune 1: both nodes entirely inside one component.
            if (
                cmin[qi] == cmax[qi]
                and cmin[ri] == cmax[ri]
                and cmin[qi] == cmin[ri]
            ):
                return 1
            # Exact prune 2: bound-based — no point of the pair can beat
            # the current best of any component present in the query node.
            gaps = np.maximum(0.0, np.maximum(lo[ri] - hi[qi], lo[qi] - hi[ri]))
            tmin = float(gaps @ gaps)
            bound = best_d[comp[start[qi]:end[qi]]].max()
            return 1 if tmin > bound else 0

        def base_case(qs, qe, rs, re):
            D = pn2[qs:qe, None] + pn2[None, rs:re] - 2.0 * (
                pts[qs:qe] @ pts[rs:re].T
            )
            np.maximum(D, 0.0, out=D)
            cq = comp[qs:qe]
            cr = comp[rs:re]
            D[cq[:, None] == cr[None, :]] = np.inf
            j = D.argmin(axis=1)
            vals = D[np.arange(D.shape[0]), j]
            for i in np.flatnonzero(np.isfinite(vals)):
                c = cq[i]
                if vals[i] < best_d[c]:
                    best_d[c] = vals[i]
                    best_pair[c, 0] = qs + i
                    best_pair[c, 1] = rs + j[i]

        st = dual_tree_traversal(tree, tree, prune_or_approx, base_case)
        stats.merge(st)

        # Merge the winning edges (classic Borůvka contraction).
        added = False
        for c in np.unique(comp):
            if np.isfinite(best_d[c]) and best_pair[c, 0] >= 0:
                a, b = int(best_pair[c, 0]), int(best_pair[c, 1])
                if uf.union(a, b):
                    edges.append((int(perm[a]), int(perm[b])))
                    wts.append(float(np.sqrt(best_d[c])))
                    added = True
        if not added:  # pragma: no cover — safety against degenerate input
            raise RuntimeError("Borůvka round added no edge")
        comp = np.fromiter((uf.find(i) for i in range(n)), dtype=np.int64,
                           count=n)

    order = np.argsort(wts)
    return EMSTResult(
        edges=np.asarray(edges, dtype=np.int64)[order],
        weights=np.asarray(wts)[order],
        total_weight=float(np.sum(wts)),
        rounds=rounds,
        stats=stats,
    )
