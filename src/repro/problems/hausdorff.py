"""Hausdorff distance (paper Table III row 3).

Portal specification: ``max_q min_r ‖x_q − x_r‖`` — a MAX outer layer
over one set and a MIN inner layer over the other.  A pruning problem:
the inner min admits the same node-bound pruning as nearest neighbors.
"""

from __future__ import annotations

from ..dsl import PortalExpr, PortalFunc, PortalOp, Storage

__all__ = ["directed_hausdorff", "hausdorff"]


def directed_hausdorff(A, B, **options) -> float:
    """Directed Hausdorff distance ``h(A, B) = max_{a∈A} min_{b∈B} d(a,b)``."""
    A = A if isinstance(A, Storage) else Storage(A, name="setA")
    B = B if isinstance(B, Storage) else Storage(B, name="setB")
    expr = PortalExpr("hausdorff-directed")
    expr.addLayer(PortalOp.MAX, A)
    expr.addLayer(PortalOp.MIN, B, PortalFunc.EUCLIDEAN)
    out = expr.execute(**options)
    return float(out.scalar)


def hausdorff(A, B, **options) -> float:
    """Symmetric Hausdorff distance ``max(h(A,B), h(B,A))``."""
    return max(directed_hausdorff(A, B, **options),
               directed_hausdorff(B, A, **options))
