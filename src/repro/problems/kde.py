"""Kernel density estimation (paper Table III, Fig. 3).

Portal specification: ``∀_q Σ_r K_σ(x_q − x_r)`` with the Gaussian
kernel.  An approximation problem: when the kernel-value band over a node
pair is narrower than ``tau``, the node's contribution collapses to its
centroid contribution times its density.
"""

from __future__ import annotations

import math

import numpy as np

from ..dsl import PortalExpr, PortalFunc, PortalOp, Storage

__all__ = ["kde"]


def kde(
    query,
    reference=None,
    bandwidth: float = 1.0,
    tau: float = 1e-3,
    weights: np.ndarray | None = None,
    normalize: bool = False,
    **options,
) -> np.ndarray:
    """Gaussian kernel density estimate at every query point.

    Parameters
    ----------
    bandwidth:
        Gaussian bandwidth σ.
    tau:
        Approximation threshold on the kernel value (paper's user knob:
        per-query absolute error is bounded by ``tau · N``).
    weights:
        Optional per-reference weights.
    normalize:
        Multiply by the Gaussian normalisation constant and ``1/N`` so the
        result integrates to one.
    """
    query = query if isinstance(query, Storage) else Storage(query, name="query")
    if reference is None:
        reference = query
    elif not isinstance(reference, Storage):
        reference = Storage(reference, weights=weights, name="reference")

    expr = PortalExpr("kernel-density-estimation")
    expr.addLayer(PortalOp.FORALL, query)
    expr.addLayer(PortalOp.SUM, reference, PortalFunc.GAUSSIAN,
                  bandwidth=bandwidth)
    options.setdefault("tau", tau)
    options.setdefault("exclude_self", False)
    out = expr.execute(**options)
    density = np.asarray(out.values)
    if normalize:
        d = query.dim
        norm = (2.0 * math.pi * bandwidth * bandwidth) ** (d / 2.0)
        density = density / (norm * reference.n)
    return density
