"""k-means clustering over Portal assignment steps.

Like EM, k-means is an iterative algorithm whose inner loop is an N-body
sub-problem: the assignment step is ``∀_n argmin_k ‖x_n − μ_k‖`` — a
FORALL/ARGMIN Portal program over the point set and the (small) centroid
set — while the update step is native arithmetic.  Lloyd's algorithm with
k-means++ seeding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dsl import PortalExpr, PortalFunc, PortalOp, Storage

__all__ = ["kmeans", "KMeansResult"]


@dataclass
class KMeansResult:
    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    inertia_history: list[float] = field(default_factory=list)


def _plusplus_init(X: np.ndarray, k: int, rng) -> np.ndarray:
    """k-means++ seeding."""
    n = len(X)
    centroids = [X[rng.integers(0, n)]]
    d2 = ((X - centroids[0]) ** 2).sum(axis=1)
    for _ in range(k - 1):
        probs = d2 / max(d2.sum(), 1e-300)
        centroids.append(X[rng.choice(n, p=probs)])
        d2 = np.minimum(d2, ((X - centroids[-1]) ** 2).sum(axis=1))
    return np.asarray(centroids)


def _assign(data: Storage, centroids: np.ndarray):
    """The Portal assignment sub-problem: nearest centroid per point."""
    expr = PortalExpr("kmeans-assignment")
    expr.addLayer(PortalOp.FORALL, data)
    expr.addLayer(PortalOp.ARGMIN, Storage(centroids, name="centroids"),
                  PortalFunc.SQREUCDIST)
    out = expr.execute(exclude_self=False, fastmath=False)
    return np.asarray(out.indices), np.asarray(out.values)


def kmeans(
    data,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Cluster ``data`` into ``k`` groups with Lloyd's algorithm."""
    data = data if isinstance(data, Storage) else Storage(data, name="data")
    X = data.data
    n = len(X)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]")
    rng = np.random.default_rng(seed)
    centroids = _plusplus_init(X, k, rng)

    history: list[float] = []
    labels = np.zeros(n, dtype=np.int64)
    for it in range(max_iter):
        labels, d2 = _assign(data, centroids)          # Portal sub-problem
        inertia = float(d2.sum())
        history.append(inertia)
        new_centroids = centroids.copy()
        for j in range(k):
            members = X[labels == j]
            if len(members):
                new_centroids[j] = members.mean(axis=0)
        shift = float(np.linalg.norm(new_centroids - centroids, axis=1).max())
        centroids = new_centroids
        if shift < tol:
            break
    labels, d2 = _assign(data, centroids)
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=float(d2.sum()),
        iterations=len(history), inertia_history=history,
    )
