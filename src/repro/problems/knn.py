"""k-nearest neighbors (paper Table III row 1, Code 1).

Portal specification: ``∀_q argmin^k_r ‖x_q − x_r‖`` — a FORALL outer
layer over the query set and a KARGMIN (ARGMIN for k = 1) inner layer
over the reference set with the Euclidean kernel.  A pruning problem: a
node pair is pruned when its minimum distance exceeds the node's worst
current k-th best.
"""

from __future__ import annotations

import numpy as np

from ..dsl import PortalExpr, PortalFunc, PortalOp, Storage

__all__ = ["knn"]


def knn(
    query,
    reference=None,
    k: int = 1,
    **options,
) -> tuple[np.ndarray, np.ndarray]:
    """Find the ``k`` nearest reference points of every query point.

    Parameters
    ----------
    query, reference:
        ``(n, d)`` arrays or :class:`~repro.dsl.Storage`.  When
        ``reference`` is omitted the query set is searched against itself
        with self-neighbors excluded.
    k:
        Number of neighbors.
    options:
        Forwarded to ``PortalExpr.execute`` (``leaf_size``, ``parallel``,
        ``fastmath``, ...).

    Returns
    -------
    (distances, indices):
        Arrays of shape ``(n, k)`` (``(n,)`` for ``k=1``), sorted
        nearest-first.
    """
    query = query if isinstance(query, Storage) else Storage(query, name="query")
    if reference is None:
        reference = query
    elif not isinstance(reference, Storage):
        reference = Storage(reference, name="reference")

    expr = PortalExpr("k-nearest-neighbors")
    expr.addLayer(PortalOp.FORALL, query)
    op = PortalOp.ARGMIN if k == 1 else (PortalOp.KARGMIN, k)
    expr.addLayer(op, reference, PortalFunc.EUCLIDEAN)
    out = expr.execute(**options)
    return np.asarray(out.values), np.asarray(out.indices)
