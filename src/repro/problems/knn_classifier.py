"""k-NN classification and regression on top of the k-NN Portal program.

Completes the ML story around nearest neighbors: majority-vote
classification (with inverse-distance tie-breaking) and distance-weighted
regression, both driven by the labels/weights a :class:`Storage` carries.
"""

from __future__ import annotations

import numpy as np

from ..dsl import Storage
from .knn import knn

__all__ = ["KNNClassifier", "knn_regress"]


class KNNClassifier:
    """Majority-vote k-NN classifier."""

    def __init__(self, k: int = 5, weighted: bool = False):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.weighted = weighted
        self._train: Storage | None = None
        self.classes_: np.ndarray | None = None
        self._codes: np.ndarray | None = None

    def fit(self, X, y) -> "KNNClassifier":
        y = np.asarray(y)
        X = X.data if isinstance(X, Storage) else np.asarray(X, float)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if self.k > len(X):
            raise ValueError(f"k={self.k} exceeds training size {len(X)}")
        self.classes_, codes = np.unique(y, return_inverse=True)
        self._codes = codes.astype(np.int64)
        self._train = Storage(X, labels=self._codes, name="train")
        return self

    def predict(self, X, **options) -> np.ndarray:
        if self._train is None:
            raise ValueError("classifier is not fitted")
        dist, idx = knn(np.asarray(X, float), self._train, k=self.k,
                        **options)
        if dist.ndim == 1:          # knn() flattens the k = 1 case
            dist = dist[:, None]
            idx = idx[:, None]
        neigh_codes = self._codes[idx]                      # (n, k)
        n = len(neigh_codes)
        K = len(self.classes_)
        votes = np.zeros((n, K))
        if self.weighted:
            w = 1.0 / np.maximum(dist, 1e-12)
        else:
            w = np.ones_like(dist)
        for j in range(self.k):
            np.add.at(votes, (np.arange(n), neigh_codes[:, j]), w[:, j])
        return self.classes_[votes.argmax(axis=1)]

    def score(self, X, y, **options) -> float:
        return float(np.mean(self.predict(X, **options) == np.asarray(y)))


def knn_regress(X_train, y_train, X_test, k: int = 5,
                weighted: bool = True, **options) -> np.ndarray:
    """Distance-weighted k-NN regression."""
    y_train = np.asarray(y_train, dtype=np.float64)
    X_train = np.asarray(X_train, dtype=np.float64)
    if len(X_train) != len(y_train):
        raise ValueError("X and y length mismatch")
    dist, idx = knn(np.asarray(X_test, float), X_train, k=k, **options)
    if dist.ndim == 1:              # knn() flattens the k = 1 case
        dist = dist[:, None]
        idx = idx[:, None]
    vals = y_train[idx]
    if not weighted:
        return vals.mean(axis=1)
    w = 1.0 / np.maximum(dist, 1e-12)
    return (vals * w).sum(axis=1) / w.sum(axis=1)
