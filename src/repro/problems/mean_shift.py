"""Mean-shift clustering by composing weighted-KDE Portal programs.

The paper's conclusion: "additional algorithms can be expressed in this
style with minimal programming effort".  Mean shift is the canonical
example — each iteration moves every point to the kernel-weighted mean of
its neighbourhood,

    x ← Σ_r K_σ(x − x_r)·x_r / Σ_r K_σ(x − x_r),

which is one *weighted* KDE per coordinate (numerators, with the
coordinate values as weights) plus one plain KDE (denominator): d + 1
two-layer Portal programs per iteration, all sharing the τ knob.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsl import PortalExpr, PortalFunc, PortalOp, Storage

__all__ = ["mean_shift", "MeanShiftResult"]


@dataclass
class MeanShiftResult:
    """Converged modes and cluster assignment."""

    modes: np.ndarray          # (k, d) distinct density modes
    labels: np.ndarray         # (n,) mode index per input point
    iterations: int
    shifted: np.ndarray        # (n, d) final position of every point


def _weighted_kde_sums(query: np.ndarray, reference: Storage,
                       bandwidth: float, tau: float) -> np.ndarray:
    """Numerator Σ K(q − r)·x_r per coordinate and denominator Σ K(q − r),
    via d + 1 Portal programs.  Returns the shifted positions."""
    d = reference.dim
    qs = Storage(query, name="query")

    def kde_with(weights):
        e = PortalExpr("mean-shift-kde")
        ref = Storage(reference.data, weights=weights, name="reference")
        e.addLayer(PortalOp.FORALL, qs)
        e.addLayer(PortalOp.SUM, ref, PortalFunc.GAUSSIAN,
                   bandwidth=bandwidth)
        return np.asarray(
            e.execute(tau=tau, exclude_self=False).values
        )

    denom = kde_with(None)
    denom = np.maximum(denom, 1e-300)
    out = np.empty_like(query)
    for j in range(d):
        out[:, j] = kde_with(reference.data[:, j].copy()) / denom
    return out


def mean_shift(
    data,
    bandwidth: float,
    max_iter: int = 50,
    tol: float = 1e-4,
    tau: float = 1e-6,
    merge_radius: float | None = None,
) -> MeanShiftResult:
    """Cluster ``data`` by mean shift with a Gaussian kernel.

    Parameters
    ----------
    bandwidth:
        Gaussian kernel bandwidth σ (sets the mode scale).
    tol:
        Convergence threshold on the max point movement per iteration.
    tau:
        KDE approximation knob forwarded to every Portal program.
    merge_radius:
        Modes closer than this merge into one cluster (default σ/2).
    """
    data = data if isinstance(data, Storage) else Storage(data, name="data")
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    X = data.data
    shifted = X.copy()
    iterations = 0
    for it in range(max_iter):
        iterations = it + 1
        new = _weighted_kde_sums(shifted, data, bandwidth, tau)
        move = float(np.linalg.norm(new - shifted, axis=1).max())
        shifted = new
        if move < tol:
            break

    # Merge converged points into distinct modes.
    radius = merge_radius if merge_radius is not None else bandwidth / 2.0
    modes: list[np.ndarray] = []
    labels = np.empty(len(X), dtype=np.int64)
    for i, x in enumerate(shifted):
        for k, m in enumerate(modes):
            if float(np.linalg.norm(x - m)) < radius:
                labels[i] = k
                break
        else:
            labels[i] = len(modes)
            modes.append(x.copy())
    return MeanShiftResult(
        modes=np.asarray(modes), labels=labels,
        iterations=iterations, shifted=shifted,
    )
