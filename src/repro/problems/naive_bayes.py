"""Naive Bayes classifier (paper Table III, validated against MLPACK).

Portal specification: ``∀_n argmin_k`` of the per-class Gaussian score
``N(x_n | μ_k, Σ_k)`` — i.e. classify every point to the class whose
Gaussian maximises the likelihood.  The per-class kernel is a Mahalanobis
form, so the compiler's numerical-optimisation pass applies: each class's
covariance is Cholesky-factorised once and the distance evaluation runs in
the whitened space (paper section IV-D).  Each class score is computed by
one 2-layer Portal program (FORALL over the test set, MIN over the
singleton class-mean reference with the MAHALANOBIS kernel) and the final
argmin over classes adds the log-prior and log-determinant corrections
natively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import cholesky

from ..dsl import PortalExpr, PortalFunc, PortalOp, Storage

__all__ = ["NaiveBayesClassifier", "naive_bayes_fit"]


@dataclass
class NaiveBayesClassifier:
    """Gaussian (quadratic) Bayes classifier over Portal programs."""

    #: Regularisation added to each class covariance diagonal.
    reg: float = 1e-6

    classes_: np.ndarray | None = None
    means_: np.ndarray | None = None
    covariances_: np.ndarray | None = None
    priors_: np.ndarray | None = None
    logdets_: np.ndarray | None = None

    def fit(self, X, y) -> "NaiveBayesClassifier":
        X = X.data if isinstance(X, Storage) else np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        self.classes_ = np.unique(y)
        d = X.shape[1]
        K = len(self.classes_)
        self.means_ = np.empty((K, d))
        self.covariances_ = np.empty((K, d, d))
        self.priors_ = np.empty(K)
        self.logdets_ = np.empty(K)
        for k, c in enumerate(self.classes_):
            Xc = X[y == c]
            if len(Xc) < 2:
                raise ValueError(f"class {c!r} needs at least 2 samples")
            self.means_[k] = Xc.mean(axis=0)
            cov = np.cov(Xc.T) + self.reg * np.eye(d)
            self.covariances_[k] = cov
            L = cholesky(cov, lower=True)
            self.logdets_[k] = 2.0 * np.log(np.diag(L)).sum()
            self.priors_[k] = len(Xc) / len(X)
        return self

    def _class_mahalanobis(self, test: Storage, k: int, **options) -> np.ndarray:
        """One Portal program per class: squared Mahalanobis distance of
        every test point to the class mean under the class covariance."""
        mean_storage = Storage(self.means_[k][None, :], name=f"class{k}-mean")
        expr = PortalExpr(f"nbc-class-{k}")
        expr.addLayer(PortalOp.FORALL, test)
        expr.addLayer(
            PortalOp.MIN, mean_storage, PortalFunc.MAHALANOBIS,
            covariance=self.covariances_[k],
        )
        out = expr.execute(exclude_self=False, **options)
        return np.asarray(out.values)

    def decision_scores(self, X, **options) -> np.ndarray:
        """Log-scores (n, K): log π_k − ½(maha + logdet)."""
        if self.classes_ is None:
            raise ValueError("classifier is not fitted")
        test = X if isinstance(X, Storage) else Storage(X, name="test")
        K = len(self.classes_)
        scores = np.empty((test.n, K))
        for k in range(K):
            maha = self._class_mahalanobis(test, k, **options)
            scores[:, k] = (
                np.log(self.priors_[k]) - 0.5 * (maha + self.logdets_[k])
            )
        return scores

    def predict(self, X, **options) -> np.ndarray:
        scores = self.decision_scores(X, **options)
        return self.classes_[scores.argmax(axis=1)]

    def score(self, X, y, **options) -> float:
        """Mean accuracy on the given test data."""
        return float(np.mean(self.predict(X, **options) == np.asarray(y)))


def naive_bayes_fit(X, y, reg: float = 1e-6) -> NaiveBayesClassifier:
    """Convenience wrapper: fit the classifier."""
    return NaiveBayesClassifier(reg=reg).fit(X, y)
