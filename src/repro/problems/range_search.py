"""Range search (paper Table III row 2).

Portal specification: ``∀_q ∪arg_r I(h_min < ‖x_q − x_r‖ < h_max)`` — a
FORALL outer layer and a UNIONARG inner layer whose comparative kernel
makes this a pruning problem: node pairs entirely outside the annulus are
discarded, pairs entirely inside are appended wholesale without touching
points.
"""

from __future__ import annotations

import numpy as np

from ..dsl import PortalExpr, PortalOp, Storage, Var, indicator, pow, sqrt

__all__ = ["range_search", "range_count"]


def _search_lt(query: Storage, reference: Storage, h: float, options) -> list:
    q, r = Var("q"), Var("r")
    expr = PortalExpr("range-search")
    expr.addLayer(PortalOp.FORALL, q, query)
    expr.addLayer(PortalOp.UNIONARG, r, reference,
                  indicator(sqrt(pow(q - r, 2)) < h))
    out = expr.execute(**options)
    return out.indices


def range_search(
    query,
    reference=None,
    h: float = 1.0,
    h_min: float = 0.0,
    **options,
) -> list[np.ndarray]:
    """Indices of all reference points within ``(h_min, h)`` of each query.

    The annulus form composes two one-sided searches, mirroring how the
    prune generator derives a *pipeline* of pruning opportunities from the
    two comparative sub-kernels (paper section II-C).
    """
    query = query if isinstance(query, Storage) else Storage(query, name="query")
    if reference is None:
        reference = query
    elif not isinstance(reference, Storage):
        reference = Storage(reference, name="reference")
    if h <= 0:
        raise ValueError("h must be positive")
    if not 0 <= h_min < h:
        raise ValueError("require 0 <= h_min < h")

    outer = _search_lt(query, reference, h, options)
    if h_min == 0.0:
        return [np.sort(ix) for ix in outer]
    inner = _search_lt(query, reference, h_min, options)
    return [
        np.sort(np.setdiff1d(o, i, assume_unique=True))
        for o, i in zip(outer, inner)
    ]


def range_count(query, reference=None, h: float = 1.0, **options) -> np.ndarray:
    """Number of reference points within ``h`` of each query point
    (``∀_q Σ_r I(‖x_q − x_r‖ < h)`` — the counting variant)."""
    query = query if isinstance(query, Storage) else Storage(query, name="query")
    if reference is None:
        reference = query
    elif not isinstance(reference, Storage):
        reference = Storage(reference, name="reference")
    q, r = Var("q"), Var("r")
    expr = PortalExpr("range-count")
    expr.addLayer(PortalOp.FORALL, q, query)
    expr.addLayer(PortalOp.SUM, r, reference,
                  indicator(sqrt(pow(q - r, 2)) < h))
    out = expr.execute(**options)
    return np.asarray(out.values)
