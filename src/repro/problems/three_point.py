"""3-point correlation: the m = 3 instance of the generalized N-body form.

The paper's framework covers *n-point* correlation (section II lists it
among the generalized problems, and Algorithm 1 is stated for m trees).
This module exercises the genuine multi-tree path: three SUM layers over
one dataset, kernel ``I(all three pairwise distances < h)``, counting
ordered triples of distinct points that form a triangle with all sides
shorter than ``h``.

Pruning uses the triple generalisation of the 2-point rules on node
triples ``(N₁, N₂, N₃)``:

* if any pairwise node *minimum* distance ≥ h, no triple in the product
  can qualify — prune;
* if every pairwise node *maximum* distance < h, all |N₁|·|N₂|·|N₃|
  triples qualify — count in closed form (minus the degenerate triples
  with repeated points, handled exactly via inclusion–exclusion on the
  node overlaps).

The closed-form inclusion is only taken for *disjoint or identical*
node combinations (always the case for same-tree node triples), keeping
the correction exact.
"""

from __future__ import annotations

import numpy as np

from ..dsl.storage import Storage
from ..traversal import TraversalStats, multi_tree_traversal
from ..trees import build_kdtree

__all__ = ["three_point_correlation"]


def _ordered_distinct_triples(na: int, nb: int, nc: int,
                              ab_same: bool, ac_same: bool,
                              bc_same: bool) -> float:
    """Number of ordered triples (a, b, c) with pairwise-distinct points,
    given which of the three node slices coincide."""
    total = na * nb * nc
    if ab_same and ac_same and bc_same:
        # all three from the same slice of n points: n(n-1)(n-2)
        n = na
        return n * (n - 1) * (n - 2)
    if ab_same:
        return (na * (na - 1)) * nc
    if ac_same:
        return (na * (na - 1)) * nb
    if bc_same:
        return na * (nb * (nb - 1))
    return total


def three_point_correlation(
    data,
    h: float,
    leaf_size: int = 32,
    return_stats: bool = False,
):
    """Count ordered triples of distinct points with all pairwise
    distances below ``h``.

    Parameters
    ----------
    data:
        ``(n, d)`` array or Storage.
    h:
        Triangle side threshold.
    leaf_size:
        Smaller than the dual-tree default: base-case cost is cubic in
        the leaf size.
    """
    if isinstance(data, Storage):
        data = data.data
    X = np.ascontiguousarray(data, dtype=np.float64)
    if h <= 0:
        raise ValueError("h must be positive")
    if len(X) < 3:
        return (0.0, TraversalStats()) if return_stats else 0.0

    tree = build_kdtree(X, leaf_size=leaf_size)
    pts = tree.points
    lo, hi = tree.lo, tree.hi
    start, end = tree.start, tree.end
    h2 = h * h
    count = [0.0]

    def node_min2(a: int, b: int) -> float:
        g = np.maximum(0.0, np.maximum(lo[b] - hi[a], lo[a] - hi[b]))
        return float(g @ g)

    def node_max2(a: int, b: int) -> float:
        s = np.maximum(0.0, np.maximum(hi[b] - lo[a], hi[a] - lo[b]))
        return float(s @ s)

    def prune_or_approx(n1: int, n2: int, n3: int) -> int:
        pairs = ((n1, n2), (n1, n3), (n2, n3))
        for a, b in pairs:
            if node_min2(a, b) >= h2:
                return 1                       # no qualifying triple
        if all(node_max2(a, b) < h2 for a, b in pairs):
            na, nb, nc = (int(end[n] - start[n]) for n in (n1, n2, n3))
            count[0] += _ordered_distinct_triples(
                na, nb, nc, n1 == n2, n1 == n3, n2 == n3
            )
            return 2                           # closed-form inclusion
        return 0

    def base_case(n1: int, n2: int, n3: int) -> None:
        s1, e1 = int(start[n1]), int(end[n1])
        s2, e2 = int(start[n2]), int(end[n2])
        s3, e3 = int(start[n3]), int(end[n3])
        A, B, C = pts[s1:e1], pts[s2:e2], pts[s3:e3]

        def close(P, Q, ps, qs):
            diff = P[:, None, :] - Q[None, :, :]
            m = np.einsum("ijk,ijk->ij", diff, diff) < h2
            if ps == qs:                       # same-tree identical slices
                np.fill_diagonal(m, False)
            return m

        mab = close(A, B, s1, s2).astype(np.float64)
        mac = close(A, C, s1, s3)
        mbc = close(B, C, s2, s3).astype(np.float64)
        # Σ_{a,b,c} mab[a,b]·mbc[b,c]·mac[a,c] as one mask GEMM:
        # paths[a,c] = (mab @ mbc)[a,c], then filter by mac.
        count[0] += float(((mab @ mbc) * mac).sum())

    stats = multi_tree_traversal([tree, tree, tree], prune_or_approx,
                                 base_case)
    result = float(count[0])
    if return_stats:
        return result, stats
    return result
