"""2-point correlation (paper Table III, validated against scikit-learn).

Portal specification: ``Σ_i Σ_j I(‖x_i − x_j‖ < h)`` — two SUM layers
over the same dataset with a comparative kernel.  A pruning problem with
*two* exact opportunities: node pairs entirely farther than ``h``
contribute zero, node pairs entirely closer contribute ``|N_i|·|N_j|`` in
closed form — the dual-tree counting that gives the 66–165× speedups of
paper Table V.
"""

from __future__ import annotations

from ..dsl import PortalExpr, PortalOp, Storage, Var, indicator, pow, sqrt

__all__ = ["two_point_correlation"]


def two_point_correlation(
    data,
    h: float,
    include_self: bool = False,
    ordered: bool = True,
    **options,
) -> float:
    """Count point pairs closer than ``h``.

    Parameters
    ----------
    include_self:
        Count the trivial (i, i) pairs (off by default, matching the
        usual correlation-function estimators).
    ordered:
        Count ordered pairs (i, j) and (j, i) separately (default); set
        False for the unordered count.
    """
    data = data if isinstance(data, Storage) else Storage(data, name="data")
    if h <= 0:
        raise ValueError("h must be positive")
    q, r = Var("q"), Var("r")
    expr = PortalExpr("two-point-correlation")
    expr.addLayer(PortalOp.SUM, q, data)
    expr.addLayer(PortalOp.SUM, r, data, indicator(sqrt(pow(q - r, 2)) < h))
    options.setdefault("exclude_self", not include_self)
    out = expr.execute(**options)
    count = float(out.scalar)
    if not ordered:
        self_pairs = float(data.n) if include_self else 0.0
        count = (count - self_pairs) / 2.0 + self_pairs
    return count
