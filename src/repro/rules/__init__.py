"""The prune/approximate generator (PASCAL's rule machinery, section II).

``build_rules`` is the single entry point used by the compiler: it
classifies the problem and generates the matching :class:`RuleSpec`.
"""

from __future__ import annotations

from ..dsl.funcs import MetricKernel
from ..dsl.layer import Layer
from ..observe import active_counters
from .approx_gen import generate_approx
from .classify import Classification, classify
from .prune_gen import generate_prune
from .spec import RuleSpec

__all__ = [
    "Classification", "RuleSpec", "classify", "generate_prune",
    "generate_approx", "build_rules",
]


def build_rules(
    layers: list[Layer],
    kernel: MetricKernel | None,
    *,
    tau: float = 0.0,
    criterion: str = "band",
    theta: float = 0.5,
) -> tuple[Classification, RuleSpec]:
    """Classify the problem and generate its prune/approximate rule."""
    cls = classify(layers, kernel)
    if cls.algorithm == "brute" or kernel is None:
        rule = RuleSpec(kind="none", description="brute-force: no rule")
    elif cls.is_pruning:
        rule = generate_prune(layers, kernel)
    else:
        rule = generate_approx(
            layers, kernel, tau=tau, criterion=criterion, theta=theta
        )
    counters = active_counters()
    if counters is not None:
        counters.update({
            f"rules.classified.{cls.category}": 1,
            f"rules.generated.{rule.kind}": 1,
        })
    return cls, rule
