"""Approximate-condition generator for approximation problems
(paper section II-C).

For a node pair ``(N_q, N_r)`` the kernel-value band ``[g_lo, g_hi]``
follows from the node distance bounds.  When the band is narrower than
the user threshold ``tau``, every point of ``N_r`` contributes nearly the
same value to every query in ``N_q``, so ComputeApprox replaces the
O(|N_q|·|N_r|) base case with the *center contribution times the density*
of the node: for each query ``q``,

    acc[q] += W(N_r) · g(t(q, centroid(N_r)))

where ``W`` is the node's point count (or total weight for weighted
datasets — the center of mass in Barnes-Hut).  The per-query error is
bounded by ``W(N_r)·(g_hi − g_lo) ≤ W(N_r)·tau``, giving the
time/accuracy tuning knob the paper exposes to the user.

A second acceptance criterion, ``mac``, implements the classical
Barnes-Hut multipole acceptance test ``diameter(N_r)/dist ≤ θ``.
"""

from __future__ import annotations

from ..dsl.errors import CompileError
from ..dsl.funcs import MetricKernel
from ..dsl.layer import Layer
from ..dsl.ops import PortalOp
from .spec import RuleSpec

__all__ = ["generate_approx"]


def generate_approx(
    layers: list[Layer],
    kernel: MetricKernel,
    tau: float = 0.0,
    criterion: str = "band",
    theta: float = 0.5,
) -> RuleSpec:
    """Generate the approximation rule for an approximation problem."""
    inner = layers[-1]
    if inner.op not in (PortalOp.SUM, PortalOp.PROD):
        raise CompileError(
            f"approximation requires an arithmetic inner operator, got "
            f"{inner.op.name}"
        )
    if kernel.monotone() is None:
        raise CompileError(
            "approximation requires a kernel monotone in distance "
            "(paper section II-C)"
        )
    if criterion not in ("band", "mac"):
        raise CompileError(f"unknown approximation criterion {criterion!r}")
    if criterion == "band":
        if tau < 0:
            raise CompileError("tau must be non-negative")
        description = (
            f"approximate if g(t_min) − g(t_max) ≤ τ = {tau:g}; "
            "ComputeApprox: acc[q] += W(N_r)·g(t(q, centroid(N_r)))"
        )
    else:
        if not (0 < theta):
            raise CompileError("theta must be positive")
        description = (
            f"approximate if diameter(N_r)/dist(N_q,N_r) ≤ θ = {theta:g}; "
            "ComputeApprox: acc[q] += W(N_r)·g(t(q, center-of-mass(N_r)))"
        )
    return RuleSpec(
        kind="approx",
        tau=tau,
        theta=theta,
        criterion=criterion,
        description=description,
    )
