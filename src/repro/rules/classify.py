"""Classification of N-body problems (paper section II-B).

Problems split into two categories:

* **pruning** — some operator is comparative (min/max families, the union
  filters) or the kernel itself is comparative (an indicator like
  ``I(|x_q − x_r| < h)``); parts of the computation can then be discarded
  *exactly*.
* **approximation** — only arithmetic operators (Σ, Π) with a
  non-comparative kernel; subsets of the data can be *approximated* by
  their node summary, trading accuracy for time under a user threshold.

The classifier also performs the paper's algorithm-choice check
(section II-C): the tree-based algorithm applies when every operator is
decomposable and the kernel is expressible as a monotone (or comparative)
function of a supported distance — otherwise Portal falls back to the
brute-force algorithm it also generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl.funcs import MetricKernel
from ..dsl.layer import Layer
from ..dsl.ops import PortalOp, op_info

__all__ = ["Classification", "classify"]


@dataclass(frozen=True)
class Classification:
    """Result of classifying a layer chain."""

    #: 'pruning' or 'approximation'
    category: str
    #: 'tree' when the multi-tree algorithm applies, else 'brute'
    algorithm: str
    #: human-readable justification, used in compiler diagnostics
    reasons: tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_pruning(self) -> bool:
        return self.category == "pruning"

    @property
    def is_approximation(self) -> bool:
        return self.category == "approximation"


def classify(layers: list[Layer], kernel: MetricKernel | None) -> Classification:
    """Classify a validated layer chain.

    Parameters
    ----------
    layers:
        The problem's layers, outermost first.
    kernel:
        The innermost layer's normalised kernel, or None when the kernel
        could not be normalised (external kernel).
    """
    reasons: list[str] = []

    comparative_ops = [
        l.op.name for l in layers if op_info(l.op).comparative
    ]
    kernel_comparative = kernel is not None and kernel.is_indicator
    if comparative_ops:
        reasons.append(
            f"comparative operator(s) {', '.join(comparative_ops)} allow "
            f"exact pruning"
        )
    if kernel_comparative:
        reasons.append("comparative kernel (indicator) allows exact pruning")

    category = "pruning" if (comparative_ops or kernel_comparative) else "approximation"
    if category == "approximation":
        reasons.append(
            "only arithmetic operators with a non-comparative kernel: "
            "node contributions can be approximated under a user threshold"
        )

    # Algorithm choice (paper section II-C properties).
    algorithm = "tree"
    if layers[-1].op is PortalOp.FORALL:
        algorithm = "brute"
        reasons.append(
            "inner ∀ performs no reduction: nothing to prune or approximate, "
            "dense evaluation"
        )
    elif any(not op_info(l.op).decomposable for l in layers):
        algorithm = "brute"
        reasons.append("non-decomposable operator: tree algorithm unavailable")
    elif kernel is None:
        algorithm = "brute"
        reasons.append(
            "kernel is not a recognised function of a supported distance: "
            "tree algorithm unavailable, using generated brute force"
        )
    elif not kernel_comparative and kernel.monotone() is None:
        algorithm = "brute"
        reasons.append(
            "kernel is not monotone in distance: distance bounds give no "
            "kernel bounds, using generated brute force"
        )

    return Classification(category, algorithm, tuple(reasons))
