"""Prune-condition generator for pruning problems (paper section II-C).

Pruning opportunities are deduced from the comparative operators and/or
comparative kernel.  The generator builds the condition from the node
distance bounds: for a node pair ``(N_q, N_r)`` the base-distance interval
``[t_min, t_max]`` (from bounding-box metadata alone) maps through the
monotone kernel ``g`` to a kernel-value band ``[g_lo, g_hi]``, and the
condition compares the band against the reduction's current retained
values.  Pruning is *exact*: a pruned pair can never contain a value the
reduction would keep.
"""

from __future__ import annotations

from ..dsl.funcs import MetricKernel
from ..dsl.layer import Layer
from ..dsl.ops import MAX_LIKE, MIN_LIKE, PortalOp
from ..dsl.errors import CompileError
from .spec import RuleSpec

__all__ = ["generate_prune"]


def generate_prune(layers: list[Layer], kernel: MetricKernel) -> RuleSpec:
    """Generate the prune rule for a pruning problem (2-layer chain)."""
    outer, inner = layers[0], layers[-1]

    # Comparative kernel (indicator): range-style pruning.
    if kernel.is_indicator:
        thr = kernel.indicator_threshold()
        if thr is None:
            # Two-sided or non-constant indicators fall back to no pruning;
            # problems needing two-sided windows express them as a product
            # of one-sided indicators or use the problem-level modules.
            return RuleSpec(
                kind="none",
                description="indicator kernel without a recognised one-sided "
                            "threshold: no pruning condition generated",
            )
        op, h = thr
        inside_action = None
        if inner.op is PortalOp.SUM and outer.op is PortalOp.SUM:
            inside_action = "count_product"
        elif inner.op is PortalOp.SUM:
            inside_action = "count_per_query"
        elif inner.op in (PortalOp.UNIONARG,):
            inside_action = "append_all"
        return RuleSpec(
            kind="indicator",
            indicator_op=op,
            indicator_h=h,
            inside_action=inside_action,
            description=(
                f"prune if t_min(N_q,N_r) {_negate(op)} {h:g} (all pairs fail "
                f"I(t {op} {h:g})); closed-form if t_max {op} {h:g} (all pairs "
                f"satisfy it)"
            ),
        )

    # Comparative operator: bound-based pruning.
    if inner.op in MIN_LIKE:
        k = inner.k or 1
        return RuleSpec(
            kind="bound-min",
            k=k,
            description=(
                "prune if g(t_min(N_q,N_r)) > B(N_q) where B(N_q) is the "
                f"largest current {_kth(k)} retained value over queries in N_q"
            ),
        )
    if inner.op in MAX_LIKE:
        k = inner.k or 1
        return RuleSpec(
            kind="bound-max",
            k=k,
            description=(
                "prune if g(t_max(N_q,N_r)) < B(N_q) where B(N_q) is the "
                f"smallest current {_kth(k)} retained value over queries in N_q"
            ),
        )
    if inner.op in (PortalOp.UNION, PortalOp.UNIONARG):
        # Union filters prune through their comparative kernel; with a
        # plain (non-indicator) kernel every value passes, so nothing can
        # be discarded.
        return RuleSpec(
            kind="none",
            description="union filter without a comparative kernel: no "
                        "pruning condition",
        )
    if outer.op in MIN_LIKE | MAX_LIKE:
        # e.g. Hausdorff: max_q min_r — the inner min drives the pruning,
        # handled above; a comparative outer over a non-comparative inner
        # (max_q Σ_r ...) admits no per-pair pruning.
        return RuleSpec(
            kind="none",
            description="comparative outer over arithmetic inner: no "
                        "per-pair pruning condition",
        )
    raise CompileError(
        "generate_prune called for a problem with no comparative operator "
        "or kernel"
    )  # pragma: no cover — classify() routes these to the approx generator


def _negate(op: str) -> str:
    return {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}[op]


def _kth(k: int) -> str:
    if k == 1:
        return "best"
    suffix = {1: "st", 2: "nd", 3: "rd"}.get(k % 10 if k % 100 not in (11, 12, 13) else 0, "th")
    return f"{k}{suffix}-best"
