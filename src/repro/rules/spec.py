"""RuleSpec: the output of the prune/approximate generator.

A RuleSpec is an abstract description of the Prune/Approximate condition
and the ComputeApprox action for one problem — what paper Table III lists
per problem.  It is consumed by

* the IR lowering stage (to emit the Prune/Approximate and ComputeApprox
  functions in Portal IR, Figs 2–3),
* the backend code generator (to emit the fast vectorised closures), and
* the Table-III benchmark, which prints :attr:`description`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RuleSpec"]


@dataclass
class RuleSpec:
    """Abstract prune/approximate rule.

    Kinds
    -----
    ``bound-min``
        Inner reduction keeps smallest kernel values.  Prune the node pair
        when the *lowest possible* kernel value in the pair exceeds the
        node's current worst retained value ``B(N_q)``.
    ``bound-max``
        Mirror image for largest-value reductions.
    ``indicator``
        Comparative kernel ``I(t ◦ h)``.  Prune when the node-pair
        distance interval lies entirely outside the satisfying region
        (contribute nothing) or entirely inside it (contribution computed
        in closed form by ComputeApprox — e.g. ``|N_q|·|N_r|`` for 2-point
        correlation).
    ``approx``
        Approximation problems.  With ``criterion='band'``: approximate
        when the kernel-value band over the pair is narrower than ``tau``
        (paper section II-C).  With ``criterion='mac'``: Barnes-Hut style
        multipole acceptance, ``diameter(N_r) / dist ≤ theta``.
        ComputeApprox adds the node's density times the centroid
        contribution.
    ``none``
        No pruning or approximation opportunity (brute-force fallback).
    """

    kind: str
    description: str = ""
    #: indicator kernels: comparison operator and threshold in base units
    indicator_op: str | None = None
    indicator_h: float | None = None
    #: action when a pair is entirely inside the indicator region:
    #: 'count_product' | 'count_per_query' | 'append_all' | None
    inside_action: str | None = None
    #: approximation parameters
    tau: float = 0.0
    theta: float = 0.5
    criterion: str = "band"
    #: bound reductions: which retained value bounds the node
    #: ('last' = k-th kept value; 'single' for plain min/max)
    k: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def prunes(self) -> bool:
        return self.kind in ("bound-min", "bound-max", "indicator")

    @property
    def approximates(self) -> bool:
        return self.kind == "approx"
