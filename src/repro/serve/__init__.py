"""``repro.serve`` — the long-lived query-serving layer (ROADMAP item 1).

Register a Portal problem once (warming the compile and reference-tree
caches), then submit point queries against the handle; concurrent
compatible requests are coalesced into one batched traversal.  See
``docs/serving.md``.

* :mod:`~repro.serve.service` — :class:`PortalService` (asyncio facade)
  and :class:`ServeProgram` (re-instantiable problem template);
* :mod:`~repro.serve.coalesce` — the cross-request :class:`Coalescer`;
* :mod:`~repro.serve.admission` — :class:`AdmissionConfig` bounds and
  the typed :class:`ServiceOverloaded` load-shed error;
* :mod:`~repro.serve.frontend` — newline-delimited JSON over TCP
  (stdlib asyncio streams), ``python -m repro serve``.
"""

from .admission import AdmissionConfig, ServeError, ServiceOverloaded
from .coalesce import BatchResult, Coalescer, ServeResult
from .frontend import ServeFrontend
from .service import PortalService, ServeProgram

__all__ = [
    "AdmissionConfig", "BatchResult", "Coalescer", "PortalService",
    "ServeError", "ServeFrontend", "ServeProgram", "ServeResult",
    "ServiceOverloaded",
]
