"""Admission control for the query-serving layer.

A long-lived service must bound how much work it accepts: an unbounded
queue converts overload into unbounded latency for *every* client, while
load-shedding keeps the served fraction fast and returns a typed,
retryable error to the rest.  One :class:`AdmissionConfig` governs each
registered handle:

* ``max_queue`` — admitted-but-uncompleted point queries per handle.
  A submit that would exceed it is rejected immediately with
  :class:`ServiceOverloaded` (counted under ``serve.shed``) instead of
  being parked behind an ever-growing backlog.
* ``batch_max`` — the most queries one coalesced traversal may carry.
  A full batch flushes immediately.  ``batch_max=1`` disables
  coalescing entirely (the benchmark's uncoalesced baseline).
* ``linger_us`` — how long an open batch waits for company before the
  linger timer flushes it.  Only reached when the handle already has an
  execute in flight: an idle handle flushes at the end of the current
  event-loop tick, so a lone client never pays the linger as latency.
* ``max_concurrent`` — concurrent batched executes per handle.  The
  default of 1 maximises coalescing (everything arriving during the
  in-flight traversal forms the next batch) and keeps per-handle result
  ordering simple; raise it for handles whose traversals underutilise
  the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl.errors import PortalError

__all__ = ["AdmissionConfig", "ServeError", "ServiceOverloaded"]


class ServeError(PortalError):
    """Base class for serving-layer failures (registration, protocol,
    lifecycle)."""


class ServiceOverloaded(ServeError):
    """The handle's admission queue is full; the query was shed.

    Retryable by construction: the service rejected the work *before*
    queueing it, so the client can back off and resubmit.
    """

    def __init__(self, handle: str, queued: int, requested: int, limit: int):
        self.handle = handle
        self.queued = queued
        self.requested = requested
        self.limit = limit
        super().__init__(
            f"handle {handle!r} is overloaded: {queued} queries in flight "
            f"+ {requested} requested > max_queue={limit}"
        )


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-handle admission knobs (see module docstring)."""

    #: admitted-but-uncompleted queries per handle before load-shedding
    max_queue: int = 1024
    #: most queries one coalesced traversal may carry (1 = no coalescing)
    batch_max: int = 256
    #: open-batch linger before the timer flushes it (microseconds)
    linger_us: int = 2000
    #: concurrent batched executes per handle
    max_concurrent: int = 1

    def __post_init__(self):
        if self.max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.batch_max < 1:
            raise ServeError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.linger_us < 0:
            raise ServeError(
                f"linger_us must be >= 0, got {self.linger_us}")
        if self.max_concurrent < 1:
            raise ServeError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}")

    @classmethod
    def from_dict(cls, d: dict | None) -> "AdmissionConfig":
        """Build from a JSON-ish dict (the frontend's ``admission``
        request field); unknown keys are rejected."""
        if not d:
            return cls()
        unknown = set(d) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ServeError(f"unknown admission options: {sorted(unknown)}")
        return cls(**{k: int(v) for k, v in d.items()})
