"""Cross-request query coalescing (ROADMAP item 1's compiler tie-in).

The traversal engines are query-vectorized: one batched/bounded
traversal over a stacked query array costs roughly the same as over a
single query, so *1 request x 1000 queries and 1000 requests x 1 query
should cost the same*.  The :class:`Coalescer` makes the second shape as
cheap as the first by accumulating in-flight point queries per **batch
key** into one stacked query array, running a single execution on the
existing compile/tree caches, and scattering result slices back to each
awaiting client future.

Batch key
---------
``(handle, k-override, frozen per-request options)`` — queries may only
share a traversal when they would compile to the *same* program over the
same reference set.  Interleaved mixed-``k`` k-NN requests therefore
never share a batch; neither do requests that override execute()
options.

Flush triggers
--------------
A pending batch flushes on the first of:

* **full** — it reached ``AdmissionConfig.batch_max`` queries;
* **idle handle** — the handle has spare execute capacity, so the batch
  flushes at the end of the current event-loop tick (same-tick submits
  still coalesce; a lone client never pays the linger as latency);
* **linger** — the timer armed when the batch opened under a busy
  handle fires after ``linger_us``;
* **capacity freed** — an execute finished and the oldest pending batch
  of that handle is kicked immediately (back-to-back pipelining: while
  a batch runs, the next one accumulates).

Determinism
-----------
For exact programs (no ``tau``/``theta`` approximation) the scattered
slices are bitwise-identical to executing each request alone: stacking
changes the query tree, but exact pruning never changes *which*
reference points reach a query row, per-pair arithmetic is
batch-invariant, and each row's contributions arrive in reference-tree
DFS order either way.  ``tests/serve/test_coalesce.py`` pins this across
the nine point-query problems, three tree kinds and both parallel
executors.  Approximate programs remain batch-*dependent* (the
approximation decisions see coarser query boxes); see docs/serving.md.
"""

from __future__ import annotations

import asyncio
import functools
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .admission import ServeError, ServiceOverloaded

__all__ = ["BatchResult", "Coalescer", "ServeResult"]


@dataclass
class ServeResult:
    """One request's slice of a (possibly coalesced) execution.

    ``values`` / ``indices`` follow :class:`repro.backend.state.Output`
    semantics restricted to this request's query rows; exactly the
    arrays a per-request ``execute()`` would have produced.
    """

    values: Any = None
    indices: Any = None

    @property
    def rows(self) -> int:
        for arr in (self.values, self.indices):
            if arr is not None:
                return len(arr)
        return 0

    def to_jsonable(self) -> dict:
        """JSON-encodable payload for the TCP frontend."""
        out: dict = {}
        if self.values is not None:
            out["values"] = _jsonable(self.values)
        if self.indices is not None:
            out["indices"] = _jsonable(self.indices)
        return out


def _jsonable(arr):
    if isinstance(arr, list):
        return [np.asarray(a).tolist() for a in arr]
    return np.asarray(arr).tolist()


class BatchResult:
    """Sliceable view over one batched execution's Output."""

    __slots__ = ("output",)

    def __init__(self, output):
        self.output = output

    def slice(self, lo: int, hi: int) -> ServeResult:
        out = self.output
        values = out.values
        if values is not None:
            values = values[lo:hi]
        indices = out.indices
        if indices is not None:
            indices = indices[lo:hi]
        return ServeResult(values=values, indices=indices)


@dataclass
class _Item:
    points: np.ndarray
    rows: int
    fut: asyncio.Future


@dataclass
class _Pending:
    """One open (not yet flushed) batch."""

    handle: Any               # service-side handle state (duck-typed)
    key: tuple
    meta: Any                 # opaque per-key execution metadata
    items: list[_Item] = field(default_factory=list)
    rows: int = 0
    timer: Any = None         # linger timer handle (has .cancel())


class Coalescer:
    """Accumulates point queries per batch key and runs them stacked.

    Single-threaded with respect to the event loop: ``submit`` and all
    flush paths run on the loop; only the blocking execution itself runs
    on the worker pool.  The ``handle`` objects passed to ``submit``
    must expose ``hid``, ``admission``, ``sem`` (an
    ``asyncio.Semaphore(max_concurrent)``), and the bookkeeping ints
    ``inflight`` / ``running``.
    """

    def __init__(
        self,
        *,
        execute: Callable[[Any, Any, np.ndarray], BatchResult],
        count: Callable[[dict], None],
        pool,
        loop: asyncio.AbstractEventLoop | None = None,
        schedule: Callable[[float, Callable], Any] | None = None,
    ):
        #: blocking ``(handle, meta, stacked_points) -> BatchResult``,
        #: run on the worker pool
        self._execute = execute
        self._count = count
        self._pool = pool
        self._loop = loop or asyncio.get_event_loop()
        #: ``(delay_s, callback) -> timer`` — injectable for fake-clock
        #: linger tests; the returned object needs only ``.cancel()``
        self._schedule = schedule or (
            lambda delay, cb: self._loop.call_later(delay, cb))
        self._pending: dict[tuple, _Pending] = {}
        self._tasks: set[asyncio.Task] = set()
        self._inflight_total = 0
        self._queue_peak = 0
        self._closed = False

    # -- introspection -----------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Admitted-but-uncompleted queries across all handles."""
        return self._inflight_total

    @property
    def queue_peak(self) -> int:
        return self._queue_peak

    def pending_batches(self) -> int:
        return len(self._pending)

    # -- admission + accumulation ------------------------------------------------
    def submit(self, handle, key: tuple, points: np.ndarray,
               meta=None) -> asyncio.Future:
        """Admit ``points`` under ``key`` and return the future of this
        request's :class:`ServeResult` slice.  Raises
        :class:`ServiceOverloaded` (after counting ``serve.shed``)
        instead of queueing past ``max_queue``."""
        if self._closed:
            raise ServeError("service is closed")
        adm = handle.admission
        rows = int(points.shape[0])
        if handle.inflight + rows > adm.max_queue:
            self._count({"serve.shed": 1, "serve.shed_queries": rows})
            raise ServiceOverloaded(handle.hid, handle.inflight, rows,
                                    adm.max_queue)
        handle.inflight += rows
        self._inflight_total += rows
        if self._inflight_total > self._queue_peak:
            # serve.queue_peak is kept equal to the high-water mark by
            # contributing only the increase (counters are additive).
            self._count(
                {"serve.queue_peak": self._inflight_total - self._queue_peak})
            self._queue_peak = self._inflight_total
        self._count({"serve.requests": 1, "serve.queries": rows})

        fut = self._loop.create_future()
        p = self._pending.get(key)
        opened = p is None
        if opened:
            p = _Pending(handle=handle, key=key, meta=meta)
            self._pending[key] = p
        p.items.append(_Item(points, rows, fut))
        p.rows += rows
        if p.rows >= adm.batch_max:
            self._flush(key, p)
        elif opened:
            if handle.running < adm.max_concurrent:
                # Idle handle: flush at the end of this tick so
                # same-tick submits coalesce at zero added latency.
                self._loop.call_soon(self._flush, key, p)
            else:
                p.timer = self._schedule(
                    adm.linger_us / 1e6,
                    functools.partial(self._flush, key, p))
        return fut

    # -- flushing ----------------------------------------------------------------
    def _flush(self, key: tuple, expect: _Pending | None = None) -> None:
        """Close the pending batch under ``key`` and start executing it.

        ``expect`` guards stale triggers: a linger timer or call_soon
        armed for a batch that already flushed (full) must not flush the
        *new* batch that reused its key.
        """
        p = self._pending.get(key)
        if p is None or (expect is not None and p is not expect):
            return
        del self._pending[key]
        if p.timer is not None:
            p.timer.cancel()
            p.timer = None
        p.handle.running += 1  # visible to same-tick submits
        task = self._loop.create_task(self._run(p))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _kick(self, handle) -> None:
        """Capacity freed on ``handle``: flush its oldest pending batch
        now instead of waiting out the linger (back-to-back pipelining)."""
        if self._closed or handle.running >= handle.admission.max_concurrent:
            return
        for key, p in self._pending.items():  # insertion order = oldest first
            if p.handle is handle:
                self._flush(key, p)
                return

    async def _run(self, p: _Pending) -> None:
        handle = p.handle
        try:
            async with handle.sem:
                items = [it for it in p.items if not it.fut.cancelled()]
                dropped = len(p.items) - len(items)
                if dropped:
                    self._count({"serve.cancelled": dropped})
                if not items:
                    return
                points = (items[0].points if len(items) == 1 else
                          np.concatenate([it.points for it in items], axis=0))
                nrows = int(points.shape[0])
                counts = {
                    "serve.batches": 1,
                    "serve.batch_queries": nrows,
                    f"serve.batch_size.{_bucket(nrows)}": 1,
                }
                if len(items) > 1:
                    # requests that actually shared their traversal
                    counts["serve.coalesced"] = len(items)
                self._count(counts)
                try:
                    result = await self._loop.run_in_executor(
                        self._pool, self._execute, handle, p.meta, points)
                except Exception as exc:
                    self._count({"serve.errors": 1})
                    for it in items:
                        if not it.fut.done():
                            it.fut.set_exception(exc)
                    return
                lo = 0
                for it in items:
                    hi = lo + it.rows
                    if it.fut.cancelled():
                        # Client went away mid-batch; its neighbours'
                        # slices are unaffected.
                        self._count({"serve.cancelled": 1})
                    elif not it.fut.done():
                        it.fut.set_result(result.slice(lo, hi))
                    lo = hi
        finally:
            handle.running -= 1
            handle.inflight -= p.rows
            self._inflight_total -= p.rows
            self._kick(handle)

    # -- lifecycle ---------------------------------------------------------------
    async def close(self) -> None:
        """Fail all pending batches and wait for running executes."""
        self._closed = True
        pending = list(self._pending.values())
        self._pending.clear()
        for p in pending:
            if p.timer is not None:
                p.timer.cancel()
            handle = p.handle
            handle.inflight -= p.rows
            self._inflight_total -= p.rows
            for it in p.items:
                if not it.fut.done():
                    it.fut.set_exception(ServeError("service is closed"))
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)


def _bucket(n: int) -> int:
    """Power-of-two histogram bucket (floor): 1, 2, 4, 8, ..."""
    return 1 << (max(1, int(n)).bit_length() - 1)
