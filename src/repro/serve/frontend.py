"""Newline-delimited JSON-over-TCP frontend (stdlib asyncio streams).

One JSON object per line in each direction.  Every request may carry an
``id`` which is echoed in the response; requests on one connection are
dispatched concurrently (each line becomes a task), so a pipelining
client's queries coalesce exactly like queries from separate
connections.

Requests
--------
``{"op": "register", "program": "<.portal source>", "data": {...},
"expr": "name", "options": {...}, "admission": {...}, "name": "hid"}``
    Parse the program text (``data`` binds ``Storage name(...)``
    statements to inline row-lists, so no server-side files are
    needed), pick the named — or sole — PortalExpr, and register it.
    The template's query Storage is a placeholder; only its
    dimensionality matters.  → ``{"ok": true, "handle": hid}``

``{"op": "query", "handle": hid, "points": [[...], ...], "k": 5,
"options": {...}}``
    → ``{"ok": true, "values": ..., "indices": ..., "rows": n}``
    (fields present per problem kind).

``{"op": "unregister", "handle": hid}`` · ``{"op": "stats"}`` ·
``{"op": "health"}``
    Lifecycle and introspection; ``stats`` surfaces the ``serve.*``
    counter registry (see docs/observability.md).

Errors come back as ``{"ok": false, "error": {"type": ..., "message":
..., "retryable": bool}}``; ``type`` is the exception class name
(``ServiceOverloaded`` is the retryable load-shed signal).
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from ..dsl.errors import PortalError
from ..dsl.parser import parse_program
from .admission import ServeError, ServiceOverloaded
from .service import PortalService

__all__ = ["ServeFrontend"]

#: Refuse request lines larger than this (64 MiB) instead of buffering
#: without bound.
MAX_LINE = 64 * 1024 * 1024


class ServeFrontend:
    """TCP server wrapping a :class:`PortalService`."""

    def __init__(self, service: PortalService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=MAX_LINE)
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for t in list(self._conn_tasks):
            t.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.service.close()

    # -- connection handling -----------------------------------------------------
    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        wlock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, wlock, _error_payload(
                        None, ServeError("request line too long")))
                    break
                except asyncio.CancelledError:
                    # Server shutdown while idle on this connection;
                    # exit normally so the streams wrapper task does
                    # not end up in cancelled state at loop teardown.
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, wlock))
                tasks.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._conn_tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, line: bytes, writer, wlock) -> None:
        rid = None
        try:
            req = json.loads(line)
            if not isinstance(req, dict):
                raise ServeError("request must be a JSON object")
            rid = req.get("id")
            payload = await self._dispatch(req)
            payload["id"] = rid
            payload["ok"] = True
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            payload = _error_payload(rid, exc)
        await self._send(writer, wlock, payload)

    async def _send(self, writer, wlock, payload: dict) -> None:
        data = json.dumps(payload).encode() + b"\n"
        async with wlock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; the work is already done

    # -- dispatch ----------------------------------------------------------------
    async def _dispatch(self, req: dict) -> dict:
        op = req.get("op")
        if op == "health":
            return dict(self.service.health())
        if op == "stats":
            return dict(self.service.stats())
        if op == "register":
            return await self._register(req)
        if op == "query":
            return await self._query(req)
        if op == "unregister":
            await self.service.unregister(_required(req, "handle"))
            return {}
        raise ServeError(f"unknown op {op!r}")

    async def _register(self, req: dict) -> dict:
        source = _required(req, "program")
        bindings = {
            name: np.asarray(rows, dtype=np.float64)
            for name, rows in (req.get("data") or {}).items()
        }
        prog = parse_program(source, bindings)
        exprs = prog.portal_exprs
        if not exprs:
            raise ServeError("program defines no PortalExpr")
        which = req.get("expr")
        if which is None:
            if len(exprs) > 1:
                raise ServeError(
                    f"program defines several PortalExprs "
                    f"({sorted(exprs)}); pick one with 'expr'")
            which = next(iter(exprs))
        if which not in exprs:
            raise ServeError(f"no PortalExpr named {which!r} in program")
        hid = await self.service.register(
            exprs[which],
            options=req.get("options"),
            admission=req.get("admission"),
            name=req.get("name"),
        )
        return {"handle": hid}

    async def _query(self, req: dict) -> dict:
        hid = _required(req, "handle")
        points = _required(req, "points")
        k = req.get("k")
        res = await self.service.query(
            hid, points, k=None if k is None else int(k),
            options=req.get("options"))
        payload = res.to_jsonable()
        payload["rows"] = res.rows
        return payload


def _required(req: dict, field: str):
    try:
        return req[field]
    except KeyError:
        raise ServeError(f"request is missing the {field!r} field") from None


def _error_payload(rid, exc: Exception) -> dict:
    return {
        "id": rid,
        "ok": False,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "retryable": isinstance(exc, ServiceOverloaded),
            "portal": isinstance(exc, PortalError),
        },
    }
