"""The asyncio query-serving layer (ROADMAP item 1).

Clients :meth:`~PortalService.register` a Portal problem *once* — which
warms the compile and reference-tree caches — and then submit point
queries against the returned handle.  Each query carries only the query
points (plus an optional ``k`` override for k-NN style problems); the
service regenerates a :class:`~repro.dsl.portal_expr.PortalExpr` around
the registered reference layers per batch, so the expensive artifacts
(reference trees, shm publications, rule classification) are cache hits
and only the cheap query-side work is per-batch.

Requests that share a batch key — ``(handle, k, frozen options)`` — are
coalesced by :class:`~repro.serve.coalesce.Coalescer` into one stacked
traversal; :class:`~repro.serve.admission.AdmissionConfig` bounds queue
depth, batch size, linger, and per-handle concurrency.

The blocking compiler/traversal work runs on a private thread pool via
``loop.run_in_executor``; the service itself is single-threaded on the
event loop.  Execution counters land in the service's own
:class:`~repro.observe.counters.Counters` registry (surfaced by
:meth:`PortalService.stats` and the frontend's ``stats`` endpoint).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..backend.cache import UncacheableParamError, freeze
from ..dsl.ops import OpCategory
from ..dsl.portal_expr import PortalExpr
from ..dsl.storage import Storage
from ..observe import Counters, collect
from .admission import AdmissionConfig, ServeError
from .coalesce import BatchResult, Coalescer, ServeResult

__all__ = ["PortalService", "ServeProgram"]


class ServeProgram:
    """A registered problem template: the reference-side layers of a
    validated :class:`PortalExpr`, re-instantiable around any query
    point set.

    The outer layer must be ``FORALL`` over the query dataset (the
    point-query shape: one output row per query point).  The template
    keeps the *same* reference :class:`Storage` and ``Var`` objects for
    every regenerated expression — reference Storages carry the
    fingerprint memo and live-tree registry that make per-batch
    compiles hit the tree cache, and ``Expr`` kernels close over the
    original ``Var`` objects.
    """

    def __init__(self, template: PortalExpr):
        template.validate()  # assigns Vars, resolves kernels, checks shape
        outer = template.layers[0]
        if outer.info.category is not OpCategory.ALL:
            raise ServeError(
                f"serving requires a FORALL outer layer over the query set; "
                f"got {outer.op.name}"
            )
        self.name = template.name
        self.template = template
        self.dim = outer.storage.dim
        inner = template.layers[-1]
        #: whether the innermost reduction takes a per-request k override
        self.has_k = inner.info.requires_k or inner.k is not None

    @classmethod
    def from_expr(cls, expr: PortalExpr) -> "ServeProgram":
        return cls(expr)

    def make_expr(self, points: np.ndarray, k: int | None = None) -> PortalExpr:
        """A fresh PortalExpr for this problem over ``points``.

        Only the query Storage is new; every reference layer reuses the
        registered Storage / Var / kernel objects.
        """
        if k is not None and not self.has_k:
            raise ServeError(
                f"program {self.name!r} has no k parameter to override "
                f"(innermost op is {self.template.layers[-1].op.name})"
            )
        expr = PortalExpr(self.name)
        outer = self.template.layers[0]
        query = Storage(points, name=f"{outer.storage.name}@serve")
        args = [outer.var, query] if outer.var is not None else [query]
        expr.addLayer(outer.op, *args, **outer.params)
        last = self.template.layers[-1]
        for layer in self.template.layers[1:]:
            kk = layer.k
            if k is not None and layer is last:
                kk = int(k)
            op_spec = layer.op if kk is None else (layer.op, kk)
            args = [layer.var] if layer.var is not None else []
            args.append(layer.storage)
            if layer.func is not None:
                args.append(layer.func)
            expr.addLayer(op_spec, *args, **layer.params)
        return expr


@dataclass
class _Handle:
    """Per-registration state shared between service and coalescer."""

    hid: str
    program: ServeProgram
    options: dict
    admission: AdmissionConfig
    sem: asyncio.Semaphore
    inflight: int = 0     # admitted-but-uncompleted queries
    running: int = 0      # flushed batches (queued-on-sem or executing)
    served: int = 0       # completed queries (post-scatter)
    epoch: int = 0        # bumped by refresh(); not part of the batch key
    _seq: int = field(default=0, repr=False)


class PortalService:
    """Long-lived serving facade over the Portal compiler.

    Usage::

        service = PortalService()
        hid = await service.register(expr)           # warms caches
        res = await service.query(hid, [[0.1, 0.2, 0.3]], k=5)
        res.indices, res.values
        await service.close()

    ``schedule`` is the linger-timer factory forwarded to the
    :class:`Coalescer` — injectable for fake-clock tests.
    """

    def __init__(self, *, max_workers: int | None = None,
                 counters: Counters | None = None, schedule=None):
        self.counters = counters if counters is not None else Counters()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="portal-serve")
        self._schedule = schedule
        self._handles: dict[str, _Handle] = {}
        self._coalescer: Coalescer | None = None
        self._next_hid = 0
        self._closed = False

    # -- plumbing ----------------------------------------------------------------
    def _count(self, mapping: dict) -> None:
        self.counters.update(mapping)

    def _co(self) -> Coalescer:
        """The coalescer, created lazily on the running loop."""
        if self._coalescer is None:
            self._coalescer = Coalescer(
                execute=self._execute_batch,
                count=self._count,
                pool=self._pool,
                loop=asyncio.get_running_loop(),
                schedule=self._schedule,
            )
        return self._coalescer

    def _handle(self, hid: str) -> _Handle:
        try:
            return self._handles[hid]
        except KeyError:
            raise ServeError(f"unknown handle {hid!r}") from None

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("service is closed")

    # -- registration ------------------------------------------------------------
    async def register(self, expr: PortalExpr, *, options: dict | None = None,
                       admission: AdmissionConfig | dict | None = None,
                       name: str | None = None) -> str:
        """Register a problem and warm its caches; returns the handle id.

        ``options`` become the default ``execute()`` options for every
        query on this handle (tree kind, executor, shards, ...).
        """
        self._check_open()
        program = ServeProgram.from_expr(expr)
        if isinstance(admission, dict):
            admission = AdmissionConfig.from_dict(admission)
        adm = admission or AdmissionConfig()
        if name is not None and name in self._handles:
            raise ServeError(f"handle {name!r} is already registered")
        hid = name
        if hid is None:
            hid = f"h{self._next_hid}"
            self._next_hid += 1
        handle = _Handle(
            hid=hid, program=program, options=dict(options or {}),
            admission=adm, sem=asyncio.Semaphore(adm.max_concurrent),
        )
        loop = asyncio.get_running_loop()
        # Warm off-loop: one probe compile builds the reference trees,
        # classifies rules and publishes shm columns, so the first real
        # query pays only query-side cost.
        await loop.run_in_executor(self._pool, self._warm, handle)
        self._check_open()
        self._handles[hid] = handle
        self._count({"serve.registered": 1})
        return hid

    def _warm(self, handle: _Handle) -> None:
        from ..policy import resolve_policy_mode, warm_policy

        probe = handle.program.template.layers[-1].storage.data[:1]
        expr = handle.program.make_expr(probe)
        mode = resolve_policy_mode(handle.options)
        opts = dict(handle.options)
        if mode != "static":
            # The one-row probe is an unrepresentative shape: never let
            # it trigger (or key) a policy search.  The policy is warmed
            # separately below at the admission batch size, so the first
            # real batch starts from a warm store ('search' pays the
            # budgeted search here, at register time, not on traffic).
            opts["policy"] = "static"
        with collect(self.counters):
            expr.execute(**opts)
            if mode != "static":
                ref = handle.program.template.layers[-1].storage.data
                cap = max(1, min(handle.admission.batch_max, len(ref)))
                step = -(-len(ref) // cap)
                batch = ref[::step][:cap]
                warm_policy(handle.program.make_expr(batch).layers,
                            handle.options, nq=handle.admission.batch_max)

    async def unregister(self, hid: str) -> None:
        """Drop a handle; queries already admitted still complete."""
        self._handle(hid)  # raise on unknown
        del self._handles[hid]
        self._count({"serve.unregistered": 1})

    # -- queries -----------------------------------------------------------------
    async def query(self, hid: str, points, *, k: int | None = None,
                    options: dict | None = None) -> ServeResult:
        """Run the registered problem over ``points`` (one or more query
        rows); coalesces with concurrent compatible requests.

        Raises :class:`~repro.serve.admission.ServiceOverloaded` when
        the handle's queue is full, :class:`ServeError` on a bad handle
        or malformed points.
        """
        self._check_open()
        handle = self._handle(hid)
        pts = np.ascontiguousarray(
            np.atleast_2d(np.asarray(points, dtype=np.float64)))
        if pts.ndim != 2 or pts.shape[1] != handle.program.dim:
            raise ServeError(
                f"query points must have shape (n, {handle.program.dim}); "
                f"got {pts.shape}"
            )
        merged = handle.options if not options else {**handle.options, **options}
        try:
            opt_key = freeze(options) if options else None
        except UncacheableParamError:
            # Unhashable per-request options: still served, never shared.
            handle._seq += 1
            opt_key = ("_unshared", handle._seq)
        key = (hid, handle.epoch, None if k is None else int(k), opt_key)
        fut = self._co().submit(handle, key, pts, meta=(k, merged))
        result = await fut
        handle.served += pts.shape[0]
        return result

    def _execute_batch(self, handle: _Handle, meta, points) -> BatchResult:
        """Blocking: compile + run one stacked batch (worker thread)."""
        k, options = meta
        expr = handle.program.make_expr(points, k=k)
        # All concurrent batches install the same service registry, so
        # overlapping collect() blocks attribute identically.
        with collect(self.counters):
            out = expr.execute(**options)
        return BatchResult(out)

    def refresh(self, hid: str) -> None:
        """Start a new batch epoch for ``hid``.

        Open (not yet flushed) batches keep their old key and drain as
        submitted; used after out-of-band Storage mutations when a
        caller wants a hard barrier between old- and new-data batches.
        (Not required for correctness: mutations bump the Storage
        version, so the next batch's compile refits or rebuilds its
        tree either way.)
        """
        self._handle(hid).epoch += 1

    # -- introspection -----------------------------------------------------------
    def stats(self) -> dict:
        """Service snapshot: ``serve.*`` + execution counters, queue
        state, and per-handle admission/inflight detail."""
        co = self._coalescer
        return {
            "closed": self._closed,
            "counters": self.counters.as_dict(),
            "inflight": co.inflight if co else 0,
            "queue_peak": co.queue_peak if co else 0,
            "pending_batches": co.pending_batches() if co else 0,
            "handles": {
                hid: {
                    "program": h.program.name,
                    "dim": h.program.dim,
                    "inflight": h.inflight,
                    "running": h.running,
                    "served": h.served,
                    "admission": {
                        "max_queue": h.admission.max_queue,
                        "batch_max": h.admission.batch_max,
                        "linger_us": h.admission.linger_us,
                        "max_concurrent": h.admission.max_concurrent,
                    },
                }
                for hid, h in self._handles.items()
            },
        }

    def health(self) -> dict:
        return {"status": "closed" if self._closed else "ok",
                "handles": len(self._handles)}

    # -- lifecycle ---------------------------------------------------------------
    async def close(self) -> None:
        """Fail pending batches, drain running ones, stop the pool."""
        if self._closed:
            return
        self._closed = True
        if self._coalescer is not None:
            await self._coalescer.close()
        self._pool.shutdown(wait=True)
