"""Multi-tree traversal schemes (paper Algorithm 1)."""

from .batched import batched_dual_tree_traversal
from .bounded_batched import bounded_batched_dual_tree_traversal
from .dualtree import dual_tree_traversal
from .multitree import TraversalStats, multi_tree_traversal

__all__ = [
    "TraversalStats", "multi_tree_traversal", "dual_tree_traversal",
    "batched_dual_tree_traversal", "bounded_batched_dual_tree_traversal",
]

from .single_tree import single_tree_knn, single_tree_traversal  # noqa: E402

__all__ += ["single_tree_traversal", "single_tree_knn"]
