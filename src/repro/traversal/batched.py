"""Batched frontier dual-tree traversal.

The stack engine (:mod:`repro.traversal.dualtree`) makes one scalar
``prune_or_approx`` call per visited node pair, so for problems whose
rules prune or approximate millions of pairs the Python call overhead —
not the algorithm — dominates wall-clock.  This engine removes that
overhead for *stateless* rules (indicator and approximation rules, whose
decisions depend only on node geometry and fixed thresholds, never on
mutable best-value bounds):

1. **Classify** — the traversal keeps a *frontier*: parallel arrays of
   (query-node, reference-node) ids, one level of the recursion at a
   time.  A single ``classify_batch`` kernel call labels the whole
   frontier (0: recurse, 1: prune, 2: approximate), boolean masks
   partition it into pruned / approximated / base-case / expand groups,
   and children of the expand group are produced with array indexing
   over the trees' expansion CSR (:meth:`ArrayTree.expansion_children`).
   Counters are tallied per level with ``count_nonzero``.

2. **Replay** — side effects (leaf base cases, ComputeApprox and
   inside-region actions) are then applied by replaying the recorded
   decision tree in the *exact order the stack engine would have used*:
   depth-first, children nearest-first (sorted per parent with one
   batched ``pair_min_dist_batch`` call + a stable ``lexsort`` instead
   of per-pair scalar distance calls).  Because decisions are stateless
   and the applied action sequence is identical, outputs are
   bit-identical to the stack engine and ``TraversalStats`` counters
   match exactly (asserted by ``tests/traversal/test_batched.py``).

Comparative reductions whose bounds tighten mid-traversal (k-NN,
Hausdorff — the ``bound-min``/``bound-max`` rules) cannot be classified
statelessly; the compiler routes them to the epoch-based bound-aware
engine (:mod:`repro.traversal.bounded_batched`) instead, with
``CompileOptions.traversal = "stack"`` as the scalar escape hatch.

Memory: the recorded decision levels grow geometrically with depth, so
phase 1 reports its peak frontier width as the
``traversal.frontier_peak`` counter (summed over tasks under parallel
execution) and phase 2 frees each level's lists as soon as the replay
has popped every entry recorded for it.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..observe import contribute
from ..trees.node import ArrayTree
from .multitree import TraversalStats

__all__ = ["batched_dual_tree_traversal"]

# Replay opcodes: 0 expands (matches classify code 0 on non-leaf pairs).
_EXPAND, _PRUNED, _ACTION, _BASE = 0, 1, 2, 3


def batched_dual_tree_traversal(
    qtree: ArrayTree,
    rtree: ArrayTree,
    classify_batch: Callable[[np.ndarray, np.ndarray], np.ndarray] | None,
    apply_action: Callable[[int, int], None] | None,
    base_case: Callable[[int, int, int, int], None],
    pair_min_dist_batch: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    q_root: int = 0,
    r_root: int = 0,
    stats: TraversalStats | None = None,
) -> TraversalStats:
    """Traverse the (query, reference) tree pair with batched decisions.

    ``classify_batch(qis, ris)`` labels arrays of node-id pairs (may be
    ``None`` when the problem has no rule); ``apply_action(qi, ri)``
    applies the code-2 side effect for one pair; ``base_case`` receives
    leaf slices exactly as in the stack engine.
    """
    owns_stats = stats is None
    stats = stats or TraversalStats()
    qstart, qend = qtree.start, qtree.end
    rstart, rend = rtree.start, rtree.end
    q_leaf_arr = qtree.is_leaf_arr
    r_leaf_arr = rtree.is_leaf_arr
    qoff, qflat = qtree.expansion_children()
    roff, rflat = rtree.expansion_children()

    # ---- phase 1: level-synchronous batched classification --------------
    levels: list[tuple | None] = []
    frontier_peak = 0
    q = np.array([q_root], dtype=np.int64)
    r = np.array([r_root], dtype=np.int64)
    while q.size:
        n = q.size
        frontier_peak = max(frontier_peak, int(n))
        if classify_batch is not None:
            codes = np.asarray(classify_batch(q, r), dtype=np.int8)
        else:
            codes = np.zeros(n, dtype=np.int8)
        both_leaf = q_leaf_arr[q] & r_leaf_arr[r]
        recurse = codes == 0
        base = recurse & both_leaf
        expand = recurse & ~both_leaf

        stats.visited += n
        stats.pruned += int(np.count_nonzero(codes == 1))
        stats.approximated += int(np.count_nonzero(codes == 2))
        nbase = int(np.count_nonzero(base))
        stats.base_cases += nbase
        if nbase:
            stats.base_case_pairs += int(
                ((qend[q] - qstart[q]) * (rend[r] - rstart[r]))[base].sum()
            )
        stats.recursions += int(np.count_nonzero(expand))

        kinds = np.where(base, _BASE, codes).astype(np.int64)
        cstart = np.zeros(n, dtype=np.int64)
        cend = np.zeros(n, dtype=np.int64)

        eq, er = q[expand], r[expand]
        if eq.size:
            # Children combos per expanded pair (q-major, like the stack
            # engine's `for a in qs for b in rs`), via array indexing.
            qn = qoff[eq + 1] - qoff[eq]
            rn = roff[er + 1] - roff[er]
            combos = qn * rn
            coff = np.concatenate([[0], np.cumsum(combos)])
            total = int(coff[-1])
            parent = np.repeat(np.arange(eq.size), combos)
            within = np.arange(total) - coff[:-1][parent]
            rrep = rn[parent]
            cq = qflat[qoff[eq][parent] + within // rrep]
            cr = rflat[roff[er][parent] + within % rrep]
            if pair_min_dist_batch is not None and total > eq.size:
                # The stack engine pushes each pair's children sorted
                # stably by descending node-pair distance, so the pop
                # order is nearest-first.  Reproduce the push order with
                # one batched distance kernel + a stable lexsort.
                dists = np.asarray(pair_min_dist_batch(cq, cr),
                                   dtype=np.float64)
                order = np.lexsort((-dists, parent))
                cq, cr = cq[order], cr[order]
            cstart[expand] = coff[:-1]
            cend[expand] = coff[1:]
        else:
            cq = np.empty(0, dtype=np.int64)
            cr = np.empty(0, dtype=np.int64)

        # Plain-int lists: the replay loop below runs far faster on them
        # than on per-element numpy scalar indexing.
        levels.append((
            kinds.tolist(),
            q.tolist(), r.tolist(),
            qstart[q].tolist(), qend[q].tolist(),
            rstart[r].tolist(), rend[r].tolist(),
            cstart.tolist(), cend.tolist(),
        ))
        q, r = cq, cr

    # ---- phase 2: replay side effects in stack-engine order -------------
    # Every entry of level L+1 is pushed exactly once (it is a child of
    # some expand pair at level L), so a per-level countdown of pops
    # tells when a level's lists can never be touched again — free them
    # then rather than holding the whole decision record to the end.
    remaining = [len(lv[0]) for lv in levels]
    stack: list[tuple[int, int]] = [(0, 0)]
    push = stack.append
    pop = stack.pop
    while stack:
        lvl, i = pop()
        kinds, ql, rl, qs, qe, rs, re, cs, ce = levels[lvl]
        k = kinds[i]
        if k == _EXPAND:
            nxt = lvl + 1
            for j in range(cs[i], ce[i]):
                push((nxt, j))
        elif k == _BASE:
            base_case(qs[i], qe[i], rs[i], re[i])
        elif k == _ACTION:
            apply_action(ql[i], rl[i])
        # _PRUNED: no side effect.
        remaining[lvl] -= 1
        if not remaining[lvl]:
            levels[lvl] = None

    contribute({"traversal.frontier_peak": frontier_peak})
    if owns_stats:
        stats.contribute()
    return stats
