"""Epoch-based bound-aware batched dual-tree traversal.

The batched frontier engine (:mod:`repro.traversal.batched`) vectorises
stateless rules, but comparative reductions whose pruning bounds tighten
mid-traversal (``bound-min``/``bound-max`` rules — k-NN, Hausdorff, the
paper's §II-C "prune by best-so-far" family) read the mutable best-value
arrays, so their per-pair decisions depend on traversal order.  This
engine batches them anyway by trading decision *freshness* for decision
*width*:

1. **Signed bounds.**  Codegen folds both rule kinds onto one
   convention: each pending pair carries a signed *promise key*
   (``+g(t_edge)`` for bound-min, ``-g(t_edge)`` for bound-max) and each
   query point carries a signed bound ``qbound`` (``±`` its current
   k-th best value, ``+inf`` before any base case).  A pair is prunable
   iff its key exceeds the max-reduction of ``qbound`` over its query
   node's slice, and a *smaller* key always means "more promising".

2. **Epochs.**  A pending pool holds unclassified pairs.  Each epoch
   selects the most promising pairs (one ``argpartition``), classifies
   the whole selection against a *snapshot* of per-query-node bounds
   (one ``classify_bound_batch`` call), runs the surviving leaf pairs
   as grouped base cases (all reference leaves meeting one query leaf
   gathered into a single kernel call), expands the surviving non-leaf
   pairs through the expansion CSR, then refreshes the node-bound
   snapshot.  Epoch width ramps from :data:`RAMP_START` up to
   ``epoch_size``, doubling after every refresh: the narrow early
   epochs run only the best pairs so bounds are tight before the wide
   epochs classify the bulk of the pool.

3. **Conservative correctness.**  Bounds tighten monotonically — a base
   case can only decrease the signed ``qbound`` — so the snapshot a
   pair is classified against is never *tighter* than reality.  A stale
   bound can therefore under-prune (the pair runs a redundant base case
   whose merge is a no-op: every candidate it contributes is dominated)
   but never mis-prune, and outputs match the stack engine exactly.
   Processing pairs best-first means bounds tighten as fast as the
   nearest-first stack engine's, so pruning is equivalent or better in
   practice (asserted differentially by the test-suite).

Node bounds are refreshed from ``qbound`` in two reduceat sweeps: sorted
leaves tile ``[0, n)`` contiguously, so one ``np.maximum.reduceat`` over
the leaf starts bounds every leaf, and the per-level bottom-up plan from
:func:`repro.trees.node.level_propagation` propagates them to internal
nodes (children are always strictly deeper, hence already reduced).

Observability (``repro.observe``): a ``traversal.bounded`` span plus
``bounded.epochs``, ``bounded.deferred_prunes`` (pairs pruned only on a
*later* epoch than the one they were generated in — the price of
snapshot staleness), ``bounded.bound_refreshes`` and
``bounded.pending_peak``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..observe import contribute, span
from ..trees.node import level_propagation, tree_levels
from .multitree import TraversalStats

__all__ = ["bounded_batched_dual_tree_traversal", "DEFAULT_EPOCH_SIZE"]

#: Pairs classified per epoch once the ramp is done.  Large enough that
#: kernel calls amortise their dispatch cost, small enough that the bound
#: snapshot a pair sees is rarely stale (measured on the Table IV k-NN
#: configurations).
DEFAULT_EPOCH_SIZE = 4096

#: Warm-up epoch size.  Until the first base cases run, every query bound
#: is ``+inf`` and nothing can prune — so the first leaf-bearing epochs
#: must be narrow (process only the most promising pairs, tighten bounds)
#: before the epoch width doubles up to ``epoch_size``.  Without the ramp
#: a pool that fits inside one epoch degenerates to level-synchronous
#: brute force: all leaf pairs are classified against the untouched
#: snapshot.
RAMP_START = 64

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


def _bound_plan(tree):
    """(sorted leaf ids, their starts, bottom-up level plan) for the
    query tree's node-bound refresh; cached on the tree object."""
    cached = getattr(tree, "_bound_plan", None)
    if cached is not None:
        return cached
    start = np.asarray(tree.start)
    leaves = np.flatnonzero(np.asarray(tree.is_leaf_arr))
    lsort = leaves[np.argsort(start[leaves], kind="stable")]
    if hasattr(tree, "levels"):
        level = tree.levels()
    else:  # pragma: no cover - every tree facade exposes levels()
        level = tree_levels(tree.child_offset, tree.child_list)
    plan = level_propagation(tree.child_offset, tree.child_list, level)
    cached = (lsort, start[lsort], plan)
    try:
        tree._bound_plan = cached
    except AttributeError:  # pragma: no cover - read-only facade
        pass
    return cached


def bounded_batched_dual_tree_traversal(
    qtree,
    rtree,
    bound_key_batch: Callable[[np.ndarray, np.ndarray], np.ndarray],
    classify_bound_batch: Callable[[np.ndarray, np.ndarray], np.ndarray],
    base_case_group: Callable[[int, int, np.ndarray], None],
    qbound: np.ndarray,
    epoch_size: int = DEFAULT_EPOCH_SIZE,
    q_root: int = 0,
    r_root: int = 0,
    stats: TraversalStats | None = None,
    max_epochs: int | None = None,
    resume: tuple | None = None,
    extern_bound: np.ndarray | None = None,
    pause_out: dict | None = None,
) -> TraversalStats:
    """Traverse the (query, reference) tree pair in bound-aware epochs.

    ``qbound`` is the signed per-query bound array allocated with the
    program state (``+inf`` identity); it is updated in place by
    ``base_case_group`` and re-read here at every node-bound refresh, so
    concurrent tasks over disjoint query subtrees share one array.

    The epoch hooks serve the cross-shard bound broadcast of
    :mod:`repro.parallel.shard`:

    * ``max_epochs`` caps the number of epochs this call runs.  A
      traversal stopped with pairs still pending stores its pending pool
      in ``pause_out["pending"]`` (an opaque tuple) and can be continued
      later by passing that tuple back as ``resume``.
    * ``extern_bound`` is an externally supplied signed per-query bound
      array (e.g. the global bound min-reduced across shards).  It is
      combined with ``qbound`` as ``min(qbound, extern_bound)`` at every
      node-bound refresh — never written into ``qbound`` itself, because
      ``base_case_group`` overwrites ``qbound`` from the local best
      arrays after each merge.  An external bound only ever *removes*
      dominated work: any candidate it prunes is beaten by a candidate
      retained elsewhere, so the combined cross-shard result is exact.
    """
    owns_stats = stats is None
    stats = stats or TraversalStats()
    qstart, qend = qtree.start, qtree.end
    rstart, rend = rtree.start, rtree.end
    q_leaf_arr = np.asarray(qtree.is_leaf_arr)
    r_leaf_arr = np.asarray(rtree.is_leaf_arr)
    qoff, qflat = qtree.expansion_children()
    roff, rflat = rtree.expansion_children()
    lsort, lstarts, plan = _bound_plan(qtree)

    # Signed node bounds over the *query* tree; +inf until the first
    # refresh (nothing prunes against an untouched query subtree).
    node_bound = np.full(len(qstart), np.inf)

    def _effective_bound():
        if extern_bound is None:
            return qbound
        return np.minimum(qbound, extern_bound)

    def _refresh_node_bounds():
        eff = _effective_bound()
        node_bound[lsort] = np.maximum.reduceat(eff, lstarts)
        for ids, kids, segs in plan:
            node_bound[ids] = np.maximum.reduceat(node_bound[kids], segs)

    if resume is not None:
        pq, pr, pkey, pborn, cur_size = resume
        pq = np.asarray(pq, dtype=np.int64)
        pr = np.asarray(pr, dtype=np.int64)
        pkey = np.asarray(pkey, dtype=np.float64)
        pborn = np.asarray(pborn, dtype=np.int64)
        cur_size = min(int(cur_size), epoch_size)
    else:
        pq = np.array([q_root], dtype=np.int64)
        pr = np.array([r_root], dtype=np.int64)
        pkey = np.asarray(bound_key_batch(pq, pr), dtype=np.float64).reshape(1)
        pborn = np.zeros(1, dtype=np.int64)
        cur_size = min(epoch_size, RAMP_START)
    if resume is not None or extern_bound is not None:
        # Resumed/externally-bounded calls start from real bounds, not
        # the +inf snapshot: the pool may be classifiable immediately.
        _refresh_node_bounds()

    epochs = 0
    deferred = 0
    refreshes = 0
    pending_peak = 0
    with span("traversal.bounded", epoch_size=epoch_size) as sp:
        while pq.size and (max_epochs is None or epochs < max_epochs):
            pending_peak = max(pending_peak, int(pq.size))
            epochs += 1
            if pq.size > cur_size:
                sel = np.argpartition(pkey, cur_size - 1)[:cur_size]
                keep = np.ones(pq.size, dtype=bool)
                keep[sel] = False
                q, r, keys, born = pq[sel], pr[sel], pkey[sel], pborn[sel]
                pq, pr, pkey, pborn = pq[keep], pr[keep], pkey[keep], pborn[keep]
            else:
                q, r, keys, born = pq, pr, pkey, pborn
                pq, pr, pkey, pborn = _EMPTY_I, _EMPTY_I, _EMPTY_F, _EMPTY_I

            stats.visited += int(q.size)
            pruned = np.asarray(classify_bound_batch(keys, node_bound[q]),
                                dtype=bool)
            n_pruned = int(np.count_nonzero(pruned))
            if n_pruned:
                stats.pruned += n_pruned
                # Pairs generated in an earlier epoch and pruned only now:
                # the snapshot they were born under was too stale to kill
                # them at generation time.
                deferred += int(np.count_nonzero(born[pruned] < epochs - 1))
                live = ~pruned
                q, r, keys = q[live], r[live], keys[live]

            both_leaf = q_leaf_arr[q] & r_leaf_arr[r]
            bq, br, bkey = q[both_leaf], r[both_leaf], keys[both_leaf]
            if bq.size:
                stats.base_cases += int(bq.size)
                stats.base_case_pairs += int(
                    ((qend[bq] - qstart[bq]) * (rend[br] - rstart[br])).sum()
                )
                # Group by query leaf, most promising reference leaf first,
                # and gather every reference slice into one flat index
                # array: one kernel call per (query leaf, epoch) instead of
                # one per leaf pair.
                order = np.lexsort((bkey, bq))
                bq, br = bq[order], br[order]
                rlen = rend[br] - rstart[br]
                total = int(rlen.sum())
                seg = np.cumsum(rlen) - rlen
                ridx = (np.arange(total, dtype=np.int64)
                        - np.repeat(seg, rlen)
                        + np.repeat(rstart[br], rlen))
                uq, first = np.unique(bq, return_index=True)
                pair_edge = np.append(first, bq.size)
                flat_edge = np.append(seg, total)
                for g in range(uq.size):
                    qi = int(uq[g])
                    s0 = int(flat_edge[pair_edge[g]])
                    e0 = int(flat_edge[pair_edge[g + 1]])
                    base_case_group(int(qstart[qi]), int(qend[qi]), ridx[s0:e0])
                # Refresh the node-bound snapshot: leaf bounds in one
                # reduceat over the contiguous leaf partition, internal
                # bounds bottom-up per level.
                refreshes += 1
                _refresh_node_bounds()
                # Widen only once base cases have fed the snapshot: the
                # ramp exists to get real bounds in place before the bulk
                # of the leaf pairs is classified.
                cur_size = min(cur_size * 2, epoch_size)

            eq, er = q[~both_leaf], r[~both_leaf]
            stats.recursions += int(eq.size)
            if eq.size:
                qn = qoff[eq + 1] - qoff[eq]
                rn = roff[er + 1] - roff[er]
                combos = qn * rn
                coff = np.cumsum(combos) - combos
                total = int(combos.sum())
                parent = np.repeat(np.arange(eq.size), combos)
                within = np.arange(total) - coff[parent]
                rrep = rn[parent]
                cq = qflat[qoff[eq][parent] + within // rrep]
                cr = rflat[roff[er][parent] + within % rrep]
                ckey = np.asarray(bound_key_batch(cq, cr), dtype=np.float64)
                pq = np.concatenate([pq, cq])
                pr = np.concatenate([pr, cr])
                pkey = np.concatenate([pkey, ckey])
                pborn = np.concatenate(
                    [pborn, np.full(total, epochs, dtype=np.int64)]
                )
        sp.note(epochs=epochs, pending_peak=pending_peak)

    if pq.size:
        # max_epochs stopped us with work pending: hand the pool back so
        # the caller can continue via ``resume`` after the barrier.
        if pause_out is None:  # pragma: no cover - caller contract
            raise ValueError(
                "bounded traversal hit max_epochs with pairs pending but "
                "no pause_out was supplied"
            )
        pause_out["pending"] = (pq, pr, pkey, pborn, cur_size)

    contribute({
        "bounded.epochs": epochs,
        "bounded.deferred_prunes": deferred,
        "bounded.bound_refreshes": refreshes,
        "bounded.pending_peak": pending_peak,
    })
    if owns_stats:
        stats.contribute()
    return stats
