"""Optimised dual-tree traversal: the 2-tree fast path of Algorithm 1.

Identical semantics to :func:`repro.traversal.multitree.multi_tree_traversal`
with ``m = 2``, plus the classic *nearest-first* visiting order: child
pairs are expanded in ascending node-pair distance, which tightens the
pruning bounds of comparative reductions (k-NN, Hausdorff) as early as
possible.  The base case receives raw point-slice boundaries so the
generated vectorised kernels can slice the permuted point arrays
directly.
"""

from __future__ import annotations

from typing import Callable

from ..trees.node import ArrayTree
from .multitree import TraversalStats

__all__ = ["dual_tree_traversal"]


def dual_tree_traversal(
    qtree: ArrayTree,
    rtree: ArrayTree,
    prune_or_approx: Callable[[int, int], int] | None,
    base_case: Callable[[int, int, int, int], None],
    pair_min_dist: Callable[[int, int], float] | None = None,
    q_root: int = 0,
    r_root: int = 0,
    stats: TraversalStats | None = None,
) -> TraversalStats:
    """Traverse the (query, reference) tree pair.

    ``base_case(qs, qe, rs, re)`` gets the leaf slices; ``pair_min_dist``
    (when given) orders sibling pairs nearest-first.
    """
    owns_stats = stats is None
    stats = stats or TraversalStats()
    q_leaf_arr = qtree.is_leaf_arr
    r_leaf_arr = rtree.is_leaf_arr
    qstart, qend = qtree.start, qtree.end
    rstart, rend = rtree.start, rtree.end

    stack: list[tuple[int, int]] = [(q_root, r_root)]
    push = stack.append
    pop = stack.pop
    while stack:
        qi, ri = pop()
        stats.visited += 1
        if prune_or_approx is not None:
            code = prune_or_approx(qi, ri)
            if code:
                if code == 1:
                    stats.pruned += 1
                else:
                    stats.approximated += 1
                continue
        ql = q_leaf_arr[qi]
        rl = r_leaf_arr[ri]
        if ql and rl:
            stats.base_cases += 1
            stats.base_case_pairs += int(
                (qend[qi] - qstart[qi]) * (rend[ri] - rstart[ri])
            )
            base_case(int(qstart[qi]), int(qend[qi]),
                      int(rstart[ri]), int(rend[ri]))
            continue
        stats.recursions += 1
        qs = (qi,) if ql else tuple(int(c) for c in qtree.children(qi))
        rs = (ri,) if rl else tuple(int(c) for c in rtree.children(ri))
        pairs = [(a, b) for a in qs for b in rs]
        if pair_min_dist is not None and len(pairs) > 1:
            # Push farthest first so the nearest pair is popped first.
            pairs.sort(key=lambda p: pair_min_dist(p[0], p[1]), reverse=True)
        for p in pairs:
            push(p)
    if owns_stats:
        stats.contribute()
    return stats
