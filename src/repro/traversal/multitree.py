"""Multi-tree traversal — paper Algorithm 1.

The rule set supplies the three functions the algorithm dispatches on:

* ``prune_or_approx(n1, n2, ...) -> int`` — 0: recurse, 1: pruned,
  2: approximated (ComputeApprox already applied inside);
* ``base_case(slices...)`` — leaf-tuple point-to-point computation;
* the ComputeApprox action is folded into ``prune_or_approx`` (the
  traversal itself never needs to distinguish the two non-zero codes,
  but statistics do).

Two implementations are provided:

* :func:`multi_tree_traversal` — the faithful m-tree generalisation: all
  non-leaf nodes of the tuple are split simultaneously and the traversal
  recurses over the power-set tuples (lines 6–11 of Algorithm 1);
* :class:`DualTreeTraversal` (see :mod:`repro.traversal.dualtree`) — the
  optimised 2-tree fast path used by the compiled problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Sequence

from ..observe import active_counters, contribute
from ..trees.node import ArrayTree

__all__ = ["TraversalStats", "multi_tree_traversal"]


@dataclass
class TraversalStats:
    """Counters for analysing prune/approximate effectiveness.

    Every visited node tuple takes exactly one of the four exits, so the
    identity ``visited == pruned + approximated + recursions + base_cases``
    holds for any complete traversal (tested in
    ``tests/traversal/test_counters.py``).
    """

    visited: int = 0
    pruned: int = 0
    approximated: int = 0
    recursions: int = 0       # node tuples expanded into children
    base_cases: int = 0
    base_case_pairs: int = 0  # point pairs evaluated exactly

    def merge(self, other: "TraversalStats") -> None:
        self.visited += other.visited
        self.pruned += other.pruned
        self.approximated += other.approximated
        self.recursions += other.recursions
        self.base_cases += other.base_cases
        self.base_case_pairs += other.base_case_pairs

    @property
    def prune_rate(self) -> float:
        return self.pruned / self.visited if self.visited else 0.0

    @property
    def approx_rate(self) -> float:
        return self.approximated / self.visited if self.visited else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "visited": self.visited,
            "pruned": self.pruned,
            "approximated": self.approximated,
            "recursions": self.recursions,
            "base_cases": self.base_cases,
            "base_case_pairs": self.base_case_pairs,
        }

    def contribute(self) -> None:
        """Feed these counts into the active ``repro.observe`` registry."""
        if active_counters() is None:
            return
        contribute({f"traversal.{k}": v for k, v in self.as_dict().items()})


def multi_tree_traversal(
    trees: Sequence[ArrayTree],
    prune_or_approx: Callable[..., int] | None,
    base_case: Callable[..., None],
    roots: Sequence[int] | None = None,
    stats: TraversalStats | None = None,
) -> TraversalStats:
    """Run Algorithm 1 over ``m`` trees.

    ``prune_or_approx`` and ``base_case`` receive ``m`` node ids, one per
    tree; ``base_case`` receives them as node ids (the caller's closure
    resolves slices).  Iterative with an explicit stack (tree depth is
    O(log n) but the pair stack can be large).
    """
    m = len(trees)
    owns_stats = stats is None
    stats = stats or TraversalStats()
    stack = [tuple(roots) if roots is not None else (0,) * m]
    while stack:
        nodes = stack.pop()
        stats.visited += 1
        if prune_or_approx is not None:
            code = prune_or_approx(*nodes)
            if code:
                if code == 1:
                    stats.pruned += 1
                else:
                    stats.approximated += 1
                continue
        if all(trees[i].is_leaf(nodes[i]) for i in range(m)):
            stats.base_cases += 1
            npairs = 1
            for i in range(m):
                npairs *= trees[i].count(nodes[i])
            stats.base_case_pairs += npairs
            base_case(*nodes)
            continue
        # Split every non-leaf node (N_i^split), keep leaves whole, and
        # recurse over the power-set tuples.
        stats.recursions += 1
        splits = [
            [nodes[i]] if trees[i].is_leaf(nodes[i])
            else list(trees[i].children(nodes[i]))
            for i in range(m)
        ]
        for tup in product(*splits):
            stack.append(tuple(int(x) for x in tup))
    if owns_stats:
        stats.contribute()
    return stats
