"""Single-tree traversal: one query point walking the reference tree.

The classical alternative to the dual-tree scheme (and what several of
the paper's comparison libraries implement — MLPACK's default k-NN,
scikit-learn's KDTree queries, FDPS's per-particle interaction lists).
Exposed as a first-class traversal so problems and ablations can compare
the two schemes on the same tree substrate: the dual-tree amortises node
examinations over whole query *nodes*, the single-tree pays one walk per
query *point* but enjoys simpler, tighter per-point bounds.

The walk is best-first (children pushed nearest-first) with a per-point
prune rule, matching Algorithm 1's structure restricted to a leaf query.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..trees.node import ArrayTree
from .multitree import TraversalStats

__all__ = ["single_tree_traversal", "single_tree_knn"]


def single_tree_traversal(
    tree: ArrayTree,
    x: np.ndarray,
    prune: Callable[[int], int] | None,
    base_case: Callable[[int, int], None],
    point_min_dist: Callable[[int], float] | None = None,
    stats: TraversalStats | None = None,
) -> TraversalStats:
    """Walk ``tree`` for a single query point ``x``.

    ``prune(node) -> int`` (0 recurse, nonzero skip), ``base_case(s, e)``
    receives leaf slices, ``point_min_dist(node)`` orders children
    nearest-first.
    """
    owns_stats = stats is None
    stats = stats or TraversalStats()
    stack = [0]
    while stack:
        node = stack.pop()
        stats.visited += 1
        if prune is not None and prune(node):
            stats.pruned += 1
            continue
        kids = tree.children(node)
        if len(kids) == 0:
            s, e = tree.slice(node)
            stats.base_cases += 1
            stats.base_case_pairs += e - s
            base_case(s, e)
            continue
        stats.recursions += 1
        order = list(int(c) for c in kids)
        if point_min_dist is not None and len(order) > 1:
            order.sort(key=point_min_dist, reverse=True)  # nearest popped first
        stack.extend(order)
    if owns_stats:
        stats.contribute()
    return stats


def single_tree_knn(
    query: np.ndarray,
    tree: ArrayTree,
    k: int = 1,
    exclude_index: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """k-NN via one single-tree walk per query point.

    ``exclude_index[i]`` optionally names a permuted reference position to
    skip for query ``i`` (self-exclusion on self-joins).  Returns
    distances and *permuted* reference positions; callers map through
    ``tree.perm``.
    """
    Q = np.ascontiguousarray(query, dtype=np.float64)
    pts = tree.points
    lo, hi = tree.lo, tree.hi
    nq = len(Q)
    dist = np.empty((nq, k))
    idx = np.empty((nq, k), dtype=np.int64)

    for i in range(nq):
        x = Q[i]
        best = np.full(k, np.inf)
        bidx = np.full(k, -1, dtype=np.int64)
        skip = -1 if exclude_index is None else int(exclude_index[i])

        def point_min(node: int) -> float:
            g = np.maximum(0.0, np.maximum(lo[node] - x, x - hi[node]))
            return float(g @ g)

        def prune(node: int) -> int:
            return 1 if point_min(node) > best[k - 1] else 0

        def base_case(s: int, e: int) -> None:
            d = pts[s:e] - x
            d2 = np.einsum("ij,ij->i", d, d)
            if s <= skip < e:
                d2[skip - s] = np.inf
            cand_v = np.concatenate([best, d2])
            cand_i = np.concatenate([bidx, np.arange(s, e)])
            part = np.argpartition(cand_v, k - 1)[:k]
            order = np.argsort(cand_v[part], kind="stable")
            best[:] = cand_v[part][order]
            bidx[:] = cand_i[part][order]

        single_tree_traversal(tree, x, prune, base_case,
                              point_min_dist=point_min)
        dist[i] = np.sqrt(best)
        idx[i] = bidx
    return dist, idx
