"""Space-partitioning trees: kd-tree, quadtree/octree, ball tree.

The algorithmic substrate of paper section II-A.  All trees share the
array-backed :class:`~repro.trees.node.ArrayTree` storage and the
distance-bound API consumed by the multi-tree traversal.
"""

from __future__ import annotations

import numpy as np

from .balltree import BallTree, build_balltree
from .kdtree import KDTree, build_kdtree
from .node import ArrayTree, TreeNode
from .octree import Octree, build_octree

__all__ = [
    "ArrayTree", "TreeNode", "KDTree", "Octree", "BallTree",
    "build_kdtree", "build_octree", "build_balltree", "build_tree",
    "build_subset_tree",
]

_BUILDERS = {
    "kd": build_kdtree,
    "octree": build_octree,
    "ball": build_balltree,
}


def build_tree(
    kind: str,
    points: np.ndarray,
    leaf_size: int = 32,
    weights: np.ndarray | None = None,
    split: str = "median",
) -> ArrayTree:
    """Build a tree of the requested kind ('kd', 'octree' or 'ball').

    ``split`` selects the kd splitting strategy ('median' or 'midpoint');
    other tree kinds define their own partitioning and ignore it.
    """
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown tree kind {kind!r}; choose from {sorted(_BUILDERS)}"
        ) from None
    if kind == "kd":
        tree = builder(points, leaf_size=leaf_size, weights=weights,
                       split=split)
    else:
        tree = builder(points, leaf_size=leaf_size, weights=weights)
    # Remember the strategy so incremental mutations rebuild degraded
    # subtrees the same way the original build partitioned them.
    tree.split = split
    return tree


def build_subset_tree(
    kind: str,
    points: np.ndarray,
    idx: np.ndarray,
    leaf_size: int = 32,
    weights: np.ndarray | None = None,
    split: str = "median",
) -> ArrayTree:
    """Build a tree over ``points[idx]`` — the shard-local build of the
    sharded reference layout (:mod:`repro.parallel.shard`).

    Only the selected rows are ever materialised (one gather of the
    subset, never a reordered copy of the full dataset), which is what
    keeps the P-shard build path out-of-core with respect to the full
    reference set.  The returned tree's ``perm`` indexes *within the
    subset*; callers map back to original ids via ``idx[tree.perm]``.
    """
    idx = np.asarray(idx, dtype=np.int64)
    sub = np.ascontiguousarray(points[idx])
    wsub = None if weights is None else np.ascontiguousarray(weights[idx])
    return build_tree(kind, sub, leaf_size=leaf_size, weights=wsub,
                      split=split)
