"""Ball tree: the plug-and-play alternative tree type (paper section II-C).

PASCAL "abstracts the tree type which gives us the freedom to plug and
play with different trees"; the ball tree demonstrates that freedom.  It
shares the array-backed storage and splitting strategy of the kd-tree but
bounds each node with a hypersphere (centroid + radius), overriding the
distance-bound queries.  Sphere bounds are exact for the Euclidean family
only, which the compiler enforces when a ball tree is requested.
"""

from __future__ import annotations

import numpy as np

from . import geometry
from .kdtree import build_kdtree
from .node import ArrayTree

__all__ = ["BallTree", "build_balltree"]


class BallTree(ArrayTree):
    kind = "ball"

    #: Per-node bounding-sphere radius, filled by :func:`build_balltree`.
    radius: np.ndarray

    #: Refit and the partial-rebuild graft carry the radius along.
    _extra_node_arrays = ("radius",)

    def _refit_extra(self, dirty_ids):
        """Repair bounding-sphere radii for the dirty nodes, deepest
        first: leaves exactly from their point slices, internal nodes
        conservatively as ``max(dist(centroid, child centroid) + child
        radius)`` — an over-estimate keeps every bound valid without
        touching the (clean) descendant slices."""
        radius = self.radius.copy()
        order = dirty_ids[np.argsort(self.levels()[dirty_ids],
                                     kind="stable")][::-1]
        for i in order:
            i = int(i)
            kids = self.children(i)
            if len(kids) == 0:
                s, e = self.slice(i)
                if e > s:
                    diff = self.points[s:e] - self.centroid[i]
                    radius[i] = float(
                        np.sqrt((diff * diff).sum(axis=1).max()))
                else:
                    radius[i] = 0.0
            else:
                r = 0.0
                for c in kids:
                    c = int(c)
                    dc = float(np.sqrt(
                        ((self.centroid[i] - self.centroid[c]) ** 2).sum()))
                    r = max(r, dc + float(radius[c]))
                radius[i] = r
        self.radius = radius

    def min_dist(self, base, i, other, j):
        if isinstance(other, BallTree):
            return geometry.sphere_min_dist(
                base, self.centroid[i], self.radius[i],
                other.centroid[j], other.radius[j],
            )
        return super().min_dist(base, i, other, j)

    def max_dist(self, base, i, other, j):
        if isinstance(other, BallTree):
            return geometry.sphere_max_dist(
                base, self.centroid[i], self.radius[i],
                other.centroid[j], other.radius[j],
            )
        return super().max_dist(base, i, other, j)

    def point_min_dist(self, base, x, i):
        if base != "sqeuclidean":
            return super().point_min_dist(base, x, i)
        d = np.sqrt(np.dot(x - self.centroid[i], x - self.centroid[i]))
        gap = max(0.0, d - self.radius[i])
        return gap * gap

    def point_max_dist(self, base, x, i):
        if base != "sqeuclidean":
            return super().point_max_dist(base, x, i)
        d = np.sqrt(np.dot(x - self.centroid[i], x - self.centroid[i]))
        span = d + self.radius[i]
        return span * span


def build_balltree(
    points: np.ndarray,
    leaf_size: int = 32,
    weights: np.ndarray | None = None,
) -> BallTree:
    """Build a :class:`BallTree` (kd-style splits, sphere bounds)."""
    kd = build_kdtree(points, leaf_size=leaf_size, weights=weights)
    tree = BallTree(
        points=kd.points,
        perm=kd.perm,
        lo=kd.lo,
        hi=kd.hi,
        start=kd.start,
        end=kd.end,
        child_ids=[list(map(int, kd.children(i))) for i in range(kd.n_nodes)],
        weights=None if weights is None else weights,
        leaf_size=leaf_size,
    )
    # Bounding-sphere radii around the node centroids.
    radius = np.empty(tree.n_nodes)
    for i in range(tree.n_nodes):
        s, e = tree.slice(i)
        diff = tree.points[s:e] - tree.centroid[i]
        radius[i] = float(np.sqrt((diff * diff).sum(axis=1).max()))
    tree.radius = radius
    return tree
