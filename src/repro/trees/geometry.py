"""Bounding-volume distance bounds (paper section II-A).

The bounding-box information maintained by the space-partitioning trees
lets the traversal compute minimum and maximum node-to-node and
point-to-node distances *without touching the points* — the property the
paper calls critical for performance, because every prune / approximate
decision is made from these bounds alone.

All functions are expressed in one of the canonical *base* metrics
(:data:`repro.dsl.funcs.BASE_METRICS`):

* ``sqeuclidean`` — squared Euclidean distance (the Euclidean family),
* ``manhattan``  — L1 distance,
* ``chebyshev``  — L∞ distance.

Inputs are per-dimension ``lo``/``hi`` corner vectors of axis-aligned
hyper-rectangles.  Every bound returned is *true*: for any points ``a`` in
box A and ``b`` in box B, ``min_dist(A, B) ≤ d(a, b) ≤ max_dist(A, B)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "box_gaps", "box_spans", "box_min_dist", "box_max_dist",
    "point_box_min_dist", "point_box_max_dist",
    "sphere_min_dist", "sphere_max_dist",
]


def box_gaps(alo, ahi, blo, bhi) -> np.ndarray:
    """Per-dimension separation between two boxes (0 where they overlap)."""
    return np.maximum(0.0, np.maximum(blo - ahi, alo - bhi))


def box_spans(alo, ahi, blo, bhi) -> np.ndarray:
    """Per-dimension farthest separation between two boxes."""
    return np.maximum(bhi - alo, ahi - blo)


def box_min_dist(base: str, alo, ahi, blo, bhi) -> float:
    """Minimum base-distance between any pair of points in the two boxes."""
    g = box_gaps(alo, ahi, blo, bhi)
    if base == "sqeuclidean":
        return float(np.dot(g, g))
    if base == "manhattan":
        return float(g.sum())
    if base == "chebyshev":
        return float(g.max())
    raise ValueError(f"unknown base metric {base!r}")


def box_max_dist(base: str, alo, ahi, blo, bhi) -> float:
    """Maximum base-distance between any pair of points in the two boxes."""
    s = box_spans(alo, ahi, blo, bhi)
    # Degenerate boxes (single point vs itself) can give tiny negatives.
    s = np.maximum(s, 0.0)
    if base == "sqeuclidean":
        return float(np.dot(s, s))
    if base == "manhattan":
        return float(s.sum())
    if base == "chebyshev":
        return float(s.max())
    raise ValueError(f"unknown base metric {base!r}")


def point_box_min_dist(base: str, x, lo, hi) -> float:
    """Minimum base-distance from point *x* to a box."""
    g = np.maximum(0.0, np.maximum(lo - x, x - hi))
    if base == "sqeuclidean":
        return float(np.dot(g, g))
    if base == "manhattan":
        return float(g.sum())
    if base == "chebyshev":
        return float(g.max())
    raise ValueError(f"unknown base metric {base!r}")


def point_box_max_dist(base: str, x, lo, hi) -> float:
    """Maximum base-distance from point *x* to a box."""
    s = np.maximum(hi - x, x - lo)
    s = np.maximum(s, 0.0)
    if base == "sqeuclidean":
        return float(np.dot(s, s))
    if base == "manhattan":
        return float(s.sum())
    if base == "chebyshev":
        return float(s.max())
    raise ValueError(f"unknown base metric {base!r}")


def _euclidean_center_dist(ca, cb) -> float:
    d = np.asarray(ca) - np.asarray(cb)
    return float(np.sqrt(np.dot(d, d)))


def sphere_min_dist(base: str, ca, ra: float, cb, rb: float) -> float:
    """Minimum base-distance between two bounding hyperspheres.

    Spheres bound Euclidean balls, so only the Euclidean family is exact;
    for L1/L∞ the Euclidean bound is scaled conservatively by the norm
    equivalence constants (√d for L1 lower bounds is not needed — the
    Euclidean distance lower-bounds L1 and upper×√d bounds L∞ handled by
    the caller).  Ball trees in this codebase are restricted to the
    Euclidean family, enforced at compile time.
    """
    if base != "sqeuclidean":
        raise ValueError("ball trees support the Euclidean family only")
    gap = max(0.0, _euclidean_center_dist(ca, cb) - ra - rb)
    return gap * gap


def sphere_max_dist(base: str, ca, ra: float, cb, rb: float) -> float:
    """Maximum base-distance between two bounding hyperspheres."""
    if base != "sqeuclidean":
        raise ValueError("ball trees support the Euclidean family only")
    span = _euclidean_center_dist(ca, cb) + ra + rb
    return span * span
