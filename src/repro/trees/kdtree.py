"""kd-tree construction (paper section II-A).

Binary space-partitioning tree built with the paper's strategy: recursive
*median* split along the *widest* bounding-box dimension, stopping when a
node holds no more than ``leaf_size`` points.  Construction is iterative
(explicit stack) and uses ``np.argpartition`` for the O(n) median step,
giving O(n log n) build time.

A second splitting strategy, ``sliding-midpoint``, is provided for the
plug-and-play ablation: split at the geometric center of the widest
dimension (better-shaped cells on non-uniform data), sliding to the
nearest point when one side would be empty.
"""

from __future__ import annotations

import numpy as np

from .node import ArrayTree

__all__ = ["KDTree", "build_kdtree", "SPLIT_STRATEGIES"]

SPLIT_STRATEGIES = ("median", "midpoint")


class KDTree(ArrayTree):
    kind = "kd"


def build_kdtree(
    points: np.ndarray,
    leaf_size: int = 32,
    weights: np.ndarray | None = None,
    split: str = "median",
) -> KDTree:
    """Build a :class:`KDTree` over ``points`` of shape ``(n, d)``.

    ``split`` selects the strategy: ``"median"`` (the paper's — balanced
    sibling sizes) or ``"midpoint"`` (sliding midpoint — tighter cells).
    Points with identical coordinates along every dimension collapse into
    a single (possibly oversized) leaf rather than recursing forever.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    if split not in SPLIT_STRATEGIES:
        raise ValueError(
            f"unknown split strategy {split!r}; choose from {SPLIT_STRATEGIES}"
        )
    n = points.shape[0]
    perm = np.arange(n)

    lo_l: list[np.ndarray] = []
    hi_l: list[np.ndarray] = []
    st_l: list[int] = []
    en_l: list[int] = []
    ch_l: list[list[int]] = []

    def new_node(s: int, e: int) -> int:
        idx = len(st_l)
        pts = points[perm[s:e]]
        lo_l.append(pts.min(axis=0))
        hi_l.append(pts.max(axis=0))
        st_l.append(s)
        en_l.append(e)
        ch_l.append([])
        return idx

    root = new_node(0, n)
    stack = [root]
    while stack:
        i = stack.pop()
        s, e = st_l[i], en_l[i]
        if e - s <= leaf_size:
            continue
        widths = hi_l[i] - lo_l[i]
        split_dim = int(np.argmax(widths))
        if widths[split_dim] <= 0.0:
            continue  # all points coincide: keep as leaf
        seg = perm[s:e]
        coords = points[seg, split_dim]
        if split == "median":
            m = (s + e) // 2
            order = np.argpartition(coords, m - s)
        else:  # sliding midpoint
            cut = 0.5 * (lo_l[i][split_dim] + hi_l[i][split_dim])
            left_mask = coords < cut
            n_left = int(left_mask.sum())
            if n_left == 0 or n_left == e - s:
                # Slide the cut to isolate at least one point per side.
                m = max(s + 1, min(e - 1, s + n_left))
                order = np.argsort(coords, kind="stable")
            else:
                m = s + n_left
                order = np.argsort(~left_mask, kind="stable")
        perm[s:e] = seg[order]
        left = new_node(s, m)
        right = new_node(m, e)
        ch_l[i] = [left, right]
        stack.append(right)
        stack.append(left)

    return KDTree(
        points=points[perm],
        perm=perm,
        lo=np.asarray(lo_l),
        hi=np.asarray(hi_l),
        start=np.asarray(st_l, dtype=np.int64),
        end=np.asarray(en_l, dtype=np.int64),
        child_ids=ch_l,
        weights=weights,
        leaf_size=leaf_size,
    )
