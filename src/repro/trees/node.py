"""Array-backed space-partitioning tree storage.

Trees are stored struct-of-arrays for cache-friendly traversal: one NumPy
array per node attribute, indexed by node id.  Node 0 is the root and
children appear after their parent (DFS preorder), so iterating node ids
forward is a valid top-down order.

Points are *reordered* during construction so that every node owns a
contiguous slice ``[start, end)`` of the permuted point array — the
property that lets the backend run vectorised base cases directly on leaf
slices.  ``perm`` maps permuted positions back to the caller's original
point indices.

Per-node metadata maintained (paper sections II-A, II-C and Table III):
bounding box ``lo``/``hi``, point count, box ``center``, centroid (mean
point), widest-dimension ``diameter``, and — when the dataset carries
weights — total weight and weighted centroid (the center of mass used by
Barnes-Hut's ComputeApprox).
"""

from __future__ import annotations

import copy
import threading

import numpy as np

from ..observe import contribute
from . import geometry

__all__ = ["ArrayTree", "TreeNode", "tree_levels", "level_propagation",
           "REBUILD_LEAF_FACTOR", "REBUILD_DIAMETER_FACTOR"]

#: A leaf whose occupancy exceeds ``factor * leaf_size`` after inserts is
#: re-split (subtree rebuild of the leaf).
REBUILD_LEAF_FACTOR = 2.0
#: A node whose refit (tight) widest-dimension span exceeds ``factor *``
#: its span at build time is re-partitioned — moved points have spread
#: the box enough that pruning quality degrades.
REBUILD_DIAMETER_FACTOR = 2.0

#: Lazily-built caches that depend only on the children topology.
_TOPOLOGY_CACHES = ("_level_arr", "_level_plan_cache", "_expansion_csr",
                    "_parent_arr")
#: Lazily-built caches that depend on the point permutation / leaf tiling.
_PERM_CACHES = ("_inv_perm", "_pos_leaf")


def tree_levels(child_offset: np.ndarray, child_list: np.ndarray) -> np.ndarray:
    """Per-node depth array (root = 0) from the CSR children adjacency.

    Vectorised BFS: each step gathers every child of the current level in
    one shot, so the cost is O(levels) NumPy calls instead of an O(n_nodes)
    Python loop.
    """
    n_nodes = len(child_offset) - 1
    level = np.zeros(n_nodes, dtype=np.int64)
    if n_nodes == 0:
        return level
    cur = np.array([0], dtype=np.int64)
    depth = 0
    while cur.size:
        cnt = child_offset[cur + 1] - child_offset[cur]
        total = int(cnt.sum())
        if total == 0:
            break
        starts = np.repeat(child_offset[cur], cnt)
        within = np.arange(total) - np.repeat(np.cumsum(cnt) - cnt, cnt)
        kids = child_list[starts + within]
        depth += 1
        level[kids] = depth
        cur = kids
    return level


def level_propagation(
    child_offset: np.ndarray,
    child_list: np.ndarray,
    level: np.ndarray,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Bottom-up reduction plan over internal nodes, deepest level first.

    Each entry is ``(ids, child_ids, seg_offsets)``: reducing
    ``values[child_ids]`` with ``np.<ufunc>.reduceat`` at ``seg_offsets``
    yields one value per node in ``ids``.  Processing entries in order
    propagates per-point values to every node, because a node's children
    are always at a strictly deeper level and so already reduced.
    """
    counts = child_offset[1:] - child_offset[:-1]
    internal = np.flatnonzero(counts > 0)
    plan: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    if internal.size == 0:
        return plan
    for lv in range(int(level[internal].max()), -1, -1):
        ids = internal[level[internal] == lv]
        if ids.size == 0:
            continue
        cnt = counts[ids]
        total = int(cnt.sum())
        starts = np.repeat(child_offset[ids], cnt)
        within = np.arange(total) - np.repeat(np.cumsum(cnt) - cnt, cnt)
        kids = child_list[starts + within]
        seg = np.cumsum(cnt) - cnt
        plan.append((ids, kids, seg))
    return plan


class ArrayTree:
    """Common storage and query API for kd-trees, octrees and ball trees.

    Trees are *live*: :meth:`insert_batch`, :meth:`delete_batch` and
    :meth:`update_batch` mutate the tree in place with a lazy subtree
    refit (dirty leaves are repaired exactly, ancestors bottom-up through
    the cached :func:`level_propagation` plan) plus an amortized partial
    rebuild of any subtree whose leaf occupancy or bound volume degrades
    past a threshold.  Every mutation bumps the monotone :attr:`version`
    and rebinds — never writes into — the node/point arrays, so a
    :meth:`snapshot` taken before the mutation keeps a consistent view
    for in-flight traversals (including paused bounded-batched epochs and
    process workers attached to published shm columns).
    """

    kind = "array"

    #: Names of subclass-specific per-node arrays that refit and the
    #: partial-rebuild graft must carry along (e.g. the ball tree's
    #: ``radius``).
    _extra_node_arrays: tuple[str, ...] = ()

    def __init__(
        self,
        points: np.ndarray,
        perm: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        child_ids: list[list[int]],
        weights: np.ndarray | None = None,
        leaf_size: int = 32,
    ):
        self.points = np.ascontiguousarray(points)  # permuted, shape (n, d)
        self.points_col = np.ascontiguousarray(self.points.T)  # shape (d, n)
        self.perm = perm
        self.lo = lo
        self.hi = hi
        self.start = start
        self.end = end
        self.leaf_size = leaf_size
        self.n_nodes = len(start)
        self.weights = None if weights is None else np.asarray(weights, float)[perm]

        # Flattened children adjacency (CSR-style).
        counts = np.fromiter((len(c) for c in child_ids), dtype=np.int64,
                             count=self.n_nodes)
        self.child_offset = np.concatenate([[0], np.cumsum(counts)])
        self.child_list = np.fromiter(
            (c for cs in child_ids for c in cs), dtype=np.int64,
            count=int(counts.sum()),
        )
        self.is_leaf_arr = counts == 0

        self.center = 0.5 * (self.lo + self.hi)
        self.diameter = (self.hi - self.lo).max(axis=1)  # widest-dim span

        # Centroids (and mass data when weighted) per node.  Vectorised:
        # leaf sums come from one np.add.reduceat over the contiguous
        # [start, end) partition, internal sums from a per-level bottom-up
        # children reduction — O(levels) NumPy calls, no Python node loop.
        counts_pts = (self.end - self.start).astype(np.float64)
        self.centroid = self._node_sums(self.points) / counts_pts[:, None]
        if self.weights is not None:
            self.wsum = self._node_sums(self.weights)
            wsums = self._node_sums(self.weights[:, None] * self.points)
            self.wcentroid = np.where(
                self.wsum[:, None] > 0,
                np.divide(wsums, self.wsum[:, None],
                          out=np.zeros_like(wsums),
                          where=self.wsum[:, None] != 0),
                self.centroid,
            )

        self.split = "median"  # kd split strategy; set by build_tree()
        self.version = 0
        self._pristine_diam = self.diameter
        self._mutation_lock = threading.RLock()

    def _node_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-node sums of a per-point array over each ``[start, end)``
        slice, computed bottom-up: leaves via ``np.add.reduceat`` on the
        contiguous leaf partition, internal nodes by summing children."""
        x = np.asarray(values, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = np.empty((self.n_nodes, x.shape[1]))
        leaves = np.flatnonzero(self.is_leaf_arr)
        lsort = leaves[np.argsort(self.start[leaves], kind="stable")]
        # Sorted leaves tile [0, n) contiguously (validate() invariant), so
        # reduceat over just the starts segments exactly on leaf boundaries.
        out[lsort] = np.add.reduceat(x, self.start[lsort], axis=0)
        for ids, kids, seg in self._level_plan():
            out[ids] = np.add.reduceat(out[kids], seg, axis=0)
        return out[:, 0] if squeeze else out

    def levels(self) -> np.ndarray:
        """Per-node depth array (root = 0); computed once, cached."""
        cached = getattr(self, "_level_arr", None)
        if cached is None:
            cached = tree_levels(self.child_offset, self.child_list)
            self._level_arr = cached
        return cached

    def _level_plan(self):
        cached = getattr(self, "_level_plan_cache", None)
        if cached is None:
            cached = level_propagation(self.child_offset, self.child_list,
                                       self.levels())
            self._level_plan_cache = cached
        return cached

    # -- structure -----------------------------------------------------------
    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    def is_leaf(self, i: int) -> bool:
        return bool(self.is_leaf_arr[i])

    def children(self, i: int) -> np.ndarray:
        return self.child_list[self.child_offset[i]:self.child_offset[i + 1]]

    def count(self, i: int) -> int:
        return int(self.end[i] - self.start[i])

    def slice(self, i: int) -> tuple[int, int]:
        return int(self.start[i]), int(self.end[i])

    def node(self, i: int) -> "TreeNode":
        return TreeNode(self, i)

    def leaves(self):
        """Iterate leaf node ids."""
        return np.nonzero(self.is_leaf_arr)[0]

    def expansion_children(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR (offsets, flat ids) of each node's *expansion set*: its
        children, or the node itself when it is a leaf.

        This is the splitting rule of Algorithm 1 (leaves are kept whole
        while the partner node splits) in a form the batched frontier
        traversal can index with whole arrays.  Built lazily, cached on
        the tree.
        """
        cached = getattr(self, "_expansion_csr", None)
        if cached is not None:
            return cached
        counts = self.child_offset[1:] - self.child_offset[:-1]
        eff = np.where(counts == 0, 1, counts)
        offsets = np.concatenate([[0], np.cumsum(eff)])
        flat = np.empty(int(offsets[-1]), dtype=np.int64)
        leaf = counts == 0
        flat[offsets[:-1][leaf]] = np.flatnonzero(leaf)
        nz = counts[~leaf]
        if nz.size:
            starts = np.repeat(offsets[:-1][~leaf], nz)
            within = np.arange(int(nz.sum())) - np.repeat(
                np.cumsum(nz) - nz, nz
            )
            flat[starts + within] = self.child_list
        self._expansion_csr = (offsets, flat)
        return self._expansion_csr

    def sqnorms(self) -> np.ndarray:
        """Per-point squared norms ``‖x‖²`` of the permuted points
        (the GEMM norm-expansion operands); computed once, cached."""
        cached = getattr(self, "_sqnorms", None)
        if cached is None:
            cached = np.einsum("ij,ij->i", self.points, self.points)
            self._sqnorms = cached
        return cached

    # -- mutation: lazy refit + amortized partial rebuild -----------------------
    def inv_perm(self) -> np.ndarray:
        """Original id → permuted position; computed once, cached."""
        cached = getattr(self, "_inv_perm", None)
        if cached is None:
            cached = np.empty(self.n, dtype=np.int64)
            cached[self.perm] = np.arange(self.n, dtype=np.int64)
            self._inv_perm = cached
        return cached

    def leaf_of_position(self) -> np.ndarray:
        """Permuted position → owning leaf node id; cached."""
        cached = getattr(self, "_pos_leaf", None)
        if cached is None:
            leaves = np.flatnonzero(self.is_leaf_arr)
            lsort = leaves[np.argsort(self.start[leaves], kind="stable")]
            cached = np.repeat(lsort, (self.end - self.start)[lsort])
            self._pos_leaf = cached
        return cached

    def parents(self) -> np.ndarray:
        """Per-node parent id (-1 for the root); cached."""
        cached = getattr(self, "_parent_arr", None)
        if cached is None:
            counts = self.child_offset[1:] - self.child_offset[:-1]
            cached = np.full(self.n_nodes, -1, dtype=np.int64)
            cached[self.child_list] = np.repeat(
                np.arange(self.n_nodes, dtype=np.int64), counts)
            self._parent_arr = cached
        return cached

    def _drop_caches(self, names) -> None:
        for name in names:
            if hasattr(self, name):
                delattr(self, name)

    def snapshot(self) -> "ArrayTree":
        """A consistent shallow view of the tree at its current version.

        Mutations rebind arrays instead of writing into them, so the
        snapshot's arrays never change under it: in-flight traversals
        (paused bounded-batched epochs, process workers attached to shm
        views of these arrays) read the version they started with.  The
        snapshot itself is independently mutable — mutating it leaves
        the source tree untouched, which is how the cache refit path
        derives a new cache entry without corrupting the old one.
        """
        with self._mutation_lock:
            clone = copy.copy(self)
            clone._mutation_lock = threading.RLock()
            return clone

    def _set_points(self, new_points: np.ndarray) -> None:
        self.points = np.ascontiguousarray(new_points)
        self.points_col = np.ascontiguousarray(self.points.T)
        self._drop_caches(("_sqnorms",))

    def update_batch(self, idx, points=None, weights=None) -> int:
        """Move existing points (original ids ``idx``) to new coordinates
        and/or weights; returns the new tree :attr:`version`.

        The owning leaves are repaired exactly (tight boxes, centroids,
        mass data) and the change propagates bottom-up through the dirty
        ancestors only.  Any node whose refit span degraded past
        :data:`REBUILD_DIAMETER_FACTOR` is re-partitioned via a subtree
        rebuild (``tree.rebuild.*`` counters).
        """
        with self._mutation_lock:
            idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
            if idx.size == 0:
                return self.version
            if points is None and weights is None:
                raise ValueError("update_batch needs points and/or weights")
            pos = self.inv_perm()[idx]
            dirty_leaves = np.unique(self.leaf_of_position()[pos])
            if points is not None:
                pts = np.asarray(points, dtype=np.float64).reshape(
                    idx.size, self.dim)
                new_points = self.points.copy()
                new_points[pos] = pts
                self._set_points(new_points)
            if weights is not None:
                if self.weights is None:
                    raise ValueError(
                        "tree carries no weights; cannot update them")
                w = np.broadcast_to(
                    np.asarray(weights, dtype=np.float64), (idx.size,))
                neww = self.weights.copy()
                neww[pos] = w
                self.weights = neww
            dirty = self._refit(dirty_leaves)
            contribute({"tree.refit.count": 1,
                        "tree.refit.points": int(idx.size),
                        "tree.refit.nodes": int(dirty.size)})
            if points is not None:
                self._maybe_rebuild(dirty)
            self.version += 1
            return self.version

    def insert_batch(self, points, weights=None) -> np.ndarray:
        """Insert new points; returns their original ids (appended to the
        original index space: ``old_n .. old_n + m``).

        Each point is routed root→leaf to the child minimising the
        point-box distance and appended to that leaf's slice; dirty
        leaves and ancestors are refit, and any leaf whose occupancy
        exceeds :data:`REBUILD_LEAF_FACTOR` × ``leaf_size`` is re-split.
        """
        with self._mutation_lock:
            pts = np.asarray(points, dtype=np.float64).reshape(-1, self.dim)
            m = pts.shape[0]
            if m == 0:
                return np.empty(0, dtype=np.int64)
            if not np.all(np.isfinite(pts)):
                raise ValueError("insert_batch points must be finite")
            if self.weights is not None:
                w = (np.ones(m) if weights is None else np.broadcast_to(
                    np.asarray(weights, dtype=np.float64), (m,)))
            elif weights is not None:
                raise ValueError("tree carries no weights; cannot insert them")
            old_n = self.n
            new_ids = np.arange(old_n, old_n + m, dtype=np.int64)
            leaf = self._route_to_leaves(pts)
            posin = self.end[leaf]
            order = np.argsort(posin, kind="stable")
            self._set_points(
                np.insert(self.points, posin[order], pts[order], axis=0))
            self.perm = np.insert(self.perm, posin[order], new_ids[order])
            if self.weights is not None:
                self.weights = np.insert(self.weights, posin[order], w[order])
            # Offset shift: C[p] = number of inserts at positions <= p.
            # Every insert position is the end of some leaf inside a node
            # iff that position is in (start, end], so both bounds shift
            # by the inclusive prefix count.
            C = np.cumsum(np.bincount(posin, minlength=old_n + 1))
            self.start = self.start + C[self.start]
            self.end = self.end + C[self.end]
            self._drop_caches(_PERM_CACHES)
            dirty = self._refit(np.unique(leaf))
            contribute({"tree.refit.count": 1, "tree.refit.points": int(m),
                        "tree.refit.nodes": int(dirty.size)})
            self._maybe_rebuild(dirty, occupancy=True)
            self.version += 1
            return new_ids

    def delete_batch(self, idx) -> int:
        """Delete points by original id; returns the new :attr:`version`.

        Surviving original ids are compacted (shifted down past the
        deleted ids), matching ``np.delete`` on the original-order
        dataset.  A leaf left empty forces a subtree rebuild of its
        nearest non-empty ancestor — the structure never keeps empty
        leaves.
        """
        with self._mutation_lock:
            idx = np.unique(np.atleast_1d(np.asarray(idx, dtype=np.int64)))
            if idx.size == 0:
                return self.version
            if idx.size >= self.n:
                raise ValueError("cannot delete every point in the tree")
            pos = np.sort(self.inv_perm()[idx])
            dirty_leaves = np.unique(self.leaf_of_position()[pos])
            # D[p] = number of deleted positions < p.
            D = np.concatenate(
                [[0], np.cumsum(np.bincount(pos, minlength=self.n))])
            self._set_points(np.delete(self.points, pos, axis=0))
            new_perm = np.delete(self.perm, pos)
            self.perm = new_perm - np.searchsorted(idx, new_perm, side="left")
            if self.weights is not None:
                self.weights = np.delete(self.weights, pos)
            self.start = self.start - D[self.start]
            self.end = self.end - D[self.end]
            self._drop_caches(_PERM_CACHES)
            dirty = self._refit(dirty_leaves)
            contribute({"tree.refit.count": 1,
                        "tree.refit.points": int(idx.size),
                        "tree.refit.nodes": int(dirty.size)})
            counts = self.end - self.start
            forced = []
            par = self.parents()
            for s in dirty_leaves[counts[dirty_leaves] == 0]:
                t = int(s)
                while t >= 0 and counts[t] == 0:
                    t = int(par[t])
                forced.append(max(t, 0))
            self._maybe_rebuild(dirty, forced=forced)
            self.version += 1
            return self.version

    def _route_to_leaves(self, pts: np.ndarray) -> np.ndarray:
        """Root→leaf routing: per level, each point descends into the
        child with the smallest point-box distance (vectorised over the
        batch; ties go to the lowest child id)."""
        cur = np.zeros(pts.shape[0], dtype=np.int64)
        while True:
            active = np.flatnonzero(~self.is_leaf_arr[cur])
            if active.size == 0:
                return cur
            nodes = cur[active]
            cnt = self.child_offset[nodes + 1] - self.child_offset[nodes]
            best = np.full(active.size, -1, dtype=np.int64)
            bestd = np.full(active.size, np.inf)
            X = pts[active]
            for j in range(int(cnt.max())):
                has = cnt > j
                cand = self.child_list[self.child_offset[nodes[has]] + j]
                gap = np.maximum(
                    np.maximum(self.lo[cand] - X[has], X[has] - self.hi[cand]),
                    0.0)
                d = np.einsum("ij,ij->i", gap, gap)
                hidx = np.flatnonzero(has)
                better = d < bestd[hidx]
                bestd[hidx[better]] = d[better]
                best[hidx[better]] = cand[better]
            cur[active] = best

    def _refit(self, dirty_leaves: np.ndarray) -> np.ndarray:
        """Repair ``lo/hi/centroid/wsum/wcentroid/center/diameter`` for the
        dirty leaves (exactly, from their point slices) and their
        ancestors (bottom-up through the cached level plan, touching only
        levels/segments that contain a dirty child).  Arrays are copied
        and rebound — snapshots keep the old view.  Returns every dirty
        node id."""
        dl = np.unique(np.asarray(dirty_leaves, dtype=np.int64))
        if dl.size == 0:
            return dl
        counts_all = self.end - self.start
        nonempty = dl[counts_all[dl] > 0]
        empty = dl[counts_all[dl] == 0]

        lo = self.lo.copy()
        hi = self.hi.copy()
        centroid = self.centroid.copy()
        weighted = self.weights is not None
        if weighted:
            wsum = self.wsum.copy()
            wcentroid = self.wcentroid.copy()
        flat = None
        if nonempty.size:
            cnt = counts_all[nonempty]
            seg = np.cumsum(cnt) - cnt
            flat = np.repeat(self.start[nonempty], cnt) + (
                np.arange(int(cnt.sum())) - np.repeat(seg, cnt))
            P = self.points[flat]
            lo[nonempty] = np.minimum.reduceat(P, seg, axis=0)
            hi[nonempty] = np.maximum.reduceat(P, seg, axis=0)
            centroid[nonempty] = (
                np.add.reduceat(P, seg, axis=0) / cnt[:, None])
            if weighted:
                wf = self.weights[flat]
                ws = np.add.reduceat(wf, seg)
                wps = np.add.reduceat(wf[:, None] * P, seg, axis=0)
                wsum[nonempty] = ws
                wcentroid[nonempty] = np.where(
                    ws[:, None] > 0,
                    np.divide(wps, ws[:, None], out=np.zeros_like(wps),
                              where=ws[:, None] != 0),
                    centroid[nonempty])
        if empty.size:
            # Sentinels: +inf/-inf boxes vanish under min/max, zero
            # centroids weighted by zero counts vanish under sums.  An
            # empty leaf only survives until the forced rebuild below.
            lo[empty] = np.inf
            hi[empty] = -np.inf
            centroid[empty] = 0.0
            if weighted:
                wsum[empty] = 0.0
                wcentroid[empty] = 0.0

        dirty_mask = np.zeros(self.n_nodes, dtype=bool)
        dirty_mask[dl] = True
        counts_f = counts_all.astype(np.float64)
        for ids, kids, seg in self._level_plan():
            kid_dirty = dirty_mask[kids]
            if not kid_dirty.any():
                continue
            par_dirty = np.logical_or.reduceat(kid_dirty, seg)
            sel = np.flatnonzero(par_dirty)
            if sel.size == 0:
                continue
            cnt_p = np.diff(np.append(seg, kids.size))[sel]
            kidx = np.repeat(seg[sel], cnt_p) + (
                np.arange(int(cnt_p.sum()))
                - np.repeat(np.cumsum(cnt_p) - cnt_p, cnt_p))
            kk = kids[kidx]
            sseg = np.cumsum(cnt_p) - cnt_p
            ids2 = ids[sel]
            lo[ids2] = np.minimum.reduceat(lo[kk], sseg, axis=0)
            hi[ids2] = np.maximum.reduceat(hi[kk], sseg, axis=0)
            csum = np.add.reduceat(
                centroid[kk] * counts_f[kk, None], sseg, axis=0)
            pcnt = counts_f[ids2]
            centroid[ids2] = np.divide(
                csum, pcnt[:, None], out=np.zeros_like(csum),
                where=pcnt[:, None] > 0)
            if weighted:
                ws = np.add.reduceat(wsum[kk], sseg)
                wps = np.add.reduceat(
                    wcentroid[kk] * wsum[kk, None], sseg, axis=0)
                wsum[ids2] = ws
                wcentroid[ids2] = np.where(
                    ws[:, None] > 0,
                    np.divide(wps, ws[:, None], out=np.zeros_like(wps),
                              where=ws[:, None] != 0),
                    centroid[ids2])
            dirty_mask[ids2] = True

        dirty_ids = np.flatnonzero(dirty_mask)
        center = self.center.copy()
        diam = self.diameter.copy()
        with np.errstate(invalid="ignore"):
            span = hi[dirty_ids] - lo[dirty_ids]
            finite = np.isfinite(span).all(axis=1)
            center[dirty_ids] = np.where(
                finite[:, None], 0.5 * (lo[dirty_ids] + hi[dirty_ids]), 0.0)
            diam[dirty_ids] = np.where(finite, span.max(axis=1), 0.0)

        self.lo, self.hi = lo, hi
        self.center, self.diameter = center, diam
        self.centroid = centroid
        if weighted:
            self.wsum, self.wcentroid = wsum, wcentroid
        self._refit_extra(dirty_ids)
        return dirty_ids

    def _refit_extra(self, dirty_ids: np.ndarray) -> None:
        """Subclass hook: repair :attr:`_extra_node_arrays` for the dirty
        nodes (called after the shared metrics are rebound)."""

    def _maybe_rebuild(self, dirty_ids: np.ndarray, occupancy: bool = False,
                       forced=()) -> int:
        """Amortized partial rebuild of degraded subtrees.

        Candidates: nodes whose tight span outgrew their build-time span
        (update path), leaves past the occupancy bound (insert path) and
        the ``forced`` roots (empty leaves on the delete path).  Only the
        topmost candidates rebuild; a degraded root falls back to a full
        rebuild (counted separately)."""
        cand = [int(s) for s in forced]
        if dirty_ids.size:
            slack = 1e-9 * (float(self.diameter[0]) + 1.0)
            deg = dirty_ids[self.diameter[dirty_ids] >
                            REBUILD_DIAMETER_FACTOR
                            * self._pristine_diam[dirty_ids] + slack]
            par = self.parents()
            for s in deg:
                s = int(s)
                if self.is_leaf_arr[s]:
                    # A leaf's tight box is already optimal; the useful
                    # re-partition happens one level up.
                    s = int(par[s]) if par[s] >= 0 else s
                cand.append(s)
            if occupancy:
                counts = self.end - self.start
                bound = int(REBUILD_LEAF_FACTOR * self.leaf_size)
                over = dirty_ids[self.is_leaf_arr[dirty_ids]
                                 & (counts[dirty_ids] > bound)]
                cand.extend(int(x) for x in over)
        if not cand:
            return 0
        roots = self._maximal_roots(sorted(set(cand)))
        if 0 in roots:
            self._full_rebuild()
            return 1
        self._rebuild_subtrees(roots)
        return len(roots)

    def _maximal_roots(self, cand) -> list[int]:
        """Filter a candidate set down to nodes with no candidate ancestor."""
        cset = np.zeros(self.n_nodes, dtype=bool)
        cset[list(cand)] = True
        par = self.parents()
        keep = []
        for s in cand:
            p = int(par[int(s)])
            while p >= 0 and not cset[p]:
                p = int(par[p])
            if p < 0:
                keep.append(int(s))
        return keep

    def _rebuild_subtrees(self, roots) -> None:
        """Graft-and-renumber: rebuild each root's subtree from its (still
        contiguous) point slice and splice it back in.

        Subtree node ids are *not* contiguous in the original numbering
        (the builder interleaves siblings), so surviving nodes are
        compacted first (preserving relative order, hence the
        parent-before-child invariant) and each fresh subtree is appended
        after them."""
        from . import build_tree

        roots = [int(s) for s in roots]
        dead = np.zeros(self.n_nodes, dtype=bool)
        for s in roots:
            frontier = np.array([s], dtype=np.int64)
            while frontier.size:
                dead[frontier] = True
                cnt = (self.child_offset[frontier + 1]
                       - self.child_offset[frontier])
                total = int(cnt.sum())
                if total == 0:
                    break
                starts = np.repeat(self.child_offset[frontier], cnt)
                within = np.arange(total) - np.repeat(
                    np.cumsum(cnt) - cnt, cnt)
                frontier = self.child_list[starts + within]
        keep = np.flatnonzero(~dead)
        remap = np.full(self.n_nodes, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size)

        new_points = self.points.copy()
        new_weights = None if self.weights is None else self.weights.copy()
        new_perm = self.perm.copy()
        subs = []
        base = int(keep.size)
        for s in roots:
            a, b = int(self.start[s]), int(self.end[s])
            w = None if self.weights is None else self.weights[a:b]
            sub = build_tree(self.kind, self.points[a:b],
                             leaf_size=self.leaf_size, weights=w,
                             split=self.split)
            remap[s] = base
            subs.append((a, base, sub))
            base += sub.n_nodes
            new_points[a:b] = sub.points
            if new_weights is not None:
                new_weights[a:b] = sub.weights
            new_perm[a:b] = self.perm[a:b][sub.perm]

        counts_old = self.child_offset[1:] - self.child_offset[:-1]
        kcnt = counts_old[keep]
        starts = np.repeat(self.child_offset[keep], kcnt)
        within = np.arange(int(kcnt.sum())) - np.repeat(
            np.cumsum(kcnt) - kcnt, kcnt)
        kept_children = remap[self.child_list[starts + within]]

        def merge(attr, offsets=None):
            old = getattr(self, attr)[keep]
            parts = [old]
            for i, (a, b0, sub) in enumerate(subs):
                val = getattr(sub, attr)
                parts.append(val + offsets[i] if offsets is not None else val)
            return np.concatenate(parts)

        start_offsets = [a for a, _, _ in subs]
        new_counts = np.concatenate(
            [kcnt] + [sub.child_offset[1:] - sub.child_offset[:-1]
                      for _, _, sub in subs])
        self.child_list = np.concatenate(
            [kept_children] + [sub.child_list + b0 for _, b0, sub in subs])
        self.child_offset = np.concatenate([[0], np.cumsum(new_counts)])
        self.is_leaf_arr = new_counts == 0
        self.start = merge("start", start_offsets)
        self.end = merge("end", start_offsets)
        self.lo = merge("lo")
        self.hi = merge("hi")
        self.center = merge("center")
        self.diameter = merge("diameter")
        self.centroid = merge("centroid")
        if new_weights is not None:
            self.wsum = merge("wsum")
            self.wcentroid = merge("wcentroid")
        for attr in self._extra_node_arrays:
            setattr(self, attr, merge(attr))
        self._pristine_diam = np.concatenate(
            [self._pristine_diam[keep]] + [sub.diameter for _, _, sub in subs])
        self.n_nodes = int(self.child_offset.size - 1)
        self._set_points(new_points)
        self.perm = new_perm
        self.weights = new_weights
        self._drop_caches(_TOPOLOGY_CACHES + _PERM_CACHES)
        contribute({"tree.rebuild.subtree": len(roots),
                    "tree.rebuild.nodes": int(dead.sum())})

    def _full_rebuild(self) -> None:
        """Safety valve: rebuild the whole tree from the original-order
        dataset and adopt the fresh structure in place (same object, new
        arrays — snapshots keep the old view)."""
        from . import build_tree

        orig = np.empty_like(self.points)
        orig[self.perm] = self.points
        w = None
        if self.weights is not None:
            w = np.empty_like(self.weights)
            w[self.perm] = self.weights
        fresh = build_tree(self.kind, orig, leaf_size=self.leaf_size,
                           weights=w, split=self.split)
        attrs = ["points", "points_col", "perm", "lo", "hi", "start", "end",
                 "child_offset", "child_list", "is_leaf_arr", "center",
                 "diameter", "centroid", "n_nodes", "weights"]
        if fresh.weights is not None:
            attrs += ["wsum", "wcentroid"]
        attrs += list(self._extra_node_arrays)
        for attr in attrs:
            setattr(self, attr, getattr(fresh, attr))
        self._pristine_diam = self.diameter
        self._drop_caches(_TOPOLOGY_CACHES + _PERM_CACHES + ("_sqnorms",))
        contribute({"tree.rebuild.full": 1})

    # -- distance bounds ----------------------------------------------------------
    def min_dist(self, base: str, i: int, other: "ArrayTree", j: int) -> float:
        """Lower bound on base-distance between points of node *i* and node
        *j* of *other* (boxes; ball tree overrides with spheres)."""
        return geometry.box_min_dist(
            base, self.lo[i], self.hi[i], other.lo[j], other.hi[j]
        )

    def max_dist(self, base: str, i: int, other: "ArrayTree", j: int) -> float:
        """Upper bound counterpart of :meth:`min_dist`."""
        return geometry.box_max_dist(
            base, self.lo[i], self.hi[i], other.lo[j], other.hi[j]
        )

    def point_min_dist(self, base: str, x: np.ndarray, i: int) -> float:
        return geometry.point_box_min_dist(base, x, self.lo[i], self.hi[i])

    def point_max_dist(self, base: str, x: np.ndarray, i: int) -> float:
        return geometry.point_box_max_dist(base, x, self.lo[i], self.hi[i])

    # -- diagnostics -----------------------------------------------------------
    def depth(self) -> int:
        """Maximum depth of the tree (root = 0)."""
        return int(self.levels().max()) if self.n_nodes else 0

    def validate(self) -> None:
        """Assert structural invariants; used by the test-suite."""
        seen = np.zeros(self.n, dtype=bool)
        for i in self.leaves():
            s, e = self.slice(i)
            assert e > s, f"empty leaf {i}"
            assert not seen[s:e].any(), "leaves overlap"
            seen[s:e] = True
        assert seen.all(), "leaves do not cover all points"
        for i in range(self.n_nodes):
            s, e = self.slice(i)
            pts = self.points[s:e]
            assert np.all(pts >= self.lo[i] - 1e-12), f"box lo violated at {i}"
            assert np.all(pts <= self.hi[i] + 1e-12), f"box hi violated at {i}"
            kids = self.children(i)
            if len(kids):
                ks = sorted(self.slice(int(c)) for c in kids)
                assert ks[0][0] == s and ks[-1][1] == e, "children must tile parent"
                for (a, b), (c, d) in zip(ks, ks[1:]):
                    assert b == c, "children slices must be contiguous"

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, d={self.dim}, "
            f"nodes={self.n_nodes}, leaf_size={self.leaf_size})"
        )


class TreeNode:
    """Lightweight view of one tree node — the user/test-facing handle."""

    __slots__ = ("tree", "id")

    def __init__(self, tree: ArrayTree, node_id: int):
        self.tree = tree
        self.id = int(node_id)

    @property
    def lo(self):
        return self.tree.lo[self.id]

    @property
    def hi(self):
        return self.tree.hi[self.id]

    @property
    def center(self):
        return self.tree.center[self.id]

    @property
    def centroid(self):
        return self.tree.centroid[self.id]

    @property
    def diameter(self) -> float:
        return float(self.tree.diameter[self.id])

    @property
    def count(self) -> int:
        return self.tree.count(self.id)

    @property
    def is_leaf(self) -> bool:
        return self.tree.is_leaf(self.id)

    @property
    def points(self):
        s, e = self.tree.slice(self.id)
        return self.tree.points[s:e]

    @property
    def indices(self):
        """Original (pre-permutation) indices of this node's points."""
        s, e = self.tree.slice(self.id)
        return self.tree.perm[s:e]

    def children(self):
        return [TreeNode(self.tree, int(c)) for c in self.tree.children(self.id)]

    def __repr__(self) -> str:
        return f"TreeNode(id={self.id}, n={self.count}, leaf={self.is_leaf})"
