"""Array-backed space-partitioning tree storage.

Trees are stored struct-of-arrays for cache-friendly traversal: one NumPy
array per node attribute, indexed by node id.  Node 0 is the root and
children appear after their parent (DFS preorder), so iterating node ids
forward is a valid top-down order.

Points are *reordered* during construction so that every node owns a
contiguous slice ``[start, end)`` of the permuted point array — the
property that lets the backend run vectorised base cases directly on leaf
slices.  ``perm`` maps permuted positions back to the caller's original
point indices.

Per-node metadata maintained (paper sections II-A, II-C and Table III):
bounding box ``lo``/``hi``, point count, box ``center``, centroid (mean
point), widest-dimension ``diameter``, and — when the dataset carries
weights — total weight and weighted centroid (the center of mass used by
Barnes-Hut's ComputeApprox).
"""

from __future__ import annotations

import numpy as np

from . import geometry

__all__ = ["ArrayTree", "TreeNode", "tree_levels", "level_propagation"]


def tree_levels(child_offset: np.ndarray, child_list: np.ndarray) -> np.ndarray:
    """Per-node depth array (root = 0) from the CSR children adjacency.

    Vectorised BFS: each step gathers every child of the current level in
    one shot, so the cost is O(levels) NumPy calls instead of an O(n_nodes)
    Python loop.
    """
    n_nodes = len(child_offset) - 1
    level = np.zeros(n_nodes, dtype=np.int64)
    if n_nodes == 0:
        return level
    cur = np.array([0], dtype=np.int64)
    depth = 0
    while cur.size:
        cnt = child_offset[cur + 1] - child_offset[cur]
        total = int(cnt.sum())
        if total == 0:
            break
        starts = np.repeat(child_offset[cur], cnt)
        within = np.arange(total) - np.repeat(np.cumsum(cnt) - cnt, cnt)
        kids = child_list[starts + within]
        depth += 1
        level[kids] = depth
        cur = kids
    return level


def level_propagation(
    child_offset: np.ndarray,
    child_list: np.ndarray,
    level: np.ndarray,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Bottom-up reduction plan over internal nodes, deepest level first.

    Each entry is ``(ids, child_ids, seg_offsets)``: reducing
    ``values[child_ids]`` with ``np.<ufunc>.reduceat`` at ``seg_offsets``
    yields one value per node in ``ids``.  Processing entries in order
    propagates per-point values to every node, because a node's children
    are always at a strictly deeper level and so already reduced.
    """
    counts = child_offset[1:] - child_offset[:-1]
    internal = np.flatnonzero(counts > 0)
    plan: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    if internal.size == 0:
        return plan
    for lv in range(int(level[internal].max()), -1, -1):
        ids = internal[level[internal] == lv]
        if ids.size == 0:
            continue
        cnt = counts[ids]
        total = int(cnt.sum())
        starts = np.repeat(child_offset[ids], cnt)
        within = np.arange(total) - np.repeat(np.cumsum(cnt) - cnt, cnt)
        kids = child_list[starts + within]
        seg = np.cumsum(cnt) - cnt
        plan.append((ids, kids, seg))
    return plan


class ArrayTree:
    """Common storage and query API for kd-trees, octrees and ball trees."""

    kind = "array"

    def __init__(
        self,
        points: np.ndarray,
        perm: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        child_ids: list[list[int]],
        weights: np.ndarray | None = None,
        leaf_size: int = 32,
    ):
        self.points = np.ascontiguousarray(points)  # permuted, shape (n, d)
        self.points_col = np.ascontiguousarray(self.points.T)  # shape (d, n)
        self.perm = perm
        self.lo = lo
        self.hi = hi
        self.start = start
        self.end = end
        self.leaf_size = leaf_size
        self.n_nodes = len(start)
        self.weights = None if weights is None else np.asarray(weights, float)[perm]

        # Flattened children adjacency (CSR-style).
        counts = np.fromiter((len(c) for c in child_ids), dtype=np.int64,
                             count=self.n_nodes)
        self.child_offset = np.concatenate([[0], np.cumsum(counts)])
        self.child_list = np.fromiter(
            (c for cs in child_ids for c in cs), dtype=np.int64,
            count=int(counts.sum()),
        )
        self.is_leaf_arr = counts == 0

        self.center = 0.5 * (self.lo + self.hi)
        self.diameter = (self.hi - self.lo).max(axis=1)  # widest-dim span

        # Centroids (and mass data when weighted) per node.  Vectorised:
        # leaf sums come from one np.add.reduceat over the contiguous
        # [start, end) partition, internal sums from a per-level bottom-up
        # children reduction — O(levels) NumPy calls, no Python node loop.
        counts_pts = (self.end - self.start).astype(np.float64)
        self.centroid = self._node_sums(self.points) / counts_pts[:, None]
        if self.weights is not None:
            self.wsum = self._node_sums(self.weights)
            wsums = self._node_sums(self.weights[:, None] * self.points)
            self.wcentroid = np.where(
                self.wsum[:, None] > 0,
                np.divide(wsums, self.wsum[:, None],
                          out=np.zeros_like(wsums),
                          where=self.wsum[:, None] != 0),
                self.centroid,
            )

    def _node_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-node sums of a per-point array over each ``[start, end)``
        slice, computed bottom-up: leaves via ``np.add.reduceat`` on the
        contiguous leaf partition, internal nodes by summing children."""
        x = np.asarray(values, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = np.empty((self.n_nodes, x.shape[1]))
        leaves = np.flatnonzero(self.is_leaf_arr)
        lsort = leaves[np.argsort(self.start[leaves], kind="stable")]
        # Sorted leaves tile [0, n) contiguously (validate() invariant), so
        # reduceat over just the starts segments exactly on leaf boundaries.
        out[lsort] = np.add.reduceat(x, self.start[lsort], axis=0)
        for ids, kids, seg in self._level_plan():
            out[ids] = np.add.reduceat(out[kids], seg, axis=0)
        return out[:, 0] if squeeze else out

    def levels(self) -> np.ndarray:
        """Per-node depth array (root = 0); computed once, cached."""
        cached = getattr(self, "_level_arr", None)
        if cached is None:
            cached = tree_levels(self.child_offset, self.child_list)
            self._level_arr = cached
        return cached

    def _level_plan(self):
        cached = getattr(self, "_level_plan_cache", None)
        if cached is None:
            cached = level_propagation(self.child_offset, self.child_list,
                                       self.levels())
            self._level_plan_cache = cached
        return cached

    # -- structure -----------------------------------------------------------
    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    def is_leaf(self, i: int) -> bool:
        return bool(self.is_leaf_arr[i])

    def children(self, i: int) -> np.ndarray:
        return self.child_list[self.child_offset[i]:self.child_offset[i + 1]]

    def count(self, i: int) -> int:
        return int(self.end[i] - self.start[i])

    def slice(self, i: int) -> tuple[int, int]:
        return int(self.start[i]), int(self.end[i])

    def node(self, i: int) -> "TreeNode":
        return TreeNode(self, i)

    def leaves(self):
        """Iterate leaf node ids."""
        return np.nonzero(self.is_leaf_arr)[0]

    def expansion_children(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR (offsets, flat ids) of each node's *expansion set*: its
        children, or the node itself when it is a leaf.

        This is the splitting rule of Algorithm 1 (leaves are kept whole
        while the partner node splits) in a form the batched frontier
        traversal can index with whole arrays.  Built lazily, cached on
        the tree.
        """
        cached = getattr(self, "_expansion_csr", None)
        if cached is not None:
            return cached
        counts = self.child_offset[1:] - self.child_offset[:-1]
        eff = np.where(counts == 0, 1, counts)
        offsets = np.concatenate([[0], np.cumsum(eff)])
        flat = np.empty(int(offsets[-1]), dtype=np.int64)
        leaf = counts == 0
        flat[offsets[:-1][leaf]] = np.flatnonzero(leaf)
        nz = counts[~leaf]
        if nz.size:
            starts = np.repeat(offsets[:-1][~leaf], nz)
            within = np.arange(int(nz.sum())) - np.repeat(
                np.cumsum(nz) - nz, nz
            )
            flat[starts + within] = self.child_list
        self._expansion_csr = (offsets, flat)
        return self._expansion_csr

    def sqnorms(self) -> np.ndarray:
        """Per-point squared norms ``‖x‖²`` of the permuted points
        (the GEMM norm-expansion operands); computed once, cached."""
        cached = getattr(self, "_sqnorms", None)
        if cached is None:
            cached = np.einsum("ij,ij->i", self.points, self.points)
            self._sqnorms = cached
        return cached

    # -- distance bounds ----------------------------------------------------------
    def min_dist(self, base: str, i: int, other: "ArrayTree", j: int) -> float:
        """Lower bound on base-distance between points of node *i* and node
        *j* of *other* (boxes; ball tree overrides with spheres)."""
        return geometry.box_min_dist(
            base, self.lo[i], self.hi[i], other.lo[j], other.hi[j]
        )

    def max_dist(self, base: str, i: int, other: "ArrayTree", j: int) -> float:
        """Upper bound counterpart of :meth:`min_dist`."""
        return geometry.box_max_dist(
            base, self.lo[i], self.hi[i], other.lo[j], other.hi[j]
        )

    def point_min_dist(self, base: str, x: np.ndarray, i: int) -> float:
        return geometry.point_box_min_dist(base, x, self.lo[i], self.hi[i])

    def point_max_dist(self, base: str, x: np.ndarray, i: int) -> float:
        return geometry.point_box_max_dist(base, x, self.lo[i], self.hi[i])

    # -- diagnostics -----------------------------------------------------------
    def depth(self) -> int:
        """Maximum depth of the tree (root = 0)."""
        return int(self.levels().max()) if self.n_nodes else 0

    def validate(self) -> None:
        """Assert structural invariants; used by the test-suite."""
        seen = np.zeros(self.n, dtype=bool)
        for i in self.leaves():
            s, e = self.slice(i)
            assert e > s, f"empty leaf {i}"
            assert not seen[s:e].any(), "leaves overlap"
            seen[s:e] = True
        assert seen.all(), "leaves do not cover all points"
        for i in range(self.n_nodes):
            s, e = self.slice(i)
            pts = self.points[s:e]
            assert np.all(pts >= self.lo[i] - 1e-12), f"box lo violated at {i}"
            assert np.all(pts <= self.hi[i] + 1e-12), f"box hi violated at {i}"
            kids = self.children(i)
            if len(kids):
                ks = sorted(self.slice(int(c)) for c in kids)
                assert ks[0][0] == s and ks[-1][1] == e, "children must tile parent"
                for (a, b), (c, d) in zip(ks, ks[1:]):
                    assert b == c, "children slices must be contiguous"

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, d={self.dim}, "
            f"nodes={self.n_nodes}, leaf_size={self.leaf_size})"
        )


class TreeNode:
    """Lightweight view of one tree node — the user/test-facing handle."""

    __slots__ = ("tree", "id")

    def __init__(self, tree: ArrayTree, node_id: int):
        self.tree = tree
        self.id = int(node_id)

    @property
    def lo(self):
        return self.tree.lo[self.id]

    @property
    def hi(self):
        return self.tree.hi[self.id]

    @property
    def center(self):
        return self.tree.center[self.id]

    @property
    def centroid(self):
        return self.tree.centroid[self.id]

    @property
    def diameter(self) -> float:
        return float(self.tree.diameter[self.id])

    @property
    def count(self) -> int:
        return self.tree.count(self.id)

    @property
    def is_leaf(self) -> bool:
        return self.tree.is_leaf(self.id)

    @property
    def points(self):
        s, e = self.tree.slice(self.id)
        return self.tree.points[s:e]

    @property
    def indices(self):
        """Original (pre-permutation) indices of this node's points."""
        s, e = self.tree.slice(self.id)
        return self.tree.perm[s:e]

    def children(self):
        return [TreeNode(self.tree, int(c)) for c in self.tree.children(self.id)]

    def __repr__(self) -> str:
        return f"TreeNode(id={self.id}, n={self.count}, leaf={self.is_leaf})"
