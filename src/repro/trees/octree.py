"""Quadtree / octree construction (paper section II-A).

Low-dimensional spatial trees used by the physics problems: quadtrees in
2-D and octrees in 3-D (any d ≤ 3 is accepted; d = 1 degenerates to a
binary interval tree).  Cells split at their geometric center into up to
``2^d`` children; empty children are dropped.  Stored node bounds are the
*tight* boxes of the contained points (better pruning than the cell), but
the split point is always the cell center, as in classic Barnes-Hut.
"""

from __future__ import annotations

import numpy as np

from .node import ArrayTree

__all__ = ["Octree", "build_octree"]

_MAX_DEPTH = 64


class Octree(ArrayTree):
    kind = "octree"


def build_octree(
    points: np.ndarray,
    leaf_size: int = 16,
    weights: np.ndarray | None = None,
) -> Octree:
    """Build an :class:`Octree` over ``points`` of shape ``(n, d)``, d ≤ 3."""
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    n, d = points.shape
    if d > 3:
        raise ValueError(
            f"octrees handle at most 3 dimensions, got {d}; use a kd-tree"
        )
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    perm = np.arange(n)

    lo_l: list[np.ndarray] = []
    hi_l: list[np.ndarray] = []
    st_l: list[int] = []
    en_l: list[int] = []
    ch_l: list[list[int]] = []

    def new_node(s: int, e: int) -> int:
        idx = len(st_l)
        pts = points[perm[s:e]]
        lo_l.append(pts.min(axis=0))
        hi_l.append(pts.max(axis=0))
        st_l.append(s)
        en_l.append(e)
        ch_l.append([])
        return idx

    # Root cell: the (cubified) bounding box of all points.
    root = new_node(0, n)
    root_lo = lo_l[0].copy()
    side = float((hi_l[0] - lo_l[0]).max())
    root_hi = root_lo + max(side, 1e-300)

    # Stack entries: (node_id, cell_lo, cell_hi, depth).
    stack: list[tuple[int, np.ndarray, np.ndarray, int]] = [
        (root, root_lo, root_hi, 0)
    ]
    while stack:
        i, cell_lo, cell_hi, depth = stack.pop()
        s, e = st_l[i], en_l[i]
        if e - s <= leaf_size or depth >= _MAX_DEPTH:
            continue
        if float((hi_l[i] - lo_l[i]).max()) <= 0.0:
            continue  # coincident points
        mid = 0.5 * (cell_lo + cell_hi)
        seg = perm[s:e]
        # Quadrant code of each point: bit k set if coordinate k >= mid_k.
        codes = np.zeros(e - s, dtype=np.int64)
        for k in range(d):
            codes |= (points[seg, k] >= mid[k]).astype(np.int64) << k
        order = np.argsort(codes, kind="stable")
        perm[s:e] = seg[order]
        codes = codes[order]
        # Contiguous runs of equal code become children.
        boundaries = np.flatnonzero(np.diff(codes)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [e - s]])
        if len(starts) == 1:
            continue  # all points in one quadrant of a degenerate cell
        kids = []
        for a, b, code in zip(starts, ends, codes[starts]):
            child = new_node(s + int(a), s + int(b))
            kids.append(child)
            c_lo = cell_lo.copy()
            c_hi = mid.copy()
            for k in range(d):
                if code >> k & 1:
                    c_lo[k] = mid[k]
                    c_hi[k] = cell_hi[k]
            stack.append((child, c_lo, c_hi, depth + 1))
        ch_l[i] = kids

    return Octree(
        points=points[perm],
        perm=perm,
        lo=np.asarray(lo_l),
        hi=np.asarray(hi_l),
        start=np.asarray(st_l, dtype=np.int64),
        end=np.asarray(en_l, dtype=np.int64),
        child_ids=ch_l,
        weights=weights,
        leaf_size=leaf_size,
    )
