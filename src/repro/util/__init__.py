"""Shared utilities: LOC counting, timing."""

from .loc import count_loc, count_object_loc, count_source_loc
from .timing import Timer, best_of, timed

__all__ = [
    "count_loc", "count_source_loc", "count_object_loc",
    "Timer", "timed", "best_of",
]

from .tune import TuneResult, tune_leaf_size  # noqa: E402

__all__ += ["TuneResult", "tune_leaf_size"]
