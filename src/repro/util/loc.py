"""Lines-of-code counting for the productivity comparison (Table IV/V).

Counts *logical* source lines the way the paper does: blank lines and
comment-only lines are excluded.
"""

from __future__ import annotations

import inspect

__all__ = ["count_loc", "count_source_loc", "count_object_loc"]


def count_loc(text: str) -> int:
    """Count non-blank, non-comment lines of Python/Portal source."""
    n = 0
    in_doc = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_doc:
            if line.endswith('"""') or line.endswith("'''"):
                in_doc = False
            continue
        if line.startswith(('"""', "'''")):
            body = line[3:]
            if not (body.endswith('"""') or body.endswith("'''")) or len(line) < 6:
                in_doc = True
            continue
        if line.startswith("#") or line.startswith("//"):
            continue
        n += 1
    return n


def count_source_loc(path: str) -> int:
    """Count LOC of a source file."""
    with open(path) as fh:
        return count_loc(fh.read())


def count_object_loc(obj) -> int:
    """Count LOC of a Python function/class via ``inspect.getsource``."""
    return count_loc(inspect.getsource(obj))
