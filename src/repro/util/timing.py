"""Timing helpers for the benchmark harnesses."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "timed", "best_of"]


@dataclass
class Timer:
    """Accumulating wall-clock timer."""

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self):
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            dt = time.perf_counter() - t0
            self.elapsed += dt
            self.laps.append(dt)


@contextmanager
def timed(label: str | None = None, sink: dict | None = None):
    """Context manager printing (or recording) a wall-clock measurement."""
    t0 = time.perf_counter()
    box: dict = {}
    try:
        yield box
    finally:
        dt = time.perf_counter() - t0
        box["seconds"] = dt
        if sink is not None and label is not None:
            sink[label] = dt
        elif label is not None:
            print(f"{label}: {dt:.4f}s")


def best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock time of ``repeats`` calls (paper-style reporting)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
