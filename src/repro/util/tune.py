"""Leaf-size auto-tuning.

The paper: "we also empirically tune the algorithmic parameter, leaf
size and level of tree parallelization to achieve scalability" (V-B).
This helper performs that empirical tuning: it times a problem over a
candidate grid (on a subsample for large inputs) and returns the best
leaf size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = ["TuneResult", "tune_leaf_size"]

DEFAULT_CANDIDATES = (16, 32, 64, 128, 256)


@dataclass
class TuneResult:
    best: int
    timings: dict[int, float] = field(default_factory=dict)

    def __repr__(self) -> str:
        rows = ", ".join(f"{k}: {v:.4f}s" for k, v in sorted(self.timings.items()))
        return f"TuneResult(best={self.best}, {{{rows}}})"


def tune_leaf_size(
    run: Callable[..., object],
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    repeats: int = 2,
    subsample: int | None = None,
) -> TuneResult:
    """Time ``run(leaf_size)`` over the candidate grid; best-of-``repeats``.

    With ``subsample`` set, ``run`` is called as ``run(leaf_size,
    subsample)`` instead, so large inputs can be tuned on a smaller
    draw — the relative ranking of leaf sizes is what matters, not the
    absolute timings.

    Example
    -------
    >>> from repro.problems import knn
    >>> result = tune_leaf_size(lambda leaf: knn(Q, R, k=5, leaf_size=leaf))
    >>> knn(Q, R, k=5, leaf_size=result.best)
    """
    if not candidates:
        raise ValueError("need at least one candidate leaf size")
    if subsample is not None and subsample < 1:
        raise ValueError(f"invalid subsample size {subsample}")
    timings: dict[int, float] = {}
    for leaf in candidates:
        if leaf < 1:
            raise ValueError(f"invalid leaf size {leaf}")
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            if subsample is None:
                run(int(leaf))
            else:
                run(int(leaf), int(subsample))
            best = min(best, time.perf_counter() - t0)
        timings[int(leaf)] = best
    best_leaf = min(timings, key=timings.get)
    return TuneResult(best=best_leaf, timings=timings)
