"""Measured-candidate tuning: the timing core behind the policy search.

The paper: "we also empirically tune the algorithmic parameter, leaf
size and level of tree parallelization to achieve scalability" (V-B).
:func:`measure_candidates` is the general form of that empirical tuning
— best-of-``repeats`` wall-clock over an arbitrary candidate grid, with
an injectable monotonic clock (deterministic tests) and an optional
wall-clock budget (the policy search bounds its total measurement time).
:func:`tune_leaf_size` keeps the original leaf-size-specific interface
on top of it; :mod:`repro.policy.search` drives the same core over the
joint {engine × executor × codegen × leaf size × shards} space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = ["TuneResult", "measure_candidates", "tune_leaf_size"]

DEFAULT_CANDIDATES = (16, 32, 64, 128, 256)


@dataclass
class TuneResult:
    best: int
    timings: dict[int, float] = field(default_factory=dict)

    def __repr__(self) -> str:
        rows = ", ".join(f"{k}: {v:.4f}s" for k, v in sorted(self.timings.items()))
        return f"TuneResult(best={self.best}, {{{rows}}})"


def measure_candidates(
    run: Callable[[object], object],
    candidates: Sequence,
    repeats: int = 2,
    clock: Callable[[], float] | None = None,
    budget_s: float | None = None,
) -> dict:
    """Best-of-``repeats`` wall-clock seconds of ``run(candidate)`` per
    candidate.

    ``clock`` is a monotonic zero-argument timestamp source (defaults to
    ``time.perf_counter``); injecting a fake makes measurement logic
    deterministic in tests.  ``budget_s`` bounds the *total* measuring
    time: once the accumulated wall-clock crosses it, remaining
    candidates are skipped (the first candidate is always measured, so
    the result is never empty).  Callers rank the returned timings —
    relative order is the product, not absolute seconds.
    """
    if not candidates:
        raise ValueError("need at least one candidate")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    now = clock if clock is not None else time.perf_counter
    timings: dict = {}
    start = now()
    for cand in candidates:
        if timings and budget_s is not None and now() - start >= budget_s:
            break
        best = float("inf")
        for _ in range(repeats):
            t0 = now()
            run(cand)
            best = min(best, now() - t0)
        timings[cand] = best
    return timings


def tune_leaf_size(
    run: Callable[..., object],
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    repeats: int = 2,
    subsample: int | None = None,
    clock: Callable[[], float] | None = None,
) -> TuneResult:
    """Time ``run(leaf_size)`` over the candidate grid; best-of-``repeats``.

    With ``subsample`` set, ``run`` is called as ``run(leaf_size,
    subsample)`` instead, so large inputs can be tuned on a smaller
    draw — the relative ranking of leaf sizes is what matters, not the
    absolute timings.  A single-candidate grid skips timing entirely
    (there is nothing to rank, so no measurement is spent).

    Example
    -------
    >>> from repro.problems import knn
    >>> result = tune_leaf_size(lambda leaf: knn(Q, R, k=5, leaf_size=leaf))
    >>> knn(Q, R, k=5, leaf_size=result.best)
    """
    if not candidates:
        raise ValueError("need at least one candidate leaf size")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if subsample is not None and subsample < 1:
        raise ValueError(f"invalid subsample size {subsample}")
    for leaf in candidates:
        if leaf < 1:
            raise ValueError(f"invalid leaf size {leaf}")
    if len(candidates) == 1:
        return TuneResult(best=int(candidates[0]))

    if subsample is None:
        call = lambda leaf: run(int(leaf))  # noqa: E731
    else:
        call = lambda leaf: run(int(leaf), int(subsample))  # noqa: E731
    # Resolved at call time so tests monkeypatching this module's `time`
    # (the fake-clock suite) keep steering the measurement.
    now = clock if clock is not None else time.perf_counter
    timings = measure_candidates(call, [int(c) for c in candidates],
                                 repeats=repeats, clock=now)
    best_leaf = min(timings, key=timings.get)
    return TuneResult(best=best_leaf, timings=timings)
