"""Cross-backend differential suite: ``native`` codegen vs the NumPy
reference.

The NumPy backend is the differential reference every other codegen
backend is held to.  Each paper problem runs twice — once per backend —
over every tree kind, traversal engine and executor, and the outputs
must agree to the same tolerances the interp-vs-vectorized suite uses:
indices exactly, values to float tolerance (the native scalar loops
reduce sequentially where NumPy reduces pairwise, and for row-major
high-dimensional data the NumPy side's GEMM norm expansion differs by
ulps — the BENCH_bound row-GEMM caveat; the fixed d=3 harness data takes
the bitwise column-major path on both sides).

The native leg is guaranteed to exercise the native *emitter* on every
host: with numba installed the kernels JIT for real; without it the
fixture sets ``REPRO_NATIVE_JIT=python`` so the emitted loop nests run
as plain Python — the same generated code minus compilation.  Without
that, a numba-less host would silently fall back to NumPy kernels and
the suite would compare NumPy with itself (a no-op); the marker
assertions below pin the native section's presence.

Fast tier: all problems x 2 seeds on the default configuration, plus a
representative executor/engine subset.  Slow tier (``-m slow``): the
full problems x kd/ball/octree x stack/batched/bounded-batched x
serial/thread/process product.
"""

import itertools
import os

import numpy as np
import pytest

from repro.backend.native import NATIVE_MARKER, native_available

from tests.backend.test_differential import (
    PROBLEMS, SEEDS, _assert_same, _extract, make_problem,
)

TREES = ("kd", "ball", "octree")
ENGINES = ("stack", "batched", "bounded-batched")
EXECUTORS = ("serial", "thread", "process")


@pytest.fixture(scope="module", autouse=True)
def _native_leg():
    if native_available():
        yield
        return
    os.environ["REPRO_NATIVE_JIT"] = "python"
    try:
        yield
    finally:
        os.environ.pop("REPRO_NATIVE_JIT", None)


def _run_opts(opts, tree="kd", engine="batched", executor="serial"):
    run = dict(opts, tree=tree, traversal=engine)
    if executor != "serial":
        # min_tasks pins the decomposition so outputs are bit-stable
        # across worker counts (and across the two backends).
        run.update(parallel=True, workers=2, min_tasks=4, executor=executor)
    return run


def _compare(name, seed, **config):
    build, kind, opts = make_problem(name, seed)
    run = _run_opts(opts, **config)
    ref = _extract(build().execute(codegen="numpy", **run), kind)
    got = _extract(build().execute(codegen="native", **run), kind)
    _assert_same(got, ref, kind)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", PROBLEMS)
def test_native_matches_numpy(name, seed):
    _compare(name, seed)


@pytest.mark.parametrize("engine", ENGINES)
def test_native_matches_numpy_across_engines(engine):
    for name in ("knn", "kde", "hausdorff"):
        _compare(name, SEEDS[0], engine=engine)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_native_matches_numpy_parallel(executor):
    for name in ("knn", "kde"):
        _compare(name, SEEDS[0], executor=executor)


@pytest.mark.parametrize("tree", TREES)
def test_native_matches_numpy_across_trees(tree):
    for name in ("knn", "barnes_hut"):
        _compare(name, SEEDS[0], tree=tree)


@pytest.mark.slow
@pytest.mark.parametrize(
    "tree,engine,executor", list(itertools.product(TREES, ENGINES, EXECUTORS))
)
@pytest.mark.parametrize("name", PROBLEMS)
def test_native_matches_numpy_full_matrix(name, tree, engine, executor):
    _compare(name, SEEDS[0], tree=tree, engine=engine, executor=executor)


# -- harness self-checks: the native leg really is native --------------------

def test_native_section_emitted():
    """A supported problem compiled under the native backend must carry
    the native kernel section — proof the suite above is not comparing
    NumPy with itself."""
    build, kind, opts = make_problem("kde", SEEDS[0])
    e = build()
    e.execute(codegen="native", cache=False, **opts)
    assert NATIVE_MARKER in e.generated_source()
    assert e.stats()["codegen"] == "native"


def test_unsupported_problem_runs_on_numpy_kernels():
    """UNIONARG (range_search) has no scalar lowering: the native
    artifact is the NumPy one, marked as a fallback, and still correct
    (asserted differentially above)."""
    build, kind, opts = make_problem("range_search", SEEDS[0])
    e = build()
    e.execute(codegen="native", cache=False, **opts)
    assert NATIVE_MARKER not in e.generated_source()
    assert "native backend: numpy fallback" in e.generated_source()


def test_numpy_requests_stay_numpy():
    build, kind, opts = make_problem("kde", SEEDS[0])
    e = build()
    e.execute(codegen="numpy", cache=False, **opts)
    assert NATIVE_MARKER not in e.generated_source()
    assert e.stats()["codegen"] == "numpy"


def test_outputs_identical_where_bitwise_expected():
    """On d=3 column-major data the per-pair base distances are computed
    in the same order by both backends; order-based reductions (k-NN
    indices *and* values) must then be bitwise equal, not just close."""
    build, kind, opts = make_problem("nearest", SEEDS[0])
    ref = build().execute(codegen="numpy", cache=False, **opts)
    got = build().execute(codegen="native", cache=False, **opts)
    assert np.array_equal(np.asarray(got.values), np.asarray(ref.values))
