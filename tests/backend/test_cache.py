"""Execution cache behaviour: compiled-artifact and tree reuse.

A second ``execute()`` of the same logical program must skip compilation
and tree construction (counter-observable), return bitwise-identical
results, and miss when any compile-relevant input changes.
"""

import enum

import numpy as np
import pytest

from repro.backend.cache import (
    MISSING, LRUCache, UncacheableParamError, array_fingerprint,
    cache_stats, clear_caches, freeze,
)
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.observe import collect
from repro.problems import kde, range_count


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(99)
    Q = np.ascontiguousarray(rng.normal(size=(300, 3)))
    R = np.ascontiguousarray(rng.normal(size=(350, 3)))
    return Q, R


def _kde_expr(Q, R):
    expr = PortalExpr("kde-cache")
    expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    expr.addLayer(PortalOp.SUM, Storage(R, name="reference"),
                  PortalFunc.GAUSSIAN, bandwidth=0.8)
    return expr


def _cache_counts(counters):
    return {k: v for k, v in counters.as_dict().items()
            if k.startswith("cache.")}


class TestCompileCache:
    def test_second_execute_hits(self, data):
        Q, R = data
        with collect() as counters:
            first = _kde_expr(Q, R).execute(tau=1e-3)
            second = _kde_expr(Q, R).execute(tau=1e-3)
        c = _cache_counts(counters)
        assert c["cache.compile.miss"] == 1
        assert c["cache.compile.hit"] == 1
        assert c["cache.tree.miss"] == 2  # query + reference trees
        # the artifact hit carries its trees — no second tree probe
        assert "cache.tree.hit" not in c
        # compile.count only fires on the full pipeline
        assert counters.as_dict()["compile.count"] == 1
        assert np.array_equal(np.asarray(first.values),
                              np.asarray(second.values))

    def test_hit_skips_compile_stages(self, data):
        Q, R = data
        _kde_expr(Q, R).execute(tau=1e-3)
        expr = _kde_expr(Q, R)
        expr.execute(tau=1e-3)
        stats = expr.stats()
        assert stats["cache"] == "hit"
        # A served program never paid for tree building or codegen.
        assert "tree_build" not in stats["compile_timings_ms"]
        assert "codegen" not in stats["compile_timings_ms"]

    def test_option_change_misses(self, data):
        Q, R = data
        _kde_expr(Q, R).execute(tau=1e-3)
        with collect() as counters:
            _kde_expr(Q, R).execute(tau=1e-2)           # different tau
            _kde_expr(Q, R).execute(tau=1e-3, leaf_size=16)
        c = _cache_counts(counters)
        assert c["cache.compile.miss"] == 2
        assert "cache.compile.hit" not in c

    def test_data_change_misses(self, data):
        Q, R = data
        _kde_expr(Q, R).execute(tau=1e-3)
        Q2 = Q.copy()
        Q2[0, 0] += 1.0
        with collect() as counters:
            _kde_expr(Q2, R).execute(tau=1e-3)
        assert _cache_counts(counters)["cache.compile.miss"] == 1

    def test_runtime_knobs_still_hit(self, data):
        """parallel / workers / traversal are runtime-only: same artifact."""
        Q, R = data
        _kde_expr(Q, R).execute(tau=1e-3, traversal="batched")
        with collect() as counters:
            _kde_expr(Q, R).execute(tau=1e-3, traversal="stack")
            _kde_expr(Q, R).execute(tau=1e-3, parallel=True, workers=2,
                                    min_tasks=4)
        c = _cache_counts(counters)
        assert c["cache.compile.hit"] == 2
        assert "cache.compile.miss" not in c

    def test_cache_false_bypasses(self, data):
        Q, R = data
        with collect() as counters:
            _kde_expr(Q, R).execute(tau=1e-3, cache=False)
            _kde_expr(Q, R).execute(tau=1e-3, cache=False)
        assert not _cache_counts(counters)
        assert counters.as_dict()["compile.count"] == 2

    def test_hit_outputs_bitwise_identical(self, data):
        Q, R = data
        miss = kde(Q, R, bandwidth=0.8, tau=1e-3)
        hit = kde(Q, R, bandwidth=0.8, tau=1e-3)
        assert np.array_equal(miss, hit)

    def test_hit_state_is_fresh(self, data):
        """Accumulators must not leak between cached executions: running
        the same program twice yields the same values, not doubled."""
        Q, R = data
        first = range_count(Q, R, h=1.0, leaf_size=8)
        second = range_count(Q, R, h=1.0, leaf_size=8)
        assert np.array_equal(first, second)


class TestBackendDimension:
    """The artifact key carries the *resolved* codegen backend: a native
    artifact must never collide with a NumPy one (ARTIFACT_SCHEMA v4)."""

    @pytest.fixture(autouse=True)
    def _native_sim(self, monkeypatch):
        from repro.backend.native import native_available

        if not native_available():
            # Keep 'native' resolving to itself on numba-less hosts so
            # the two backends genuinely key differently.
            monkeypatch.setenv("REPRO_NATIVE_JIT", "python")
        clear_caches()

    def test_numpy_and_native_are_distinct_entries(self, data):
        Q, R = data
        with collect() as counters:
            _kde_expr(Q, R).execute(tau=1e-3, codegen="numpy")
            _kde_expr(Q, R).execute(tau=1e-3, codegen="native")
        c = _cache_counts(counters)
        assert c["cache.compile.miss"] == 2
        assert "cache.compile.hit" not in c
        assert cache_stats()["programs"] == 2
        # …and each backend re-hits its *own* entry afterwards.
        with collect() as counters:
            first = _kde_expr(Q, R).execute(tau=1e-3, codegen="numpy")
            second = _kde_expr(Q, R).execute(tau=1e-3, codegen="native")
        assert _cache_counts(counters)["cache.compile.hit"] == 2
        np.testing.assert_allclose(np.asarray(first.values),
                                   np.asarray(second.values), rtol=1e-7)

    def test_fallen_back_native_shares_numpy_entry(self, data, monkeypatch):
        """With no native JIT available, 'native' resolves to 'numpy'
        *before* keying — the fallback legitimately reuses the NumPy
        artifact instead of duplicating it."""
        monkeypatch.setenv("REPRO_NATIVE_JIT", "off")
        Q, R = data
        with collect() as counters:
            _kde_expr(Q, R).execute(tau=1e-3, codegen="numpy")
            _kde_expr(Q, R).execute(tau=1e-3, codegen="native")
        c = counters.as_dict()
        assert c["cache.compile.miss"] == 1
        assert c["cache.compile.hit"] == 1
        assert c["backend.native.fallback"] >= 1
        assert cache_stats()["programs"] == 1

    def test_clear_caches_drops_both(self, data):
        Q, R = data
        _kde_expr(Q, R).execute(tau=1e-3, codegen="numpy")
        _kde_expr(Q, R).execute(tau=1e-3, codegen="native")
        assert cache_stats()["programs"] == 2
        clear_caches()
        assert cache_stats() == {"programs": 0, "trees": 0}
        with collect() as counters:
            _kde_expr(Q, R).execute(tau=1e-3, codegen="native")
        assert _cache_counts(counters)["cache.compile.miss"] == 1

    def test_uncacheable_native_still_executes(self, data):
        """An uncacheable-param program under the native backend skips
        the cache but still compiles, binds and runs natively."""
        Q, R = data
        with collect() as counters:
            expr = _kde_expr(Q, R)
            expr.layers[1].params["opaque"] = object()
            out = expr.execute(tau=1e-3, codegen="native")
        c = counters.as_dict()
        assert c["cache.compile.uncacheable"] == 1
        assert "cache.compile.hit" not in c and "cache.compile.miss" not in c
        assert cache_stats()["programs"] == 0
        assert expr.stats()["codegen"] == "native"
        assert np.asarray(out.values).shape == (len(Q),)


class TestTreeCache:
    def test_cross_problem_tree_reuse(self, data):
        """Different problems over the same dataset share tree builds."""
        Q, R = data
        kde(Q, R, bandwidth=0.8, tau=1e-3)
        with collect() as counters:
            range_count(Q, R, h=1.0)
        c = _cache_counts(counters)
        assert c["cache.tree.hit"] == 2       # both trees reused
        assert "cache.tree.miss" not in c
        assert c["cache.compile.miss"] == 1   # but a different program

    def test_leaf_size_changes_tree_key(self, data):
        Q, R = data
        kde(Q, R, bandwidth=0.8, leaf_size=32)
        with collect() as counters:
            kde(Q, R, bandwidth=0.8, leaf_size=16)
        assert _cache_counts(counters)["cache.tree.miss"] == 2


class TestPrimitives:
    def test_array_fingerprint_content_based(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_fingerprint(a) == array_fingerprint(a.copy())
        b = a.copy()
        b[1, 2] += 1e-9
        assert array_fingerprint(a) != array_fingerprint(b)
        assert array_fingerprint(a) != array_fingerprint(a.reshape(4, 3))
        assert array_fingerprint(None) is None

    def test_freeze_hashable(self):
        key = freeze({"b": [1, 2], "a": np.ones(3), "c": {"x": None}})
        assert hash(key) == hash(key)
        assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})

    def test_lru_evicts_oldest(self):
        c = LRUCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1    # refresh 'a'
        c.put("c", 3)             # evicts 'b'
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3
        assert len(c) == 2

    def test_clear_caches(self, data):
        Q, R = data
        kde(Q, R, bandwidth=0.8)
        assert cache_stats()["programs"] >= 1
        assert cache_stats()["trees"] >= 1
        clear_caches()
        assert cache_stats() == {"programs": 0, "trees": 0}


class TestFreezeContentKeys:
    """Regression: freeze() must never fall back to repr(value) — default
    object reprs embed memory addresses, which alias after GC reuse."""

    def test_numpy_scalars(self):
        assert freeze(np.float64(1.5)) == freeze(np.float64(1.5))
        assert freeze(np.float64(1.5)) != freeze(np.float32(1.5))
        assert freeze(np.int64(3)) != freeze(np.float64(3))

    def test_sets_are_order_independent(self):
        assert freeze({3, 1, 2}) == freeze({2, 3, 1})
        assert freeze(frozenset({1})) == freeze({1})

    def test_enum_by_qualname_and_name(self):
        class Mode(enum.Enum):
            FAST = 1
            SLOW = 2

        assert freeze(Mode.FAST) == freeze(Mode.FAST)
        assert freeze(Mode.FAST) != freeze(Mode.SLOW)

    def test_opaque_object_raises(self):
        with pytest.raises(UncacheableParamError):
            freeze(object())
        with pytest.raises(UncacheableParamError):
            freeze({"param": object()})  # nested too

    def test_uncacheable_param_counts_and_runs_uncached(self, data):
        """A layer param with no content identity must skip the cache
        (counted), not poison it with an address-based key."""
        Q, R = data
        clear_caches()
        with collect() as counters:
            for _ in range(2):
                expr = _kde_expr(Q, R)
                expr.layers[1].params["opaque"] = object()
                expr.execute(tau=1e-3)
        c = counters.as_dict()
        assert c["cache.compile.uncacheable"] == 2
        assert "cache.compile.hit" not in c
        assert "cache.compile.miss" not in c
        assert c["compile.count"] == 2  # full pipeline both times
        assert cache_stats()["programs"] == 0

    def test_lru_none_value_is_a_hit(self):
        """Regression: a legitimately-None cached value must be
        distinguishable from a miss via the MISSING sentinel."""
        c = LRUCache(maxsize=4)
        c.put("k", None)
        assert c.get("k", MISSING) is None       # hit, value is None
        assert c.get("absent", MISSING) is MISSING
        assert c.get("absent") is None           # default default


class TestFingerprintMemo:
    """Regression: array_fingerprint is O(n); Storage memoizes it so
    cache *hits* stop re-hashing the dataset every execute()."""

    def test_memoized_within_version(self, monkeypatch):
        import repro.backend.cache as cache_mod

        calls = []
        real = cache_mod.array_fingerprint
        monkeypatch.setattr(cache_mod, "array_fingerprint",
                            lambda arr: calls.append(1) or real(arr))
        s = Storage(np.arange(30.0).reshape(10, 3))
        fp1 = s.fingerprint("data")
        fp2 = s.fingerprint("data")
        assert fp1 == fp2
        assert len(calls) == 1  # hashed once, served from the memo after

    def test_matches_raw_fingerprint(self):
        X = np.arange(30.0).reshape(10, 3)
        s = Storage(X, weights=np.ones(10))
        assert s.fingerprint("data") == array_fingerprint(s.data)
        assert s.fingerprint("weights") == array_fingerprint(s.weights)
        assert Storage(X).fingerprint("weights") is None

    def test_mark_mutated_invalidates(self):
        s = Storage(np.arange(30.0).reshape(10, 3))
        before = s.fingerprint("data")
        v0 = s.version
        s.data[0, 0] += 1.0
        s.mark_mutated()
        assert s.version == v0 + 1
        assert s.fingerprint("data") != before

    def test_weights_rebind_detected_without_mark(self):
        """Replacing the .weights array (new buffer) re-fingerprints even
        without mark_mutated(); only in-place writes need the call."""
        s = Storage(np.arange(30.0).reshape(10, 3), weights=np.ones(10))
        before = s.fingerprint("weights")
        s.weights = np.full(10, 2.0)
        assert s.fingerprint("weights") != before
