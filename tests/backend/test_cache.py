"""Execution cache behaviour: compiled-artifact and tree reuse.

A second ``execute()`` of the same logical program must skip compilation
and tree construction (counter-observable), return bitwise-identical
results, and miss when any compile-relevant input changes.
"""

import numpy as np
import pytest

from repro.backend.cache import (
    LRUCache, array_fingerprint, cache_stats, clear_caches, freeze,
)
from repro.dsl import PortalExpr, PortalFunc, PortalOp, Storage
from repro.observe import collect
from repro.problems import kde, range_count


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(99)
    Q = np.ascontiguousarray(rng.normal(size=(300, 3)))
    R = np.ascontiguousarray(rng.normal(size=(350, 3)))
    return Q, R


def _kde_expr(Q, R):
    expr = PortalExpr("kde-cache")
    expr.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
    expr.addLayer(PortalOp.SUM, Storage(R, name="reference"),
                  PortalFunc.GAUSSIAN, bandwidth=0.8)
    return expr


def _cache_counts(counters):
    return {k: v for k, v in counters.as_dict().items()
            if k.startswith("cache.")}


class TestCompileCache:
    def test_second_execute_hits(self, data):
        Q, R = data
        with collect() as counters:
            first = _kde_expr(Q, R).execute(tau=1e-3)
            second = _kde_expr(Q, R).execute(tau=1e-3)
        c = _cache_counts(counters)
        assert c["cache.compile.miss"] == 1
        assert c["cache.compile.hit"] == 1
        assert c["cache.tree.miss"] == 2  # query + reference trees
        # the artifact hit carries its trees — no second tree probe
        assert "cache.tree.hit" not in c
        # compile.count only fires on the full pipeline
        assert counters.as_dict()["compile.count"] == 1
        assert np.array_equal(np.asarray(first.values),
                              np.asarray(second.values))

    def test_hit_skips_compile_stages(self, data):
        Q, R = data
        _kde_expr(Q, R).execute(tau=1e-3)
        expr = _kde_expr(Q, R)
        expr.execute(tau=1e-3)
        stats = expr.stats()
        assert stats["cache"] == "hit"
        # A served program never paid for tree building or codegen.
        assert "tree_build" not in stats["compile_timings_ms"]
        assert "codegen" not in stats["compile_timings_ms"]

    def test_option_change_misses(self, data):
        Q, R = data
        _kde_expr(Q, R).execute(tau=1e-3)
        with collect() as counters:
            _kde_expr(Q, R).execute(tau=1e-2)           # different tau
            _kde_expr(Q, R).execute(tau=1e-3, leaf_size=16)
        c = _cache_counts(counters)
        assert c["cache.compile.miss"] == 2
        assert "cache.compile.hit" not in c

    def test_data_change_misses(self, data):
        Q, R = data
        _kde_expr(Q, R).execute(tau=1e-3)
        Q2 = Q.copy()
        Q2[0, 0] += 1.0
        with collect() as counters:
            _kde_expr(Q2, R).execute(tau=1e-3)
        assert _cache_counts(counters)["cache.compile.miss"] == 1

    def test_runtime_knobs_still_hit(self, data):
        """parallel / workers / traversal are runtime-only: same artifact."""
        Q, R = data
        _kde_expr(Q, R).execute(tau=1e-3, traversal="batched")
        with collect() as counters:
            _kde_expr(Q, R).execute(tau=1e-3, traversal="stack")
            _kde_expr(Q, R).execute(tau=1e-3, parallel=True, workers=2,
                                    min_tasks=4)
        c = _cache_counts(counters)
        assert c["cache.compile.hit"] == 2
        assert "cache.compile.miss" not in c

    def test_cache_false_bypasses(self, data):
        Q, R = data
        with collect() as counters:
            _kde_expr(Q, R).execute(tau=1e-3, cache=False)
            _kde_expr(Q, R).execute(tau=1e-3, cache=False)
        assert not _cache_counts(counters)
        assert counters.as_dict()["compile.count"] == 2

    def test_hit_outputs_bitwise_identical(self, data):
        Q, R = data
        miss = kde(Q, R, bandwidth=0.8, tau=1e-3)
        hit = kde(Q, R, bandwidth=0.8, tau=1e-3)
        assert np.array_equal(miss, hit)

    def test_hit_state_is_fresh(self, data):
        """Accumulators must not leak between cached executions: running
        the same program twice yields the same values, not doubled."""
        Q, R = data
        first = range_count(Q, R, h=1.0, leaf_size=8)
        second = range_count(Q, R, h=1.0, leaf_size=8)
        assert np.array_equal(first, second)


class TestTreeCache:
    def test_cross_problem_tree_reuse(self, data):
        """Different problems over the same dataset share tree builds."""
        Q, R = data
        kde(Q, R, bandwidth=0.8, tau=1e-3)
        with collect() as counters:
            range_count(Q, R, h=1.0)
        c = _cache_counts(counters)
        assert c["cache.tree.hit"] == 2       # both trees reused
        assert "cache.tree.miss" not in c
        assert c["cache.compile.miss"] == 1   # but a different program

    def test_leaf_size_changes_tree_key(self, data):
        Q, R = data
        kde(Q, R, bandwidth=0.8, leaf_size=32)
        with collect() as counters:
            kde(Q, R, bandwidth=0.8, leaf_size=16)
        assert _cache_counts(counters)["cache.tree.miss"] == 2


class TestPrimitives:
    def test_array_fingerprint_content_based(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_fingerprint(a) == array_fingerprint(a.copy())
        b = a.copy()
        b[1, 2] += 1e-9
        assert array_fingerprint(a) != array_fingerprint(b)
        assert array_fingerprint(a) != array_fingerprint(a.reshape(4, 3))
        assert array_fingerprint(None) is None

    def test_freeze_hashable(self):
        key = freeze({"b": [1, 2], "a": np.ones(3), "c": {"x": None}})
        assert hash(key) == hash(key)
        assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})

    def test_lru_evicts_oldest(self):
        c = LRUCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1    # refresh 'a'
        c.put("c", 3)             # evicts 'b'
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3
        assert len(c) == 2

    def test_clear_caches(self, data):
        Q, R = data
        kde(Q, R, bandwidth=0.8)
        assert cache_stats()["programs"] >= 1
        assert cache_stats()["trees"] >= 1
        clear_caches()
        assert cache_stats() == {"programs": 0, "trees": 0}
