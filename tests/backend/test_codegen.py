"""Tests for the vectorising code generator: emitted source structure and
compiled closure behaviour."""

import numpy as np
import pytest

from repro.backend.codegen import CodegenSpec, emit_expr, generate
from repro.backend.layout import Layout
from repro.dsl.errors import CompileError
from repro.dsl.expr import BinOp, Const, Indicator
from repro.dsl.ops import PortalOp
from repro.ir.nodes import IRCall, SymRef
from repro.rules.spec import RuleSpec


class TestEmitExpr:
    def test_symref(self):
        assert emit_expr(SymRef("t"), {"t": "tv"}) == "tv"

    def test_unbound_symref_rejected(self):
        with pytest.raises(CompileError):
            emit_expr(SymRef("zz"), {})

    def test_binop(self):
        e = BinOp("*", SymRef("t"), Const(2.0))
        assert emit_expr(e, {"t": "t"}) == "(t * 2.0)"

    def test_calls_map_to_numpy(self):
        assert emit_expr(IRCall("sqrt", (SymRef("t"),)), {"t": "t"}) == "np.sqrt(t)"
        assert emit_expr(IRCall("fast_inverse_sqrt", (SymRef("t"),)),
                         {"t": "t"}) == "finvsqrt(t)"

    def test_indicator(self):
        e = Indicator("<", SymRef("t"), Const(1.0))
        src = emit_expr(e, {"t": "t"})
        assert "<" in src and "np.multiply" in src

    def test_unknown_call_rejected(self):
        with pytest.raises(CompileError):
            emit_expr(IRCall("mystery", ()), {})


def _spec(**kw):
    defaults = dict(
        dim=3, layout=Layout.COLUMN, base="sqeuclidean",
        g_ir=SymRef("t"), monotone="increasing",
        outer_op=PortalOp.FORALL, inner_op=PortalOp.SUM,
    )
    defaults.update(kw)
    return CodegenSpec(**defaults)


def _bindings(Q, R, state_arrays, **extra):
    b = dict(
        QCOL=np.ascontiguousarray(Q.T), QROW=Q,
        RCOL=np.ascontiguousarray(R.T), RROW=R,
        K=1, H=0.0, TAU=0.0, THETA2=0.25, rw=None,
    )
    b.update(state_arrays)
    b.update(extra)
    return b


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestSourceStructure:
    def test_column_layout_unrolls_dims(self, rng):
        Q = rng.normal(size=(8, 3))
        gk = generate(_spec(), _bindings(Q, Q, {"acc": np.zeros(8)}))
        assert "_d0" in gk.source and "_d2" in gk.source
        assert "einsum" not in gk.source

    def test_row_layout_uses_gemm_norm_expansion(self, rng):
        Q = rng.normal(size=(8, 6))
        n2 = np.einsum("ij,ij->i", Q, Q)
        gk = generate(_spec(dim=6, layout=Layout.ROW),
                      _bindings(Q, Q, {"acc": np.zeros(8)}, QN2=n2, RN2=n2))
        assert "QN2" in gk.source and "@" in gk.source
        assert "_d0" not in gk.source

    def test_row_layout_manhattan_uses_diff_tensor(self, rng):
        Q = rng.normal(size=(8, 6))
        gk = generate(_spec(dim=6, layout=Layout.ROW, base="manhattan"),
                      _bindings(Q, Q, {"acc": np.zeros(8)}))
        assert "np.abs(diff).sum" in gk.source

    def test_strength_reduced_kernel_visible(self, rng):
        Q = rng.normal(size=(8, 3))
        g = BinOp("/", Const(1.0), IRCall("fast_inverse_sqrt", (SymRef("t"),)))
        gk = generate(_spec(g_ir=g, inner_op=PortalOp.MIN),
                      _bindings(Q, Q, {"best": np.full(8, np.inf)}))
        assert "finvsqrt" in gk.source

    def test_header_mentions_config(self, rng):
        Q = rng.normal(size=(8, 3))
        gk = generate(_spec(), _bindings(Q, Q, {"acc": np.zeros(8)}))
        assert "layout=column" in gk.source
        assert "inner=SUM" in gk.source

    def test_prod_weighted_rejected(self, rng):
        Q = rng.normal(size=(8, 3))
        with pytest.raises(CompileError, match="PROD"):
            generate(_spec(inner_op=PortalOp.PROD, weighted=True),
                     _bindings(Q, Q, {"acc": np.ones(8)}))


class TestCompiledClosures:
    def test_sum_base_case(self, rng):
        Q = rng.normal(size=(8, 3))
        R = rng.normal(size=(9, 3))
        acc = np.zeros(8)
        gk = generate(_spec(), _bindings(Q, R, {"acc": acc}))
        gk.base_case(0, 8, 0, 9)
        d2 = ((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1)
        assert np.allclose(acc, d2.sum(axis=1))

    def test_weighted_sum(self, rng):
        Q = rng.normal(size=(6, 3))
        R = rng.normal(size=(7, 3))
        w = rng.uniform(1, 2, size=7)
        acc = np.zeros(6)
        gk = generate(_spec(weighted=True),
                      _bindings(Q, R, {"acc": acc}, rw=w))
        gk.base_case(0, 6, 0, 7)
        d2 = ((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1)
        assert np.allclose(acc, d2 @ w)

    def test_argmin_updates(self, rng):
        Q = rng.normal(size=(6, 3))
        R = rng.normal(size=(7, 3))
        best = np.full(6, np.inf)
        bidx = np.full(6, -1, dtype=np.int64)
        gk = generate(_spec(inner_op=PortalOp.ARGMIN),
                      _bindings(Q, R, {"best": best, "best_idx": bidx}))
        gk.base_case(0, 6, 0, 7)
        d2 = ((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1)
        assert np.allclose(best, d2.min(axis=1))
        assert np.array_equal(bidx, d2.argmin(axis=1))

    def test_exclude_self_diagonal(self, rng):
        Q = rng.normal(size=(5, 3))
        best = np.full(5, np.inf)
        bidx = np.full(5, -1, dtype=np.int64)
        gk = generate(
            _spec(inner_op=PortalOp.ARGMIN, same_tree=True, exclude_self=True),
            _bindings(Q, Q, {"best": best, "best_idx": bidx}),
        )
        gk.base_case(0, 5, 0, 5)
        assert np.all(bidx != np.arange(5))

    def test_kmin_sorted(self, rng):
        Q = rng.normal(size=(5, 3))
        R = rng.normal(size=(9, 3))
        best = np.full((5, 3), np.inf)
        gk = generate(_spec(inner_op=PortalOp.KMIN, k=3),
                      dict(_bindings(Q, R, {"best": best}), K=3))
        gk.base_case(0, 5, 0, 9)
        d2 = np.sort(((Q[:, None, :] - R[None, :, :]) ** 2).sum(-1), axis=1)
        assert np.allclose(best, d2[:, :3])

    def test_pair_dist_closures(self, rng):
        Q = rng.normal(size=(8, 3))
        rule = RuleSpec(kind="bound-min")
        qlo = Q.min(0)[None].repeat(1, 0)
        gk = generate(
            _spec(inner_op=PortalOp.MIN, rule=rule),
            _bindings(
                Q, Q, {"best": np.full(8, np.inf)},
                qlo=Q.min(0)[None], qhi=Q.max(0)[None],
                rlo=Q.min(0)[None], rhi=Q.max(0)[None],
                qstart=np.array([0]), qend=np.array([8]),
                rstart=np.array([0]), rend=np.array([8]),
            ),
        )
        assert gk.pair_min_dist(0, 0) == 0.0
        assert gk.prune_or_approx is not None
