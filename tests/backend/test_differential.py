"""Differential tests: interpreter backend vs vectorized NumPy codegen.

Every paper problem's Portal program runs through both backends on seeded
random inputs; the scalar IR interpreter and the generated NumPy code are
independent implementations of the same IR semantics, so they must agree
to float tolerance.  The same harness re-runs with each toggleable IR
optimisation pass disabled individually — an optimisation pass may never
change what a program computes.
"""

import numpy as np
import pytest

from repro.dsl import (
    PortalExpr, PortalFunc, PortalOp, Storage, Var, indicator, pow, sqrt,
)
from repro.ir.passes import TOGGLEABLE_PASSES

SEEDS = [101, 202]


def _data(seed, nq=28, nr=33, d=3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(nq, d)), rng.normal(size=(nr, d))


def _two_layer(Q, R, outer, inner, func, **params):
    e = PortalExpr()
    e.addLayer(outer, Storage(Q, name="query"))
    e.addLayer(inner, Storage(R, name="reference"), func, **params)
    return e


def make_problem(name, seed):
    """Return ``(build, kind, opts)``: a fresh-expression factory, the
    output kind, and execute() options shared by both backends."""
    Q, R = _data(seed)
    q, r = Var("q"), Var("r")

    if name == "knn":
        def build():
            return _two_layer(Q, R, PortalOp.FORALL, (PortalOp.KARGMIN, 3),
                              PortalFunc.EUCLIDEAN)
        return build, "indices", {}
    if name == "nearest":  # the EMST component-step primitive
        def build():
            return _two_layer(Q, R, PortalOp.FORALL, PortalOp.MIN,
                              PortalFunc.EUCLIDEAN)
        return build, "values", {}
    if name == "kde":
        def build():
            return _two_layer(Q, R, PortalOp.FORALL, PortalOp.SUM,
                              PortalFunc.GAUSSIAN, bandwidth=0.9)
        return build, "values", {"tau": 0.0}
    if name == "naive_bayes":  # per-class Gaussian score = KDE at bandwidth σ
        def build():
            return _two_layer(Q, R, PortalOp.FORALL, PortalOp.SUM,
                              PortalFunc.GAUSSIAN, bandwidth=1.7)
        return build, "values", {"tau": 0.0}
    if name == "range_search":
        def build():
            e = PortalExpr()
            e.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
            e.addLayer(PortalOp.UNIONARG, r, Storage(R, name="reference"),
                       indicator(sqrt(pow(q - r, 2)) < 1.4))
            return e
        return build, "lists", {}
    if name == "range_count":
        def build():
            e = PortalExpr()
            e.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
            e.addLayer(PortalOp.SUM, r, Storage(R, name="reference"),
                       indicator(sqrt(pow(q - r, 2)) < 1.4))
            return e
        return build, "values", {}
    if name == "hausdorff":
        def build():
            return _two_layer(Q, R, PortalOp.MAX, PortalOp.MIN,
                              PortalFunc.EUCLIDEAN)
        return build, "scalar", {}
    if name == "two_point":
        def build():
            e = PortalExpr()
            data = Storage(Q, name="data")
            e.addLayer(PortalOp.SUM, q, data)
            e.addLayer(PortalOp.SUM, r, data,
                       indicator(sqrt(pow(q - r, 2)) < 1.1))
            return e
        # The interpreter never excludes self-pairs; pin the vectorized
        # side to the same convention.
        return build, "scalar", {"exclude_self": False}
    if name == "em":  # the E-step component-assignment primitive
        cov = np.diag([1.0, 2.0, 0.5])

        def build():
            return _two_layer(Q, R, PortalOp.FORALL, PortalOp.MIN,
                              PortalFunc.MAHALANOBIS, covariance=cov)
        return build, "values", {}
    if name == "barnes_hut":  # Plummer-softened inverse distance
        def build():
            e = PortalExpr()
            e.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
            e.addLayer(PortalOp.SUM, r, Storage(R, name="reference"),
                       pow(pow(q - r, 2) + 0.25, -0.5))
            return e
        return build, "values", {"tau": 0.0}
    raise AssertionError(f"unknown problem {name}")


PROBLEMS = ["knn", "nearest", "kde", "naive_bayes", "range_search",
            "range_count", "hausdorff", "two_point", "em", "barnes_hut"]


def _extract(out, kind):
    if kind == "values":
        return np.asarray(out.values, dtype=np.float64)
    if kind == "indices":
        return np.asarray(out.indices)
    if kind == "scalar":
        return out.scalar
    if kind == "lists":
        return [np.sort(np.asarray(v)) for v in out.indices]
    raise AssertionError(kind)


def _assert_same(got, ref, kind):
    if kind == "lists":
        assert len(got) == len(ref)
        for g, e in zip(got, ref):
            assert np.array_equal(g, e)
    elif kind == "scalar":
        assert got == pytest.approx(ref, rel=1e-9, abs=1e-9)
    elif kind == "indices":
        assert np.array_equal(got, ref)
    else:
        np.testing.assert_allclose(got, ref, rtol=1e-7, atol=1e-10)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", PROBLEMS)
def test_interp_matches_codegen(name, seed):
    build, kind, opts = make_problem(name, seed)
    ref = _extract(
        build().execute(backend="vectorized", fastmath=False, **opts), kind)
    got = _extract(
        build().execute(backend="interp", fastmath=False, **opts), kind)
    _assert_same(got, ref, kind)


@pytest.mark.parametrize("disabled", TOGGLEABLE_PASSES)
@pytest.mark.parametrize("name", ["kde", "range_count", "hausdorff"])
def test_pass_toggle_preserves_semantics(name, disabled):
    build, kind, opts = make_problem(name, SEEDS[0])
    ref = _extract(build().execute(fastmath=False, **opts), kind)
    for backend in ("vectorized", "interp"):
        got = _extract(
            build().execute(backend=backend, fastmath=False,
                            disable_passes=(disabled,), **opts), kind)
        _assert_same(got, ref, kind)


def test_all_passes_disabled_together():
    build, kind, opts = make_problem("kde", SEEDS[1])
    ref = _extract(build().execute(fastmath=False, **opts), kind)
    got = _extract(
        build().execute(fastmath=False, disable_passes=TOGGLEABLE_PASSES,
                        **opts), kind)
    _assert_same(got, ref, kind)
