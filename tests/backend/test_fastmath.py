"""Tests for the fast inverse square root (section IV-E)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.backend.fastmath import (
    fast_inverse_sqrt, fast_inverse_sqrt32, fast_sqrt,
)


class TestFloat64:
    @given(x=st.floats(min_value=1e-300, max_value=1e300))
    def test_relative_error_bound(self, x):
        approx = float(fast_inverse_sqrt(x))
        exact = 1.0 / np.sqrt(x)
        assert abs(approx - exact) / exact < 5e-6

    def test_vectorised(self):
        x = np.array([1.0, 4.0, 9.0, 16.0])
        assert np.allclose(fast_inverse_sqrt(x), 1.0 / np.sqrt(x), rtol=1e-5)

    def test_zero_gives_inf(self):
        assert np.isinf(fast_inverse_sqrt(0.0))
        assert np.isinf(fast_inverse_sqrt(np.array([0.0]))[0])

    def test_negative_gives_inf(self):
        assert np.isinf(fast_inverse_sqrt(-1.0))

    def test_mixed_array(self):
        out = fast_inverse_sqrt(np.array([0.0, 4.0, -2.0]))
        assert np.isinf(out[0]) and np.isclose(out[1], 0.5, rtol=1e-5)
        assert np.isinf(out[2])

    def test_2d_shape_preserved(self):
        x = np.full((3, 4), 4.0)
        assert fast_inverse_sqrt(x).shape == (3, 4)


class TestFloat32:
    @given(x=st.floats(min_value=1e-30, max_value=1e30))
    def test_quake_error_bound(self, x):
        """The classic routine's error stays under the paper's 0.17 %."""
        approx = float(fast_inverse_sqrt32(np.float32(x)))
        exact = 1.0 / np.sqrt(np.float64(x))
        assert abs(approx - exact) / exact < 1.8e-3

    def test_scalar_shape(self):
        out = fast_inverse_sqrt32(np.float32(4.0))
        assert np.ndim(out) == 0 or out.shape == ()


class TestFastSqrt:
    def test_zero_gives_zero_not_nan(self):
        """The paper's point: 1/(1/√x) returns 0 at x = 0, not NaN."""
        out = fast_sqrt(np.array([0.0]))
        assert out[0] == 0.0 and not np.isnan(out[0])

    @given(x=st.floats(min_value=1e-10, max_value=1e10))
    def test_matches_sqrt(self, x):
        assert float(fast_sqrt(np.array([x]))[0]) == pytest.approx(
            float(np.sqrt(x)), rel=1e-5
        )
