"""Tests for ``backend='interp'``: the IR interpreter as a real backend."""

import numpy as np
import pytest

from repro.dsl import (
    CompileError, PortalExpr, PortalFunc, PortalOp, Storage, Var, indicator,
    pow, sqrt,
)
from repro.baselines import brute


@pytest.fixture
def rng():
    return np.random.default_rng(35)


def build(rng, inner_op, func=PortalFunc.EUCLIDEAN, outer_op=PortalOp.FORALL,
          nq=12, nr=15, **params):
    Q = rng.normal(size=(nq, 3))
    R = rng.normal(size=(nr, 3))
    e = PortalExpr()
    e.addLayer(outer_op, Storage(Q, name="query"))
    e.addLayer(inner_op, Storage(R, name="reference"), func, **params)
    return Q, R, e


class TestInterpBackend:
    def test_argmin(self, rng):
        Q, R, e = build(rng, PortalOp.ARGMIN)
        out = e.execute(backend="interp", fastmath=False)
        _, ib = brute.brute_knn(Q, R, k=1)
        assert np.array_equal(out.indices, ib)
        assert e.program.mode == "interp"

    def test_min_values(self, rng):
        Q, R, e = build(rng, PortalOp.MIN)
        out = e.execute(backend="interp", fastmath=False)
        db, _ = brute.brute_knn(Q, R, k=1)
        assert np.allclose(out.values, db)

    def test_sum_gaussian(self, rng):
        Q, R, e = build(rng, PortalOp.SUM, PortalFunc.GAUSSIAN, bandwidth=1.2)
        out = e.execute(backend="interp")
        assert np.allclose(out.values, brute.brute_kde(Q, R, 1.2))

    def test_kargmin_matrix(self, rng):
        Q, R, e = build(rng, (PortalOp.KARGMIN, 3))
        out = e.execute(backend="interp", fastmath=False)
        _, ib = brute.brute_knn(Q, R, k=3)
        assert np.array_equal(np.asarray(out.indices), ib)

    def test_outer_max_scalar(self, rng):
        Q, R, e = build(rng, PortalOp.MIN, outer_op=PortalOp.MAX)
        out = e.execute(backend="interp", fastmath=False)
        assert out.scalar == pytest.approx(brute.brute_hausdorff(Q, R))

    def test_unionarg_lists(self, rng):
        Q = rng.normal(size=(10, 3))
        R = rng.normal(size=(12, 3))
        q, r = Var("q"), Var("r")
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, q, Storage(Q, name="query"))
        e.addLayer(PortalOp.UNIONARG, r, Storage(R, name="reference"),
                   indicator(sqrt(pow(q - r, 2)) < 1.2))
        out = e.execute(backend="interp", fastmath=False)
        expected = brute.brute_range_search(Q, R, 1.2)
        for got, exp in zip(out.indices, expected):
            assert np.array_equal(got, np.sort(exp))

    def test_agrees_with_vectorized(self, rng):
        Q, R, e = build(rng, PortalOp.SUM, PortalFunc.GAUSSIAN, bandwidth=0.9)
        interp = e.execute(backend="interp").values
        e2 = PortalExpr()
        e2.addLayer(PortalOp.FORALL, Storage(Q, name="query"))
        e2.addLayer(PortalOp.SUM, Storage(R, name="reference"),
                    PortalFunc.GAUSSIAN, bandwidth=0.9)
        fast = e2.execute(backend="vectorized", tau=0.0,
                          exclude_self=False).values
        assert np.allclose(interp, fast)

    def test_mahalanobis_through_numopt_ir(self, rng):
        cov = np.diag([1.0, 2.0, 4.0])
        Q, R, e = build(rng, PortalOp.MIN, PortalFunc.MAHALANOBIS,
                        covariance=cov)
        out = e.execute(backend="interp", fastmath=False)
        diff = Q[:, None, :] - R[None, :, :]
        maha = np.einsum("ijk,kl,ijl->ij", diff, np.linalg.inv(cov), diff)
        assert np.allclose(out.values, maha.min(axis=1))

    def test_external_kernel_rejected(self, rng):
        Q = Storage(rng.normal(size=(8, 2)))
        R = Storage(rng.normal(size=(8, 2)))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Q)
        e.addLayer(PortalOp.SUM, R, lambda A, B: np.ones((len(A), len(B))))
        with pytest.raises(CompileError, match="interpreter backend"):
            e.execute(backend="interp")
