"""Tests for the compilation driver (modes, options, validation)."""

import numpy as np
import pytest

from repro.dsl import (
    CompileError, PortalExpr, PortalFunc, PortalOp, SpecificationError,
    Storage, Var, indicator, pow, sqrt,
)
from repro.backend.jit import CompileOptions


@pytest.fixture
def rng():
    return np.random.default_rng(12)


def nn_expr(rng, d=3, n=60):
    e = PortalExpr("nn")
    e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(n, d)), name="q"))
    e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(n + 10, d)), name="r"),
               PortalFunc.EUCLIDEAN)
    return e


class TestOptions:
    def test_defaults(self):
        opts = CompileOptions.from_dict({})
        assert opts.backend == "vectorized" and opts.tree == "kd"
        assert opts.fastmath

    def test_unknown_rejected(self):
        with pytest.raises(SpecificationError):
            CompileOptions.from_dict({"bogus": 1})


class TestModes:
    def test_tree_mode_default(self, rng):
        prog = nn_expr(rng).compile()
        assert prog.mode == "tree"
        assert prog.qtree is not None

    def test_brute_backend_option(self, rng):
        prog = nn_expr(rng).compile(backend="brute")
        assert prog.mode == "brute"

    def test_tree_none_forces_brute(self, rng):
        prog = nn_expr(rng).compile(tree="none")
        assert prog.mode == "brute"

    def test_external_kernel_forces_brute(self, rng):
        e = PortalExpr()
        s1 = Storage(rng.normal(size=(20, 3)))
        s2 = Storage(rng.normal(size=(20, 3)))
        e.addLayer(PortalOp.FORALL, s1)
        e.addLayer(PortalOp.SUM, s2,
                   lambda Q, R: np.ones((len(Q), len(R))))
        prog = e.compile()
        assert prog.mode == "brute"
        out = prog.run()
        assert np.allclose(out.values, 20.0)

    def test_nonmonotone_kernel_forces_brute(self, rng):
        # g(t) = (t-1)² dips and rises: no kernel bounds from distance bounds.
        q, r = Var("q"), Var("r")
        t = pow(q - r, 2)
        e = PortalExpr()
        s = Storage(rng.normal(size=(20, 3)))
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.SUM, Storage(rng.normal(size=(20, 3))),
                   (t - 1.0) * (t - 1.0))
        prog = e.compile()
        assert prog.mode == "brute"
        assert prog.classification.algorithm == "brute"

    def test_octree_dim_guard(self, rng):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(20, 5))))
        e.addLayer(PortalOp.ARGMIN, Storage(rng.normal(size=(20, 5))),
                   PortalFunc.EUCLIDEAN)
        with pytest.raises(CompileError, match="octrees require"):
            e.compile(tree="octree")

    def test_ball_tree_euclidean_only(self, rng):
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(20, 3))))
        e.addLayer(PortalOp.MIN, Storage(rng.normal(size=(20, 3))),
                   PortalFunc.MANHATTAN)
        with pytest.raises(CompileError, match="ball trees"):
            e.compile(tree="ball")

    def test_ball_tree_works_for_euclidean(self, rng):
        prog = nn_expr(rng).compile(tree="ball")
        out = prog.run()
        assert out.values.shape == (60,)


class TestBehaviour:
    def test_tree_equals_brute(self, rng):
        e1 = nn_expr(rng)
        out_tree = e1.execute(fastmath=False)
        delta = e1.program.validate_against_brute()
        assert delta < 1e-12

    def _sum_of_distances(self, rng):
        # SUM is not order-based, so g = sqrt stays in the hot path and
        # the fastmath knob is visible in the generated source.
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(rng.normal(size=(30, 3))))
        e.addLayer(PortalOp.SUM, Storage(rng.normal(size=(30, 3))),
                   PortalFunc.EUCLIDEAN)
        return e

    def test_fastmath_off_is_exact_sqrt(self, rng):
        e = self._sum_of_distances(rng)
        e.compile(fastmath=False)
        assert "finvsqrt" not in e.generated_source()
        e2 = self._sum_of_distances(rng)
        e2.compile(fastmath=True)
        assert "finvsqrt" in e2.generated_source()

    def test_monotone_map_deferred_for_ordered_reductions(self, rng):
        # ARGMIN over sqrt(t): the generated base case reduces raw t and
        # the sqrt happens once at finalisation.
        e = nn_expr(rng)
        e.compile(fastmath=False)
        src = e.generated_source()
        assert "np.sqrt" not in src.split("def base_case")[1].split("def ")[0]
        assert e.program.state.value_transform is not None

    def test_exclude_self_default_on_self_join(self, rng):
        s = Storage(rng.normal(size=(50, 3)))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.ARGMIN, s, PortalFunc.EUCLIDEAN)
        out = e.execute()
        assert np.all(out.indices != np.arange(50))

    def test_exclude_self_override(self, rng):
        s = Storage(rng.normal(size=(50, 3)))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.ARGMIN, s, PortalFunc.EUCLIDEAN)
        out = e.execute(exclude_self=False)
        assert np.all(out.indices == np.arange(50))
        assert np.allclose(out.values, 0.0)

    def test_same_storage_shares_tree(self, rng):
        s = Storage(rng.normal(size=(50, 3)))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, s)
        e.addLayer(PortalOp.ARGMIN, s, PortalFunc.EUCLIDEAN)
        prog = e.compile()
        assert prog.qtree is prog.rtree

    def test_stats_populated(self, rng):
        e = nn_expr(rng)
        e.execute()
        st = e.program.stats
        assert st.base_cases > 0 and st.visited >= st.base_cases

    def test_whitening_runs_through_tree(self, rng):
        cov = np.diag([1.0, 4.0, 9.0])
        Q = rng.normal(size=(40, 3))
        R = rng.normal(size=(50, 3))
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, Storage(Q))
        e.addLayer(PortalOp.MIN, Storage(R), PortalFunc.MAHALANOBIS,
                   covariance=cov)
        out = e.execute(fastmath=False)
        diff = Q[:, None, :] - R[None, :, :]
        maha = np.einsum("ijk,kl,ijl->ij", diff, np.linalg.inv(cov), diff)
        assert np.allclose(out.values, maha.min(axis=1), rtol=1e-8)

    def test_modifier_callable(self, rng):
        s1 = Storage(rng.normal(size=(20, 3)))
        s2 = Storage(rng.normal(size=(25, 3)))
        e = PortalExpr()
        e.addLayer(PortalOp.SUM, s1, np.log)
        e.addLayer(PortalOp.SUM, s2, PortalFunc.GAUSSIAN, bandwidth=2.0)
        out = e.execute(exclude_self=False)
        d2 = ((s1.data[:, None, :] - s2.data[None, :, :]) ** 2).sum(-1)
        expected = np.log(np.exp(-d2 / 8.0).sum(axis=1)).sum()
        assert out.scalar == pytest.approx(expected, rel=1e-4)

    def test_bad_modifier_rejected(self, rng):
        s = Storage(rng.normal(size=(20, 3)))
        e = PortalExpr()
        e.addLayer(PortalOp.SUM, s, "not-a-function")
        e.addLayer(PortalOp.SUM, s, PortalFunc.GAUSSIAN)
        from repro.dsl import PortalError

        with pytest.raises(PortalError):
            e.compile()

    def test_leaf_size_option(self, rng):
        e = nn_expr(rng, n=200)
        e.compile(leaf_size=10)
        assert e.program.qtree.leaf_size == 10


class TestStatsConcurrency:
    """``stats_summary()`` must snapshot, never iterate live dicts that a
    concurrent ``run()`` is mutating (the serving layer reads stats for
    its health endpoint while worker threads execute)."""

    def test_stats_during_concurrent_runs(self, rng):
        import threading

        e = nn_expr(rng, n=120)
        prog = e.compile()
        prog.run()  # populate timings once

        errors = []
        stop = threading.Event()

        def runner():
            try:
                while not stop.is_set():
                    prog.run()
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    st = prog.stats_summary()
                    # a torn snapshot would miss keys or raise above
                    assert st["run_ms"] is None or st["run_ms"] >= 0
                    assert "traversal" in st
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        threads = [threading.Thread(target=runner) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        # a short, bounded soak: plenty of interleavings, no sleeps
        for _ in range(200):
            prog.stats_summary()
        stop.set()
        for t in threads:
            t.join(10)
        assert not errors, errors

    def test_expr_stats_while_serving_fresh_expressions(self, rng):
        """PortalExpr.stats() under the serve pattern: one thread
        re-executes, another polls stats()."""
        import threading

        e = nn_expr(rng)
        e.execute()
        stop = threading.Event()
        errors = []

        def executor_thread():
            try:
                while not stop.is_set():
                    e.program.run()
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        t = threading.Thread(target=executor_thread)
        t.start()
        try:
            for _ in range(300):
                st = e.stats()
                assert st["run_ms"] is None or st["run_ms"] >= 0
        finally:
            stop.set()
            t.join(10)
        assert not errors, errors
