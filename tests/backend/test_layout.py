"""Tests for layout selection (sections III-B / IV-F)."""

import pytest

from repro.backend.layout import COLUMN_MAJOR_MAX_DIM, Layout, choose_layout


@pytest.mark.parametrize("d", [1, 2, 3, 4])
def test_low_dim_column(d):
    assert choose_layout(d) == Layout.COLUMN


@pytest.mark.parametrize("d", [5, 11, 28, 68])
def test_high_dim_row(d):
    assert choose_layout(d) == Layout.ROW


def test_threshold_is_four():
    assert COLUMN_MAJOR_MAX_DIM == 4


def test_invalid_dim():
    with pytest.raises(ValueError):
        choose_layout(0)
