"""Tests for m ≥ 3 layer programs (the general form of equation 2)."""

import numpy as np
import pytest

from repro.dsl import (
    CompileError, PortalExpr, PortalOp, Storage, Var, indicator, pow, sqrt,
)


@pytest.fixture
def rng():
    return np.random.default_rng(29)


def triangle_kernel(a, b, c, h):
    return (
        indicator(sqrt(pow(a - b, 2)) < h)
        * indicator(sqrt(pow(b - c, 2)) < h)
        * indicator(sqrt(pow(a - c, 2)) < h)
    )


def three_point_expr(storages, h, ops=(PortalOp.SUM,) * 3):
    a, b, c = Var("a"), Var("b"), Var("c")
    e = PortalExpr("3pc")
    e.addLayer(ops[0], a, storages[0])
    e.addLayer(ops[1], b, storages[1])
    e.addLayer(ops[2], c, storages[2], triangle_kernel(a, b, c, h))
    return e


class TestThreePointDSL:
    def test_matches_multitree_implementation(self, rng):
        from repro.problems import three_point_correlation

        X = rng.normal(size=(70, 3))
        s = Storage(X)
        out = three_point_expr((s, s, s), 0.9).execute()
        assert out.scalar == three_point_correlation(X, 0.9)

    def test_distinct_datasets_no_self_exclusion(self, rng):
        A = Storage(rng.normal(size=(15, 2)))
        B = Storage(rng.normal(size=(18, 2)))
        C = Storage(rng.normal(size=(20, 2)))
        out = three_point_expr((A, B, C), 1.0).execute()
        # dense reference
        dab = np.sqrt(((A.data[:, None] - B.data[None]) ** 2).sum(-1)) < 1.0
        dbc = np.sqrt(((B.data[:, None] - C.data[None]) ** 2).sum(-1)) < 1.0
        dac = np.sqrt(((A.data[:, None] - C.data[None]) ** 2).sum(-1)) < 1.0
        expected = np.einsum("ab,bc,ac->", dab.astype(float),
                             dbc.astype(float), dac.astype(float))
        assert out.scalar == expected

    def test_forall_outer_gives_per_point_counts(self, rng):
        X = rng.normal(size=(40, 3))
        s = Storage(X)
        e = three_point_expr((s, s, s), 0.9,
                             ops=(PortalOp.FORALL, PortalOp.SUM, PortalOp.SUM))
        out = e.execute()
        assert out.values.shape == (40,)
        from repro.problems import three_point_correlation

        assert out.values.sum() == three_point_correlation(X, 0.9)

    def test_min_over_sums(self, rng):
        # min_a Σ_b Σ_c K — a non-SUM outer over SUM inners.
        A = Storage(rng.normal(size=(10, 2)))
        B = Storage(rng.normal(size=(12, 2)))
        C = Storage(rng.normal(size=(14, 2)))
        a, b, c = Var("a"), Var("b"), Var("c")
        kernel = pow(a - b, 2) + pow(b - c, 2) + pow(a - c, 2)
        e = PortalExpr()
        e.addLayer(PortalOp.MIN, a, A)
        e.addLayer(PortalOp.SUM, b, B)
        e.addLayer(PortalOp.SUM, c, C, kernel)
        out = e.execute()
        dab = ((A.data[:, None] - B.data[None]) ** 2).sum(-1)
        dbc = ((B.data[:, None] - C.data[None]) ** 2).sum(-1)
        dac = ((A.data[:, None] - C.data[None]) ** 2).sum(-1)
        dense = (dab[:, :, None] + dbc[None, :, :] + dac[:, None, :])
        assert out.scalar == pytest.approx(dense.sum(axis=(1, 2)).min())

    def test_ir_dump_has_three_loops(self, rng):
        X = Storage(rng.normal(size=(10, 2)))
        e = three_point_expr((X, X, X), 0.5)
        e.compile()
        import re

        dump = e.ir_dump("lowered")
        loops = re.findall(r"^\s*for \w+ in", dump, flags=re.M)
        assert len(loops) == 3
        assert "kernel_eval" in dump

    def test_unsupported_operator_rejected(self, rng):
        X = Storage(rng.normal(size=(10, 2)))
        a, b, c = Var("a"), Var("b"), Var("c")
        e = PortalExpr()
        e.addLayer(PortalOp.FORALL, a, X)
        e.addLayer(PortalOp.ARGMIN, b, X)
        e.addLayer(PortalOp.SUM, c, X, triangle_kernel(a, b, c, 1.0))
        with pytest.raises(CompileError, match="multi-layer"):
            e.execute()

    def test_exclude_self_masking_guard(self, rng):
        # MIN reductions cannot use the zero-masking exclusion.
        X = Storage(rng.normal(size=(10, 2)))
        a, b, c = Var("a"), Var("b"), Var("c")
        kernel = pow(a - b, 2) + pow(b - c, 2) + pow(a - c, 2)
        e = PortalExpr()
        e.addLayer(PortalOp.MIN, a, X)
        e.addLayer(PortalOp.MIN, b, X)
        e.addLayer(PortalOp.MIN, c, X, kernel)
        with pytest.raises(CompileError, match="exclude_self"):
            e.execute()
        out = e.execute(exclude_self=False)
        assert out.scalar == pytest.approx(0.0)  # a=b=c gives 0

    def test_external_kernel_rejected(self, rng):
        X = Storage(rng.normal(size=(10, 2)))
        e = PortalExpr()
        e.addLayer(PortalOp.SUM, X)
        e.addLayer(PortalOp.SUM, X)
        e.addLayer(PortalOp.SUM, X, lambda *a: None)
        with pytest.raises(CompileError, match="symbolic"):
            e.execute()

    def test_blocking_matches_unblocked(self, rng):
        # Force tiny blocks via a large first dataset and compare against
        # the dense reference.
        import repro.backend.multilayer as ml

        X = rng.normal(size=(60, 2))
        s = Storage(X)
        expr = three_point_expr((s, s, s), 0.8)
        old = ml._block_size
        ml._block_size = lambda *a, **k: 7
        try:
            blocked = expr.execute().scalar
        finally:
            ml._block_size = old
        from repro.problems import three_point_correlation

        assert blocked == three_point_correlation(X, 0.8)
