"""Mutation → cache coherence: the differential suite for incremental trees.

After each mutation kind (insert / delete / update, with and without
weights) every cache layer must either *hit with a refit* or *miss
correctly*:

* the **compile artifact** re-keys (the mutated fingerprint is part of
  the program key) — one ``cache.compile.miss`` per mutation, hits again
  afterwards;
* the **tree cache** serves the refit clone under the new content key
  (``cache.tree.refit``) while the query-side tree still hits;
* **shard packs** re-key through the fingerprint-derived ``base_key``;
* **shared memory** blocks published under the old token are evicted on
  mutation (``shm.stale_evicted``) so a warm process pool can never read
  stale columns.

Results over the mutated Storage are compared against a from-scratch
rebuild: bitwise for selection/count reductions (k-NN values, range
counts, Hausdorff), tight-tolerance for arithmetic sums (KDE — the refit
tree legitimately groups leaf accumulations differently), across
serial / thread / process executors and all three traversal engines.
"""

import numpy as np
import pytest

from repro.backend.cache import clear_caches, tree_cache
from repro.dsl import Storage
from repro.observe import collect
from repro.parallel import shm
from repro.problems import directed_hausdorff, kde, knn, range_count

THREAD = {"parallel": True, "workers": 2, "min_tasks": 8,
          "executor": "thread"}
PROCESS = {"parallel": True, "workers": 2, "min_tasks": 8,
           "executor": "process"}
EXECUTORS = {"serial": {}, "thread": THREAD, "process": PROCESS}


def _data(rng, nq=150, nr=1200, weighted=False):
    Q = Storage(rng.normal(size=(nq, 3)))
    w = rng.uniform(0.5, 2.0, nr) if weighted else None
    R = Storage(rng.normal(size=(nr, 3)), weights=w)
    return Q, R


def _fresh(R):
    """A from-scratch Storage with the mutated content (no shared log)."""
    return Storage(R.data.copy(),
                   weights=None if R.weights is None else R.weights.copy())


def _mutate(rng, R, kind):
    n = R.n
    if kind == "update":
        idx = rng.choice(n, max(1, n // 100), replace=False)
        R.update_batch(idx, rng.normal(size=(idx.size, 3)))
    elif kind == "update-weights":
        idx = rng.choice(n, max(1, n // 100), replace=False)
        R.update_batch(idx, weights=rng.uniform(0.5, 3.0, idx.size))
    elif kind == "insert":
        R.insert_batch(rng.normal(size=(n // 50, 3)),
                       weights=None if R.weights is None
                       else np.ones(n // 50))
    elif kind == "delete":
        R.delete_batch(rng.choice(n, n // 50, replace=False))
    else:  # mixed
        idx = rng.choice(n, n // 100, replace=False)
        R.update_batch(idx, rng.normal(size=(idx.size, 3)))
        ids = R.insert_batch(rng.normal(size=(20, 3)),
                             weights=None if R.weights is None
                             else np.ones(20))
        R.delete_batch(np.concatenate([idx[: idx.size // 2], ids[:5]]))


# The three traversal engines: knn routes to bounded-batched, kde to
# batched, and traversal='stack' forces the scalar reference engine.
def run_knn(Q, R, o):
    v, i = knn(Q, R, k=4, **o)
    return np.asarray(v)


def run_knn_stack(Q, R, o):
    v, i = knn(Q, R, k=4, traversal="stack", **o)
    return np.asarray(v)


def run_kde(Q, R, o):
    return np.asarray(kde(Q, R, bandwidth=0.8, tau=0.0, **o))


def run_range(Q, R, o):
    return np.asarray(range_count(Q, R, h=1.4, **o))


def run_hausdorff(Q, R, o):
    return np.asarray(directed_hausdorff(Q, R, **o))


PROBLEMS = {
    "knn": (run_knn, "exact"),
    "knn-stack": (run_knn_stack, "exact"),
    "kde": (run_kde, "close"),
    "range_count": (run_range, "exact"),
    "hausdorff": (run_hausdorff, "exact"),
}

MUTATIONS = ["update", "insert", "delete", "mixed"]


def _assert_same(mode, a, b):
    if mode == "exact":
        assert np.array_equal(a, b)
    else:
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-300)


@pytest.mark.parametrize("mutation", MUTATIONS)
@pytest.mark.parametrize("problem", ["knn", "kde"])
def test_refit_hits_and_matches_rebuild(rng, problem, mutation):
    """Core loop: warm → mutate → the compile artifact misses once, the
    r-side tree refits, the q-side tree still hits — and the answer is
    identical to a from-scratch rebuild."""
    run, mode = PROBLEMS[problem]
    Q, R = _data(rng, weighted=problem == "kde")
    run(Q, R, {})
    _mutate(rng, R, mutation)
    with collect() as c:
        got = run(Q, R, {})
    assert c.get("cache.compile.miss") == 1
    assert c.get("cache.tree.refit") == 1, c.as_dict()
    assert c.get("cache.tree.hit") >= 1  # query side unchanged
    _assert_same(mode, got, run(Q, _fresh(R), {"cache": False}))
    # steady state: everything hits again, no further refit
    with collect() as c:
        run(Q, R, {})
    assert c.get("cache.compile.hit") == 1
    assert c.get("cache.tree.refit") == 0


@pytest.mark.parametrize("mutation", ["update-weights"])
def test_weighted_refit(rng, mutation):
    run, mode = PROBLEMS["kde"]
    Q, R = _data(rng, weighted=True)
    run(Q, R, {})
    _mutate(rng, R, mutation)
    with collect() as c:
        got = run(Q, R, {})
    assert c.get("cache.tree.refit") == 1, c.as_dict()
    _assert_same(mode, got, run(Q, _fresh(R), {"cache": False}))


@pytest.mark.slow
@pytest.mark.parametrize("executor", list(EXECUTORS))
@pytest.mark.parametrize("problem", list(PROBLEMS))
def test_executor_matrix(rng, problem, executor):
    """Every engine × executor pair answers identically to a fresh
    rebuild after a mixed mutation chain."""
    run, mode = PROBLEMS[problem]
    opts = dict(EXECUTORS[executor])
    Q, R = _data(rng)
    run(Q, R, opts)
    _mutate(rng, R, "mixed")
    with collect() as c:
        got = run(Q, R, opts)
    assert c.get("cache.tree.refit") == 1, c.as_dict()
    _assert_same(mode, got, run(Q, _fresh(R), {"cache": False}))


def test_shard_pack_rekeys(rng):
    """Sharded layout: the mutated fingerprint re-keys the derived
    per-shard tree cache, and the combined answer matches a rebuild."""
    Q, R = _data(rng, nr=2000)
    v0 = run_knn(Q, R, {"shards": 2})
    _mutate(rng, R, "update")
    with collect() as c:
        got = run_knn(Q, R, {"shards": 2})
    # per-shard subset trees are derived-key cached: the new base_key
    # misses (rebuild per shard); the unsharded q-side tree still hits.
    assert c.get("cache.compile.miss") == 1
    assert c.get("cache.tree.miss") >= 2
    _assert_same("exact", got, run_knn(Q, _fresh(R), {"cache": False}))


def test_shm_stale_eviction(rng):
    """A mutation evicts the old token's published blocks so the next
    process-pool run republishes fresh columns."""
    Q, R = _data(rng, nr=2000)
    run_knn(Q, R, PROCESS)
    assert shm.shared_block_stats()["blocks"] >= 1
    with collect() as c:
        R.update_batch(np.arange(10), rng.normal(size=(10, 3)))
    assert c.get("shm.stale_evicted") >= 1, c.as_dict()
    assert shm.shared_block_stats()["blocks"] == 0
    with collect() as c:
        got = run_knn(Q, R, PROCESS)
    assert c.get("shm.publish.miss") >= 1
    _assert_same("exact", got, run_knn(Q, _fresh(R), {"cache": False}))


@pytest.mark.slow
def test_shm_sharded_stale_eviction(rng):
    """Sharded publications (token::q / token::r{i}) are evicted by the
    same prefix-matching hook."""
    Q, R = _data(rng, nr=2000)
    run_knn(Q, R, {**PROCESS, "shards": 2})
    before = shm.shared_block_stats()["blocks"]
    assert before >= 3  # ::q plus one block per shard
    with collect() as c:
        R.delete_batch(np.arange(25))
    assert c.get("shm.stale_evicted") >= 3, c.as_dict()
    got = run_knn(Q, R, {**PROCESS, "shards": 2})
    _assert_same("exact", got, run_knn(Q, _fresh(R), {"cache": False}))


def test_mark_mutated_breaks_refit_chain(rng):
    """An untracked in-place write cannot be replayed: mark_mutated()
    must force a full rebuild, never an unsound refit."""
    Q, R = _data(rng)
    run_knn(Q, R, {})
    R.data[0] += 0.25
    R.mark_mutated()
    with collect() as c:
        got = run_knn(Q, R, {})
    assert c.get("cache.tree.refit") == 0
    assert c.get("cache.tree.miss") >= 1
    _assert_same("exact", got, run_knn(Q, _fresh(R), {"cache": False}))


def test_log_overflow_falls_back(rng):
    """More mutations than the bounded log keeps → full rebuild."""
    from repro.dsl.storage import MUTATION_LOG_MAX

    Q, R = _data(rng, nr=400)
    run_knn(Q, R, {})
    for _ in range(MUTATION_LOG_MAX + 2):
        R.update_batch([0], rng.normal(size=(1, 3)))
    with collect() as c:
        got = run_knn(Q, R, {})
    assert c.get("cache.tree.refit") == 0
    assert c.get("cache.tree.miss") >= 1
    _assert_same("exact", got, run_knn(Q, _fresh(R), {"cache": False}))


def test_old_cache_entry_stays_valid(rng):
    """The refit clone is cached under the *new* key; the pre-mutation
    entry keeps answering for the old content (snapshots never mutate
    their source)."""
    rng2 = np.random.default_rng(99)
    Q, R = _data(rng2)
    old_content = Storage(R.data.copy())
    v_old = run_knn(Q, R, {})
    R.update_batch(np.arange(12), rng2.normal(size=(12, 3)))
    run_knn(Q, R, {})  # refit happens here
    with collect() as c:
        v_again = run_knn(Q, old_content, {})
    # the whole old artifact (trees included) is still keyed and intact
    assert c.get("cache.compile.hit") == 1
    assert c.get("cache.tree.refit") == 0
    assert np.array_equal(v_old, v_again)


def test_storage_mutation_validation(rng):
    R = Storage(rng.normal(size=(50, 3)))
    from repro.dsl.errors import StorageError

    with pytest.raises(StorageError):
        R.delete_batch(np.arange(50))
    with pytest.raises(StorageError):
        R.delete_batch([60])
    with pytest.raises(StorageError):
        R.update_batch([0])  # neither points nor weights
    with pytest.raises(StorageError):
        R.update_batch([0], weights=[1.0])  # unweighted storage
    with pytest.raises(StorageError):
        R.insert_batch([[np.nan, 0, 0]])
    Rw = Storage(rng.normal(size=(50, 3)), weights=np.ones(50))
    ids = Rw.insert_batch(rng.normal(size=(3, 3)))  # weights default to 1
    assert np.array_equal(ids, [50, 51, 52])
    assert np.allclose(Rw.weights[-3:], 1.0)


def test_deltas_since_chain(rng):
    R = Storage(rng.normal(size=(40, 3)))
    assert R.deltas_since(0) == []
    R.update_batch([1], rng.normal(size=(1, 3)))
    R.insert_batch(rng.normal(size=(2, 3)))
    chain = R.deltas_since(0)
    assert [d.kind for d in chain] == ["update", "insert"]
    assert R.deltas_since(1)[0].kind == "insert"
    R.mark_mutated()
    assert R.deltas_since(0) is None
    assert R.deltas_since(R.version) == []


# ---------------------------------------------------------------------------
# shards='auto' env resolution (satellite: no compile-time drift)
# ---------------------------------------------------------------------------

class TestShardEnvResolution:
    def test_repro_shards_re_resolved_per_execute(self, rng, monkeypatch):
        """Changing REPRO_SHARDS between calls in one process must key a
        new plan, not reuse the old one."""
        Q, R = _data(rng, nr=2000)
        monkeypatch.setenv("REPRO_SHARDS", "2")
        from repro.dsl import PortalExpr, PortalFunc, PortalOp

        def stats_for():
            expr = PortalExpr("env-shards")
            expr.addLayer(PortalOp.FORALL, Q)
            expr.addLayer((PortalOp.KARGMIN, 4), R, PortalFunc.EUCLIDEAN)
            out = expr.execute()
            return expr.stats(), np.asarray(out.values)

        s1, v1 = stats_for()
        assert s1["shards"] == 2
        monkeypatch.setenv("REPRO_SHARDS", "3")
        s2, v2 = stats_for()
        assert s2["shards"] == 3
        assert np.array_equal(v1, v2)
        monkeypatch.delenv("REPRO_SHARDS")
        s3, _ = stats_for()
        assert s3["shards"] == 1  # below the auto threshold

    def test_repro_workers_drives_auto_resolution(self, rng, monkeypatch):
        """shards='auto' resolves against the worker count *at execute
        time*; an env change between calls recompiles for the new
        count."""
        from repro.parallel.shard import AUTO_SHARD_MIN_POINTS, \
            resolve_shard_count

        nr = AUTO_SHARD_MIN_POINTS * 4
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert resolve_shard_count("auto", nr, None) == 2
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_shard_count("auto", nr, None) == 4

    def test_resolved_count_is_cache_keyed(self, rng, monkeypatch):
        """Same program, different resolved shard count → program cache
        misses (a plan for another worker count is never reused)."""
        Q, R = _data(rng, nr=2000)
        monkeypatch.setenv("REPRO_SHARDS", "2")
        with collect() as c:
            run_knn(Q, R, {})
        assert c.get("cache.compile.miss") == 1
        monkeypatch.setenv("REPRO_SHARDS", "3")
        with collect() as c:
            run_knn(Q, R, {})
        assert c.get("cache.compile.miss") == 1
        monkeypatch.setenv("REPRO_SHARDS", "2")
        with collect() as c:
            run_knn(Q, R, {})
        assert c.get("cache.compile.hit") == 1  # 2-shard plan still cached


# ---------------------------------------------------------------------------
# shm double-release (satellite: atexit never raises)
# ---------------------------------------------------------------------------

class TestShmRelease:
    def test_close_is_idempotent(self):
        block = shm.SharedBlock({"a": np.arange(8, dtype=np.float64)})
        block.close()
        block.close()  # second close (the old double-release) is a no-op

    def test_release_paths_race_safely(self):
        tok = "test-double-release"
        shm.publish_arrays(tok, {"a": np.arange(4, dtype=np.float64)})
        with shm._blocks_lock:
            block = shm._blocks.get(tok)
        shm.release_block(tok)
        # the atexit-style sweep sees nothing, and a stray reference
        # closing again must not raise
        shm.release_shared_blocks()
        block.close()
        shm._atexit_release()

    def test_non_owner_never_unlinks(self):
        block = shm.SharedBlock({"a": np.arange(4, dtype=np.float64)})
        name = block.name
        handle, views = shm.attach_arrays(name, block.manifest)
        try:
            attacher = shm.SharedBlock.__new__(shm.SharedBlock)
            attacher.shm = handle
            attacher.manifest = block.manifest
            attacher.nbytes = block.nbytes
            attacher._owner = False
            attacher._closed = False
            import threading

            attacher._close_lock = threading.Lock()
            attacher.close()  # closes its handle but must not unlink
            # the owner's segment is still intact: re-attach works
            handle2, _ = shm.attach_arrays(name, block.manifest)
            handle2.close()
        finally:
            block.close()

    def test_evict_stale_blocks_prefix_matching(self):
        base = "tok-evict-test"
        for t in (base, base + "::q", base + "::r0", base + "::r1",
                  "other-token"):
            shm.publish_arrays(t, {"a": np.arange(4, dtype=np.float64)})
        with collect() as c:
            n = shm.evict_stale_blocks((base,))
        assert n == 4
        assert c.get("shm.stale_evicted") == 4
        assert shm.shared_block_stats()["blocks"] == 1
        shm.release_block("other-token")
